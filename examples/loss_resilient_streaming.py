#!/usr/bin/env python3
"""Loss-resilient live streaming: picking the redundancy level.

The paper's §V-B3 guidance: add a small number of extra coded packets
per generation on lossy paths, none on clean ones.  This example
streams live video (fixed rate, playout deadline) across a relay whose
egress link loses packets in bursts, sweeping the NC0/NC1/NC2
redundancy settings, and compares against the analytic recommendation
from the delivery-probability model.

Run:  python examples/loss_resilient_streaming.py     (~30 s)
"""

import numpy as np

from repro.apps.file_transfer import install_control_relay
from repro.apps.streaming import StreamingReceiver, StreamingSource
from repro.core.forwarding import ForwardingTable
from repro.core.session import CodingConfig, MulticastSession
from repro.core.vnf import CodingVnf, VnfRole
from repro.net import LinkSpec, Topology
from repro.net.loss import BurstLoss
from repro.rlnc.redundancy import RedundancyPolicy, recommend_redundancy


def run_stream(extra: int, loss_p: float, seed: int = 3) -> dict:
    rng = np.random.default_rng(seed)
    topo = Topology(rng=rng)
    topo.add_node("studio")
    relay = CodingVnf("relay", topo.scheduler, rng=rng, payload_mode="coefficients-only")
    topo.add_node(relay)
    topo.add_node("viewer")
    loss = BurstLoss(loss_p, correlation=0.25) if loss_p else None
    topo.add_link(LinkSpec("studio", "relay", 30.0, 20.0))
    topo.add_link(LinkSpec("relay", "viewer", 30.0, 25.0, loss=loss))
    topo.add_link(LinkSpec("viewer", "relay", 5.0, 25.0))
    topo.add_link(LinkSpec("relay", "studio", 5.0, 20.0))

    session = MulticastSession(
        source="studio",
        receivers=["viewer"],
        max_delay_ms=150.0,
        coding=CodingConfig(redundancy=RedundancyPolicy(extra)),
    )
    relay.configure_session(session.session_id, VnfRole.RECODER, session.coding)
    relay.forwarding_table = ForwardingTable({session.session_id: ["viewer"]})
    install_control_relay(relay, "studio")

    k = session.coding.blocks_per_generation
    stream_rate = 10.0  # Mbps of video
    wire_rate = stream_rate * (k + extra) / k
    source = StreamingSource(
        topo.get("studio"),
        session,
        link_shares={"relay": wire_rate},
        stream_rate_mbps=stream_rate,
        payload_mode="coefficients-only",
        rng=rng,
    )
    receiver = StreamingReceiver(
        topo.get("viewer"),
        session,
        source,
        playout_delay_s=0.25,
        payload_mode="coefficients-only",
        ack_to="relay",
        stall_generations=8,
    )
    source.start()
    topo.run(until=6.0)
    return {
        "continuity": receiver.continuity(),
        "wire_mbps": wire_rate,
        "repairs": source.repair_packets,
    }


def main() -> None:
    loss_p = 0.08
    k = 4
    recommended = recommend_redundancy(loss_p, k, target_delivery=0.95)
    print(f"burst loss p={loss_p:.0%} on the egress link; "
          f"analytic recommendation: {recommended.name}\n")

    print(f"{'setting':<8} {'continuity':>11} {'wire rate':>10} {'repairs':>8}")
    results = {}
    for extra in (0, 1, 2):
        r = run_stream(extra, loss_p)
        results[extra] = r
        print(f"{'NC' + str(extra):<8} {r['continuity']:>10.1%} "
              f"{r['wire_mbps']:>9.1f}M {r['repairs']:>8}")

    clean = run_stream(0, 0.0)
    print(f"\nclean link, NC0: continuity {clean['continuity']:.1%} "
          f"(redundancy would be pure waste there)")
    best = max(results, key=lambda e: results[e]["continuity"])
    print(f"best setting under loss: NC{best} "
          f"(paper: 'a small number of extra coded packets ... in cases of high loss')")


if __name__ == "__main__":
    main()
