#!/usr/bin/env python3
"""Quickstart: RLNC encode → relay recode → decode, in ten lines of API.

This walks the data plane the way the paper's Fig. 3 describes it: a
message is segmented into generations of 4 × 1460-byte blocks, coded
packets are produced per generation, mixed again at a relay (which
never decodes), and recovered at the receiver from any four linearly
independent packets per generation.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.rlnc import Decoder, Encoder, Recoder, reassemble, segment


def main() -> None:
    rng = np.random.default_rng(7)

    # A message to multicast: ~100 KB of bytes.
    message = rng.integers(0, 256, 100_000, dtype=np.uint8).tobytes()

    # 1. Segment into generations (defaults: 1460-byte blocks, 4 per
    #    generation — one coded packet fills one 1500-byte MTU).
    generations = segment(message)
    print(f"message: {len(message)} bytes -> {len(generations)} generations")

    # 2-4. Per generation: encode at the source, recode at a relay
    # (pipelined: one fresh combination per received packet), decode.
    decoded = []
    packets_sent = packets_redundant = 0
    for generation in generations:
        encoder = Encoder(session_id=1, generation=generation, rng=rng)
        relay = Recoder(1, generation.generation_id, generation.block_count, rng=rng)
        decoder = Decoder(1, generation.generation_id, generation.block_count, generation.block_bytes)
        while not decoder.complete:
            packet = encoder.next_packet()          # source
            packet = relay.on_packet(packet)        # network coding VNF
            if not decoder.add(packet):             # receiver
                packets_redundant += 1
            packets_sent += 1
        decoded.append(decoder.decode())

    # 5. Reassemble and verify.
    recovered = reassemble(decoded, len(message))
    assert recovered == message
    print(f"recovered OK: {packets_sent} packets sent, {packets_redundant} redundant "
          f"({packets_redundant / packets_sent:.2%} overhead from random coding)")


if __name__ == "__main__":
    main()
