#!/usr/bin/env python3
"""Failover demo: a relay VNF dies mid-transfer and the system recovers.

Two levels of the same story:

1. Packet level — the Fig. 6 butterfly streams RLNC multicast while the
   fault injector pulls the power cord on relay V2 (all links down,
   daemon killed).  Heartbeats stop, the failure detector fires, pruned
   forwarding tables go out and the source falls back to the side
   branches.  Both receivers keep decoding; the recovery latency is the
   data plane's MTTR.
2. Flow level — the six-data-center world with live cloud providers: a
   VM is crashed under the controller, missed heartbeats trigger the
   recovery pipeline, a replacement VM boots and the fleet meets the
   requirement again.  That gap is the fleet's MTTR.

Run:  python examples/failover_butterfly.py          (~30 s)
"""

from repro.experiments.failures import run_butterfly_failover, run_fleet_failover


def main() -> None:
    print("packet level: crashing relay V2 at t=1.0 s mid-transfer...")
    r = run_butterfly_failover(duration_s=6.0)
    print(f"  failure injected at            t={r.failed_at:.2f} s")
    print(f"  declared dead (heartbeats) at  t={r.detected_at:.2f} s "
          f"(detection latency {r.detection_latency_s * 1e3:.0f} ms)")
    print(f"  recovery latency (MTTR):       {r.recovery_latency_s * 1e3:.0f} ms")
    print(f"  recovered: {r.recovered}")
    for name in sorted(r.receivers):
        print(f"  {name}: {r.decoded_before[name]} generations decoded before the crash, "
              f"{r.decoded_after[name]} after "
              f"({r.post_recovery_throughput_mbps[name]:.1f} Mbps post-recovery)")
    print(f"  undeliverable control signals: {r.undeliverable_signals}")

    print("\nflow level: crashing an in-use VM under the controller...")
    f = run_fleet_failover()
    print(f"  {f.failed_vm} ({f.failed_datacenter}) crashed at t={f.failed_at:.0f} s")
    print(f"  detected after {f.detection_latency_s:.0f} s of missed heartbeats")
    print(f"  fleet restored at t={f.restored_at:.0f} s -> MTTR {f.mttr_s:.0f} s "
          f"(detection + replacement VM boot)")
    print(f"  scaling log recorded {len(f.vnf_failure_events)} vnf_failure event(s)")
    if f.quarantined:
        print(f"  quarantined data centers: {', '.join(f.quarantined)}")


if __name__ == "__main__":
    main()
