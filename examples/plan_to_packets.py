#!/usr/bin/env python3
"""From the optimizer's plan to live packets, automatically.

The controller's output — a :class:`DeploymentPlan` with VNF counts and
conceptual flows — is all the information the data plane needs.
``build_data_plane`` instantiates it: coding VNFs (with dispatchers
where a data center runs several instances), roles chosen per the paper
("direct forwarding is sufficient" at non-merge relays), output shaping
at merge points, forwarding tables from f_m(e), and paced source apps.

Here we solve the butterfly twice — once with roomy VNFs, once with
tiny ones that force multi-instance data centers — and verify the
packet level delivers what the LP promised.

Run:  python examples/plan_to_packets.py     (~15 s)
"""

from repro.core import MulticastSession, build_data_plane
from repro.core.deployment import DataCenterSpec, DeploymentProblem
from repro.experiments.butterfly import butterfly_graph

RELAYS = ["O1", "C1", "T", "V2"]


def run_case(label: str, per_vnf_mbps: float) -> None:
    graph = butterfly_graph()
    problem = DeploymentProblem(
        graph,
        [DataCenterSpec(n, per_vnf_mbps, per_vnf_mbps, per_vnf_mbps) for n in RELAYS],
        alpha=0.1,
    )
    session = MulticastSession(source="V1", receivers=["O2", "C2"], max_delay_ms=250.0)
    plan = problem.solve([problem.build_demand(session)])
    live = build_data_plane(plan, graph, [session], rate_fraction=0.95)
    live.start()
    live.run(2.0)
    measured = live.session_throughput_mbps(session.session_id, start_s=0.5)

    fleet = ", ".join(f"{dc}x{n}" for dc, n in sorted(plan.vnf_counts.items()) if n)
    roles = {
        name: vnfs[0].roles[session.session_id].value for name, vnfs in sorted(live.vnfs.items())
    }
    print(f"== {label} (C(v) = {per_vnf_mbps:.0f} Mbps per VNF) ==")
    print(f"  plan: lambda = {plan.lambdas[session.session_id]:.1f} Mbps, fleet = {fleet}")
    print(f"  roles: {roles}")
    if live.dispatchers:
        print(f"  dispatchers at: {sorted(live.dispatchers)} "
              f"(generation-keyed spreading across instances)")
    print(f"  measured at the packet level: {measured:.1f} Mbps "
          f"({measured / (plan.lambdas[session.session_id] * 0.95):.0%} of the offered rate)\n")


def main() -> None:
    run_case("roomy VNFs: one instance per data center", 900.0)
    run_case("tiny VNFs: data centers need several instances", 40.0)


if __name__ == "__main__":
    main()
