#!/usr/bin/env python3
"""The paper's headline experiment: coded multicast on the butterfly.

Builds the Fig. 6 butterfly (source in Virginia, receivers in Oregon
and California, coding VNFs in four data centers), then runs the three
contenders of Fig. 7 and prints the comparison:

- NC: RLNC source + recoding VNFs (should approach the 70 Mbps
  Ford-Fulkerson bound),
- Non-NC: the best routing-only overlay (fractional tree packing,
  bounded by 52.5 Mbps),
- direct TCP over the long thin Internet paths.

Run:  python examples/butterfly_multicast.py          (~20 s)
"""

from repro.experiments.butterfly import (
    routing_only_capacity_mbps,
    run_butterfly_nc,
    run_butterfly_non_nc,
    run_direct_tcp,
    theoretical_capacity_mbps,
)


def main() -> None:
    print("building the butterfly and computing bounds...")
    nc_bound = theoretical_capacity_mbps()
    routing_bound = routing_only_capacity_mbps()
    print(f"  network-coding capacity (min-cut):    {nc_bound:.1f} Mbps")
    print(f"  routing-only optimum (tree packing):  {routing_bound:.1f} Mbps\n")

    print("running NC (RLNC source + recoding VNFs)...")
    nc = run_butterfly_nc(duration_s=2.0)
    print("running Non-NC (striped tree multicast)...")
    non_nc = run_butterfly_non_nc(duration_s=2.0, mode="striped")
    print("running direct TCP...\n")
    tcp = run_direct_tcp(duration_s=40.0)

    print(f"{'system':<12} {'session':>8} {'O2':>7} {'C2':>7}")
    print(f"{'NC':<12} {nc.session_throughput_mbps:>8.1f} "
          f"{nc.throughput_mbps['O2']:>7.1f} {nc.throughput_mbps['C2']:>7.1f}")
    print(f"{'Non-NC':<12} {non_nc.session_throughput_mbps:>8.1f} "
          f"{non_nc.throughput_mbps['O2']:>7.1f} {non_nc.throughput_mbps['C2']:>7.1f}")
    print(f"{'Direct TCP':<12} {tcp['session']:>8.1f} {tcp['O2']:>7.1f} {tcp['C2']:>7.1f}")

    gain = nc.session_throughput_mbps / non_nc.session_throughput_mbps
    print(f"\ncoding gain over routing-only: {gain:.2f}x "
          f"(theory: {nc_bound / routing_bound:.2f}x)")
    print(f"NC efficiency vs min-cut bound: {nc.session_throughput_mbps / nc_bound:.1%}")


if __name__ == "__main__":
    main()
