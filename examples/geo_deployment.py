#!/usr/bin/env python3
"""Geo-distributed deployment: the controller's view of the system.

Builds the six-data-center North-America world of §V-C, registers
multicast sessions, and shows the control plane at work:

1. the controller solves problem (2) and routes conceptual flows;
2. VMs launch through the (simulated) EC2/Linode APIs, coding functions
   start, forwarding tables are pushed;
3. a receiver joins mid-flight (Alg. 3) and a data center's bandwidth
   is cut (Alg. 1) — watch the fleet scale.

Run:  python examples/geo_deployment.py
"""

import numpy as np

from repro.core import MulticastSession, ScalingConfig, ScalingEngine
from repro.experiments.dynamic import (
    Endpoint,
    _attach_endpoint,
    build_six_dc_graph,
    generate_sessions,
    make_controller,
)


def fleet_line(controller) -> str:
    counts = controller.current_vnf_counts()
    return ", ".join(f"{dc}:{n}" for dc, n in sorted(counts.items()) if n)


def main() -> None:
    rng = np.random.default_rng(42)
    specs = generate_sessions(3, rng, max_delay_ms=150.0)
    graph = build_six_dc_graph(specs, rng)
    controller = make_controller(graph, alpha=20.0, seed=42)
    engine = ScalingEngine(controller, ScalingConfig(tau1_s=120.0))
    clock = controller.scheduler

    print("== registering three multicast sessions ==")
    sessions = []
    for source, receivers, lmax in specs:
        session = MulticastSession(
            source=source.name, receivers=[r.name for r in receivers], max_delay_ms=lmax
        )
        plan = engine.on_session_join(session)
        sessions.append(session)
        print(f"  session {session.session_id}: {source.name} -> {len(receivers)} receivers, "
              f"rate {plan.lambdas[session.session_id]:.0f} Mbps")
    print(f"  VNF deployment: {fleet_line(controller)}")
    print(f"  control signals sent: "
          f"{len(controller.bus.sent_of_kind('NcVnfStart'))} NC_VNF_START, "
          f"{len(controller.bus.sent_of_kind('NcForwardTab'))} NC_FORWARD_TAB")

    clock.run(until=120.0)  # let the VMs boot
    print(f"\n== t=2 min: fleet running, total throughput "
          f"{controller.achieved_total_throughput_mbps():.0f} Mbps ==")

    print("\n== a new receiver joins session 1 (Alg. 3) ==")
    newcomer = Endpoint(name="late-joiner", region="georgia")
    _attach_endpoint(controller.graph, newcomer, rng, (40.0, 120.0), outbound=False)
    engine.on_receiver_join(sessions[0].session_id, newcomer.name)
    print(f"  session {sessions[0].session_id} now serves "
          f"{len(controller.sessions[sessions[0].session_id].receivers)} receivers "
          f"at {controller.lambdas[sessions[0].session_id]:.0f} Mbps")
    print(f"  VNF deployment: {fleet_line(controller)}")

    print("\n== a data center's bandwidth cap is halved (Alg. 1) ==")
    target = next(dc for dc, n in controller.required_vnf_counts().items() if n > 0)
    dc = controller.datacenters[target]
    new_in, new_out = dc.inbound_mbps / 2, dc.outbound_mbps / 2
    print(f"  cutting {target}: {dc.inbound_mbps:.0f} -> {new_in:.0f} Mbps per VNF")
    # Feed measurements until the ρ/τ threshold machine fires.
    fired = False
    while not fired:
        fired = engine.on_bandwidth_sample(target, new_in, new_out)
        clock.run(until=clock.now + 60.0)
    clock.run(until=clock.now + 60.0)
    print(f"  Alg. 1 fired after the τ1 hold: deployment now {fleet_line(controller)}")
    print(f"  total throughput: {controller.achieved_total_throughput_mbps():.0f} Mbps")

    print("\n== sessions end; resources recycled after the τ grace ==")
    for session in sessions:
        engine.on_session_quit(session.session_id)
    clock.run(until=clock.now + 700.0)
    alive = sum(controller.current_vnf_counts().values())
    print(f"  usable VNFs remaining: {alive}")
    for event in engine.events:
        print(f"  [t={event.time / 60.0:5.1f} min] {event.kind}: "
              f"{ {k: v for k, v in event.detail.items() if k != 'detail'} }")


if __name__ == "__main__":
    main()
