"""Scenario presets and adaptive soak: wiring, determinism, contracts."""

import pytest

from repro.adapt.controller import AdaptState
from repro.adapt.soak import classify, run_adapt_session, run_adapt_soak, soak_summary
from repro.experiments.scenarios import (
    GEO_SATELLITE,
    IOT_RELAY_CHAIN,
    PRESETS,
    run_scenario,
    tcp_baseline_mbps,
)
from repro.faults import FaultEvent, FaultKind, FaultPlan

DURATION = 4.0


def _observables(result):
    return (
        result.goodput_mbps,
        result.decoded_generations,
        result.sent_generations,
        result.nacks_sent,
        result.nacks_suppressed,
        result.retunes_pushed,
        result.retunes_applied,
        result.final_extra,
        result.final_blocks,
        tuple((t, s.value) for t, s in result.transitions),
    )


class TestPresets:
    def test_registry_covers_both_profiles(self):
        assert set(PRESETS) == {"geo-satellite", "iot-relay-chain"}

    def test_geo_has_geostationary_delay(self):
        assert GEO_SATELLITE.one_way_delay_s == pytest.approx(0.25)
        assert GEO_SATELLITE.loss_correlation >= 0.5  # correlated fades

    def test_iot_chain_is_multi_hop(self):
        assert len(IOT_RELAY_CHAIN.relays) == 3
        assert len(IOT_RELAY_CHAIN.lossy_hops) == 4  # every hop lossy

    def test_per_hop_loss_composes_to_end_to_end(self):
        p = IOT_RELAY_CHAIN.per_hop_loss(0.3)
        assert 1 - (1 - p) ** len(IOT_RELAY_CHAIN.lossy_hops) == pytest.approx(0.3)
        assert GEO_SATELLITE.per_hop_loss(0.0) == 0.0
        with pytest.raises(ValueError):
            GEO_SATELLITE.per_hop_loss(1.5)


class TestRunScenario:
    def test_adaptive_raises_redundancy_under_loss(self):
        result = run_scenario(IOT_RELAY_CHAIN, "adaptive", 0.2, DURATION, seed=3)
        assert result.retunes_pushed > 0
        assert result.final_extra > 0
        assert result.retunes_applied > 0  # the relays crossed boundaries
        assert result.decoded_generations > 0

    def test_fixed_mode_never_retunes(self):
        result = run_scenario(IOT_RELAY_CHAIN, "fixed", 0.2, DURATION, seed=3)
        assert result.retunes_pushed == 0
        assert result.retunes_applied == 0
        assert result.final_extra == 1  # NC1 static

    def test_adaptive_beats_fixed_at_hostile_loss(self):
        adaptive = run_scenario(IOT_RELAY_CHAIN, "adaptive", 0.2, DURATION, seed=3)
        fixed = run_scenario(IOT_RELAY_CHAIN, "fixed", 0.2, DURATION, seed=3)
        assert adaptive.goodput_mbps > fixed.goodput_mbps

    def test_seeded_replay_is_bit_identical(self):
        a = run_scenario(GEO_SATELLITE, "adaptive", 0.15, DURATION, seed=11)
        b = run_scenario(GEO_SATELLITE, "adaptive", 0.15, DURATION, seed=11)
        assert _observables(a) == _observables(b)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            run_scenario(GEO_SATELLITE, "turbo", 0.0, 1.0)

    def test_tcp_baseline_collapses_under_loss(self):
        clean = tcp_baseline_mbps(GEO_SATELLITE, 0.0, DURATION)
        lossy = tcp_baseline_mbps(GEO_SATELLITE, 0.15, DURATION)
        assert lossy < clean / 2  # the 500 ms RTT makes loss brutal


class TestAdaptSoak:
    def test_session_outcome_is_typed(self):
        outcome = run_adapt_session(0, preset=IOT_RELAY_CHAIN, duration_s=DURATION)
        assert outcome.outcome in ("completed", "degraded-typed")
        assert outcome.fingerprint

    def test_reporter_kill_exercises_stall_fallback(self):
        # A scripted plan: kill the reporter for longer than the 2 s
        # report timeout, then bring it back.
        plan = FaultPlan(
            [
                FaultEvent(1.0, FaultKind.DAEMON_KILL, "reporter"),
                FaultEvent(4.5, FaultKind.DAEMON_RESTART, "reporter"),
            ]
        )
        result = run_scenario(
            GEO_SATELLITE, "adaptive", 0.15, duration_s=7.0, seed=5, plan=plan
        )
        states = [s for _, s in result.transitions]
        assert AdaptState.ADAPT_STALLED in states
        # Stall pushed the static baseline; the revived feed re-entered
        # TRACKING before the end-of-run teardown (STOPPED).
        assert states[-1] is AdaptState.STOPPED
        assert states[-2] is AdaptState.TRACKING
        assert result.stall_entries >= 1
        outcome = classify(result)
        assert outcome.typed
        assert outcome.outcome in ("completed", "degraded-typed")

    def test_soak_replay_and_summary(self):
        outcomes = run_adapt_soak(
            range(2), replay=True, preset=IOT_RELAY_CHAIN, duration_s=DURATION
        )
        summary = soak_summary(outcomes)
        assert summary["runs"] == 2
        assert summary["violations"] == []
        assert summary["completed"] + summary["degraded_typed"] == 2
        assert len({o["fingerprint"] for o in summary["outcomes"]}) == 2
