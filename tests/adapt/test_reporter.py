"""Reporter unit tests: EWMA, idle windows, crash/restart, epochs."""

import pytest

from repro.adapt import LinkReporter, LinkSample
from repro.core.signals import NcLinkReport, SignalBus


class Counters:
    """A scriptable measurement point."""

    def __init__(self):
        self.sample = LinkSample()

    def advance(self, packets=0, expected=0, generations=0, nacks=0, corrupt=0):
        s = self.sample
        self.sample = LinkSample(
            packets=s.packets + packets,
            expected=s.expected + expected,
            generations=s.generations + generations,
            nacks=s.nacks + nacks,
            corrupt=s.corrupt + corrupt,
        )

    def probe(self):
        return self.sample


@pytest.fixture
def rig(scheduler):
    bus = SignalBus(scheduler, latency_s=0.01)
    received: list = []
    bus.register("adapt", received.append)
    counters = Counters()
    reporter = LinkReporter("dst", 7, bus, scheduler, counters.probe, interval_s=0.5)
    return bus, counters, reporter, received


class TestReporting:
    def test_reports_window_deltas(self, rig, scheduler):
        bus, counters, reporter, received = rig
        counters.advance(packets=18, expected=20, generations=2, nacks=1)
        scheduler.run(until=0.6)
        (r,) = received
        assert isinstance(r, NcLinkReport)
        assert (r.packets, r.generations, r.nacks) == (18, 2, 1)
        assert r.loss_ewma == pytest.approx(0.3 * (1 - 18 / 20))
        assert r.session_id == 7 and r.reporter == "dst"

    def test_ewma_smooths_across_windows(self, rig, scheduler):
        bus, counters, reporter, received = rig
        counters.advance(packets=10, expected=20)  # 50% window loss
        scheduler.run(until=0.6)
        counters.advance(packets=20, expected=20)  # clean window
        scheduler.run(until=1.1)
        first, second = (r.loss_ewma for r in received)
        assert first == pytest.approx(0.15)
        assert second == pytest.approx(0.15 * 0.7)  # decays, not resets

    def test_idle_windows_still_report(self, rig, scheduler):
        bus, counters, reporter, received = rig
        scheduler.run(until=1.6)  # three windows, zero traffic
        assert len(received) == 3
        assert all(r.packets == 0 for r in received)
        # Silence must mean reporter failure, never a quiet link.

    def test_report_epochs_strictly_increase(self, rig, scheduler):
        bus, counters, reporter, received = rig
        scheduler.run(until=2.1)
        epochs = [r.report_epoch for r in received]
        assert epochs == sorted(set(epochs))
        assert epochs[0] >= 1


class TestCrashRestart:
    def test_kill_silences_restart_resumes(self, rig, scheduler):
        bus, counters, reporter, received = rig
        scheduler.run(until=0.6)
        reporter.kill()
        scheduler.run(until=2.1)
        assert len(received) == 1  # nothing during the outage
        reporter.restart()
        scheduler.run(until=2.6)
        assert len(received) == 2
        assert reporter.restarts == 1

    def test_restart_epochs_stay_monotone(self, rig, scheduler):
        bus, counters, reporter, received = rig
        scheduler.run(until=0.6)
        before = received[-1].report_epoch
        reporter.kill()
        scheduler.run(until=1.6)
        reporter.restart()
        scheduler.run(until=2.1)
        # The journaled epoch counter survives the crash: the first
        # post-restart report is strictly newer, so controller dedup
        # never permanently starves the restarted reporter.
        assert received[-1].report_epoch > before

    def test_restart_resets_loss_baseline(self, rig, scheduler):
        bus, counters, reporter, received = rig
        counters.advance(packets=0, expected=20)  # total loss window
        scheduler.run(until=0.6)
        assert reporter.loss_ewma > 0
        reporter.kill()
        counters.advance(packets=100, expected=100)  # unseen during outage
        reporter.restart()
        assert reporter.loss_ewma == 0.0
        scheduler.run(until=1.1)
        # The outage window is not retroactively reported: the restart
        # re-baselined, so the 100 unseen packets don't skew the rate.
        assert received[-1].packets == 0

    def test_restart_when_alive_is_a_noop(self, rig, scheduler):
        bus, counters, reporter, received = rig
        reporter.restart()
        assert reporter.restarts == 0

    def test_stop_cancels_the_timer(self, rig, scheduler):
        bus, counters, reporter, received = rig
        reporter.stop()
        scheduler.run(until=3.0)
        assert received == []


class TestValidation:
    def test_bad_interval_and_alpha_rejected(self, scheduler):
        bus = SignalBus(scheduler, latency_s=0.01)
        with pytest.raises(ValueError):
            LinkReporter("dst", 1, bus, scheduler, LinkSample, interval_s=0.0)
        with pytest.raises(ValueError):
            LinkReporter("dst", 1, bus, scheduler, LinkSample, ewma_alpha=0.0)
