"""Adaptive-redundancy loop tests (DESIGN.md §15)."""
