"""Controller unit tests: AIMD moves, dedup, starvation, replan reset."""

import dataclasses

import pytest

from repro.adapt import AdaptiveRedundancyController, AdaptPolicy, AdaptState
from repro.core.session import CodingConfig
from repro.core.signals import NcLinkReport, NcSettings, SignalBus
from repro.rlnc.redundancy import RedundancyPolicy

SESSION = 7
POLICY = AdaptPolicy(
    max_extra=4,
    clean_windows=2,
    clean_loss=0.02,
    hostile_loss=0.08,
    blocks_hostile=8,
    blocks_clean=16,
    report_timeout_s=1.0,
)


@pytest.fixture
def loop(scheduler):
    bus = SignalBus(scheduler, latency_s=0.01)
    settings: list = []
    bus.register("node1", lambda s: settings.append(s) if isinstance(s, NcSettings) else None)
    applied: list = []
    controller = AdaptiveRedundancyController(
        bus,
        scheduler,
        SESSION,
        CodingConfig(blocks_per_generation=16, redundancy=RedundancyPolicy(0)),
        daemon_targets=("node1",),
        apply_source=applied.append,
        policy=POLICY,
        fence=3,
    )
    return bus, controller, settings, applied


def report(epoch, loss, nacks=0, reporter="dst", session_id=SESSION):
    return NcLinkReport(
        target="adapt",
        reporter=reporter,
        session_id=session_id,
        report_epoch=epoch,
        loss_ewma=loss,
        packets=100,
        generations=5,
        nacks=nacks,
    )


def drive(bus, scheduler, *reports, gap_s=0.2):
    for r in reports:
        bus.send(r)
        scheduler.run(until=scheduler.now + gap_s)


class TestAimd:
    def test_loss_raises_extra_additively(self, loop, scheduler):
        bus, controller, settings, applied = loop
        drive(bus, scheduler, report(1, 0.10), report(2, 0.10))
        assert controller.config.redundancy.extra == 2  # +1 per report
        assert controller.retunes_pushed == 2
        assert [s.redundancy_extra for s in settings] == [1, 2]
        assert [c.redundancy.extra for c in applied] == [1, 2]

    def test_extra_clamped_at_ceiling(self, loop, scheduler):
        bus, controller, settings, applied = loop
        drive(bus, scheduler, *[report(i, 0.5) for i in range(1, 12)])
        assert controller.config.redundancy.extra == POLICY.max_extra
        # Once clamped and sizes settled, no further retunes are pushed.
        assert settings[-1].redundancy_extra == POLICY.max_extra
        assert controller.retunes_pushed < 11

    def test_clean_windows_halve_extra(self, loop, scheduler):
        bus, controller, settings, applied = loop
        drive(bus, scheduler, *[report(i, 0.30) for i in range(1, 5)])
        assert controller.config.redundancy.extra == 4
        # clean_windows=2 consecutive clean reports trigger one halving.
        drive(bus, scheduler, report(5, 0.0), report(6, 0.0))
        assert controller.config.redundancy.extra == 2
        drive(bus, scheduler, report(7, 0.0), report(8, 0.0))
        assert controller.config.redundancy.extra == 1

    def test_nacks_under_loss_count_as_pressure(self, loop, scheduler):
        bus, controller, settings, applied = loop
        # Modest loss that the current extra already covers numerically,
        # but receivers still NACKing: keep raising.
        drive(bus, scheduler, report(1, 0.04, nacks=3), report(2, 0.04, nacks=3))
        assert controller.config.redundancy.extra >= 2

    def test_generation_size_hysteresis(self, loop, scheduler):
        bus, controller, settings, applied = loop
        drive(bus, scheduler, report(1, 0.20))
        assert controller.config.blocks_per_generation == POLICY.blocks_hostile
        # Between the thresholds: size is kept (no thrash).
        drive(bus, scheduler, report(2, 0.05))
        assert controller.config.blocks_per_generation == POLICY.blocks_hostile
        drive(bus, scheduler, report(3, 0.0))
        assert controller.config.blocks_per_generation == POLICY.blocks_clean

    def test_worst_reporter_dominates(self, loop, scheduler):
        bus, controller, settings, applied = loop
        drive(bus, scheduler, report(1, 0.25, reporter="dst-a"))
        drive(bus, scheduler, report(1, 0.0, reporter="dst-b"))
        # The clean receiver does not dilute the hostile one's estimate.
        assert controller.loss_estimate == pytest.approx(0.25)


class TestDedup:
    def test_stale_epoch_dropped(self, loop, scheduler):
        bus, controller, settings, applied = loop
        drive(bus, scheduler, report(2, 0.10))
        accepted = controller.reports_accepted
        drive(bus, scheduler, report(2, 0.50), report(1, 0.50))
        assert controller.reports_accepted == accepted
        assert controller.reports_stale == 2
        assert controller.loss_estimate == pytest.approx(0.10)

    def test_epochs_tracked_per_reporter(self, loop, scheduler):
        bus, controller, settings, applied = loop
        drive(bus, scheduler, report(3, 0.1, reporter="dst-a"))
        drive(bus, scheduler, report(1, 0.2, reporter="dst-b"))  # own clock
        assert controller.reports_accepted == 2

    def test_other_sessions_ignored(self, loop, scheduler):
        bus, controller, settings, applied = loop
        drive(bus, scheduler, report(1, 0.4, session_id=SESSION + 1))
        assert controller.reports_accepted == 0
        assert controller.retunes_pushed == 0


class TestSettingsStamping:
    def test_retunes_carry_fresh_fence_and_epoch(self, loop, scheduler):
        bus, controller, settings, applied = loop
        drive(bus, scheduler, report(1, 0.10), report(2, 0.10))
        assert all(s.fence == 3 for s in settings)
        epochs = [s.epoch for s in settings]
        assert epochs == sorted(epochs) and len(set(epochs)) == len(epochs)
        assert all(s.session_ids == (SESSION,) for s in settings)
        assert all(not s.roles for s in settings)  # retune, not config


class TestStarvation:
    def test_silence_enters_adapt_stalled_and_restores_static(self, loop, scheduler):
        bus, controller, settings, applied = loop
        drive(bus, scheduler, report(1, 0.30), report(2, 0.30))
        hostile = controller.config
        assert hostile != controller.static_config
        # No reports for > report_timeout_s: typed fallback, not a hang.
        scheduler.run(until=scheduler.now + 3 * POLICY.report_timeout_s)
        assert controller.state is AdaptState.ADAPT_STALLED
        assert controller.stall_entries == 1
        assert controller.config == controller.static_config
        assert applied[-1] == controller.static_config  # source reverted too

    def test_fresh_report_reenters_tracking(self, loop, scheduler):
        bus, controller, settings, applied = loop
        drive(bus, scheduler, report(1, 0.30))
        scheduler.run(until=scheduler.now + 3 * POLICY.report_timeout_s)
        assert controller.state is AdaptState.ADAPT_STALLED
        drive(bus, scheduler, report(2, 0.30))
        assert controller.state is AdaptState.TRACKING
        states = [s for _, s in controller.transitions]
        assert states == [AdaptState.TRACKING, AdaptState.ADAPT_STALLED, AdaptState.TRACKING]

    def test_steady_reports_never_stall(self, loop, scheduler):
        bus, controller, settings, applied = loop
        for i in range(1, 10):
            drive(bus, scheduler, report(i, 0.05), gap_s=POLICY.report_timeout_s / 2)
        assert controller.stall_entries == 0
        assert controller.state is AdaptState.TRACKING


class TestReplan:
    def test_replan_resets_to_static_under_new_stamp(self, loop, scheduler):
        bus, controller, settings, applied = loop
        drive(bus, scheduler, report(1, 0.30), report(2, 0.30))
        controller.on_replan(fence=9, epoch=50)
        assert controller.config == controller.static_config
        assert controller.loss_estimate == 0.0
        assert controller.fence == 9 and controller.epoch >= 50
        # Reporter dedup must survive the replan: the reporters did not
        # restart, so their old epochs stay used-up.
        drive(bus, scheduler, report(2, 0.40))
        assert controller.reports_stale == 1
        drive(bus, scheduler, report(3, 0.40))
        assert settings[-1].fence == 9
        assert settings[-1].epoch > 50

    def test_replan_restarts_starvation_clock(self, loop, scheduler):
        bus, controller, settings, applied = loop
        drive(bus, scheduler, report(1, 0.30))
        scheduler.run(until=scheduler.now + 3 * POLICY.report_timeout_s)
        assert controller.state is AdaptState.ADAPT_STALLED
        controller.on_replan()
        assert controller.state is AdaptState.TRACKING
        # The fresh clock holds for a while before stalling again.
        scheduler.run(until=scheduler.now + POLICY.report_timeout_s / 2)
        assert controller.state is AdaptState.TRACKING


class TestStop:
    def test_stop_unregisters_and_ignores_late_reports(self, loop, scheduler):
        bus, controller, settings, applied = loop
        controller.stop()
        assert controller.state is AdaptState.STOPPED
        bus.send(report(1, 0.5))
        scheduler.run(until=scheduler.now + 2.0)
        assert controller.reports_accepted == 0
        assert controller.retunes_pushed == 0
        controller.stop()  # idempotent


class TestPolicyValidation:
    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            AdaptPolicy(min_extra=5, max_extra=2)
        with pytest.raises(ValueError):
            AdaptPolicy(clean_loss=0.5, hostile_loss=0.1)
        with pytest.raises(ValueError):
            AdaptPolicy(decrease_factor=1.0)
        with pytest.raises(ValueError):
            AdaptPolicy(report_timeout_s=0.0)


class TestStaticBaselineIsUntouched:
    def test_static_config_object_never_mutates(self, loop, scheduler):
        bus, controller, settings, applied = loop
        baseline = dataclasses.replace(controller.static_config)
        drive(bus, scheduler, *[report(i, 0.4) for i in range(1, 8)])
        assert controller.static_config == baseline
