"""OS3E topology: structure, latency weights, and simulator export."""

from __future__ import annotations

import math

import networkx as nx
import pytest

from repro.net.topology import (
    OS3E_SITES,
    OS3E_SPANS,
    great_circle_km,
    os3e_graph,
    os3e_latency_ms,
    os3e_span_delay_ms,
    os3e_topology,
)


class TestOs3eStructure:
    def test_node_count(self):
        assert len(OS3E_SITES) == 34

    def test_span_count(self):
        assert len(OS3E_SPANS) == 42

    def test_spans_reference_known_sites(self):
        for a, b in OS3E_SPANS:
            assert a in OS3E_SITES
            assert b in OS3E_SITES
            assert a != b

    def test_no_duplicate_spans(self):
        keys = {frozenset(span) for span in OS3E_SPANS}
        assert len(keys) == len(OS3E_SPANS)

    def test_graph_is_duplex(self):
        g = os3e_graph()
        assert g.number_of_nodes() == 34
        assert g.number_of_edges() == 84
        for a, b in OS3E_SPANS:
            assert g.has_edge(a, b)
            assert g.has_edge(b, a)

    def test_graph_connected(self):
        g = os3e_graph()
        assert nx.is_strongly_connected(g)

    def test_every_site_has_a_span(self):
        touched = {c for span in OS3E_SPANS for c in span}
        assert touched == set(OS3E_SITES)


class TestOs3eLatencies:
    def test_great_circle_known_distance(self):
        # NYC <-> LA is ~3940 km great-circle.
        km = great_circle_km(OS3E_SITES["New York"], OS3E_SITES["Los Angeles"])
        assert 3800 < km < 4100

    def test_span_delays_symmetric_and_positive(self):
        g = os3e_graph()
        for a, b in OS3E_SPANS:
            d_ab = g.edges[a, b]["delay_ms"]
            d_ba = g.edges[b, a]["delay_ms"]
            assert d_ab == d_ba
            assert d_ab > 0

    def test_span_delays_plausible(self):
        # No single OS3E span is longer than ~2500 km (=12.5 ms at
        # fiber speed); the shortest (Philly-NYC class) is > 0.2 ms.
        for a, b in OS3E_SPANS:
            delay = os3e_span_delay_ms(a, b)
            assert 0.2 < delay < 13.0, (a, b, delay)

    def test_coast_to_coast_latency(self):
        lat = os3e_latency_ms()
        # Seattle -> Miami rides many hops; one-way propagation should
        # land in the tens of milliseconds, well under a geo satellite.
        d = lat["Seattle"]["Miami"]
        assert 20.0 < d < 60.0

    def test_latency_matrix_symmetric_zero_diagonal(self):
        lat = os3e_latency_ms()
        cities = list(OS3E_SITES)
        for c in cities:
            assert lat[c][c] == 0
        for a, b in [("Boston", "Denver"), ("Miami", "Vancouver"), ("Chicago", "Houston")]:
            assert math.isclose(lat[a][b], lat[b][a], rel_tol=1e-12)

    def test_triangle_inequality_on_shortest_paths(self):
        lat = os3e_latency_ms()
        a, b, c = "Chicago", "Denver", "Houston"
        assert lat[a][c] <= lat[a][b] + lat[b][c] + 1e-9


class TestOs3eSimulatorExport:
    def test_topology_builds_duplex_links(self):
        topo = os3e_topology(capacity_mbps=1000.0)
        assert len(topo.nodes) == 34
        assert len(topo.links) == 84
        fwd = topo.link("Vancouver", "Seattle")
        rev = topo.link("Seattle", "Vancouver")
        assert fwd.capacity_bps == 1000.0 * 1e6
        assert fwd.delay_s == rev.delay_s

    def test_graph_view_matches_standalone_graph(self):
        topo = os3e_topology()
        view = topo.graph()
        ref = os3e_graph()
        assert set(view.nodes) == set(ref.nodes)
        assert set(view.edges) == set(ref.edges)
        for a, b in OS3E_SPANS:
            assert math.isclose(view.edges[a, b]["delay_ms"], ref.edges[a, b]["delay_ms"], rel_tol=1e-9)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            os3e_graph(capacity_mbps=0.0)
