"""SurplusIndex unit tests: O(plan) bookkeeping vs. from-scratch truth."""

from __future__ import annotations

import pytest

from repro.fleet.capacity import FleetDataCenter, FleetPlan, SurplusIndex
from repro.routing.paths import Path


def _dc(name: str, cap: float = 100.0, quota: int = 4) -> FleetDataCenter:
    return FleetDataCenter(
        name=name, inbound_mbps=cap, outbound_mbps=cap, coding_mbps=cap * 0.9, max_vnfs=quota
    )


def _plan(sid: int, rate: float, nodes: tuple[str, ...]) -> FleetPlan:
    path = Path(nodes=nodes, delay_ms=10.0)
    return FleetPlan(
        session_id=sid,
        lambda_mbps=rate,
        path_rates=((nodes[-1], path, rate),),
        edge_rates=tuple((edge, rate) for edge in path.edges),
    )


@pytest.fixture
def index() -> SurplusIndex:
    dcs = {"A": _dc("A"), "B": _dc("B")}
    caps = {("A", "B"): 500.0, ("B", "A"): 500.0}
    return SurplusIndex(caps, dcs)


class TestSurplusIndex:
    def test_residual_starts_at_capacity(self, index: SurplusIndex):
        assert index.residual(("A", "B")) == 500.0

    def test_unknown_edge_raises(self, index: SurplusIndex):
        with pytest.raises(KeyError):
            index.residual(("A", "Z"))

    def test_apply_charges_shared_edges_and_dcs(self, index: SurplusIndex):
        index.apply(_plan(1, 40.0, ("s", "A", "B", "r")))
        assert index.residual(("A", "B")) == pytest.approx(460.0)
        assert index.dc_in["A"] == pytest.approx(40.0)   # s->A
        assert index.dc_out["A"] == pytest.approx(40.0)  # A->B
        assert index.dc_in["B"] == pytest.approx(40.0)
        assert index.dc_out["B"] == pytest.approx(40.0)  # B->r

    def test_release_round_trips(self, index: SurplusIndex):
        plan = _plan(1, 40.0, ("s", "A", "B", "r"))
        index.apply(plan)
        index.release(plan)
        assert index.residual(("A", "B")) == pytest.approx(500.0)
        assert index.dc_in["A"] == pytest.approx(0.0)
        assert index.dc_out["B"] == pytest.approx(0.0)

    def test_required_vnfs_uses_effective_in_cap(self, index: SurplusIndex):
        # in_cap = min(100, 90) = 90; 95 Mbps inbound needs 2 VNFs.
        index.apply(_plan(1, 95.0, ("s", "A", "r")))
        assert index.required_vnfs("A") == 2

    def test_required_vnfs_ceil_guard(self, index: SurplusIndex):
        # Exactly 1 VNF's worth of load must not round to 2 on float noise.
        index.apply(_plan(1, 30.0, ("s", "A", "r")))
        index.apply(_plan(2, 30.0, ("t", "A", "q")))
        index.apply(_plan(3, 30.0, ("u", "A", "w")))
        assert index.dc_in["A"] == pytest.approx(90.0)
        assert index.required_vnfs("A") == 1

    def test_slack_reflects_live_vnfs(self, index: SurplusIndex):
        index.apply(_plan(1, 50.0, ("s", "A", "r")))
        index.vnfs["A"] = 1
        assert index.slack_in("A") == pytest.approx(90.0 - 50.0)
        assert index.slack_out("A") == pytest.approx(100.0 - 50.0)

    def test_vnf_headroom_tracks_quota(self, index: SurplusIndex):
        assert index.vnf_headroom("A") == 4
        index.vnfs["A"] = 3
        assert index.vnf_headroom("A") == 1

    def test_rebuild_matches_incremental(self, index: SurplusIndex):
        plans = [
            _plan(1, 40.0, ("s", "A", "B", "r")),
            _plan(2, 25.0, ("t", "B", "q")),
            _plan(3, 10.0, ("u", "A", "w")),
        ]
        for plan in plans:
            index.apply(plan)
        index.vnfs = {dc: index.required_vnfs(dc) for dc in ("A", "B")}
        index.vnfs = {dc: n for dc, n in index.vnfs.items() if n > 0}
        fresh = SurplusIndex(index.edge_caps, index.datacenters)
        fresh.rebuild(plans)
        assert fresh.vnfs == index.vnfs
        for edge in index.edge_caps:
            assert fresh.residual(edge) == pytest.approx(index.residual(edge))
        for dc in ("A", "B"):
            assert fresh.dc_in.get(dc, 0.0) == pytest.approx(index.dc_in.get(dc, 0.0))
            assert fresh.dc_out.get(dc, 0.0) == pytest.approx(index.dc_out.get(dc, 0.0))

    def test_canonical_is_deterministic(self, index: SurplusIndex):
        plan = _plan(1, 40.0, ("s", "A", "B", "r"))
        index.apply(plan)
        snap = index.canonical()
        assert index.canonical() == snap
        index.release(plan)
        assert index.canonical() != snap


class TestFleetDataCenter:
    def test_rejects_nonpositive_caps(self):
        with pytest.raises(ValueError):
            FleetDataCenter(name="X", inbound_mbps=0.0, outbound_mbps=1.0, coding_mbps=1.0)

    def test_rejects_zero_quota(self):
        with pytest.raises(ValueError):
            FleetDataCenter(
                name="X", inbound_mbps=1.0, outbound_mbps=1.0, coding_mbps=1.0, max_vnfs=0
            )

    def test_in_cap_is_min_of_inbound_and_coding(self):
        dc = _dc("A", cap=100.0)
        assert dc.in_cap_mbps == pytest.approx(90.0)
