"""FleetManager behaviour: verdicts, solve counts, epochs, signals."""

from __future__ import annotations

import pytest

from repro.core.signals import SignalBus
from repro.fleet import AdmissionStatus, FleetManager, SessionSpec, fleet_of
from repro.net.events import EventScheduler

DC_CITIES = ["Seattle", "Denver", "Chicago", "Houston", "New York"]


def make_manager(**kwargs) -> FleetManager:
    dcs = fleet_of(
        DC_CITIES,
        inbound_mbps=kwargs.pop("inbound_mbps", 400.0),
        outbound_mbps=kwargs.pop("outbound_mbps", 400.0),
        coding_mbps=kwargs.pop("coding_mbps", 360.0),
        max_vnfs=kwargs.pop("max_vnfs", 8),
    )
    return FleetManager(dcs, **kwargs)


def spec(sid: int, src: str = "Portland", recvs=("Boston",), rate: float = 10.0, delay: float = 100.0) -> SessionSpec:
    return SessionSpec(
        session_id=sid, source_city=src, receiver_cities=tuple(recvs), rate_mbps=rate, max_delay_ms=delay
    )


class TestAdmission:
    def test_admit_carries_full_rate(self):
        m = make_manager()
        v = m.admit(spec(1))
        assert v.status is AdmissionStatus.ADMITTED
        assert v.lambda_mbps == pytest.approx(10.0)
        assert v.lp_solves == 1

    def test_admission_is_one_lp_solve(self):
        m = make_manager()
        m.admit(spec(1))
        before = m.lp_solves
        m.admit(spec(2, src="Dallas", recvs=("Atlanta",)))
        assert m.lp_solves == before + 1

    def test_infeasible_delay_is_typed_and_free(self):
        m = make_manager()
        v = m.admit(spec(1, src="Seattle", recvs=("Miami",), delay=5.0))
        assert v.status is AdmissionStatus.REJECTED_INFEASIBLE
        assert v.lp_solves == 0
        assert m.lp_solves == 0
        assert m.active_sessions == 0

    def test_capacity_exhaustion_is_typed(self):
        m = make_manager(max_vnfs=1, inbound_mbps=30.0, outbound_mbps=30.0, coding_mbps=27.0)
        verdicts = [
            m.admit(spec(i, src="Portland", recvs=("Boston",), rate=20.0)) for i in range(1, 6)
        ]
        statuses = {v.status for v in verdicts}
        assert AdmissionStatus.ADMITTED in statuses
        assert AdmissionStatus.REJECTED_CAPACITY in statuses
        rejected = [v for v in verdicts if v.status is AdmissionStatus.REJECTED_CAPACITY]
        assert all(v.lambda_mbps < v.requested_mbps for v in rejected)
        assert all("Mbps" in v.reason for v in rejected)

    def test_duplicate_admit_raises(self):
        m = make_manager()
        m.admit(spec(1))
        with pytest.raises(ValueError):
            m.admit(spec(1))

    def test_rejected_session_leaves_no_state(self):
        m = make_manager()
        snap = m.index.canonical()
        m.admit(spec(1, src="Seattle", recvs=("Miami",), delay=5.0))
        assert m.index.canonical() == snap
        assert not m.plans and not m.sessions


class TestDeparture:
    def test_depart_costs_zero_lp_solves(self):
        m = make_manager()
        m.admit(spec(1))
        before = m.lp_solves
        released = m.depart(1)
        assert released is not None
        assert m.lp_solves == before
        assert m.active_sessions == 0

    def test_depart_retires_surplus_vnfs(self):
        m = make_manager()
        m.admit(spec(1, rate=50.0))
        assert m.index.total_vnfs > 0
        m.depart(1)
        assert m.index.total_vnfs == 0

    def test_depart_unknown_session_is_noop(self):
        m = make_manager()
        assert m.depart(42) is None

    def test_depart_restores_residuals(self):
        m = make_manager()
        snap = m.index.canonical()
        m.admit(spec(1))
        m.depart(1)
        assert m.index.canonical() == snap


class TestReplan:
    def test_replan_keeps_rate(self):
        m = make_manager()
        m.admit(spec(1))
        v = m.replan_session(1)
        assert v.status is AdmissionStatus.ADMITTED
        assert v.lambda_mbps == pytest.approx(10.0)

    def test_replan_unknown_raises(self):
        m = make_manager()
        with pytest.raises(KeyError):
            m.replan_session(7)

    def test_repeated_replans_warm_start(self):
        m = make_manager()
        m.admit(spec(1))
        m.replan_session(1)
        hits_before = m.warm_hits
        m.replan_session(1)
        assert m.warm_hits > hits_before


class TestEpochsAndSignals:
    def test_epochs_are_monotone(self):
        m = make_manager()
        epochs = []
        for i in range(1, 4):
            epochs.append(m.admit(spec(i, src="Dallas", recvs=("Atlanta",))).epoch)
        m.depart(2)
        epochs.append(m.config_epoch)
        assert epochs == sorted(epochs)
        assert len(set(epochs)) == len(epochs)

    def test_config_signals_carry_current_epoch(self):
        scheduler = EventScheduler()
        bus = SignalBus(scheduler)
        m = make_manager(bus=bus)
        v = m.admit(spec(1))
        tabs = bus.sent_of_kind("NcForwardTab")
        settings = bus.sent_of_kind("NcSettings")
        assert tabs and settings
        assert all(r.signal.epoch == v.epoch for r in tabs)
        assert all(r.signal.epoch == v.epoch for r in settings)
        assert bus.sent_of_kind("NcStart")

    def test_vnf_lifecycle_signals(self):
        scheduler = EventScheduler()
        bus = SignalBus(scheduler)
        m = make_manager(bus=bus)
        v = m.admit(spec(1, rate=50.0))
        starts = bus.sent_of_kind("NcVnfStart")
        assert sum(r.signal.count for r in starts) == v.vnfs_launched > 0
        m.depart(1)
        ends = bus.sent_of_kind("NcVnfEnd")
        assert len(ends) == v.vnfs_launched


class TestOverlayGeometry:
    def test_attachments_are_nearest(self):
        m = make_manager()
        near = m.attachments("Portland")
        assert near[0] == "Seattle"
        assert len(near) == 2

    def test_attachments_unknown_city(self):
        m = make_manager()
        with pytest.raises(KeyError):
            m.attachments("Gotham")

    def test_candidate_paths_respect_delay_bound(self):
        m = make_manager()
        tight = spec(1, src="Seattle", recvs=("Boston",), delay=18.0)
        loose = spec(2, src="Seattle", recvs=("Boston",), delay=100.0)
        tight_paths = m._candidate_paths(tight)
        loose_paths = m._candidate_paths(loose)
        assert all(p.delay_ms <= 18.0 for paths in tight_paths.values() for p in paths)
        assert sum(map(len, loose_paths.values())) >= sum(map(len, tight_paths.values()))

    def test_forwarding_tables_cover_used_dcs_only(self):
        m = make_manager()
        m.admit(spec(1))
        tables = m.forwarding_tables()
        used = {dc for dc, text in tables.items() if text}
        plan = m.plans[1]
        assert used == set(plan.datacenters(frozenset(DC_CITIES)))


class TestWholeFleetResolve:
    def test_matches_incremental_throughput(self):
        m = make_manager()
        for i, (src, recv) in enumerate(
            [("Portland", "Boston"), ("Dallas", "Atlanta"), ("Sunnyvale", "Miami")], start=1
        ):
            assert m.admit(spec(i, src=src, recvs=(recv,))).admitted
        plan = m.whole_fleet_resolve()
        assert sum(plan.lambdas.values()) == pytest.approx(m.total_throughput_mbps)
        # The big LP re-derives VNF needs; totals must agree with the index.
        assert sum(plan.vnf_counts.values()) == m.index.total_vnfs
