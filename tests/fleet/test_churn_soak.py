"""Fleet churn soak: 30 seeded traces, replay-fingerprinted.

The control-plane acceptance contract, mirroring the chaos soak in
``tests/faults/test_chaos_soak.py``: every join ends in a typed
verdict, every trace drains the fleet back to empty, and replaying a
seed reproduces a bit-identical SHA-256 fingerprint.  A single
nondeterministic observable anywhere in the admit→plan→deploy path
fails this file.
"""

from __future__ import annotations

import pytest

from repro.fleet import COLD, run_churn_soak, run_fleet_soak, soak_summary
from repro.fleet.soak import COMPLETE, INCOMPLETE, TYPED_REJECTIONS

SOAK_SEEDS = 30


@pytest.fixture(scope="module")
def soak_outcomes():
    # replay=True runs every seed twice and raises on any fingerprint
    # divergence inside the harness — determinism is checked for all
    # 30 seeds, not a sample.
    return run_churn_soak(SOAK_SEEDS, replay=True)


class TestSoakContract:
    def test_thirty_seeds_complete_or_typed(self, soak_outcomes):
        assert len(soak_outcomes) == SOAK_SEEDS
        for outcome in soak_outcomes:
            assert outcome.outcome in (COMPLETE, TYPED_REJECTIONS), (
                f"seed {outcome.seed}: {outcome.outcome}"
            )

    def test_every_join_gets_a_typed_verdict(self, soak_outcomes):
        for outcome in soak_outcomes:
            joins = outcome.admitted + outcome.rejected_capacity + outcome.rejected_infeasible
            assert joins + outcome.departed == outcome.events

    def test_fleet_drains_to_empty(self, soak_outcomes):
        for outcome in soak_outcomes:
            assert outcome.final_sessions == 0
            assert outcome.final_vnfs == 0

    def test_sweep_actually_exercises_contention(self, soak_outcomes):
        # A soak where every join sails through proves nothing about
        # the rejection paths; both typed-rejection kinds must fire
        # somewhere in the sweep, and sessions must overlap.
        summary = soak_summary(soak_outcomes)
        assert summary["admitted"] > 100
        assert summary["rejected_capacity"] > 0
        assert summary["rejected_infeasible"] > 0
        assert summary["incomplete_untyped"] == 0
        assert summary["peak_sessions"] >= 5

    def test_warm_starts_fire_during_the_soak(self, soak_outcomes):
        summary = soak_summary(soak_outcomes)
        assert summary["lp_solves"] > 0


class TestSoakDeterminism:
    def test_fingerprint_is_stable_across_reruns(self):
        first = run_fleet_soak(11)
        second = run_fleet_soak(11)
        assert first.fingerprint == second.fingerprint
        assert first == second

    def test_fingerprint_distinguishes_seeds(self):
        assert run_fleet_soak(3).fingerprint != run_fleet_soak(4).fingerprint

    def test_cold_mode_reaches_identical_fingerprints(self):
        # The cold whole-rebuild mode is the oracle: same trace, same
        # verdicts, same final state — so the replay fingerprint (which
        # hashes verdicts, index state, and epoch, but not solver
        # internals) must match the incremental one bit for bit.
        for seed in (0, 7, 19):
            assert run_fleet_soak(seed).fingerprint == run_fleet_soak(seed, mode=COLD).fingerprint

    def test_incomplete_is_never_silently_dropped(self):
        # The INCOMPLETE tag is load-bearing for the CI gate; make sure
        # the constant stays aligned with what soak_summary counts.
        assert INCOMPLETE == "incomplete-untyped"
