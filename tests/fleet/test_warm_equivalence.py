"""Property battery: warm incremental replanning ≡ cold whole-rebuild.

Hypothesis generates arbitrary join/leave programs over the OS3E
overlay and drives two managers — one incremental (warm-started delta
solves against the live surplus index), one cold (index rebuilt from
scratch before every event, no basis reuse).  The modes must be
observationally identical: same verdict sequence, same achieved rates,
same deployed forwarding tables, same VNF counts.  When a property
fails, shrinking reduces the program to the minimal event sequence
that exposes the divergence.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.fleet import COLD, INCREMENTAL, FleetManager, SessionSpec, fleet_of
from repro.fleet.capacity import SurplusIndex

# A spread of PoPs with genuinely different geometry: coastal pairs
# stress the delay bound, the interior ones share attachment DCs.
CITIES = (
    "Seattle",
    "Sunnyvale",
    "Denver",
    "Chicago",
    "Houston",
    "Atlanta",
    "New York",
)
DC_CITIES = ("Seattle", "Denver", "Chicago", "Houston", "New York")
RATES = (5.0, 10.0, 20.0)
# 16 ms is infeasible cross-country; 80 ms admits everything — the mix
# exercises both the infeasible-typed path and real routing.
DELAYS = (16.0, 80.0)

Program = list[tuple[str, SessionSpec | int]]


def _manager(mode: str) -> FleetManager:
    # Tight quotas so capacity rejections are reachable within a short
    # generated program, not just at soak scale.
    dcs = fleet_of(
        DC_CITIES, inbound_mbps=60.0, outbound_mbps=60.0, coding_mbps=54.0, max_vnfs=2
    )
    return FleetManager(dcs, mode=mode)


@st.composite
def churn_programs(draw: st.DrawFn) -> Program:
    """A shrinkable join/leave program: leaves only target live ids."""
    n_ops = draw(st.integers(min_value=1, max_value=10))
    ops: Program = []
    live: list[int] = []
    sid = 0
    for _ in range(n_ops):
        if live and draw(st.booleans()):
            victim = live.pop(draw(st.integers(0, len(live) - 1)))
            ops.append(("leave", victim))
            continue
        sid += 1
        source = draw(st.sampled_from(CITIES))
        receivers = tuple(
            draw(
                st.lists(
                    st.sampled_from(CITIES), min_size=1, max_size=2, unique=True
                )
            )
        )
        spec = SessionSpec(
            session_id=sid,
            source_city=source,
            receiver_cities=receivers,
            rate_mbps=draw(st.sampled_from(RATES)),
            max_delay_ms=draw(st.sampled_from(DELAYS)),
        )
        ops.append(("join", spec))
        live.append(sid)
    return ops


def _drive(manager: FleetManager, program: Program) -> list[tuple]:
    observed: list[tuple] = []
    for kind, payload in program:
        if kind == "join":
            assert isinstance(payload, SessionSpec)
            verdict = manager.admit(payload)
            observed.append(("join", payload.session_id, verdict.status, verdict.lambda_mbps))
        else:
            released = manager.depart(int(payload))  # type: ignore[arg-type]
            observed.append(("leave", payload, released is not None))
    return observed


class TestWarmEqualsCold:
    @settings(max_examples=30, deadline=None)
    @given(program=churn_programs())
    def test_verdicts_and_rates_match(self, program: Program):
        warm = _drive(_manager(INCREMENTAL), program)
        cold = _drive(_manager(COLD), program)
        assert len(warm) == len(cold)
        for w, c in zip(warm, cold):
            assert w[:3] == c[:3], f"event diverged: {w} vs {c}"
            if w[0] == "join":
                assert w[3] == pytest.approx(c[3], abs=1e-6), (
                    f"session {w[1]}: λ {w[3]} (warm) vs {c[3]} (cold)"
                )

    @settings(max_examples=30, deadline=None)
    @given(program=churn_programs())
    def test_deployed_state_matches(self, program: Program):
        warm_mgr = _manager(INCREMENTAL)
        cold_mgr = _manager(COLD)
        _drive(warm_mgr, program)
        _drive(cold_mgr, program)
        # The final deployed artifacts — not just objectives — must be
        # identical: tables drive the data plane, vnfs drive the bill.
        assert warm_mgr.forwarding_tables() == cold_mgr.forwarding_tables()
        assert warm_mgr.index.vnfs == cold_mgr.index.vnfs
        assert warm_mgr.index.canonical() == cold_mgr.index.canonical()
        assert warm_mgr.config_epoch == cold_mgr.config_epoch

    @settings(max_examples=30, deadline=None)
    @given(program=churn_programs())
    def test_index_matches_fresh_rebuild(self, program: Program):
        # The O(plan) apply/release bookkeeping must never drift from
        # the from-scratch truth, no matter the interleaving.
        manager = _drive_and_return(_manager(INCREMENTAL), program)
        fresh = SurplusIndex(manager.index.edge_caps, manager.index.datacenters)
        fresh.rebuild(list(manager.plans.values()))
        assert fresh.canonical() == manager.index.canonical()

    @settings(max_examples=30, deadline=None)
    @given(program=churn_programs())
    def test_replans_preserve_the_fleet(self, program: Program):
        # Replanning every live session after an arbitrary program is a
        # no-op on observables: same rates, same index state as a cold
        # manager that saw the same program then replanned too.
        warm_mgr = _manager(INCREMENTAL)
        cold_mgr = _manager(COLD)
        _drive(warm_mgr, program)
        _drive(cold_mgr, program)
        for sid in sorted(warm_mgr.sessions):
            vw = warm_mgr.replan_session(sid)
            vc = cold_mgr.replan_session(sid)
            assert vw.status is vc.status
            assert vw.lambda_mbps == pytest.approx(vc.lambda_mbps, abs=1e-6)
        assert warm_mgr.index.canonical() == cold_mgr.index.canonical()


def _drive_and_return(manager: FleetManager, program: Program) -> FleetManager:
    _drive(manager, program)
    return manager
