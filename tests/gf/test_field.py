"""Unit tests for GF(2^w) element arithmetic."""

import numpy as np
import pytest

from repro.gf import GF16, GF256, GF65536, GaloisField


class TestConstruction:
    def test_supported_sizes(self):
        assert GF16.order == 16
        assert GF256.order == 256
        assert GF65536.order == 65536

    def test_unsupported_size_rejected(self):
        with pytest.raises(ValueError):
            GaloisField(7)

    def test_dtype_matches_width(self):
        assert GF256.dtype == np.uint8
        assert GF65536.dtype == np.uint16

    def test_equality_and_hash(self):
        assert GF256 == GaloisField(8)
        assert GF256 != GF16
        assert hash(GF256) == hash(GaloisField(8))


class TestAddition:
    def test_add_is_xor(self, rng):
        a = GF256.random_elements(rng, 50)
        b = GF256.random_elements(rng, 50)
        assert np.array_equal(GF256.add(a, b), a ^ b)

    def test_add_self_is_zero(self, rng):
        a = GF256.random_elements(rng, 50)
        assert np.all(GF256.add(a, a) == 0)

    def test_sub_equals_add(self, rng):
        a = GF256.random_elements(rng, 10)
        b = GF256.random_elements(rng, 10)
        assert np.array_equal(GF256.sub(a, b), GF256.add(a, b))


class TestMultiplication:
    def test_one_is_identity(self, rng):
        a = GF256.random_elements(rng, 100)
        assert np.array_equal(GF256.mul(a, 1), a)

    def test_zero_annihilates(self, rng):
        a = GF256.random_elements(rng, 100)
        assert np.all(GF256.mul(a, 0) == 0)
        assert np.all(GF256.mul(0, a) == 0)

    def test_commutative(self, rng):
        a = GF256.random_elements(rng, 100)
        b = GF256.random_elements(rng, 100)
        assert np.array_equal(GF256.mul(a, b), GF256.mul(b, a))

    def test_known_aes_products(self):
        # GF(2^8) with 0x11D: 2 * 128 = 0x11D ^ 0x100 = 0x1D... verify via
        # the definition: x * x^7 = x^8 = poly - x^8 = 0x1D.
        assert int(GF256.mul(2, 128)) == 0x1D

    def test_distributive(self, rng):
        a = GF256.random_elements(rng, 50)
        b = GF256.random_elements(rng, 50)
        c = GF256.random_elements(rng, 50)
        left = GF256.mul(a, GF256.add(b, c))
        right = GF256.add(GF256.mul(a, b), GF256.mul(a, c))
        assert np.array_equal(left, right)

    def test_associative(self, rng):
        a = GF256.random_elements(rng, 50)
        b = GF256.random_elements(rng, 50)
        c = GF256.random_elements(rng, 50)
        assert np.array_equal(GF256.mul(GF256.mul(a, b), c), GF256.mul(a, GF256.mul(b, c)))


class TestDivisionInverse:
    def test_inverse_property(self, rng):
        a = GF256.random_nonzero(rng, 200)
        assert np.all(GF256.mul(a, GF256.inv(a)) == 1)

    def test_every_nonzero_invertible(self):
        for field in (GF16, GF256):
            elements = np.arange(1, field.order, dtype=field.dtype)
            assert np.all(field.mul(elements, field.inv(elements)) == 1)

    def test_div_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            GF256.div(5, 0)

    def test_inv_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            GF256.inv(0)

    def test_div_roundtrip(self, rng):
        a = GF256.random_elements(rng, 100)
        b = GF256.random_nonzero(rng, 100)
        assert np.array_equal(GF256.mul(GF256.div(a, b), b), a)


class TestPow:
    def test_pow_zero_is_one(self, rng):
        a = GF256.random_elements(rng, 10)
        assert np.all(GF256.pow(a, 0) == 1)

    def test_pow_matches_repeated_mul(self, rng):
        a = GF256.random_elements(rng, 20)
        acc = np.ones_like(a)
        for n in range(1, 6):
            acc = GF256.mul(acc, a)
            assert np.array_equal(GF256.pow(a, n), acc)

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            GF256.pow(3, -1)

    def test_fermat(self, rng):
        # a^(q-1) = 1 for nonzero a.
        a = GF256.random_nonzero(rng, 50)
        assert np.all(GF256.pow(a, 255) == 1)


class TestBulkKernels:
    def test_scale_matches_mul(self, rng):
        vec = GF256.random_elements(rng, 64)
        for coeff in [0, 1, 7, 255]:
            assert np.array_equal(GF256.scale(coeff, vec), GF256.mul(coeff, vec))

    def test_addmul(self, rng):
        acc = GF256.random_elements(rng, 64)
        vec = GF256.random_elements(rng, 64)
        out = GF256.addmul(acc, 3, vec)
        assert np.array_equal(out, GF256.add(acc, GF256.mul(3, vec)))

    def test_linear_combination_single_row(self, rng):
        block = GF256.random_elements(rng, 32)
        out = GF256.linear_combination(np.array([5], dtype=np.uint8), block[None, :])
        assert np.array_equal(out, GF256.mul(5, block))

    def test_linear_combination_is_linear(self, rng):
        blocks = GF256.random_elements(rng, (4, 32))
        c1 = GF256.random_elements(rng, 4)
        c2 = GF256.random_elements(rng, 4)
        lhs = GF256.linear_combination(GF256.add(c1, c2), blocks)
        rhs = GF256.add(GF256.linear_combination(c1, blocks), GF256.linear_combination(c2, blocks))
        assert np.array_equal(lhs, rhs)

    def test_linear_combination_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            GF256.linear_combination(np.zeros(3, dtype=np.uint8), GF256.random_elements(rng, (4, 8)))


class TestRandomness:
    def test_random_nonzero_never_zero(self, rng):
        assert np.all(GF16.random_nonzero(rng, 2000) != 0)

    def test_random_elements_cover_range(self, rng):
        vals = GF16.random_elements(rng, 5000)
        assert set(np.unique(vals)) == set(range(16))
