"""Unit tests for GF(2^w) linear algebra."""

import numpy as np
import pytest

from repro.gf import (
    GF16,
    GF256,
    gf_inverse,
    gf_matmul,
    gf_matvec,
    gf_rank,
    gf_rref,
    gf_solve,
    is_invertible,
)


def random_invertible(field, n, rng):
    while True:
        m = field.random_elements(rng, (n, n))
        if gf_rank(field, m) == n:
            return m


class TestMatmul:
    def test_identity(self, rng):
        m = GF256.random_elements(rng, (4, 4))
        eye = np.eye(4, dtype=np.uint8)
        assert np.array_equal(gf_matmul(GF256, m, eye), m)
        assert np.array_equal(gf_matmul(GF256, eye, m), m)

    def test_matvec_consistent_with_matmul(self, rng):
        m = GF256.random_elements(rng, (5, 3))
        v = GF256.random_elements(rng, 3)
        assert np.array_equal(gf_matvec(GF256, m, v), gf_matmul(GF256, m, v[:, None]).ravel())

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            gf_matmul(GF256, GF256.random_elements(rng, (2, 3)), GF256.random_elements(rng, (2, 3)))

    def test_associativity(self, rng):
        a = GF256.random_elements(rng, (3, 4))
        b = GF256.random_elements(rng, (4, 2))
        c = GF256.random_elements(rng, (2, 5))
        assert np.array_equal(
            gf_matmul(GF256, gf_matmul(GF256, a, b), c),
            gf_matmul(GF256, a, gf_matmul(GF256, b, c)),
        )


class TestRank:
    def test_zero_matrix(self):
        assert gf_rank(GF256, np.zeros((3, 5), dtype=np.uint8)) == 0

    def test_identity_full_rank(self):
        assert gf_rank(GF256, np.eye(6, dtype=np.uint8)) == 6

    def test_duplicated_row_reduces_rank(self, rng):
        m = random_invertible(GF256, 4, rng)
        stacked = np.vstack([m, m[0]])
        assert gf_rank(GF256, stacked) == 4

    def test_scaled_row_not_innovative(self, rng):
        m = random_invertible(GF256, 3, rng)
        scaled = GF256.scale(7, m[1])
        assert gf_rank(GF256, np.vstack([m, scaled])) == 3

    def test_empty(self):
        assert gf_rank(GF256, np.zeros((0, 4), dtype=np.uint8)) == 0


class TestRref:
    def test_pivots_are_unit_columns(self, rng):
        m = GF256.random_elements(rng, (4, 6))
        r, pivots = gf_rref(GF256, m)
        for row, col in enumerate(pivots):
            expected = np.zeros(4, dtype=np.uint8)
            expected[row] = 1
            assert np.array_equal(r[:, col], expected)

    def test_rref_idempotent(self, rng):
        m = GF256.random_elements(rng, (4, 6))
        r1, p1 = gf_rref(GF256, m)
        r2, p2 = gf_rref(GF256, r1)
        assert np.array_equal(r1, r2)
        assert p1 == p2


class TestInverse:
    def test_inverse_roundtrip(self, rng):
        for n in (1, 2, 4, 8):
            m = random_invertible(GF256, n, rng)
            inv = gf_inverse(GF256, m)
            assert np.array_equal(gf_matmul(GF256, m, inv), np.eye(n, dtype=np.uint8))
            assert np.array_equal(gf_matmul(GF256, inv, m), np.eye(n, dtype=np.uint8))

    def test_singular_raises(self):
        singular = np.array([[1, 2], [1, 2]], dtype=np.uint8)
        with pytest.raises(np.linalg.LinAlgError):
            gf_inverse(GF256, singular)

    def test_non_square_rejected(self, rng):
        with pytest.raises(ValueError):
            gf_inverse(GF256, GF256.random_elements(rng, (2, 3)))

    def test_is_invertible(self, rng):
        assert is_invertible(GF256, random_invertible(GF256, 3, rng))
        assert not is_invertible(GF256, np.zeros((3, 3), dtype=np.uint8))
        assert not is_invertible(GF256, np.zeros((2, 3), dtype=np.uint8))


class TestSolve:
    def test_solve_vector(self, rng):
        a = random_invertible(GF256, 5, rng)
        x = GF256.random_elements(rng, 5)
        b = gf_matvec(GF256, a, x)
        assert np.array_equal(gf_solve(GF256, a, b), x)

    def test_solve_matrix_rhs(self, rng):
        # Multi-column RHS is exactly RLNC payload recovery.
        a = random_invertible(GF256, 4, rng)
        x = GF256.random_elements(rng, (4, 100))
        b = gf_matmul(GF256, a, x)
        assert np.array_equal(gf_solve(GF256, a, b), x)

    def test_singular_raises(self, rng):
        a = np.zeros((3, 3), dtype=np.uint8)
        with pytest.raises(np.linalg.LinAlgError):
            gf_solve(GF256, a, np.zeros(3, dtype=np.uint8))

    def test_small_field(self, rng):
        a = random_invertible(GF16, 4, rng)
        x = GF16.random_elements(rng, 4)
        b = gf_matvec(GF16, a, x)
        assert np.array_equal(gf_solve(GF16, a, b), x)
