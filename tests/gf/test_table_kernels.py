"""Property tests: the table-driven batch kernels equal the log/exp oracle.

``GaloisField.mul`` (log/antilog) is the property-tested reference
implementation; the full-table gather kernels added for the data-plane
fast path (``MUL``, ``mul_table``, ``matmul``, ``scale_into``,
``addmul_into``) must be bit-identical to it.  Scalar coverage is
exhaustive (all 256x256 pairs for GF(2^8), all 16x16 for GF(2^4));
matrix shapes and contents are driven by Hypothesis across all three
supported fields.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf import GF16, GF256, GF65536

FIELDS = {"GF16": GF16, "GF256": GF256, "GF65536": GF65536}

seed_st = st.integers(min_value=0, max_value=2**31 - 1)
field_st = st.sampled_from(sorted(FIELDS))
dims = st.integers(min_value=1, max_value=7)


def random_matrix(field, rng, shape):
    return field.random_elements(rng, shape)


def oracle_matmul(field, coeffs, blocks):
    """Row-by-row linear_combination — the pre-existing reference path."""
    out = np.zeros((coeffs.shape[0], blocks.shape[1]), dtype=field.dtype)
    for i in range(coeffs.shape[0]):
        out[i] = field.linear_combination(coeffs[i], blocks)
    return out


class TestFullTableScalars:
    """Exhaustive scalar agreement between MUL and the log/exp oracle."""

    @pytest.mark.parametrize("name", ["GF16", "GF256"])
    def test_mul_table_exhaustive(self, name):
        field = FIELDS[name]
        a = np.arange(field.order, dtype=field.dtype)
        expected = field.mul(a[:, None], a[None, :])
        assert np.array_equal(field.MUL, expected)

    def test_gf65536_has_no_full_table(self):
        with pytest.raises(ValueError):
            _ = GF65536.MUL

    @pytest.mark.parametrize("name", ["GF16", "GF256", "GF65536"])
    def test_mul_row_matches_oracle(self, name):
        field = FIELDS[name]
        elements = np.arange(field.order, dtype=field.dtype)
        # GF(2^16): spot-check a spread of rows (the full 65536x65536
        # product is out of reach by design — that's why rows are cached).
        coeffs = range(field.order) if field.order <= 256 else (0, 1, 2, 255, 256, 0x1234, field.order - 1)
        for c in coeffs:
            assert np.array_equal(field.mul_row(int(c)), field.mul(field.dtype(c), elements))


class TestMatrixKernels:
    @given(name=field_st, seed=seed_st, m=dims, k=dims, n=st.integers(min_value=1, max_value=64))
    @settings(max_examples=60, deadline=None)
    def test_matmul_matches_oracle(self, name, seed, m, k, n):
        field = FIELDS[name]
        rng = np.random.default_rng(seed)
        coeffs = random_matrix(field, rng, (m, k))
        blocks = random_matrix(field, rng, (k, n))
        assert np.array_equal(field.matmul(coeffs, blocks), oracle_matmul(field, coeffs, blocks))

    @given(name=field_st, seed=seed_st, k=dims, n=st.integers(min_value=1, max_value=64))
    @settings(max_examples=60, deadline=None)
    def test_mul_table_rows_match_oracle(self, name, seed, k, n):
        field = FIELDS[name]
        rng = np.random.default_rng(seed)
        coeffs = random_matrix(field, rng, k)
        matrix = random_matrix(field, rng, (k, n))
        expected = np.stack([field.mul(field.dtype(coeffs[i]), matrix[i]) for i in range(k)])
        assert np.array_equal(field.mul_table(coeffs, matrix), expected)

    @given(name=field_st, seed=seed_st, n=st.integers(min_value=1, max_value=64), c=st.integers(min_value=0))
    @settings(max_examples=60, deadline=None)
    def test_scale_into_matches_oracle(self, name, seed, n, c):
        field = FIELDS[name]
        rng = np.random.default_rng(seed)
        c = c % field.order
        vec = random_matrix(field, rng, n)
        out = np.empty(n, dtype=field.dtype)
        field.scale_into(c, vec, out)
        assert np.array_equal(out, field.scale(c, vec))

    @given(
        name=field_st,
        seed=seed_st,
        n=st.integers(min_value=1, max_value=64),
        c=st.integers(min_value=0),
        scratch=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_addmul_into_matches_oracle(self, name, seed, n, c, scratch):
        field = FIELDS[name]
        rng = np.random.default_rng(seed)
        c = c % field.order
        acc = random_matrix(field, rng, n)
        vec = random_matrix(field, rng, n)
        expected = field.addmul(acc, c, vec)
        buf = np.empty(n, dtype=field.dtype) if scratch else None
        field.addmul_into(acc, c, vec, scratch=buf)
        assert np.array_equal(acc, expected)

    @given(name=field_st, seed=seed_st, m=dims, n=dims)
    @settings(max_examples=30, deadline=None)
    def test_matmul_zero_k(self, name, seed, m, n):
        field = FIELDS[name]
        coeffs = np.zeros((m, 0), dtype=field.dtype)
        blocks = np.zeros((0, n), dtype=field.dtype)
        assert np.array_equal(field.matmul(coeffs, blocks), np.zeros((m, n), dtype=field.dtype))

    def test_matmul_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            GF256.matmul(np.zeros((2, 3), dtype=np.uint8), np.zeros((4, 5), dtype=np.uint8))
        with pytest.raises(ValueError):
            GF256.mul_table(np.zeros(3, dtype=np.uint8), np.zeros((4, 5), dtype=np.uint8))

    def test_matmul_chunked_path(self):
        """Force the chunked gather (step < m) and compare to the oracle."""
        field = GF256
        old = field._MATMUL_CHUNK_ELEMS
        rng = np.random.default_rng(7)
        coeffs = random_matrix(field, rng, (9, 4))
        blocks = random_matrix(field, rng, (4, 32))
        try:
            type(field)._MATMUL_CHUNK_ELEMS = 4 * 32 * 2  # two rows per chunk
            chunked = field.matmul(coeffs, blocks)
        finally:
            type(field)._MATMUL_CHUNK_ELEMS = old
        assert np.array_equal(chunked, oracle_matmul(field, coeffs, blocks))
