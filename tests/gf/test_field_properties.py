"""Hypothesis property tests: GF(2^8) is actually a field."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf import GF256, gf_rank

element = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


@given(a=element, b=element, c=element)
def test_mul_associative(a, b, c):
    assert int(GF256.mul(GF256.mul(a, b), c)) == int(GF256.mul(a, GF256.mul(b, c)))


@given(a=element, b=element, c=element)
def test_distributive(a, b, c):
    lhs = GF256.mul(a, GF256.add(b, c))
    rhs = GF256.add(GF256.mul(a, b), GF256.mul(a, c))
    assert int(lhs) == int(rhs)


@given(a=nonzero)
def test_inverse(a):
    assert int(GF256.mul(a, GF256.inv(a))) == 1


@given(a=element, b=nonzero)
def test_division_consistent(a, b):
    q = GF256.div(a, b)
    assert int(GF256.mul(q, b)) == a


@given(a=element, b=element)
def test_addition_forms_group(a, b):
    # Closure + inverse (self) + identity.
    s = GF256.add(a, b)
    assert 0 <= int(s) < 256
    assert int(GF256.add(s, b)) == a  # subtracting b recovers a


@given(
    coeffs=st.lists(element, min_size=2, max_size=6),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=50, deadline=None)
def test_linear_combination_matches_naive(coeffs, seed):
    rng = np.random.default_rng(seed)
    k = len(coeffs)
    blocks = GF256.random_elements(rng, (k, 16))
    coeffs = np.array(coeffs, dtype=np.uint8)
    fast = GF256.linear_combination(coeffs, blocks)
    naive = np.zeros(16, dtype=np.uint8)
    for c, row in zip(coeffs, blocks):
        naive = GF256.add(naive, GF256.mul(c, row))
    assert np.array_equal(fast, naive)


@given(seed=st.integers(min_value=0, max_value=2**31 - 1), n=st.integers(min_value=1, max_value=6))
@settings(max_examples=30, deadline=None)
def test_rank_bounded(seed, n):
    rng = np.random.default_rng(seed)
    m = GF256.random_elements(rng, (n, n + 1))
    r = gf_rank(GF256, m)
    assert 0 <= r <= n
