"""One VNF serving several sessions at once (paper: "We allow each VNF
in the system to encode data for multiple sessions, up to its
capacity")."""

import numpy as np
import pytest

from repro.core.forwarding import ForwardingTable
from repro.core.session import CodingConfig
from repro.core.vnf import NC_PORT, CodingVnf, VnfRole
from repro.net import LinkSpec, Topology
from repro.rlnc import Decoder, Encoder, Generation


@pytest.fixture
def shared_vnf(rng):
    topo = Topology(rng=rng)
    topo.add_node("src")
    vnf = CodingVnf("relay", topo.scheduler, rng=rng)
    topo.add_node(vnf)
    topo.add_node("dst1")
    topo.add_node("dst2")
    topo.add_link(LinkSpec("src", "relay", 100.0, 1.0))
    topo.add_link(LinkSpec("relay", "dst1", 100.0, 1.0))
    topo.add_link(LinkSpec("relay", "dst2", 100.0, 1.0))
    config = CodingConfig(block_bytes=16)
    vnf.configure_session(1, VnfRole.RECODER, config)
    vnf.configure_session(2, VnfRole.FORWARDER, config)
    vnf.forwarding_table = ForwardingTable({1: ["dst1"], 2: ["dst2"]})
    return topo, vnf, config


def send_session(topo, rng, config, session_id, count=5):
    gen = Generation(0, rng.integers(0, 256, (4, config.block_bytes), dtype=np.uint8))
    enc = Encoder(session_id, gen, rng=rng)
    for _ in range(count):
        topo.get("src").send("relay", enc.next_packet(), 64, dst_port=NC_PORT)
    return gen


class TestMultiSession:
    def test_sessions_routed_independently(self, shared_vnf, rng):
        topo, vnf, config = shared_vnf
        got1, got2 = [], []
        topo.get("dst1").listen(NC_PORT, lambda d: got1.append(d.payload))
        topo.get("dst2").listen(NC_PORT, lambda d: got2.append(d.payload))
        gen1 = send_session(topo, rng, config, 1)
        gen2 = send_session(topo, rng, config, 2, count=4)  # systematic only
        topo.run()
        assert all(p.session_id == 1 for p in got1)
        assert all(p.session_id == 2 for p in got2)
        # Session 1 is recoded; session 2 merely forwarded verbatim.
        assert any(not p.header.systematic for p in got1)
        assert all(p.header.systematic for p in got2)

    def test_both_sessions_decodable(self, shared_vnf, rng):
        topo, vnf, config = shared_vnf
        got1, got2 = [], []
        topo.get("dst1").listen(NC_PORT, lambda d: got1.append(d.payload))
        topo.get("dst2").listen(NC_PORT, lambda d: got2.append(d.payload))
        gen1 = send_session(topo, rng, config, 1)
        gen2 = send_session(topo, rng, config, 2)
        topo.run()
        for gen, packets, sid in ((gen1, got1, 1), (gen2, got2, 2)):
            dec = Decoder(sid, 0, 4, config.block_bytes)
            for p in packets:
                if not dec.complete:
                    dec.add(p)
            assert dec.complete and dec.decode() == gen

    def test_per_session_state_isolated(self, shared_vnf, rng):
        topo, vnf, config = shared_vnf
        send_session(topo, rng, config, 1)
        send_session(topo, rng, config, 2)
        topo.run()
        assert set(vnf.buffers) == {1, 2}
        assert all(key[0] == 1 for key in vnf._recoders)  # only session 1 recodes
        vnf.drop_session(1)
        assert set(vnf.buffers) == {2}
        assert not vnf._recoders

    def test_shared_service_queue(self, shared_vnf, rng):
        # Both sessions contend for the same per-packet service capacity
        # (the paper's C(v) covers the whole VNF, not each session).
        topo, vnf, config = shared_vnf
        send_session(topo, rng, config, 1, count=3)
        send_session(topo, rng, config, 2, count=3)
        topo.run()
        assert vnf.processed_packets == 6
