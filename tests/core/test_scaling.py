"""Dynamic scaling algorithm tests (Alg. 1-3, thresholds, consolidation)."""

import numpy as np
import pytest

from repro.cloud import CloudProvider, DataCenter
from repro.core import Controller, MulticastSession, ScalingConfig, ScalingEngine
from repro.core.deployment import DataCenterSpec
from repro.core.scaling import _ThresholdState

RELAYS = ["O1", "C1", "T", "V2"]


@pytest.fixture
def engine(butterfly_graph, scheduler):
    providers = {
        name: CloudProvider(f"p-{name}", scheduler, [DataCenter(name)], rng=np.random.default_rng(9))
        for name in RELAYS
    }
    controller = Controller(
        butterfly_graph.copy(),
        [DataCenterSpec(n, 900, 900, 900) for n in RELAYS],
        scheduler,
        alpha=1.0,
        providers=providers,
    )
    return ScalingEngine(controller, ScalingConfig(rho1_percent=5.0, tau1_s=60.0, rho2_percent=5.0, tau2_s=60.0, idle_hold_s=60.0))


def butterfly_session():
    return MulticastSession(source="V1", receivers=["O2", "C2"], max_delay_ms=250.0)


class TestThresholdState:
    def test_fires_only_after_hold(self):
        state = _ThresholdState(reference=100.0)
        assert not state.update(80.0, now=0.0, rho_percent=5.0, tau_s=60.0)   # deviation starts
        assert not state.update(80.0, now=30.0, rho_percent=5.0, tau_s=60.0)  # not held long enough
        assert state.update(80.0, now=61.0, rho_percent=5.0, tau_s=60.0)      # held τ

    def test_spike_resets(self):
        state = _ThresholdState(reference=100.0)
        state.update(80.0, now=0.0, rho_percent=5.0, tau_s=60.0)
        state.update(100.0, now=30.0, rho_percent=5.0, tau_s=60.0)  # back to normal
        assert not state.update(80.0, now=61.0, rho_percent=5.0, tau_s=60.0)  # timer restarted

    def test_small_change_ignored(self):
        state = _ThresholdState(reference=100.0)
        assert not state.update(97.0, now=0.0, rho_percent=5.0, tau_s=0.0)

    def test_accept_rebases(self):
        state = _ThresholdState(reference=100.0)
        state.accept(80.0)
        assert not state.update(80.0, now=0.0, rho_percent=5.0, tau_s=0.0)


class TestAlg1Bandwidth:
    def test_drop_triggers_rescale_after_tau(self, engine, scheduler):
        engine.on_session_join(butterfly_session())
        scheduler.run(until=60.0)
        vnfs_before = sum(engine.controller.required_vnf_counts().values())
        # Feed halved caps for T over 2 minutes (τ1 = 60 s).
        assert not engine.on_bandwidth_sample("T", 450.0, 450.0)
        scheduler.run(until=90.0)
        assert not engine.on_bandwidth_sample("T", 450.0, 450.0)
        scheduler.run(until=125.0)
        fired = engine.on_bandwidth_sample("T", 450.0, 450.0)
        assert fired
        assert engine.controller.datacenters["T"].inbound_mbps == 450.0
        events = [e for e in engine.events if e.kind == "bandwidth"]
        assert events and events[-1].detail["action"] == "rescaled"

    def test_small_wiggle_never_fires(self, engine, scheduler):
        engine.on_session_join(butterfly_session())
        for t in (0, 70, 140):
            scheduler.run(until=scheduler.now + 70)
            assert not engine.on_bandwidth_sample("T", 890.0, 905.0)  # ~1% wiggle

    def test_increase_kept_when_not_worth_it(self, engine, scheduler):
        engine.on_session_join(butterfly_session())
        scheduler.run(until=60.0)
        # More per-VNF bandwidth at T doesn't help: links are the bottleneck.
        engine.on_bandwidth_sample("T", 1800.0, 1800.0)
        scheduler.run(until=130.0)
        engine.on_bandwidth_sample("T", 1800.0, 1800.0)
        scheduler.run(until=200.0)
        engine.on_bandwidth_sample("T", 1800.0, 1800.0)
        events = [e for e in engine.events if e.kind == "bandwidth"]
        assert events
        assert events[-1].detail["action"] in ("kept", "no-affected-sessions")


class TestAlg2Delay:
    def test_delay_increase_reroutes(self, engine, scheduler):
        session = butterfly_session()
        engine.on_session_join(session)
        scheduler.run(until=60.0)
        rate_before = engine.controller.lambdas[session.session_id]
        # T->V2 delay explodes: the 4-hop paths leave the 250 ms budget.
        assert not engine.on_delay_sample(("T", "V2"), 500.0)
        scheduler.run(until=130.0)
        fired = engine.on_delay_sample(("T", "V2"), 500.0)
        assert fired
        rate_after = engine.controller.lambdas[session.session_id]
        assert rate_after < rate_before  # only the 2-hop paths remain

    def test_delay_decrease_expands_paths(self, engine, scheduler):
        session = MulticastSession(source="V1", receivers=["O2", "C2"], max_delay_ms=70.0)
        engine.on_session_join(session)
        scheduler.run(until=60.0)
        rate_before = engine.controller.lambdas[session.session_id]
        assert rate_before < 70.0  # long paths infeasible at 70 ms
        # V1->O1 and V1->C1 become much faster: relayed paths fit again.
        for edge in (("V1", "O1"), ("V1", "C1")):
            engine.on_delay_sample(edge, 5.0)
        scheduler.run(until=130.0)
        fired = [engine.on_delay_sample(e, 5.0) for e in (("V1", "O1"), ("V1", "C1"))]
        assert any(fired)
        assert engine.controller.lambdas[session.session_id] > rate_before


class TestAlg3Churn:
    def test_join_quit_cycle(self, engine, scheduler):
        s1 = butterfly_session()
        engine.on_session_join(s1)
        scheduler.run(until=60.0)
        result = engine.on_session_quit(s1.session_id)
        assert result["chosen"] in ("g1", "g2")
        assert engine.controller.sessions == {}

    def test_quit_frees_capacity_for_remaining(self, engine, scheduler):
        s1 = butterfly_session()
        s2 = butterfly_session()
        engine.on_session_join(s1)
        engine.on_session_join(s2)
        scheduler.run(until=60.0)
        rate_before = engine.controller.lambdas[s2.session_id]
        engine.on_session_quit(s1.session_id)
        rate_after = engine.controller.lambdas[s2.session_id]
        assert rate_after >= rate_before - 1e-6

    def test_events_logged(self, engine, scheduler):
        s = butterfly_session()
        engine.on_session_join(s)
        engine.on_session_quit(s.session_id)
        kinds = [e.kind for e in engine.events]
        assert kinds == ["session-join", "session-quit"]


class TestConsolidation:
    def test_idle_vnfs_retired_after_hold(self, engine, scheduler):
        s = butterfly_session()
        engine.on_session_join(s)
        scheduler.run(until=60.0)
        # Manually over-provision T.
        controller = engine.controller
        provider = controller.providers["T"]
        extra = provider.launch_vm("T")
        controller.fleet["T"].vms.append(extra)
        scheduler.run(until=120.0)
        assert engine.check_utilization() == []  # hold period starts
        scheduler.run(until=200.0)
        assert "T" in engine.check_utilization()
        assert extra.state.value in ("stopping", "terminated")

    def test_busy_fleet_untouched(self, engine, scheduler):
        engine.on_session_join(butterfly_session())
        scheduler.run(until=60.0)
        assert engine.check_utilization() == []
        scheduler.run(until=200.0)
        assert engine.check_utilization() == []
