"""Regression: session churn must not trigger whole-fleet re-solves.

The controller once answered every departure with the full g1/g2
rebalance — two fleet-wide LPs — even when the departing session's
capacity was unreachable by anyone else.  These tests count actual
``DeploymentProblem.solve`` invocations to pin the contract: a join is
exactly one LP regardless of fleet size, and a departure whose freed
footprint nobody's demand touches is zero.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core import Controller, MulticastSession
from repro.core.deployment import DataCenterSpec, DeploymentProblem
from repro.net.events import EventScheduler


def island_graph(n_islands: int) -> nx.DiGraph:
    """n disjoint s_i -> DC_i -> r_i islands: zero capacity coupling."""
    graph = nx.DiGraph()
    for i in range(n_islands):
        graph.add_edge(f"s{i}", f"D{i}", capacity_mbps=100.0, delay_ms=5.0)
        graph.add_edge(f"D{i}", f"r{i}", capacity_mbps=100.0, delay_ms=5.0)
    return graph


def shared_dc_graph() -> nx.DiGraph:
    """Two sessions forced through one DC: departures free contended capacity."""
    graph = nx.DiGraph()
    for i in range(2):
        graph.add_edge(f"s{i}", "T", capacity_mbps=100.0, delay_ms=5.0)
        graph.add_edge("T", f"r{i}", capacity_mbps=100.0, delay_ms=5.0)
    return graph


def make_controller(graph: nx.DiGraph, dc_names: list[str]) -> Controller:
    return Controller(
        graph,
        [DataCenterSpec(name, 900, 900, 900) for name in dc_names],
        EventScheduler(),
        alpha=1.0,
    )


def island_session(i: int) -> MulticastSession:
    return MulticastSession(source=f"s{i}", receivers=[f"r{i}"], max_delay_ms=100.0)


@pytest.fixture
def solve_counter(monkeypatch):
    calls = []
    original = DeploymentProblem.solve

    def counted(self, demands, **kwargs):
        calls.append(len(demands))
        return original(self, demands, **kwargs)

    monkeypatch.setattr(DeploymentProblem, "solve", counted)
    return calls


class TestJoinCost:
    def test_each_join_is_exactly_one_lp(self, solve_counter):
        controller = make_controller(island_graph(6), [f"D{i}" for i in range(6)])
        for i in range(6):
            controller.add_session(island_session(i))
            # One solve per join, and the LP only carries the joining
            # session's demand — the fleet rides along as frozen load.
            assert len(solve_counter) == i + 1
            assert solve_counter[-1] == 1

    def test_join_cost_does_not_grow_with_fleet(self, solve_counter):
        controller = make_controller(island_graph(8), [f"D{i}" for i in range(8)])
        for i in range(8):
            controller.add_session(island_session(i))
        assert solve_counter == [1] * 8


class TestDepartureCost:
    def test_disjoint_departure_skips_the_rebalance(self, solve_counter):
        controller = make_controller(island_graph(3), ["D0", "D1", "D2"])
        sessions = [island_session(i) for i in range(3)]
        for session in sessions:
            controller.add_session(session)
        rate_before = controller.lambdas[sessions[1].session_id]
        del solve_counter[:]

        result = controller.remove_session(sessions[0].session_id)

        assert solve_counter == []  # zero LPs: nobody could use the freed capacity
        assert result["rebalanced"] is False
        assert result["chosen"] in ("g1", "g2")
        # Survivors keep their exact plans; the freed island is drained.
        assert controller.lambdas[sessions[1].session_id] == rate_before
        assert controller.required_vnf_counts()["D0"] == 0

    def test_contended_departure_still_rebalances(self, solve_counter):
        controller = make_controller(shared_dc_graph(), ["T"])
        sessions = [
            MulticastSession(source=f"s{i}", receivers=[f"r{i}"], max_delay_ms=100.0)
            for i in range(2)
        ]
        for session in sessions:
            controller.add_session(session)
        del solve_counter[:]

        result = controller.remove_session(sessions[0].session_id)

        # Freed capacity at T is inside the survivor's demand footprint:
        # the full g1 (grow flows) vs g2 (shrink fleet) comparison runs.
        assert result["rebalanced"] is True
        assert result["chosen"] in ("g1", "g2")
        assert len(solve_counter) == 2

    def test_last_departure_is_free(self, solve_counter):
        controller = make_controller(island_graph(1), ["D0"])
        session = island_session(0)
        controller.add_session(session)
        del solve_counter[:]
        result = controller.remove_session(session.session_id)
        assert solve_counter == []
        assert result["chosen"] in ("g1", "g2")
        assert controller.required_vnf_counts() == {"D0": 0}

    def test_footprint_cache_is_cleaned_up(self):
        controller = make_controller(island_graph(2), ["D0", "D1"])
        session = island_session(0)
        controller.add_session(session)
        assert session.session_id in controller._demand_footprints
        controller.remove_session(session.session_id)
        assert session.session_id not in controller._demand_footprints
