"""Data-plane coding VNF tests."""

import numpy as np
import pytest

from repro.core.forwarding import ForwardingTable
from repro.core.session import CodingConfig
from repro.core.vnf import NC_PORT, CodingVnf, VnfDispatcher, VnfRole
from repro.net import LinkSpec, Topology
from repro.rlnc import Decoder, Encoder, Generation


def make_chain(rng, roles=("RECODER",), coding_overhead_s=0.0):
    """source host -> vnf(s) -> sink host, 100 Mbps, 1 ms links."""
    topo = Topology(rng=rng)
    names = ["src"] + [f"vnf{i}" for i in range(len(roles))] + ["dst"]
    topo.add_node("src")
    vnfs = []
    config = CodingConfig(block_bytes=32)
    for i, role in enumerate(roles):
        vnf = CodingVnf(f"vnf{i}", topo.scheduler, rng=rng, coding_overhead_s=coding_overhead_s)
        topo.add_node(vnf)
        vnf.configure_session(1, VnfRole[role], config)
        vnfs.append(vnf)
    topo.add_node("dst")
    for a, b in zip(names, names[1:]):
        topo.add_link(LinkSpec(a, b, 100.0, 1.0))
    for vnf, nxt in zip(vnfs, names[2:]):
        vnf.forwarding_table = ForwardingTable({1: [nxt]})
    return topo, vnfs, config


def send_generation(topo, rng, config, count=4, session=1):
    gen = Generation(0, rng.integers(0, 256, (4, config.block_bytes), dtype=np.uint8))
    enc = Encoder(session, gen, rng=rng)
    src = topo.get("src")
    for _ in range(count):
        src.send("vnf0", enc.next_packet(), 64, dst_port=NC_PORT)
    return gen


class TestRecoder:
    def test_recodes_and_forwards(self, rng):
        topo, vnfs, config = make_chain(rng)
        received = []
        topo.get("dst").listen(NC_PORT, lambda d: received.append(d.payload))
        gen = send_generation(topo, rng, config, count=5)
        topo.run()
        assert len(received) == 5
        dec = Decoder(1, 0, 4, config.block_bytes)
        for p in received:
            if not dec.complete:
                dec.add(p)
        assert dec.complete
        assert dec.decode() == gen

    def test_first_packet_forwarded_immediately(self, rng):
        topo, vnfs, config = make_chain(rng)
        received = []
        topo.get("dst").listen(NC_PORT, lambda d: received.append(d.payload))
        send_generation(topo, rng, config, count=1)
        topo.run()
        assert len(received) == 1
        assert received[0].header.systematic  # verbatim forward of the original

    def test_unknown_session_dropped(self, rng):
        topo, vnfs, config = make_chain(rng)
        received = []
        topo.get("dst").listen(NC_PORT, lambda d: received.append(d.payload))
        send_generation(topo, rng, config, count=3, session=99)
        topo.run()
        assert received == []
        assert vnfs[0].processed_packets == 0

    def test_multi_hop_chain(self, rng):
        topo, vnfs, config = make_chain(rng, roles=("RECODER", "RECODER", "RECODER"))
        received = []
        topo.get("dst").listen(NC_PORT, lambda d: received.append(d.payload))
        gen = send_generation(topo, rng, config, count=6)
        topo.run()
        dec = Decoder(1, 0, 4, config.block_bytes)
        for p in received:
            if not dec.complete:
                dec.add(p)
        assert dec.complete and dec.decode() == gen


class TestForwarder:
    def test_forwards_verbatim(self, rng):
        topo, vnfs, config = make_chain(rng, roles=("FORWARDER",))
        received = []
        topo.get("dst").listen(NC_PORT, lambda d: received.append(d.payload))
        send_generation(topo, rng, config, count=4)
        topo.run()
        assert len(received) == 4
        assert all(p.header.systematic for p in received)

    def test_forwarder_cheaper_than_recoder(self, rng):
        _, [fwd], config = make_chain(rng, roles=("FORWARDER",), coding_overhead_s=90e-6)
        _, [rec], _ = make_chain(rng, roles=("RECODER",), coding_overhead_s=90e-6)
        from repro.net.packet import Datagram

        d = Datagram(src="a", dst="b", payload=None, payload_bytes=1472)
        assert fwd._service_time(d, VnfRole.FORWARDER) < rec._service_time(d, VnfRole.RECODER)


class TestDecoderRole:
    def test_delivers_decoded_generation(self, rng):
        topo, vnfs, config = make_chain(rng, roles=("DECODER",))
        delivered = []
        vnfs[0].configure_session(1, VnfRole.DECODER, config, deliver=lambda sid, g: delivered.append(g))
        gen = send_generation(topo, rng, config, count=4)
        topo.run()
        assert delivered == [gen]
        assert vnfs[0].decoded_generations == 1


class TestPauseResume:
    def test_table_reload_pauses_processing(self, rng):
        topo, vnfs, config = make_chain(rng)
        vnf = vnfs[0]
        old_table = vnf.forwarding_table
        new_table = ForwardingTable({1: ["dst"], 2: ["dst"], 3: ["dst"]})
        pause = vnf.apply_forwarding_table(new_table)
        assert pause > 0
        assert vnf.is_paused
        received = []
        topo.get("dst").listen(NC_PORT, lambda d: received.append(d.payload))
        send_generation(topo, rng, config, count=4)
        topo.run(until=pause / 2)
        assert received == []  # still paused; packets queued
        topo.run()
        assert len(received) == 4  # drained after resume

    def test_no_change_no_pause(self, rng):
        topo, vnfs, config = make_chain(rng)
        assert vnfs[0].apply_forwarding_table(vnfs[0].forwarding_table.copy()) == 0.0

    def test_drop_session_clears_state(self, rng):
        topo, vnfs, config = make_chain(rng)
        send_generation(topo, rng, config, count=2)
        topo.run()
        vnfs[0].drop_session(1)
        assert 1 not in vnfs[0].roles
        assert not vnfs[0]._recoders


class TestHopShaping:
    def test_shape_limits_emissions(self, rng):
        topo, vnfs, config = make_chain(rng)
        vnfs[0].set_hop_shape(1, "dst", skip_arrivals=2, emit_per_generation=2)
        received = []
        topo.get("dst").listen(NC_PORT, lambda d: received.append(d.payload))
        send_generation(topo, rng, config, count=6)
        topo.run()
        assert len(received) == 2  # arrivals 3 and 4 trigger, cap at 2

    def test_shaped_emissions_are_recodes(self, rng):
        topo, vnfs, config = make_chain(rng)
        vnfs[0].set_hop_shape(1, "dst", skip_arrivals=2, emit_per_generation=2)
        received = []
        topo.get("dst").listen(NC_PORT, lambda d: received.append(d.payload))
        send_generation(topo, rng, config, count=4)
        topo.run()
        assert all(not p.header.systematic for p in received)

    def test_invalid_shape(self, rng):
        _, vnfs, _ = make_chain(rng)
        with pytest.raises(ValueError):
            vnfs[0].set_hop_shape(1, "dst", -1, 2)


class TestDispatcher:
    def test_same_generation_same_instance(self, rng, scheduler):
        dispatcher = VnfDispatcher("dc", scheduler)
        v1 = CodingVnf("v1", scheduler, rng=rng)
        v2 = CodingVnf("v2", scheduler, rng=rng)
        config = CodingConfig(block_bytes=16)
        for v in (v1, v2):
            v.configure_session(1, VnfRole.RECODER, config)
        dispatcher.add_instance(v1)
        dispatcher.add_instance(v2)

        from repro.net.packet import Datagram

        gen = Generation(0, np.zeros((4, 16), dtype=np.uint8))
        enc = Encoder(1, gen, rng=rng)
        for _ in range(4):
            packet = enc.next_packet()
            dispatcher._dispatch(Datagram(src="x", dst="dc", payload=packet, payload_bytes=64, dst_port=NC_PORT))
        scheduler.run()
        # All four packets of generation 0 went to exactly one instance.
        assert sorted([v1.processed_packets, v2.processed_packets]) == [0, 4]
