"""Session model and control-signal protocol tests."""

import pytest

from repro.core import (
    CodingConfig,
    MulticastSession,
    NcForwardTab,
    NcSettings,
    NcStart,
    NcVnfEnd,
    NcVnfStart,
    SignalBus,
)
from repro.rlnc.redundancy import RedundancyPolicy


class TestCodingConfig:
    def test_paper_defaults(self):
        config = CodingConfig()
        assert config.block_bytes == 1460
        assert config.blocks_per_generation == 4
        assert config.buffer_generations == 1024
        assert config.generation_bytes == 5840

    def test_redundancy_flows_through(self):
        config = CodingConfig(redundancy=RedundancyPolicy(2))
        assert config.packets_per_generation() == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            CodingConfig(block_bytes=0)
        with pytest.raises(ValueError):
            CodingConfig(blocks_per_generation=300)
        with pytest.raises(ValueError):
            CodingConfig(buffer_generations=0)

    def test_field_selection(self):
        from repro.gf import GF16, GF256

        assert CodingConfig().galois_field == GF256
        assert CodingConfig(field_order=16).galois_field == GF16


class TestSession:
    def test_unique_ids(self):
        s1 = MulticastSession(source="a", receivers=["b"])
        s2 = MulticastSession(source="a", receivers=["b"])
        assert s1.session_id != s2.session_id

    def test_unicast_special_case(self):
        assert MulticastSession(source="a", receivers=["b"]).is_unicast
        assert not MulticastSession(source="a", receivers=["b", "c"]).is_unicast

    def test_validation(self):
        with pytest.raises(ValueError):
            MulticastSession(source="a", receivers=[])
        with pytest.raises(ValueError):
            MulticastSession(source="a", receivers=["a"])
        with pytest.raises(ValueError):
            MulticastSession(source="a", receivers=["b", "b"])
        with pytest.raises(ValueError):
            MulticastSession(source="a", receivers=["b"], max_delay_ms=0)

    def test_receiver_churn(self):
        s = MulticastSession(source="a", receivers=["b"])
        s.add_receiver("c")
        assert s.receivers == ["b", "c"]
        s.remove_receiver("b")
        assert s.receivers == ["c"]
        with pytest.raises(ValueError):
            s.remove_receiver("c")  # would empty the session
        with pytest.raises(ValueError):
            s.add_receiver("c")  # duplicate
        with pytest.raises(ValueError):
            s.add_receiver("a")  # source


class TestSignalBus:
    def test_delivery_with_latency(self, scheduler):
        bus = SignalBus(scheduler, latency_s=0.05)
        got = []
        bus.register("daemon1", got.append)
        bus.send(NcStart(target="daemon1", session_id=3))
        scheduler.run(until=0.01)
        assert got == []  # not yet delivered
        scheduler.run(until=0.1)
        assert len(got) == 1
        assert got[0].session_id == 3

    def test_unknown_target_is_recorded_undeliverable(self, scheduler):
        # A signal to a node with no daemon used to "succeed" silently;
        # it must now be retried and then land on the undeliverable log.
        bus = SignalBus(scheduler)
        record = bus.send(NcStart(target="ghost"))
        scheduler.run()
        assert record.delivered_at is None
        assert record.status == "undeliverable"
        assert record.attempts == bus.max_retries + 1
        assert bus.undeliverable == [record]

    def test_retry_reaches_late_registration(self, scheduler):
        # A daemon that comes back mid-retry still gets the signal.
        bus = SignalBus(scheduler, latency_s=0.05, retry_interval_s=0.2)
        record = bus.send(NcStart(target="late", session_id=9))
        got = []
        scheduler.run(until=0.1)  # first attempt already failed
        bus.register("late", got.append)
        scheduler.run()
        assert [s.session_id for s in got] == [9]
        assert record.status == "delivered"
        assert bus.undeliverable == []

    def test_log_and_kind_filter(self, scheduler):
        bus = SignalBus(scheduler)
        bus.send(NcVnfStart(target="controller", datacenter="oregon", count=2))
        bus.send(NcVnfEnd(target="d", vnf_name="vm-1"))
        bus.send(NcVnfStart(target="controller", datacenter="texas", count=1))
        assert len(bus.sent_of_kind("NcVnfStart")) == 2
        assert len(bus.sent_of_kind("NcVnfEnd")) == 1

    def test_duplicate_registration_rejected(self, scheduler):
        bus = SignalBus(scheduler)
        bus.register("d", lambda s: None)
        with pytest.raises(ValueError):
            bus.register("d", lambda s: None)

    def test_unregister(self, scheduler):
        bus = SignalBus(scheduler)
        got = []
        bus.register("d", got.append)
        bus.unregister("d")
        bus.send(NcStart(target="d"))
        scheduler.run()
        assert got == []

    def test_signal_kinds(self):
        assert NcForwardTab(target="d", table_text="").kind == "NcForwardTab"
        assert NcSettings(target="d").kind == "NcSettings"
