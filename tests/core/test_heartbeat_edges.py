"""HeartbeatMonitor edge cases: grace clocks, thresholds, validation."""

import pytest

from repro.core.controller import HeartbeatMonitor


def test_unwatch_then_rewatch_resets_the_grace_clock(scheduler):
    deaths = []
    monitor = HeartbeatMonitor(scheduler, interval_s=1.0, miss_threshold=3, on_dead=deaths.append)
    monitor.watch("x")  # grace starts at t=0, never beats
    scheduler.schedule_at(2.5, monitor.unwatch, "x")
    scheduler.schedule_at(2.5, monitor.watch, "x")  # re-adopted: clock restarts
    scheduler.run(until=5.0)
    # Without the reset, silence-since-0 crosses the 3 s deadline at the
    # t=4 check; the re-watch moved the epoch to 2.5, so still alive.
    assert deaths == []
    assert "x" not in monitor.dead
    scheduler.run(until=6.5)  # 2.5 + 3.0 deadline crossed at the t=6 check
    assert deaths == ["x"]
    assert monitor.dead["x"] == 6.0
    monitor.stop()


def test_rewatch_after_death_clears_the_verdict_and_rearms(scheduler):
    deaths = []
    monitor = HeartbeatMonitor(scheduler, interval_s=1.0, miss_threshold=2, on_dead=deaths.append)
    monitor.watch("x")
    scheduler.run(until=3.5)
    assert deaths == ["x"]
    monitor.watch("x")  # restarted daemon re-adopted
    assert "x" not in monitor.dead
    scheduler.schedule_every(1.0, monitor.beat, "x")
    scheduler.run(until=10.0)
    assert deaths == ["x"]  # no second verdict while it keeps beating
    monitor.stop()


def test_zero_and_negative_intervals_rejected(scheduler):
    with pytest.raises(ValueError):
        HeartbeatMonitor(scheduler, interval_s=0.0)
    with pytest.raises(ValueError):
        HeartbeatMonitor(scheduler, interval_s=-1.0)


def test_miss_threshold_below_one_rejected(scheduler):
    with pytest.raises(ValueError):
        HeartbeatMonitor(scheduler, interval_s=1.0, miss_threshold=0)
    with pytest.raises(ValueError):
        HeartbeatMonitor(scheduler, interval_s=1.0, miss_threshold=-3)


def test_exactly_n_missed_intervals_is_not_yet_dead(scheduler):
    # deadline = N * interval; the check at exactly t = N*interval sees
    # silence == deadline, which is NOT a miss — N full intervals must
    # *elapse*, so the verdict lands on check N+1.
    deaths = []
    monitor = HeartbeatMonitor(scheduler, interval_s=1.0, miss_threshold=3, on_dead=deaths.append)
    monitor.watch("x")
    scheduler.run(until=3.0)  # checks at 1, 2, 3 — boundary inclusive
    assert deaths == []
    scheduler.run(until=4.0)
    assert deaths == ["x"]
    assert monitor.dead["x"] == 4.0
    monitor.stop()


def test_boundary_beat_restarts_the_count(scheduler):
    deaths = []
    monitor = HeartbeatMonitor(scheduler, interval_s=1.0, miss_threshold=3, on_dead=deaths.append)
    monitor.watch("x")
    scheduler.schedule_at(3.0, monitor.beat, "x")  # beat ON the deadline
    scheduler.run(until=6.0)
    assert deaths == []  # silence restarted at 3.0; 6.0 check is boundary
    scheduler.run(until=7.0)
    assert deaths == ["x"]
    monitor.stop()


def test_beat_for_unwatched_name_is_ignored(scheduler):
    monitor = HeartbeatMonitor(scheduler, interval_s=1.0)
    monitor.beat("ghost")  # never watched: must not create an entry
    assert "ghost" not in monitor.last_heard
    monitor.unwatch("ghost")  # and unwatching it is a no-op, not an error
    monitor.stop()
