"""Forwarding-table and update-cost tests (§III-A, Tab. III)."""

import pytest

from repro.core import ForwardingTable, ForwardingUpdateModel
from repro.core.forwarding import ForwardingTableError


class TestTable:
    def test_roundtrip_serialization(self):
        table = ForwardingTable({1: ["a", "b"], 2: ["c"]})
        parsed = ForwardingTable.parse(table.serialize())
        assert parsed.entries == table.entries

    def test_text_format(self):
        table = ForwardingTable({2: ["x"], 1: ["a", "b"]})
        assert table.serialize() == "1 a b\n2 x\n"

    def test_parse_ignores_comments_and_blanks(self):
        text = "# comment\n\n1 a b\n"
        table = ForwardingTable.parse(text)
        assert table.next_hops(1) == ["a", "b"]

    def test_parse_errors(self):
        with pytest.raises(ForwardingTableError):
            ForwardingTable.parse("notanumber a\n")
        with pytest.raises(ForwardingTableError):
            ForwardingTable.parse("1 a\n1 b\n")

    def test_duplicate_hops_rejected(self):
        with pytest.raises(ForwardingTableError):
            ForwardingTable({1: ["a", "a"]})

    def test_set_empty_removes(self):
        table = ForwardingTable({1: ["a"]})
        table.set_next_hops(1, [])
        assert table.sessions() == []

    def test_len_counts_entries(self):
        assert len(ForwardingTable({1: ["a", "b"], 2: ["c"]})) == 3

    def test_copy_is_deep_enough(self):
        table = ForwardingTable({1: ["a"]})
        clone = table.copy()
        clone.set_next_hops(1, ["b"])
        assert table.next_hops(1) == ["a"]


class TestDiff:
    def test_diff_counts_changed_rows(self):
        old = ForwardingTable({1: ["a"], 2: ["b"], 3: ["c"]})
        new = ForwardingTable({1: ["a"], 2: ["x"], 4: ["d"]})
        # session 2 changed, 3 removed, 4 added.
        assert old.diff_entries(new) == 3

    def test_update_fraction(self):
        old = ForwardingTable({i: ["a"] for i in range(10)})
        new = old.copy()
        for i in range(2):
            new.set_next_hops(i, ["b"])
        assert old.update_fraction(new) == pytest.approx(0.2)

    def test_identical_tables_zero(self):
        table = ForwardingTable({1: ["a"]})
        assert table.diff_entries(table.copy()) == 0


class TestUpdateModel:
    def test_reproduces_table_iii(self):
        # Tab. III: 10-entry table, update % -> ms.
        model = ForwardingUpdateModel()
        published = {2: 78.44, 4: 145.82, 6: 194.06, 8: 264.82, 10: 310.61}
        for entries, expected_ms in published.items():
            predicted = model.pause_seconds(entries) * 1e3
            assert predicted == pytest.approx(expected_ms, rel=0.12)

    def test_monotone(self):
        model = ForwardingUpdateModel()
        pauses = [model.pause_seconds(n) for n in range(0, 11)]
        assert pauses == sorted(pauses)

    def test_zero_update_free(self):
        assert ForwardingUpdateModel().pause_seconds(0) == 0.0

    def test_pause_for_update_uses_diff(self):
        model = ForwardingUpdateModel()
        old = ForwardingTable({i: ["a"] for i in range(10)})
        new = old.copy()
        new.set_next_hops(0, ["b"])
        assert model.pause_for_update(old, new) == pytest.approx(model.pause_seconds(1))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ForwardingUpdateModel().pause_seconds(-1)
