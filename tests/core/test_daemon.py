"""Daemon signal-handling tests (§III-A)."""

import numpy as np
import pytest

from repro.core.daemon import VNF_START_LATENCY_S, VnfDaemon
from repro.core.signals import NcForwardTab, NcSettings, NcVnfEnd, SignalBus
from repro.core.vnf import CodingVnf, VnfRole


@pytest.fixture
def daemon_setup(scheduler, rng):
    bus = SignalBus(scheduler, latency_s=0.01)
    vnf = CodingVnf("node1", scheduler, rng=rng)
    daemon = VnfDaemon(vnf, bus)
    return bus, vnf, daemon


class TestSettings:
    def test_settings_configure_roles(self, daemon_setup, scheduler):
        bus, vnf, daemon = daemon_setup
        bus.send(NcSettings(target="node1", session_ids=(5,), roles=((5, "recoder"),), udp_port=52017))
        scheduler.run()
        assert vnf.roles[5] is VnfRole.RECODER

    def test_function_start_latency(self, daemon_setup, scheduler):
        bus, vnf, daemon = daemon_setup
        bus.send(NcSettings(target="node1", roles=((1, "forwarder"),)))
        scheduler.run(until=0.01 + VNF_START_LATENCY_S / 2)
        assert not daemon.function_running
        scheduler.run(until=0.01 + VNF_START_LATENCY_S + 0.01)
        assert daemon.function_running
        # ~376 ms, the §V-C5 measurement.
        assert daemon.started_at == pytest.approx(0.01 + VNF_START_LATENCY_S, abs=1e-6)


class TestForwardTab:
    def test_table_applied_when_running(self, daemon_setup, scheduler):
        bus, vnf, daemon = daemon_setup
        bus.send(NcSettings(target="node1", roles=((1, "recoder"),)))
        scheduler.run()
        bus.send(NcForwardTab(target="node1", table_text="1 hopA hopB\n"))
        scheduler.run()
        assert vnf.forwarding_table.next_hops(1) == ["hopA", "hopB"]
        assert daemon.applied_tables == 1
        assert daemon.total_pause_s > 0

    def test_table_before_start_is_deferred(self, daemon_setup, scheduler):
        bus, vnf, daemon = daemon_setup
        bus.send(NcForwardTab(target="node1", table_text="1 hopA\n"))
        scheduler.run(until=0.05)
        assert vnf.forwarding_table.next_hops(1) == []  # not yet applied
        bus.send(NcSettings(target="node1", roles=((1, "recoder"),)))
        scheduler.run()
        assert vnf.forwarding_table.next_hops(1) == ["hopA"]


class TestVnfEnd:
    def test_end_unregisters_and_notifies(self, daemon_setup, scheduler):
        bus, vnf, daemon = daemon_setup
        ended = []
        daemon.on_shutdown = ended.append
        bus.send(NcVnfEnd(target="node1", vnf_name="node1"))
        scheduler.run()
        assert ended == [daemon]
        assert not daemon.function_running
        # Further signals are ignored (daemon unregistered).
        bus.send(NcForwardTab(target="node1", table_text="1 x\n"))
        scheduler.run()
        assert vnf.forwarding_table.next_hops(1) == []
