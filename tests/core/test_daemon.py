"""Daemon signal-handling tests (§III-A)."""

import numpy as np
import pytest

from repro.core.daemon import VNF_START_LATENCY_S, VnfDaemon
from repro.core.signals import NcForwardTab, NcSettings, NcVnfEnd, SignalBus
from repro.core.vnf import CodingVnf, VnfRole


@pytest.fixture
def daemon_setup(scheduler, rng):
    bus = SignalBus(scheduler, latency_s=0.01)
    vnf = CodingVnf("node1", scheduler, rng=rng)
    daemon = VnfDaemon(vnf, bus)
    return bus, vnf, daemon


class TestSettings:
    def test_settings_configure_roles(self, daemon_setup, scheduler):
        bus, vnf, daemon = daemon_setup
        bus.send(NcSettings(target="node1", session_ids=(5,), roles=((5, "recoder"),), udp_port=52017))
        scheduler.run()
        assert vnf.roles[5] is VnfRole.RECODER

    def test_function_start_latency(self, daemon_setup, scheduler):
        bus, vnf, daemon = daemon_setup
        bus.send(NcSettings(target="node1", roles=((1, "forwarder"),)))
        scheduler.run(until=0.01 + VNF_START_LATENCY_S / 2)
        assert not daemon.function_running
        scheduler.run(until=0.01 + VNF_START_LATENCY_S + 0.01)
        assert daemon.function_running
        # ~376 ms, the §V-C5 measurement.
        assert daemon.started_at == pytest.approx(0.01 + VNF_START_LATENCY_S, abs=1e-6)


class TestForwardTab:
    def test_table_applied_when_running(self, daemon_setup, scheduler):
        bus, vnf, daemon = daemon_setup
        bus.send(NcSettings(target="node1", roles=((1, "recoder"),)))
        scheduler.run()
        bus.send(NcForwardTab(target="node1", table_text="1 hopA hopB\n"))
        scheduler.run()
        assert vnf.forwarding_table.next_hops(1) == ["hopA", "hopB"]
        assert daemon.applied_tables == 1
        assert daemon.total_pause_s > 0

    def test_table_before_start_is_deferred(self, daemon_setup, scheduler):
        bus, vnf, daemon = daemon_setup
        bus.send(NcForwardTab(target="node1", table_text="1 hopA\n"))
        scheduler.run(until=0.05)
        assert vnf.forwarding_table.next_hops(1) == []  # not yet applied
        bus.send(NcSettings(target="node1", roles=((1, "recoder"),)))
        scheduler.run()
        assert vnf.forwarding_table.next_hops(1) == ["hopA"]


class TestStaleConfigDefense:
    def _bring_up(self, bus, scheduler):
        bus.send(NcSettings(target="node1", roles=((1, "recoder"),)))
        scheduler.run()

    def test_older_epoch_table_is_rejected(self, daemon_setup, scheduler):
        bus, vnf, daemon = daemon_setup
        self._bring_up(bus, scheduler)
        bus.send(NcForwardTab(target="node1", table_text="1 recovered\n", epoch=2))
        scheduler.run()
        # A pre-replan table delayed past the recovery push must not
        # clobber the recovered state.
        bus.send(NcForwardTab(target="node1", table_text="1 stale\n", epoch=1))
        scheduler.run()
        assert vnf.forwarding_table.next_hops(1) == ["recovered"]
        assert daemon.stale_rejected == 1
        assert daemon.config_epoch == 2

    def test_equal_epoch_is_accepted(self, daemon_setup, scheduler):
        # Table + settings of one controller push share an epoch, and
        # epoch-0 senders predating the protocol keep working.
        bus, vnf, daemon = daemon_setup
        self._bring_up(bus, scheduler)
        bus.send(NcForwardTab(target="node1", table_text="1 a\n", epoch=3))
        bus.send(NcForwardTab(target="node1", table_text="1 b\n", epoch=3))
        scheduler.run()
        assert vnf.forwarding_table.next_hops(1) == ["b"]
        assert daemon.stale_rejected == 0

    def test_stale_settings_do_not_reconfigure(self, daemon_setup, scheduler):
        bus, vnf, daemon = daemon_setup
        bus.send(NcSettings(target="node1", roles=((1, "recoder"),), epoch=5))
        scheduler.run()
        bus.send(NcSettings(target="node1", roles=((1, "forwarder"),), epoch=4))
        scheduler.run()
        assert vnf.roles[1] is VnfRole.RECODER
        assert daemon.stale_rejected == 1

    def test_restart_forgets_epoch(self, daemon_setup, scheduler):
        # Supervisor-restart amnesia: a fresh daemon process accepts
        # whatever epoch the controller sends next.
        bus, vnf, daemon = daemon_setup
        self._bring_up(bus, scheduler)
        bus.send(NcForwardTab(target="node1", table_text="1 x\n", epoch=7))
        scheduler.run()
        daemon.kill()
        daemon.restart()
        assert daemon.config_epoch == 0
        bus.send(NcSettings(target="node1", roles=((1, "recoder"),), epoch=1))
        scheduler.run()
        assert daemon.stale_rejected == 0


class TestFencedConfigDefense:
    """Shard-era split-brain defense: configs order by (fence, epoch)."""

    def _bring_up(self, bus, scheduler):
        bus.send(NcSettings(target="node1", roles=((1, "recoder"),)))
        scheduler.run()

    def test_new_fence_dominates_any_old_epoch(self, daemon_setup, scheduler):
        bus, vnf, daemon = daemon_setup
        self._bring_up(bus, scheduler)
        bus.send(NcForwardTab(target="node1", table_text="1 old\n", epoch=50, fence=1))
        scheduler.run()
        # The takeover successor restarts low in epoch but carries the
        # bumped fence — it must still win against epoch 50.
        bus.send(NcForwardTab(target="node1", table_text="1 successor\n", epoch=1, fence=2))
        scheduler.run()
        assert vnf.forwarding_table.next_hops(1) == ["successor"]
        assert daemon.config_fence == 2
        assert daemon.stale_rejected == 0

    def test_deposed_primary_table_rejected_whatever_its_epoch(self, daemon_setup, scheduler):
        bus, vnf, daemon = daemon_setup
        self._bring_up(bus, scheduler)
        bus.send(NcForwardTab(target="node1", table_text="1 successor\n", epoch=1, fence=2))
        scheduler.run()
        # The zombie kept counting: huge epoch, stale fence. Fenced out.
        bus.send(NcForwardTab(target="node1", table_text="1 zombie\n", epoch=999, fence=1))
        scheduler.run()
        assert vnf.forwarding_table.next_hops(1) == ["successor"]
        assert daemon.stale_rejected == 1
        assert daemon.config_fence == 2

    def test_same_fence_keeps_epoch_ordering(self, daemon_setup, scheduler):
        bus, vnf, daemon = daemon_setup
        self._bring_up(bus, scheduler)
        bus.send(NcForwardTab(target="node1", table_text="1 newer\n", epoch=4, fence=2))
        scheduler.run()
        bus.send(NcForwardTab(target="node1", table_text="1 older\n", epoch=3, fence=2))
        scheduler.run()
        assert vnf.forwarding_table.next_hops(1) == ["newer"]
        assert daemon.stale_rejected == 1

    def test_stale_fenced_settings_rejected(self, daemon_setup, scheduler):
        bus, vnf, daemon = daemon_setup
        bus.send(NcSettings(target="node1", roles=((1, "recoder"),), epoch=2, fence=3))
        scheduler.run()
        bus.send(NcSettings(target="node1", roles=((1, "forwarder"),), epoch=9, fence=2))
        scheduler.run()
        assert vnf.roles[1] is VnfRole.RECODER
        assert daemon.stale_rejected == 1

    def test_restart_forgets_fence_with_epoch(self, daemon_setup, scheduler):
        bus, vnf, daemon = daemon_setup
        self._bring_up(bus, scheduler)
        bus.send(NcForwardTab(target="node1", table_text="1 x\n", epoch=7, fence=4))
        scheduler.run()
        stale_before = daemon.stale_rejected
        daemon.kill()
        daemon.restart()
        assert daemon.config_fence == 0
        assert daemon.config_epoch == 0
        assert daemon.stale_rejected == stale_before  # the tally survives
        bus.send(NcSettings(target="node1", roles=((1, "recoder"),), epoch=1, fence=1))
        scheduler.run()
        assert daemon.stale_rejected == stale_before


class TestDuplicateDelivery:
    def test_redelivered_signal_is_dropped(self, daemon_setup, scheduler):
        bus, vnf, daemon = daemon_setup
        bus.send(NcSettings(target="node1", roles=((1, "recoder"),)))
        scheduler.run()
        table = NcForwardTab(target="node1", table_text="1 hopA\n")
        bus.send(table)
        bus.send(table)  # at-least-once retry re-sends the same signal
        scheduler.run()
        assert daemon.applied_tables == 1  # the SIGUSR1 pause was paid once
        assert daemon.duplicate_dropped == 1

    def test_equal_but_distinct_signals_both_apply(self, daemon_setup, scheduler):
        # Dedup keys on signal identity, not content equality: the
        # controller may legitimately re-push identical table text.
        bus, vnf, daemon = daemon_setup
        bus.send(NcSettings(target="node1", roles=((1, "recoder"),)))
        scheduler.run()
        first = NcForwardTab(target="node1", table_text="1 hopA\n")
        second = NcForwardTab(target="node1", table_text="1 hopA\n")
        assert first == second  # content-equal…
        bus.send(first)
        bus.send(second)
        scheduler.run()
        assert daemon.applied_tables == 2  # …but both deliveries count
        assert daemon.duplicate_dropped == 0

    def test_restart_clears_dedup_window(self, daemon_setup, scheduler):
        bus, vnf, daemon = daemon_setup
        settings = NcSettings(target="node1", roles=((1, "recoder"),))
        bus.send(settings)
        scheduler.run()
        daemon.kill()
        daemon.restart()
        bus.send(settings)  # controller re-sends after the restart
        scheduler.run()
        assert daemon.duplicate_dropped == 0
        assert vnf.roles[1] is VnfRole.RECODER


class TestVnfEnd:
    def test_end_unregisters_and_notifies(self, daemon_setup, scheduler):
        bus, vnf, daemon = daemon_setup
        ended = []
        daemon.on_shutdown = ended.append
        bus.send(NcVnfEnd(target="node1", vnf_name="node1"))
        scheduler.run()
        assert ended == [daemon]
        assert not daemon.function_running
        # Further signals are ignored (daemon unregistered).
        bus.send(NcForwardTab(target="node1", table_text="1 x\n"))
        scheduler.run()
        assert vnf.forwarding_table.next_hops(1) == []
