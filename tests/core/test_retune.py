"""Mid-session retune semantics: generation boundaries only, never mid-block.

The adaptive controller (DESIGN.md §15) retunes generation size and
redundancy while packets are in flight.  A generation is an algebraic
unit — its decoder dimensions are fixed by the headers that opened it —
so a retune must never touch per-generation coding state that already
exists.  These tests pin the staging contract at all three application
points: the VNF data plane (:meth:`CodingVnf.retune_session`), the
daemon's ``NC_SETTINGS`` path (:meth:`VnfDaemon._stage_retunes` via the
bus), and the source application (:meth:`NcSourceApp.retune_coding`).
"""

import dataclasses

import numpy as np
import pytest

from repro.apps.file_transfer import NcReceiverApp, NcSourceApp
from repro.core.daemon import VnfDaemon
from repro.core.forwarding import ForwardingTable
from repro.core.session import CodingConfig, MulticastSession
from repro.core.signals import NcSettings, SignalBus
from repro.core.vnf import NC_PORT, CodingVnf, VnfRole
from repro.net import LinkSpec, Topology
from repro.rlnc import Encoder, Generation
from repro.rlnc.redundancy import RedundancyPolicy


def make_chain(rng):
    """src host -> recoding vnf -> dst host."""
    topo = Topology(rng=rng)
    topo.add_node("src")
    vnf = CodingVnf("vnf", topo.scheduler, rng=rng)
    topo.add_node(vnf)
    topo.add_node("dst")
    for a, b in (("src", "vnf"), ("vnf", "dst")):
        topo.add_link(LinkSpec(a, b, 100.0, 1.0))
    vnf.forwarding_table = ForwardingTable({1: ["dst"]})
    return topo, vnf


def feed(topo, rng, config, generation_id, count, k=None):
    k = k if k is not None else config.blocks_per_generation
    gen = Generation(generation_id, rng.integers(0, 256, (k, config.block_bytes), dtype=np.uint8))
    enc = Encoder(1, gen, rng=rng)
    for _ in range(count):
        topo.get("src").send("vnf", enc.next_packet(), 64, dst_port=NC_PORT)


class TestVnfBoundaryRetune:
    def test_retune_defers_until_new_generation(self, rng):
        topo, vnf = make_chain(rng)
        old = CodingConfig(block_bytes=32, blocks_per_generation=4)
        vnf.configure_session(1, VnfRole.RECODER, old)
        # Open generation 0 mid-flight...
        feed(topo, rng, old, 0, 2)
        topo.run()
        new = dataclasses.replace(old, blocks_per_generation=8, redundancy=RedundancyPolicy(2))
        vnf.retune_session(1, new)
        # ...the staged retune must not touch the live config while
        # generation 0's recoder state exists and keeps absorbing.
        assert vnf.configs[1] == old
        assert vnf.retunes_applied == 0
        feed(topo, rng, old, 0, 2)
        topo.run()
        assert vnf.configs[1] == old  # same generation: still pending
        # The first packet of an unseen generation crosses the boundary.
        feed(topo, rng, new, 1, 1, k=8)
        topo.run()
        assert vnf.configs[1] == new
        assert vnf.retunes_applied == 1

    def test_later_retune_wins(self, rng):
        topo, vnf = make_chain(rng)
        old = CodingConfig(block_bytes=32, blocks_per_generation=4)
        vnf.configure_session(1, VnfRole.RECODER, old)
        vnf.retune_session(1, dataclasses.replace(old, blocks_per_generation=8))
        final = dataclasses.replace(old, blocks_per_generation=16)
        vnf.retune_session(1, final)  # supersedes the first staging
        feed(topo, rng, old, 0, 1)
        topo.run()
        assert vnf.configs[1] == final
        assert vnf.retunes_applied == 1

    def test_unknown_session_rejected(self, rng):
        topo, vnf = make_chain(rng)
        with pytest.raises(KeyError):
            vnf.retune_session(7, CodingConfig())

    def test_drop_session_clears_pending(self, rng):
        topo, vnf = make_chain(rng)
        old = CodingConfig(block_bytes=32, blocks_per_generation=4)
        vnf.configure_session(1, VnfRole.RECODER, old)
        vnf.retune_session(1, dataclasses.replace(old, blocks_per_generation=8))
        vnf.drop_session(1)
        vnf.configure_session(1, VnfRole.RECODER, old)
        feed(topo, rng, old, 0, 1)
        topo.run()
        # The dropped session's staging must not leak into the re-add.
        assert vnf.configs[1] == old
        assert vnf.retunes_applied == 0


class TestDaemonStageRetunes:
    @pytest.fixture
    def setup(self, scheduler, rng):
        bus = SignalBus(scheduler, latency_s=0.01)
        vnf = CodingVnf("node1", scheduler, rng=rng)
        daemon = VnfDaemon(vnf, bus)
        bus.send(NcSettings(target="node1", roles=((1, "recoder"), (2, "recoder"))))
        scheduler.run()
        return bus, vnf, daemon

    def test_settings_retune_stages_on_existing_sessions(self, setup, scheduler):
        bus, vnf, daemon = setup
        bus.send(
            NcSettings(
                target="node1", session_ids=(1,), blocks_per_generation=8, redundancy_extra=3
            )
        )
        scheduler.run()
        assert daemon.retunes_staged == 1
        # Staged, not applied: the data plane waits for the boundary.
        assert vnf.configs[1].blocks_per_generation != 8 or vnf.retunes_applied == 1
        pending = vnf._pending_retunes[1]
        assert pending.blocks_per_generation == 8
        assert pending.redundancy.extra == 3
        assert 2 not in vnf._pending_retunes  # only the addressed session
        # The daemon's own config mirror tracks the retune for re-push.
        assert daemon.session_configs[1].blocks_per_generation == 8

    def test_retune_without_session_ids_targets_all(self, setup, scheduler):
        bus, vnf, daemon = setup
        bus.send(NcSettings(target="node1", redundancy_extra=2))
        scheduler.run()
        assert daemon.retunes_staged == 2
        assert vnf._pending_retunes[1].redundancy.extra == 2
        assert vnf._pending_retunes[2].redundancy.extra == 2
        # Only the redundancy changed; generation size was untouched.
        assert vnf._pending_retunes[1].blocks_per_generation == vnf.configs[1].blocks_per_generation

    def test_freshly_configured_sessions_skip_retune(self, setup, scheduler):
        bus, vnf, daemon = setup
        # One signal both configures session 3 and retunes: the fresh
        # role already carries its full config, so no staging for it.
        bus.send(
            NcSettings(target="node1", roles=((3, "recoder"),), blocks_per_generation=8)
        )
        scheduler.run()
        assert 3 not in vnf._pending_retunes
        assert daemon.retunes_staged == 2  # the two pre-existing sessions

    def test_plain_settings_stage_nothing(self, setup, scheduler):
        bus, vnf, daemon = setup
        bus.send(NcSettings(target="node1", session_ids=(1,)))
        scheduler.run()
        assert daemon.retunes_staged == 0
        assert not vnf._pending_retunes


class TestSourceRetune:
    def _transfer(self, rng):
        topo = Topology(rng=rng)
        topo.add_node("src")
        topo.add_node("dst")
        topo.add_link(LinkSpec("src", "dst", 100.0, 1.0))
        topo.add_link(LinkSpec("dst", "src", 100.0, 1.0))
        config = CodingConfig(block_bytes=64, blocks_per_generation=4)
        session = MulticastSession(source="src", receivers=["dst"], coding=config)
        receiver = NcReceiverApp(
            topo.get("dst"), session, payload_mode="coefficients-only", ack_to="src"
        )
        source = NcSourceApp(
            topo.get("src"),
            session,
            link_shares={"dst": 10.0},
            data_rate_mbps=10.0,
            payload_mode="coefficients-only",
            rng=rng,
        )
        return topo, session, source, receiver

    def test_retune_applies_at_next_generation(self, rng):
        topo, session, source, receiver = self._transfer(rng)
        source.start()
        topo.run(until=0.05)
        assert source.sent_generations >= 1
        seen_before = source.sent_generations
        new = dataclasses.replace(session.coding, blocks_per_generation=8)
        source.retune_coding(new, link_shares={"dst": 20.0})
        assert session.coding.blocks_per_generation == 4  # staged only
        topo.run(until=1.0)
        assert source.coding_retunes == 1
        assert session.coding.blocks_per_generation == 8
        # Every generation decodes at the size it was emitted with —
        # boundary application means one clean cutover generation, with
        # every earlier generation at the old k and every later one at
        # the new k (no generation ever mixes sizes).
        sizes = [receiver.completed_bytes[g] for g in sorted(receiver.completed_bytes)]
        assert set(sizes) == {4 * 64, 8 * 64}
        cutover = sizes.index(8 * 64)
        assert all(s == 4 * 64 for s in sizes[:cutover])
        assert all(s == 8 * 64 for s in sizes[cutover:])
        assert cutover >= seen_before  # never before the staging point

    def test_completed_bytes_track_the_emitting_config(self, rng):
        topo, session, source, receiver = self._transfer(rng)
        source.start()
        topo.run(until=0.05)
        new = dataclasses.replace(session.coding, blocks_per_generation=8)
        source.retune_coding(new)
        topo.run(until=1.0)
        sizes = set(receiver.completed_bytes.values())
        # Both generation sizes completed, each credited at its own k.
        assert 4 * 64 in sizes and 8 * 64 in sizes
