"""Hypothesis property tests for forwarding tables and the buffer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.forwarding import ForwardingTable
from repro.net.buffer import GenerationBuffer

hop_name = st.text(alphabet="abcdefghij", min_size=1, max_size=6)
table_entries = st.dictionaries(
    keys=st.integers(min_value=0, max_value=1000),
    values=st.lists(hop_name, min_size=0, max_size=4, unique=True),
    max_size=12,
)


@given(entries=table_entries)
@settings(max_examples=80, deadline=None)
def test_serialize_parse_roundtrip(entries):
    table = ForwardingTable(entries)
    parsed = ForwardingTable.parse(table.serialize())
    assert parsed.entries == table.entries


@given(entries=table_entries)
@settings(max_examples=50, deadline=None)
def test_diff_with_self_is_zero(entries):
    table = ForwardingTable(entries)
    assert table.diff_entries(table.copy()) == 0
    assert table.update_fraction(table.copy()) == 0.0


@given(a=table_entries, b=table_entries)
@settings(max_examples=50, deadline=None)
def test_diff_is_symmetric(a, b):
    ta, tb = ForwardingTable(a), ForwardingTable(b)
    assert ta.diff_entries(tb) == tb.diff_entries(ta)


@given(
    capacity=st.integers(min_value=1, max_value=16),
    operations=st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=200),
)
@settings(max_examples=60, deadline=None)
def test_buffer_never_exceeds_capacity(capacity, operations):
    buf = GenerationBuffer(capacity)
    for gen_id in operations:
        buf.add(gen_id, object())
        assert len(buf) <= capacity
    # Stored packet count is consistent with the per-generation lists.
    assert buf.stored_packets == sum(len(buf.packets(g)) for g in buf.generations())


@given(
    capacity=st.integers(min_value=1, max_value=8),
    gen_ids=st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=60, unique=True),
)
@settings(max_examples=50, deadline=None)
def test_buffer_keeps_most_recent_insertions(capacity, gen_ids):
    # Reference model of the FIFO + stale-refusal semantics: inserting
    # evicts the oldest bucket when full, and a straggler at or below
    # the eviction high-water mark is refused (DESIGN.md §11) — it must
    # not displace a live generation.
    buf = GenerationBuffer(capacity)
    expected = []
    highest_evicted = -1
    for g in gen_ids:
        accepted = buf.add(g, "p")
        if g <= highest_evicted:
            assert not accepted
            continue
        assert accepted
        if len(expected) >= capacity:
            evicted = expected.pop(0)
            highest_evicted = max(highest_evicted, evicted)
        expected.append(g)
    assert list(buf.generations()) == expected
    # Every id was accepted once (and either survived or was evicted) or
    # refused as stale; nothing is double-counted.
    assert buf.rejected_stale == len(gen_ids) - len(expected) - buf.evicted_generations
