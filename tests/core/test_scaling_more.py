"""Additional scaling-engine coverage: unaffected samples, event log shape."""

import numpy as np
import pytest

from repro.cloud import CloudProvider, DataCenter
from repro.core import Controller, MulticastSession, ScalingConfig, ScalingEngine
from repro.core.deployment import DataCenterSpec

RELAYS = ["O1", "C1", "T", "V2"]


@pytest.fixture
def engine(butterfly_graph, scheduler):
    providers = {
        name: CloudProvider(f"p-{name}", scheduler, [DataCenter(name)], rng=np.random.default_rng(3))
        for name in RELAYS
    }
    controller = Controller(
        butterfly_graph.copy(),
        [DataCenterSpec(n, 900, 900, 900) for n in RELAYS],
        scheduler,
        alpha=1.0,
        providers=providers,
    )
    return ScalingEngine(controller, ScalingConfig(tau1_s=30.0, tau2_s=30.0))


class TestNoSessionPaths:
    def test_bandwidth_change_with_no_sessions(self, engine, scheduler):
        # Sustained change but nothing routed: nothing to re-solve.
        engine.on_bandwidth_sample("T", 400.0, 400.0)
        scheduler.run(until=60.0)
        fired = engine.on_bandwidth_sample("T", 400.0, 400.0)
        assert not fired
        assert engine.events[-1].detail["action"] == "no-affected-sessions"
        # The belief was still updated (measurements are truth).
        assert engine.controller.datacenters["T"].inbound_mbps == 400.0

    def test_delay_change_with_no_sessions(self, engine, scheduler):
        engine.on_delay_sample(("T", "V2"), 200.0)
        scheduler.run(until=60.0)
        fired = engine.on_delay_sample(("T", "V2"), 200.0)
        assert not fired
        assert engine.controller.graph.edges[("T", "V2")]["delay_ms"] == 200.0


class TestEventLog:
    def test_events_carry_timestamps(self, engine, scheduler):
        scheduler.run(until=12.0)
        session = MulticastSession(source="V1", receivers=["O2", "C2"], max_delay_ms=250.0)
        engine.on_session_join(session)
        assert engine.events[-1].time == pytest.approx(12.0)

    def test_bandwidth_events_record_objectives(self, engine, scheduler):
        session = MulticastSession(source="V1", receivers=["O2", "C2"], max_delay_ms=250.0)
        engine.on_session_join(session)
        scheduler.run(until=60.0)
        engine.on_bandwidth_sample("T", 450.0, 450.0)
        scheduler.run(until=120.0)
        engine.on_bandwidth_sample("T", 450.0, 450.0)
        events = [e for e in engine.events if e.kind == "bandwidth"]
        assert events
        assert {"old_objective", "new_objective"} <= set(events[-1].detail) or events[-1].detail[
            "action"
        ] == "no-affected-sessions"


class TestSessionsNear:
    def test_interdc_link_affects_all_sessions(self, engine):
        session = MulticastSession(source="V1", receivers=["O2", "C2"], max_delay_ms=250.0)
        engine.on_session_join(session)
        assert session.session_id in engine._sessions_near(("T", "V2"))

    def test_endpoint_link_affects_only_its_session(self, engine):
        s1 = MulticastSession(source="V1", receivers=["O2"], max_delay_ms=250.0)
        engine.on_session_join(s1)
        near = engine._sessions_near(("V2", "O2"))
        assert s1.session_id in near
