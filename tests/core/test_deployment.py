"""Problem (2) optimizer tests."""

import pytest

from repro.core.deployment import DataCenterSpec, DeploymentProblem
from repro.core.session import MulticastSession

RELAYS = ["O1", "C1", "T", "V2"]


def make_problem(graph, alpha=1.0, **kwargs):
    dcs = [DataCenterSpec(n, 900, 900, 900) for n in RELAYS]
    return DeploymentProblem(graph, dcs, alpha=alpha, **kwargs)


def butterfly_session(lmax=250.0, fixed=None):
    return MulticastSession(source="V1", receivers=["O2", "C2"], max_delay_ms=lmax, fixed_rate_mbps=fixed)


class TestBasicSolve:
    def test_achieves_multicast_capacity(self, butterfly_graph):
        problem = make_problem(butterfly_graph)
        session = butterfly_session()
        plan = problem.solve([problem.build_demand(session)])
        assert plan.lambdas[session.session_id] == pytest.approx(70.0, rel=1e-6)

    def test_flows_respect_capacities(self, butterfly_graph):
        problem = make_problem(butterfly_graph)
        session = butterfly_session()
        plan = problem.solve([problem.build_demand(session)])
        plan.decompositions[session.session_id].validate(
            bandwidth_of=lambda e: butterfly_graph.edges[e]["capacity_mbps"]
        )

    def test_vnfs_deployed_where_flows_go(self, butterfly_graph):
        problem = make_problem(butterfly_graph)
        session = butterfly_session()
        plan = problem.solve([problem.build_demand(session)])
        assert plan.vnfs_at("T") >= 1
        assert plan.total_vnfs >= 4  # all four relays used at the optimum

    def test_delay_bound_restricts_throughput(self, butterfly_graph):
        problem = make_problem(butterfly_graph)
        # Only the 2-hop relay paths fit in 110 ms (O1->O2 ≈ 47+...):
        session = butterfly_session(lmax=70.0)
        plan = problem.solve([problem.build_demand(session)])
        assert plan.lambdas[session.session_id] < 70.0

    def test_infeasible_delay_gives_zero(self, butterfly_graph):
        problem = make_problem(butterfly_graph)
        session = butterfly_session(lmax=10.0)
        plan = problem.solve([problem.build_demand(session)])
        assert plan.lambdas[session.session_id] == 0.0
        assert plan.total_vnfs == 0


class TestAlphaTradeoff:
    def test_high_alpha_kills_deployment(self, butterfly_graph):
        # There is no direct V1->O2/C2 edge in the butterfly graph, so at
        # absurd α the optimum is no VNFs and zero throughput.
        problem = make_problem(butterfly_graph, alpha=1000.0)
        session = butterfly_session()
        plan = problem.solve([problem.build_demand(session)])
        assert plan.total_vnfs == 0
        assert plan.lambdas[session.session_id] == pytest.approx(0.0, abs=1e-6)

    def test_throughput_monotone_in_alpha(self, butterfly_graph):
        rates = []
        for alpha in (0.0, 10.0, 30.0, 1000.0):
            problem = make_problem(butterfly_graph, alpha=alpha)
            session = butterfly_session()
            plan = problem.solve([problem.build_demand(session)])
            rates.append(plan.lambdas[session.session_id])
        assert rates == sorted(rates, reverse=True)


class TestFixedRate:
    def test_fixed_rate_session_routed(self, butterfly_graph):
        problem = make_problem(butterfly_graph)
        session = butterfly_session(fixed=20.0)
        plan = problem.solve([problem.build_demand(session)])
        assert plan.lambdas[session.session_id] == pytest.approx(20.0)
        decomposition = plan.decompositions[session.session_id]
        for flow in decomposition.flows.values():
            assert flow.rate() >= 20.0 - 1e-6

    def test_fixed_rate_uses_fewer_vnfs_than_max(self, butterfly_graph):
        problem = make_problem(butterfly_graph)
        full = problem.solve([problem.build_demand(butterfly_session())])
        modest = problem.solve([problem.build_demand(butterfly_session(fixed=20.0))])
        assert modest.total_vnfs <= full.total_vnfs

    def test_infeasible_fixed_rate_raises(self, butterfly_graph):
        from repro.lp import SolveError

        problem = make_problem(butterfly_graph)
        session = butterfly_session(fixed=500.0)
        with pytest.raises(SolveError):
            problem.solve([problem.build_demand(session)])


class TestIncremental:
    def test_frozen_flows_consume_capacity(self, butterfly_graph):
        problem = make_problem(butterfly_graph)
        s1 = butterfly_session()
        plan1 = problem.solve([problem.build_demand(s1)])
        s2 = butterfly_session()
        plan2 = problem.solve([problem.build_demand(s2)], frozen=[plan1])
        # Session 1 ate the whole butterfly; session 2 gets nothing.
        assert plan2.lambdas[s2.session_id] == pytest.approx(0.0, abs=1e-5)

    def test_baseline_vnfs_are_free(self, butterfly_graph):
        problem = make_problem(butterfly_graph, alpha=30.0)
        session = butterfly_session()
        baseline = {name: 2 for name in RELAYS}
        plan = problem.solve([problem.build_demand(session)], baseline_vnfs=baseline)
        # With capacity already paid for, the solver routes at full rate.
        assert plan.lambdas[session.session_id] == pytest.approx(70.0, rel=1e-6)

    def test_fixed_vnfs_pins_deployment(self, butterfly_graph):
        problem = make_problem(butterfly_graph)
        session = butterfly_session()
        fixed = {"O1": 1, "C1": 1, "T": 0, "V2": 0}
        plan = problem.solve([problem.build_demand(session)], fixed_vnfs=fixed)
        assert plan.vnf_counts == {"O1": 1, "C1": 1, "T": 0, "V2": 0}
        # Without T/V2 the relayed paths vanish: only 2-hop paths remain.
        assert plan.lambdas[session.session_id] <= 70.0


class TestMultiSession:
    def test_two_sessions_share_capacity(self, butterfly_graph):
        problem = make_problem(butterfly_graph)
        s1 = butterfly_session()
        s2 = butterfly_session()
        plan = problem.solve([problem.build_demand(s1), problem.build_demand(s2)])
        total = plan.lambdas[s1.session_id] + plan.lambdas[s2.session_id]
        assert total <= 70.0 + 1e-6

    def test_merged_with(self, butterfly_graph):
        problem = make_problem(butterfly_graph)
        s1 = butterfly_session()
        plan1 = problem.solve([problem.build_demand(s1)])
        s2 = butterfly_session()
        plan2 = problem.solve([problem.build_demand(s2)], frozen=[plan1])
        merged = plan1.merged_with(plan2)
        assert set(merged.lambdas) == {s1.session_id, s2.session_id}
        for name in RELAYS:
            assert merged.vnfs_at(name) == max(plan1.vnfs_at(name), plan2.vnfs_at(name))


class TestValidationErrors:
    def test_no_datacenters(self, butterfly_graph):
        with pytest.raises(ValueError):
            DeploymentProblem(butterfly_graph, [], alpha=1.0)

    def test_unknown_datacenter(self, butterfly_graph):
        with pytest.raises(ValueError):
            DeploymentProblem(butterfly_graph, [DataCenterSpec("nowhere", 1, 1, 1)])

    def test_negative_alpha(self, butterfly_graph):
        with pytest.raises(ValueError):
            make_problem(butterfly_graph, alpha=-1.0)

    def test_bad_spec(self):
        with pytest.raises(ValueError):
            DataCenterSpec("x", 0, 1, 1)
