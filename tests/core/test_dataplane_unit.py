"""Unit-level tests for plan instantiation details."""

import pytest

from repro.core.dataplane import build_data_plane
from repro.core.deployment import DataCenterSpec, DeploymentPlan, DeploymentProblem
from repro.core.session import MulticastSession
from repro.core.vnf import VnfRole


@pytest.fixture
def solved(butterfly_graph):
    problem = DeploymentProblem(
        butterfly_graph, [DataCenterSpec(n, 900, 900, 900) for n in ["O1", "C1", "T", "V2"]], alpha=1.0
    )
    session = MulticastSession(source="V1", receivers=["O2", "C2"], max_delay_ms=250.0)
    plan = problem.solve([problem.build_demand(session)])
    return butterfly_graph, session, plan


class TestConstruction:
    def test_only_used_links_materialize(self, solved):
        graph, session, plan = solved
        live = build_data_plane(plan, graph, [session])
        data_links = [(u, v) for (u, v) in live.topology.links if (u, v) in graph.edges]
        used = {e for e, r in plan.decompositions[session.session_id].link_rates().items() if r > 1e-9}
        assert set(data_links) == used

    def test_reverse_control_links_added(self, solved):
        graph, session, plan = solved
        live = build_data_plane(plan, graph, [session])
        assert ("O2", "V2") in live.topology.links or ("O2", "O1") in live.topology.links

    def test_roles_follow_merge_structure(self, solved):
        graph, session, plan = solved
        live = build_data_plane(plan, graph, [session])
        roles = {name: vnfs[0].roles[session.session_id] for name, vnfs in live.vnfs.items()}
        # T merges two flows; the others see a single incoming flow.
        assert roles["T"] is VnfRole.RECODER
        assert roles["O1"] is VnfRole.FORWARDER
        assert roles["C1"] is VnfRole.FORWARDER

    def test_forwarding_tables_match_flows(self, solved):
        graph, session, plan = solved
        live = build_data_plane(plan, graph, [session])
        sid = session.session_id
        assert set(live.vnfs["V2"][0].forwarding_table.next_hops(sid)) == {"O2", "C2"}
        assert live.vnfs["T"][0].forwarding_table.next_hops(sid) == ["V2"]

    def test_shaping_only_at_constricted_hops(self, solved):
        graph, session, plan = solved
        live = build_data_plane(plan, graph, [session])
        sid = session.session_id
        assert (sid, "V2") in live.vnfs["T"][0]._hop_shapes
        assert not live.vnfs["O1"][0]._hop_shapes  # 1:1 relay, no shaping

    def test_source_shares_scaled(self, solved):
        graph, session, plan = solved
        live = build_data_plane(plan, graph, [session], rate_fraction=0.5)
        source = live.sources[session.session_id]
        assert sum(s.rate_mbps for s in source.shares) == pytest.approx(70.0 * 0.5)
        assert source.data_rate_mbps == pytest.approx(35.0)

    def test_unknown_session_throughput_raises(self, solved):
        graph, session, plan = solved
        live = build_data_plane(plan, graph, [session])
        with pytest.raises(KeyError):
            live.session_throughput_mbps(9999)

    def test_zero_rate_session_skipped(self, butterfly_graph):
        # A plan with no routed flow produces an empty (but valid) deployment.
        session = MulticastSession(source="V1", receivers=["O2"], max_delay_ms=250.0)
        plan = DeploymentPlan(lambdas={session.session_id: 0.0}, decompositions={})
        live = build_data_plane(plan, butterfly_graph, [session])
        assert live.sources == {}
        assert live.receivers == {}
