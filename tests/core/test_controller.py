"""Controller tests: session lifecycle, fleet reconciliation, tables."""

import numpy as np
import pytest

from repro.cloud import CloudProvider, DataCenter
from repro.core import Controller, MulticastSession
from repro.core.deployment import DataCenterSpec

RELAYS = ["O1", "C1", "T", "V2"]


@pytest.fixture
def controller(butterfly_graph, scheduler, rng):
    providers = {
        name: CloudProvider(f"p-{name}", scheduler, [DataCenter(name)], rng=np.random.default_rng(9))
        for name in RELAYS
    }
    return Controller(
        butterfly_graph.copy(),
        [DataCenterSpec(n, 900, 900, 900) for n in RELAYS],
        scheduler,
        alpha=1.0,
        providers=providers,
    )


def butterfly_session():
    return MulticastSession(source="V1", receivers=["O2", "C2"], max_delay_ms=250.0)


class TestSessionLifecycle:
    def test_add_session_routes_and_deploys(self, controller, scheduler):
        session = butterfly_session()
        plan = controller.add_session(session)
        assert plan.lambdas[session.session_id] == pytest.approx(70.0, rel=1e-6)
        assert sum(controller.required_vnf_counts().values()) >= 4
        scheduler.run(until=60.0)
        running = controller.running_vnf_counts()
        assert all(running[n] >= 1 for n in RELAYS)

    def test_duplicate_session_rejected(self, controller):
        session = butterfly_session()
        controller.add_session(session)
        with pytest.raises(ValueError):
            controller.add_session(session)

    def test_nc_start_signal_sent(self, controller):
        session = butterfly_session()
        controller.add_session(session)
        starts = controller.bus.sent_of_kind("NcStart")
        assert len(starts) == 1
        assert starts[0].signal.target == "V1"

    def test_remove_session_recycles(self, controller, scheduler):
        session = butterfly_session()
        controller.add_session(session)
        scheduler.run(until=60.0)
        result = controller.remove_session(session.session_id)
        assert result["chosen"] in ("g1", "g2")
        assert controller.required_vnf_counts() == {n: 0 for n in RELAYS}
        # τ grace first, then termination.
        scheduler.run(until=60.0 + 601.0)
        assert all(len(s.running_or_pending()) == 0 for s in controller.fleet.values())

    def test_unknown_session_removal(self, controller):
        with pytest.raises(ValueError):
            controller.remove_session(999)

    def test_receiver_join_reroutes(self, controller, scheduler):
        # Third receiver colocated at T's egress: attach a new edge first.
        controller.graph.add_edge("V2", "X", capacity_mbps=35.0, delay_ms=10.0)
        session = butterfly_session()
        controller.add_session(session)
        plan = controller.add_receiver(session.session_id, "X")
        assert "X" in controller.sessions[session.session_id].receivers
        assert plan.lambdas[session.session_id] > 0

    def test_receiver_quit(self, controller):
        controller.graph.add_edge("V2", "X", capacity_mbps=35.0, delay_ms=10.0)
        session = butterfly_session()
        controller.add_session(session)
        controller.add_receiver(session.session_id, "X")
        result = controller.remove_receiver(session.session_id, "X")
        assert result["chosen"] in ("g1", "g2")
        assert "X" not in controller.sessions[session.session_id].receivers

    def test_receiver_quit_solves_exactly_the_rebalance_pair(self, controller):
        # Departure handling is Alg. 3 alone: one g1 solve + one g2
        # solve (+ one _store of the winner).  The old path ran an
        # extra per-session re-solve first — three LPs and a fleet
        # reconcile against a plan that was immediately replaced.
        controller.graph.add_edge("V2", "X", capacity_mbps=35.0, delay_ms=10.0)
        session = butterfly_session()
        controller.add_session(session)
        controller.add_receiver(session.session_id, "X")
        solves_before = controller.solves
        controller.remove_receiver(session.session_id, "X")
        assert controller.solves == solves_before + 1  # only the winning plan is stored


class TestFleet:
    def test_reuse_before_launch(self, controller, scheduler):
        session = butterfly_session()
        controller.add_session(session)
        scheduler.run(until=60.0)
        controller.remove_session(session.session_id)
        # All VMs are now STOPPING inside their grace window.
        api_calls_before = sum(p.api_calls for p in controller.providers.values())
        s2 = butterfly_session()
        controller.add_session(s2)
        api_calls_after = sum(p.api_calls for p in controller.providers.values())
        reused = sum(1 for st in controller.fleet.values() for vm in st.vms if vm.reuse_count)
        assert reused >= 4  # grace-window VMs got reused
        assert api_calls_after == api_calls_before  # no new launches

    def test_nc_vnf_signals_emitted(self, controller):
        session = butterfly_session()
        controller.add_session(session)
        assert controller.bus.sent_of_kind("NcVnfStart")
        controller.remove_session(session.session_id)
        assert controller.bus.sent_of_kind("NcVnfEnd")


class TestForwardingTables:
    def test_tables_follow_flows(self, controller):
        session = butterfly_session()
        controller.add_session(session)
        tables = controller.forwarding_tables()
        sid = session.session_id
        assert set(tables["V1"].next_hops(sid)) == {"O1", "C1"}
        assert "V2" in tables["T"].next_hops(sid)
        assert set(tables["V2"].next_hops(sid)) == {"O2", "C2"}

    def test_push_sends_signals(self, controller):
        session = butterfly_session()
        controller.add_session(session)
        count = controller.push_forwarding_tables()
        assert count >= 5  # V1 + four relays
        assert len(controller.bus.sent_of_kind("NcForwardTab")) == count


class TestObservations:
    def test_link_observation_updates_graph(self, controller):
        controller.observe_link(("T", "V2"), bandwidth_mbps=10.0, delay_ms=99.0)
        assert controller.graph.edges[("T", "V2")]["capacity_mbps"] == 10.0
        assert controller.graph.edges[("T", "V2")]["delay_ms"] == 99.0

    def test_unknown_link_rejected(self, controller):
        with pytest.raises(KeyError):
            controller.observe_link(("T", "nowhere"), bandwidth_mbps=1.0)

    def test_dc_caps_update(self, controller):
        controller.observe_datacenter_caps("T", inbound_mbps=100.0)
        assert controller.datacenters["T"].inbound_mbps == 100.0

    def test_achieved_throughput_tracks_reality(self, controller, scheduler):
        session = butterfly_session()
        controller.add_session(session)
        # Before any VM is RUNNING, nothing can be carried.
        assert controller.achieved_total_throughput_mbps() == pytest.approx(0.0)
        scheduler.run(until=60.0)
        assert controller.achieved_total_throughput_mbps() == pytest.approx(70.0, rel=1e-6)
        # Ground truth says T's VNF caps were halved: throughput scales.
        degraded = controller.achieved_total_throughput_mbps({"T": (450.0, 450.0)})
        assert degraded == pytest.approx(70.0, rel=1e-6)  # 450 still covers the 35 Mbps load
        crushed = controller.achieved_total_throughput_mbps({"T": (20.0, 20.0)})
        assert crushed < 70.0
