"""Extra controller coverage: settings push, empty-state behaviour."""

import numpy as np
import pytest

from repro.cloud import CloudProvider, DataCenter
from repro.core import Controller, MulticastSession
from repro.core.deployment import DataCenterSpec
from repro.core.vnf import VnfRole

RELAYS = ["O1", "C1", "T", "V2"]


@pytest.fixture
def controller(butterfly_graph, scheduler):
    providers = {
        name: CloudProvider(f"p-{name}", scheduler, [DataCenter(name)], rng=np.random.default_rng(2))
        for name in RELAYS
    }
    return Controller(
        butterfly_graph.copy(),
        [DataCenterSpec(n, 900, 900, 900) for n in RELAYS],
        scheduler,
        alpha=1.0,
        providers=providers,
    )


class TestSettingsPush:
    def test_push_settings_signal_contents(self, controller):
        session = MulticastSession(source="V1", receivers=["O2", "C2"], max_delay_ms=250.0)
        controller.push_settings(session, {"T": VnfRole.RECODER, "O1": VnfRole.FORWARDER})
        records = controller.bus.sent_of_kind("NcSettings")
        assert len(records) == 2
        by_target = {r.signal.target: r.signal for r in records}
        assert by_target["T"].roles == ((session.session_id, "recoder"),)
        assert by_target["T"].generation_bytes == 5840
        assert by_target["T"].block_bytes == 1460


class TestEmptyState:
    def test_totals_on_fresh_controller(self, controller):
        assert controller.total_throughput_mbps() == 0.0
        assert controller.total_vnfs() == 0
        assert controller.required_vnf_counts() == {n: 0 for n in RELAYS}
        assert controller.forwarding_tables() == {}
        assert controller.achieved_total_throughput_mbps() == 0.0

    def test_reconcile_noop_on_empty(self, controller):
        actions = controller.reconcile_fleet()
        assert actions == {"launched": 0, "reused": 0, "retired": 0}

    def test_resolve_all_with_no_sessions(self, controller):
        plan = controller.resolve_all()
        assert plan.total_throughput_mbps == 0.0


class TestProblemFactory:
    def test_alpha_override(self, controller):
        assert controller.problem().alpha == 1.0
        assert controller.problem(alpha=50.0).alpha == 50.0

    def test_graph_is_live_view(self, controller):
        # problem() must see measurement updates applied to the graph.
        controller.observe_link(("T", "V2"), bandwidth_mbps=1.0)
        session = MulticastSession(source="V1", receivers=["O2", "C2"], max_delay_ms=250.0)
        problem = controller.problem()
        demand = problem.build_demand(session)
        plan = problem.solve([demand])
        # With T->V2 crushed to 1 Mbps, the 70 Mbps optimum is gone.
        assert plan.lambdas[session.session_id] < 40.0


class TestRunningCounts:
    def test_pending_vms_do_not_carry_traffic(self, controller, scheduler):
        session = MulticastSession(source="V1", receivers=["O2", "C2"], max_delay_ms=250.0)
        controller.add_session(session)
        # VMs are PENDING: usable for planning, not for carrying.
        assert controller.total_vnfs() >= 4
        assert sum(controller.running_vnf_counts().values()) == 0
        scheduler.run(until=60.0)
        assert sum(controller.running_vnf_counts().values()) >= 4
