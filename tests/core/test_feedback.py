"""Generation-level feedback: NACK emit, retry cap, backoff, relay repair.

The data-plane half of the self-healing layer.  Receivers NACK stalled
generations with exponential backoff and a hard retry cap; sources
answer with fresh coded packets; recoding VNFs can optionally answer
from their buffered coded state (:class:`RepairingControlRelay`), with
the source remaining the repairer of last resort.
"""

import numpy as np
import pytest

from repro.apps.file_transfer import (
    ACK_PORT,
    ControlRelay,
    NcReceiverApp,
    NcSourceApp,
    RepairingControlRelay,
)
from repro.core.forwarding import ForwardingTable
from repro.core.session import CodingConfig, MulticastSession
from repro.core.vnf import NC_PORT, CodingVnf, VnfRole
from repro.net import LinkSpec, Topology
from repro.rlnc.encoder import Encoder
from repro.rlnc.generation import Generation


def make_session():
    return MulticastSession(source="src", receivers=["dst"], coding=CodingConfig())


def two_node_topology(rng):
    """src <-> dst with a control sink recording what reaches src."""
    topo = Topology(rng=rng)
    topo.add_node("src")
    topo.add_node("dst")
    topo.add_link(LinkSpec("src", "dst", 50.0, 5.0))
    topo.add_link(LinkSpec("dst", "src", 5.0, 5.0))
    control_log = []
    topo.get("src").listen(ACK_PORT, lambda dgram: control_log.append((topo.scheduler.now, dgram.payload)))
    return topo, control_log


def feed_packets(topo, receiver, session, generation_id, count, rng):
    """Deliver ``count`` coded packets of one generation to the receiver."""
    k = session.coding.blocks_per_generation
    data = rng.integers(0, 256, size=(k, 4), dtype=np.uint8)
    generation = Generation(generation_id=generation_id, blocks=data)
    encoder = Encoder(session.session_id, generation, field=session.coding.galois_field, rng=rng)
    for _ in range(count):
        topo.get("src").send("dst", encoder.next_packet(), 64, dst_port=NC_PORT)


class TestNackEmit:
    def test_stalled_generation_triggers_nack(self, rng):
        topo, control_log = two_node_topology(rng)
        session = make_session()
        receiver = NcReceiverApp(
            topo.get("dst"), session, payload_mode="coefficients-only", ack_to="src",
            stall_generations=2, stall_timeout_s=0.1,
        )
        k = session.coding.blocks_per_generation
        feed_packets(topo, receiver, session, 0, k - 1, rng)  # one dof short
        topo.run(until=1.0)
        nacks = [m for _, m in control_log if m[0] == "nack"]
        assert nacks, "a generation one dof short must be NACKed after the stall timeout"
        _, sid, gen_id, missing_dof, _ = nacks[0]
        assert sid == session.session_id
        assert gen_id == 0
        assert missing_dof == 1
        assert receiver.nacks_sent == len(nacks)

    def test_complete_generation_never_nacked(self, rng):
        topo, control_log = two_node_topology(rng)
        session = make_session()
        receiver = NcReceiverApp(
            topo.get("dst"), session, payload_mode="coefficients-only", ack_to="src",
            stall_generations=2, stall_timeout_s=0.1,
        )
        k = session.coding.blocks_per_generation
        feed_packets(topo, receiver, session, 0, k + 1, rng)
        topo.run(until=1.0)
        assert len(receiver.completed) == 1
        assert not [m for _, m in control_log if m[0] == "nack"]


class TestRetryCapAndBackoff:
    def test_retry_cap_bounds_total_nacks(self, rng):
        topo, control_log = two_node_topology(rng)
        session = make_session()
        receiver = NcReceiverApp(
            topo.get("dst"), session, payload_mode="coefficients-only", ack_to="src",
            stall_generations=2, stall_timeout_s=0.05,
            nack_retry_s=0.05, nack_retry_max_s=0.2, max_nacks_per_generation=5,
        )
        feed_packets(topo, receiver, session, 0, session.coding.blocks_per_generation - 1, rng)
        topo.run(until=10.0)  # far beyond the whole backoff schedule
        nacks = [m for _, m in control_log if m[0] == "nack"]
        assert len(nacks) == 5  # capped: a typed giveup, not a NACK loop

    def test_backoff_schedule_shape(self, rng):
        topo, _ = two_node_topology(rng)
        receiver = NcReceiverApp(topo.get("dst"), make_session(), ack_to="src")
        # Defaults: 0.4 s base, ×2 per retry, capped at 3.2 s, 8 tries.
        assert receiver.nack_backoff_schedule() == [0.4, 0.8, 1.6, 3.2, 3.2, 3.2, 3.2, 3.2]

    def test_retry_spacing_grows_exponentially(self, rng):
        topo, control_log = two_node_topology(rng)
        session = make_session()
        receiver = NcReceiverApp(
            topo.get("dst"), session, payload_mode="coefficients-only", ack_to="src",
            stall_generations=2, stall_timeout_s=0.05,
            nack_retry_s=0.1, nack_backoff=2.0, nack_retry_max_s=10.0,
            max_nacks_per_generation=4, ack_interval_s=0.01,
        )
        feed_packets(topo, receiver, session, 0, session.coding.blocks_per_generation - 1, rng)
        topo.run(until=5.0)
        times = [t for t, m in control_log if m[0] == "nack"]
        assert len(times) == 4
        gaps = [b - a for a, b in zip(times, times[1:])]
        # Successive retry gaps double (to ack-tick quantization).
        assert gaps[1] == pytest.approx(2 * gaps[0], abs=0.02)
        assert gaps[2] == pytest.approx(2 * gaps[1], abs=0.02)

    def test_backoff_below_one_rejected(self, rng):
        topo, _ = two_node_topology(rng)
        with pytest.raises(ValueError):
            NcReceiverApp(topo.get("dst"), make_session(), nack_backoff=0.5)


class TestNackRankDedup:
    """A pending retry whose generation gained rank must not re-fire.

    When the adaptive controller raises redundancy, repair-equivalent
    coded packets arrive that the in-flight backoff timer knows nothing
    about; re-requesting repair for dof the new packets already covered
    wastes source repair budget.  The dedupe keys on (generation, rank):
    rank progress since the last NACK suppresses the retry and restarts
    the backoff clock instead of spending the retry budget.
    """

    def _receiver(self, topo, session):
        return NcReceiverApp(
            topo.get("dst"), session, payload_mode="coefficients-only", ack_to="src",
            stall_generations=2, stall_timeout_s=0.05,
            nack_retry_s=0.2, nack_backoff=2.0, nack_retry_max_s=5.0,
            max_nacks_per_generation=4, ack_interval_s=0.01,
        )

    def _feeder(self, topo, session, rng):
        """A persistent encoder: later packets keep advancing the rank.

        (A fresh ``feed_packets`` encoder would restart from the
        systematic prefix and replay pivots the decoder already has.)
        """
        k = session.coding.blocks_per_generation
        data = rng.integers(0, 256, size=(k, 4), dtype=np.uint8)
        encoder = Encoder(
            session.session_id,
            Generation(generation_id=0, blocks=data),
            field=session.coding.galois_field,
            rng=rng,
        )

        def feed(count):
            for _ in range(count):
                topo.get("src").send("dst", encoder.next_packet(), 64, dst_port=NC_PORT)

        return feed

    def test_rank_progress_suppresses_retry(self, rng):
        topo, control_log = two_node_topology(rng)
        session = make_session()
        receiver = self._receiver(topo, session)
        feed = self._feeder(topo, session, rng)
        k = session.coding.blocks_per_generation
        feed(k - 2)  # two dof short
        topo.run(until=0.1)  # past the stall timeout: first NACK out
        assert receiver.nacks_sent == 1
        # One more dof lands (a redundancy packet the retune bought)
        # before the 0.2 s retry clock fires.
        feed(1)
        topo.run(until=0.55)
        # The retry due at ~0.26 was suppressed (rank moved), and the
        # clock restarted: the next real NACK fires ~0.2 s later.
        assert receiver.nacks_suppressed == 1
        nacks = [m for _, m in control_log if m[0] == "nack"]
        assert len(nacks) == 2
        assert nacks[-1][3] == 1  # still one dof short after the progress

    def test_stagnant_rank_still_retries(self, rng):
        topo, control_log = two_node_topology(rng)
        session = make_session()
        receiver = self._receiver(topo, session)
        feed_packets(topo, receiver, session, 0, session.coding.blocks_per_generation - 1, rng)
        topo.run(until=0.45)  # no progress between NACKs
        assert receiver.nacks_suppressed == 0
        assert len([m for _, m in control_log if m[0] == "nack"]) == 2

    def test_suppression_does_not_spend_retry_budget(self, rng):
        topo, control_log = two_node_topology(rng)
        session = make_session()
        receiver = self._receiver(topo, session)
        feed = self._feeder(topo, session, rng)
        k = session.coding.blocks_per_generation
        feed(k - 3)
        topo.run(until=0.1)
        # Two separate progress events, each suppressing one retry.
        feed(1)
        topo.run(until=0.45)
        feed(1)
        topo.run(until=10.0)  # exhaust the whole backoff schedule
        nacks = [m for _, m in control_log if m[0] == "nack"]
        # The cap still allows max_nacks_per_generation real NACKs:
        # suppressed retries restarted the clock without spending it.
        assert receiver.nacks_suppressed == 2
        assert len(nacks) == 4


class TestRetargetAcks:
    def test_acks_move_to_the_new_hop(self, rng):
        topo = Topology(rng=rng)
        for name in ("a", "b", "dst"):
            topo.add_node(name)
        topo.add_link(LinkSpec("dst", "a", 5.0, 1.0))
        topo.add_link(LinkSpec("dst", "b", 5.0, 1.0))
        got_a, got_b = [], []
        topo.get("a").listen(ACK_PORT, lambda d: got_a.append(d.payload))
        topo.get("b").listen(ACK_PORT, lambda d: got_b.append(d.payload))
        receiver = NcReceiverApp(topo.get("dst"), make_session(), ack_to="a", ack_interval_s=0.05)
        topo.run(until=0.2)
        assert got_a and not got_b
        receiver.retarget_acks("b")
        topo.run(until=0.25)  # drain anything already in flight toward a
        before = len(got_a)
        topo.run(until=0.5)
        assert len(got_a) == before  # nothing new toward the old hop
        assert got_b

    def test_retarget_to_none_silences_control(self, rng):
        topo, control_log = two_node_topology(rng)
        receiver = NcReceiverApp(topo.get("dst"), make_session(), ack_to="src", ack_interval_s=0.05)
        topo.run(until=0.2)
        assert control_log
        receiver.retarget_acks(None)
        topo.run(until=0.25)  # drain in-flight datagrams
        before = len(control_log)
        topo.run(until=0.5)
        assert len(control_log) == before


def relay_topology(rng):
    """up -> relay(CodingVnf) -> dst, with reverse control links."""
    topo = Topology(rng=rng)
    topo.add_node("up")
    relay = CodingVnf("relay", topo.scheduler, rng=rng, payload_mode="coefficients-only")
    topo.add_node(relay)
    topo.add_node("dst")
    topo.add_link(LinkSpec("up", "relay", 50.0, 1.0))
    topo.add_link(LinkSpec("relay", "dst", 50.0, 1.0))
    topo.add_link(LinkSpec("dst", "relay", 5.0, 1.0))
    topo.add_link(LinkSpec("relay", "up", 5.0, 1.0))
    return topo, relay


def prime_relay(topo, relay, session, rng, packets=4):
    """Run coded packets of generation 0 through the relay's recoder."""
    relay.configure_session(session.session_id, VnfRole.RECODER, session.coding)
    relay.forwarding_table = ForwardingTable({session.session_id: ["dst"]})
    k = session.coding.blocks_per_generation
    data = rng.integers(0, 256, size=(k, 4), dtype=np.uint8)
    generation = Generation(generation_id=0, blocks=data)
    encoder = Encoder(session.session_id, generation, field=session.coding.galois_field, rng=rng)
    for _ in range(packets):
        topo.get("up").send("relay", encoder.next_packet(), 64, dst_port=NC_PORT)
    topo.run(until=0.5)


class TestEmitRepair:
    def test_repairs_come_from_buffered_state(self, rng):
        topo, relay = relay_topology(rng)
        session = make_session()
        received = []
        topo.get("dst").listen(NC_PORT, lambda d: received.append(d.payload))
        prime_relay(topo, relay, session, rng)
        baseline = len(received)
        sent = relay.emit_repair(session.session_id, 0, 3)
        topo.run(until=1.0)
        assert sent == 3
        assert len(received) == baseline + 3
        assert all(p.generation_id == 0 for p in received[baseline:])

    def test_unknown_generation_yields_zero(self, rng):
        topo, relay = relay_topology(rng)
        session = make_session()
        prime_relay(topo, relay, session, rng)
        assert relay.emit_repair(session.session_id, 999, 2) == 0
        assert relay.emit_repair(999, 0, 2) == 0
        assert relay.emit_repair(session.session_id, 0, 0) == 0


class TestRepairingControlRelay:
    def _nack(self, topo, session, missing_dof=2):
        topo.get("dst").send(
            "relay",
            ("nack", session.session_id, 0, missing_dof, ()),
            64,
            dst_port=ACK_PORT,
        )

    def test_nack_forwarded_and_served_locally(self, rng):
        topo, relay = relay_topology(rng)
        session = make_session()
        upstream, downstream = [], []
        topo.get("up").listen(ACK_PORT, lambda d: upstream.append(d.payload))
        topo.get("dst").listen(NC_PORT, lambda d: downstream.append(d.payload))
        prime_relay(topo, relay, session, rng)
        control = RepairingControlRelay(relay, "up", relay)
        baseline = len(downstream)
        self._nack(topo, session)
        topo.run(until=1.0)
        # The NACK still reaches the source path (repairer of last resort) …
        assert upstream and upstream[0][0] == "nack"
        # … and the relay answered it locally from buffered coded state.
        assert control.local_repair_packets == 2
        assert len(downstream) == baseline + 2

    def test_local_service_is_capped_per_generation(self, rng):
        topo, relay = relay_topology(rng)
        session = make_session()
        upstream = []
        topo.get("up").listen(ACK_PORT, lambda d: upstream.append(d.payload))
        prime_relay(topo, relay, session, rng)
        control = RepairingControlRelay(relay, "up", relay, max_served_nacks_per_generation=2)
        for _ in range(5):
            self._nack(topo, session, missing_dof=1)
            topo.run(until=topo.scheduler.now + 0.2)
        assert control.nacks_seen == 5
        assert control.local_repair_packets == 2  # two servings, then pure forwarding
        assert len(upstream) == 5  # every NACK still went upstream

    def test_plain_relay_retargets(self, rng):
        topo, relay = relay_topology(rng)
        got_up, got_dst = [], []
        topo.get("up").listen(ACK_PORT, lambda d: got_up.append(d.payload))
        topo.get("dst").listen(ACK_PORT, lambda d: got_dst.append(d.payload))
        control = ControlRelay(relay, "up")
        topo.get("dst").send("relay", ("cum_ack", 1, "dst", 5), 64, dst_port=ACK_PORT)
        topo.run(until=0.2)
        assert got_up and got_up[-1][0] == "cum_ack"
        control.retarget("dst")
        topo.get("dst").send("relay", ("cum_ack", 1, "dst", 6), 64, dst_port=ACK_PORT)
        topo.run(until=0.4)
        assert got_dst and got_dst[-1] == ("cum_ack", 1, "dst", 6)


class TestHopShapeClearing:
    def test_zero_skip_clears_the_shape(self, rng):
        topo, relay = relay_topology(rng)
        session = make_session()
        relay.configure_session(session.session_id, VnfRole.RECODER, session.coding)
        relay.set_hop_shape(session.session_id, "dst", 2)
        assert (session.session_id, "dst") in relay._hop_shapes
        relay.set_hop_shape(session.session_id, "dst", 0)
        assert (session.session_id, "dst") not in relay._hop_shapes

    def test_cleared_shape_restores_default_pipelining(self, rng):
        topo, relay = relay_topology(rng)
        session = make_session()
        received = []
        topo.get("dst").listen(NC_PORT, lambda d: received.append(d.payload))
        relay.configure_session(session.session_id, VnfRole.RECODER, session.coding)
        relay.forwarding_table = ForwardingTable({session.session_id: ["dst"]})
        relay.set_hop_shape(session.session_id, "dst", 2)
        relay.set_hop_shape(session.session_id, "dst", 0)  # clear before traffic
        prime_relay(topo, relay, session, rng)
        # Default pipelining: one out per in (4 packets in -> 4 out).
        assert len(received) == 4
