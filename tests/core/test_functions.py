"""Pluggable relay-function tests (the modularization extension)."""

import numpy as np
import pytest

from repro.functions import (
    ForwardRelayFunction,
    RlncRelayFunction,
    XorFecRelayFunction,
    available_functions,
    make_relay_function,
    register_relay_function,
)
from repro.rlnc import Decoder, Encoder, Generation


@pytest.fixture
def generation(rng):
    return Generation(0, rng.integers(0, 256, (4, 16), dtype=np.uint8))


class TestForward:
    def test_identity(self, rng, generation):
        enc = Encoder(1, generation, rng=rng)
        fn = ForwardRelayFunction()
        p = enc.next_packet()
        assert fn.on_packet(p) == [p]


class TestRlnc:
    def test_decodes_through_function(self, rng, generation):
        enc = Encoder(1, generation, systematic=False, rng=rng)
        fn = RlncRelayFunction(1, 0, 4, rng=rng)
        dec = Decoder(1, 0, 4, 16)
        while not dec.complete:
            for out in fn.on_packet(enc.next_packet()):
                dec.add(out)
        assert dec.decode() == generation


class TestXorFec:
    def test_parity_emitted_once_after_full_generation(self, rng, generation):
        enc = Encoder(1, generation, rng=rng)  # systematic originals
        fn = XorFecRelayFunction(1, 0, 4)
        emissions = [fn.on_packet(enc.next_packet()) for _ in range(4)]
        assert [len(e) for e in emissions] == [1, 1, 1, 2]
        parity = emissions[-1][1]
        assert np.array_equal(parity.coefficients, np.ones(4, dtype=np.uint8))

    def test_parity_repairs_one_loss(self, rng, generation):
        enc = Encoder(1, generation, rng=rng)
        fn = XorFecRelayFunction(1, 0, 4)
        outputs = []
        for _ in range(4):
            outputs.extend(fn.on_packet(enc.next_packet()))
        # Drop one original (index 2); keep the parity.
        survivors = [p for i, p in enumerate(outputs) if i != 2]
        dec = Decoder(1, 0, 4, 16)
        for p in survivors:
            dec.add(p)
        assert dec.complete
        assert dec.decode() == generation

    def test_parity_cannot_repair_two_losses(self, rng, generation):
        enc = Encoder(1, generation, rng=rng)
        fn = XorFecRelayFunction(1, 0, 4)
        outputs = []
        for _ in range(4):
            outputs.extend(fn.on_packet(enc.next_packet()))
        survivors = [p for i, p in enumerate(outputs) if i not in (1, 2)]
        dec = Decoder(1, 0, 4, 16)
        for p in survivors:
            dec.add(p)
        assert not dec.complete  # the structural gap to RLNC

    def test_wrong_generation_rejected(self, rng, generation):
        enc = Encoder(1, generation, rng=rng)
        fn = XorFecRelayFunction(1, 99, 4)
        with pytest.raises(ValueError):
            fn.on_packet(enc.next_packet())


class TestRegistry:
    def test_builtins_available(self):
        assert {"forward", "rlnc", "xor-fec"} <= set(available_functions())

    def test_make_by_name(self):
        fn = make_relay_function("rlnc", 1, 0, 4)
        assert isinstance(fn, RlncRelayFunction)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_relay_function("quantum", 1, 0, 4)

    def test_custom_registration(self):
        class Dummy(ForwardRelayFunction):
            pass

        register_relay_function("dummy-test", lambda s, g, k: Dummy())
        try:
            assert isinstance(make_relay_function("dummy-test", 1, 0, 4), Dummy)
            with pytest.raises(ValueError):
                register_relay_function("dummy-test", lambda s, g, k: Dummy())
        finally:
            from repro import functions

            functions._REGISTRY.pop("dummy-test", None)
