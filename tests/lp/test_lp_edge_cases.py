"""LP layer edge cases and the rounding helper's apply path."""

import numpy as np
import pytest

from repro.lp import LinearProgram
from repro.lp.model import Solution
from repro.lp.rounding import apply_rounding, round_up_integers
from repro.lp.simplex import solve_simplex


class TestSimplexEdgeCases:
    def test_single_variable_bound_only(self):
        res = solve_simplex(c=np.array([3.0]), bounds=[(1.0, 2.0)])
        assert res.success and res.x[0] == pytest.approx(1.0)

    def test_maximization_via_negation(self):
        res = solve_simplex(c=np.array([-1.0]), bounds=[(0.0, 7.0)])
        assert res.success and res.x[0] == pytest.approx(7.0)
        assert res.objective == pytest.approx(-7.0)

    def test_redundant_equality_rows(self):
        # The same constraint twice: phase-1 leaves a redundant row whose
        # artificial variable must be driven out (or recognized as zero).
        res = solve_simplex(
            c=np.array([1.0, 1.0]),
            a_eq=np.array([[1.0, 1.0], [2.0, 2.0]]),
            b_eq=np.array([4.0, 8.0]),
            bounds=[(0, None)] * 2,
        )
        assert res.success
        assert res.objective == pytest.approx(4.0)

    def test_tight_bounds_equal(self):
        res = solve_simplex(c=np.array([1.0]), bounds=[(3.0, 3.0)])
        assert res.success and res.x[0] == pytest.approx(3.0)

    def test_free_lower_bound_rejected(self):
        with pytest.raises(ValueError):
            solve_simplex(c=np.array([1.0]), bounds=[(None, 1.0)])

    def test_mixed_rows(self):
        res = solve_simplex(
            c=np.array([-1.0, -1.0]),
            a_ub=np.array([[1.0, 0.0]]),
            b_ub=np.array([2.0]),
            a_eq=np.array([[0.0, 1.0]]),
            b_eq=np.array([3.0]),
            bounds=[(0, None), (0, None)],
        )
        assert res.success
        assert res.x == pytest.approx([2.0, 3.0])


class TestRoundingHelpers:
    def test_apply_rounding_replaces_values(self):
        lp = LinearProgram()
        x = lp.add_variable("x", integer=True)
        y = lp.add_variable("y")
        solution = Solution(objective=1.0, values={x: 1.4, y: 0.6})
        rounded = round_up_integers(solution)
        applied = apply_rounding(solution, rounded)
        assert applied[x] == 2.0
        assert applied[y] == 0.6

    def test_tolerance_boundary(self):
        lp = LinearProgram()
        x = lp.add_variable("x", integer=True)
        s_low = Solution(objective=0.0, values={x: 1.0 + 5e-7})
        s_high = Solution(objective=0.0, values={x: 1.1})
        assert round_up_integers(s_low)[x] == 1
        assert round_up_integers(s_high)[x] == 2

    def test_exact_integers_untouched(self):
        lp = LinearProgram()
        x = lp.add_variable("x", integer=True)
        s = Solution(objective=0.0, values={x: 3.0})
        assert round_up_integers(s)[x] == 3


class TestModelMiscellany:
    def test_expression_repr(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        assert "x" in repr(2 * x + 1)

    def test_zero_expression(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        expr = x - x
        assert expr.value({x: 5.0}) == 0.0

    def test_rsub(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        expr = 10 - (x + 2)
        assert expr.value({x: 3.0}) == pytest.approx(5.0)

    def test_program_repr(self):
        lp = LinearProgram()
        lp.add_variable("x")
        assert "1 vars" in repr(lp)
