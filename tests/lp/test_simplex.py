"""Dense simplex backend tests, including the HiGHS cross-check property."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lp import LinearProgram
from repro.lp.simplex import solve_simplex


class TestDirectInterface:
    def test_basic_min(self):
        # min -x - 2y s.t. x + y <= 4, x <= 3, y <= 2 (via bounds).
        res = solve_simplex(
            c=np.array([-1.0, -2.0]),
            a_ub=np.array([[1.0, 1.0]]),
            b_ub=np.array([4.0]),
            bounds=[(0, 3), (0, 2)],
        )
        assert res.success
        assert res.objective == pytest.approx(-6.0)
        assert res.x == pytest.approx([2.0, 2.0])

    def test_equality_rows(self):
        res = solve_simplex(
            c=np.array([1.0, 1.0]),
            a_eq=np.array([[1.0, 1.0]]),
            b_eq=np.array([5.0]),
            bounds=[(0, None), (0, None)],
        )
        assert res.success
        assert res.objective == pytest.approx(5.0)

    def test_infeasible(self):
        res = solve_simplex(
            c=np.array([1.0]),
            a_ub=np.array([[1.0], [-1.0]]),
            b_ub=np.array([1.0, -3.0]),  # x <= 1 and x >= 3
            bounds=[(0, None)],
        )
        assert not res.success
        assert "infeasible" in res.status

    def test_unbounded(self):
        res = solve_simplex(c=np.array([-1.0]), bounds=[(0, None)])
        assert not res.success
        assert res.status in ("unbounded", "phase1 unbounded")

    def test_shifted_lower_bounds(self):
        res = solve_simplex(c=np.array([1.0]), bounds=[(5.0, 10.0)])
        assert res.success
        assert res.x[0] == pytest.approx(5.0)
        assert res.objective == pytest.approx(5.0)

    def test_degenerate_no_cycle(self):
        # Klee-Minty-flavoured degeneracy: Bland's rule must terminate.
        res = solve_simplex(
            c=np.array([-1.0, -1.0, -1.0]),
            a_ub=np.array([[1.0, 0, 0], [1.0, 1.0, 0], [1.0, 1.0, 1.0], [1.0, 1.0, 1.0]]),
            b_ub=np.array([1.0, 1.0, 1.0, 1.0]),
            bounds=[(0, None)] * 3,
        )
        assert res.success
        assert res.objective == pytest.approx(-1.0)


@st.composite
def random_lp(draw):
    n = draw(st.integers(min_value=1, max_value=4))
    m = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    c = rng.uniform(-5, 5, n)
    a = rng.uniform(-2, 3, (m, n))
    b = rng.uniform(1, 10, m)  # positive rhs with x=0 feasible => bounded-ish
    upper = rng.uniform(1, 10, n)
    return c, a, b, [(0.0, float(u)) for u in upper]


@given(problem=random_lp())
@settings(max_examples=60, deadline=None)
def test_simplex_agrees_with_highs(problem):
    """Property: both backends find the same optimum on random LPs."""
    from scipy.optimize import linprog

    c, a, b, bounds = problem
    ours = solve_simplex(c=c, a_ub=a, b_ub=b, bounds=bounds)
    ref = linprog(c, A_ub=a, b_ub=b, bounds=bounds, method="highs")
    assert ours.success == ref.success
    if ref.success:
        assert ours.objective == pytest.approx(ref.fun, rel=1e-6, abs=1e-6)


def test_model_layer_cross_backend(butterfly_graph):
    """The deployment LP itself solves identically on both backends."""
    from repro.core.deployment import DataCenterSpec, DeploymentProblem
    from repro.core.session import MulticastSession

    dcs = [DataCenterSpec(n, 900, 900, 900) for n in ["O1", "C1", "T", "V2"]]
    problem = DeploymentProblem(butterfly_graph, dcs, alpha=1.0)
    session = MulticastSession(source="V1", receivers=["O2", "C2"], max_delay_ms=250.0)
    demand = problem.build_demand(session)
    plan_highs = problem.solve([demand], backend="highs")
    plan_simplex = problem.solve([demand], backend="simplex")
    assert plan_highs.lambdas[session.session_id] == pytest.approx(
        plan_simplex.lambdas[session.session_id], rel=1e-5
    )
