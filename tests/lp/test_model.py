"""LP modeling layer tests."""

import pytest

from repro.lp import LinearProgram, LinExpr, SolveError


class TestExpressions:
    def test_arithmetic(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        y = lp.add_variable("y")
        expr = 2 * x + y - 3
        assert expr.terms[x] == 2.0
        assert expr.terms[y] == 1.0
        assert expr.constant == -3.0

    def test_subtraction_and_negation(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        expr = 5 - x
        assert expr.terms[x] == -1.0
        assert expr.constant == 5.0

    def test_scaling(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        expr = (x + 1) * 4
        assert expr.terms[x] == 4.0
        assert expr.constant == 4.0

    def test_nonlinear_rejected(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        with pytest.raises(TypeError):
            x * x

    def test_value_evaluation(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        expr = 3 * x + 2
        assert expr.value({x: 4.0}) == pytest.approx(14.0)

    def test_constraint_senses(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        assert (x <= 5).sense == "<="
        assert (x >= 5).sense == ">="
        assert x.eq(5).sense == "=="

    def test_constraint_violation(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        con = x <= 5
        assert con.violation({x: 4.0}) == 0.0
        assert con.violation({x: 7.0}) == pytest.approx(2.0)


class TestSolving:
    def test_simple_max(self):
        lp = LinearProgram()
        x = lp.add_variable("x", upper=4)
        y = lp.add_variable("y", upper=3)
        lp.add_constraint(x + 2 * y <= 8)
        lp.maximize(3 * x + 5 * y)
        s = lp.solve()
        assert s.objective == pytest.approx(22.0)
        assert s[x] == pytest.approx(4.0)
        assert s[y] == pytest.approx(2.0)

    def test_minimize(self):
        lp = LinearProgram()
        x = lp.add_variable("x", lower=2)
        lp.minimize(x)
        assert lp.solve().objective == pytest.approx(2.0)

    def test_equality_constraint(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        y = lp.add_variable("y")
        lp.add_constraint(x.eq(3))
        lp.add_constraint((x + y).eq(10))
        lp.maximize(0 * x)
        s = lp.solve()
        assert s[y] == pytest.approx(7.0)

    def test_infeasible_raises(self):
        lp = LinearProgram()
        x = lp.add_variable("x", upper=1)
        lp.add_constraint(x >= 2)
        lp.maximize(x)
        with pytest.raises(SolveError):
            lp.solve()

    def test_no_objective_raises(self):
        lp = LinearProgram()
        lp.add_variable("x")
        with pytest.raises(SolveError):
            lp.solve()

    def test_foreign_variable_rejected(self):
        lp1 = LinearProgram()
        lp2 = LinearProgram()
        x = lp1.add_variable("x")
        with pytest.raises(ValueError):
            lp2.add_constraint(x <= 1)

    def test_solution_value_of_expression(self):
        lp = LinearProgram()
        x = lp.add_variable("x", upper=2)
        lp.maximize(x)
        s = lp.solve()
        assert s.value(2 * x + 1) == pytest.approx(5.0)

    def test_unknown_backend(self):
        lp = LinearProgram()
        x = lp.add_variable("x", upper=1)
        lp.maximize(x)
        with pytest.raises(ValueError):
            lp.solve(backend="gurobi")


class TestRounding:
    def test_round_up_fractional(self):
        from repro.lp import round_up_integers

        lp = LinearProgram()
        x = lp.add_variable("x", integer=True, upper=10)
        y = lp.add_variable("y")
        lp.add_constraint(2 * x >= 3)  # LP relaxation: x = 1.5
        lp.minimize(x + 0 * y)
        s = lp.solve()
        rounded = round_up_integers(s)
        assert rounded[x] == 2
        assert y not in rounded  # continuous vars untouched

    def test_near_integer_snaps(self):
        from repro.lp import round_up_integers
        from repro.lp.model import Solution

        lp = LinearProgram()
        x = lp.add_variable("x", integer=True)
        s = Solution(objective=0.0, values={x: 2.0000001})
        assert round_up_integers(s)[x] == 2
