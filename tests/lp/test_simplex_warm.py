"""Warm-start simplex: basis reuse, fallback safety, and equivalence."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lp.simplex import solve_simplex
from repro.util.rng import derive_rng


def _toy_lp(rhs=(4.0, 6.0)):
    # max x0 + 2 x1  s.t.  x0 + x1 <= rhs0,  x0 + 3 x1 <= rhs1
    c = [-1.0, -2.0]
    a_ub = [[1.0, 1.0], [1.0, 3.0]]
    return c, a_ub, list(rhs)


class TestWarmStartBasics:
    def test_cold_solve_exports_basis(self):
        c, a, b = _toy_lp()
        res = solve_simplex(c, a_ub=a, b_ub=b)
        assert res.success
        assert res.basis is not None
        assert len(res.basis) == 2
        assert not res.warm_started

    def test_warm_resolve_same_rhs_takes_zero_pivots(self):
        c, a, b = _toy_lp()
        cold = solve_simplex(c, a_ub=a, b_ub=b)
        warm = solve_simplex(c, a_ub=a, b_ub=b, initial_basis=cold.basis)
        assert warm.success and warm.warm_started
        assert warm.iterations == 0
        assert warm.objective == pytest.approx(cold.objective, abs=1e-9)
        np.testing.assert_allclose(warm.x, cold.x, atol=1e-9)

    def test_warm_resolve_perturbed_rhs_matches_cold(self):
        c, a, b = _toy_lp()
        cold0 = solve_simplex(c, a_ub=a, b_ub=b)
        b2 = [5.0, 7.5]
        cold2 = solve_simplex(c, a_ub=a, b_ub=b2)
        warm2 = solve_simplex(c, a_ub=a, b_ub=b2, initial_basis=cold0.basis)
        assert warm2.success and warm2.warm_started
        assert warm2.objective == pytest.approx(cold2.objective, abs=1e-8)
        assert warm2.iterations <= cold2.iterations

    def test_warm_uses_fewer_iterations_on_rhs_delta(self):
        rng = derive_rng("lp.warm.iters")
        n, m = 12, 18
        a = rng.uniform(0.0, 1.0, size=(m, n))
        c = -rng.uniform(0.5, 1.5, size=n)
        b = rng.uniform(5.0, 10.0, size=m)
        cold = solve_simplex(c, a_ub=a, b_ub=b)
        assert cold.success and cold.basis is not None
        b2 = b * 1.02
        cold2 = solve_simplex(c, a_ub=a, b_ub=b2)
        warm2 = solve_simplex(c, a_ub=a, b_ub=b2, initial_basis=cold.basis)
        assert warm2.success
        assert warm2.objective == pytest.approx(cold2.objective, rel=1e-7, abs=1e-7)
        assert warm2.iterations < cold2.iterations

    def test_bounded_variables_roundtrip(self):
        # Bounds become extra rows; the basis must survive the expansion.
        c = [-1.0, -1.0]
        a = [[2.0, 1.0]]
        b = [10.0]
        bounds = [(0.0, 3.0), (1.0, 4.0)]
        cold = solve_simplex(c, a_ub=a, b_ub=b, bounds=bounds)
        warm = solve_simplex(c, a_ub=a, b_ub=[9.0], bounds=bounds, initial_basis=cold.basis)
        ref = solve_simplex(c, a_ub=a, b_ub=[9.0], bounds=bounds)
        assert warm.success
        assert warm.objective == pytest.approx(ref.objective, abs=1e-8)


class TestStaleBasisFallback:
    def test_wrong_length_basis_falls_back_cold(self):
        c, a, b = _toy_lp()
        res = solve_simplex(c, a_ub=a, b_ub=b, initial_basis=(0,))
        assert res.success and not res.warm_started
        assert res.objective == pytest.approx(solve_simplex(c, a_ub=a, b_ub=b).objective)

    def test_out_of_range_basis_falls_back_cold(self):
        c, a, b = _toy_lp()
        res = solve_simplex(c, a_ub=a, b_ub=b, initial_basis=(0, 99))
        assert res.success and not res.warm_started

    def test_duplicate_basis_falls_back_cold(self):
        c, a, b = _toy_lp()
        res = solve_simplex(c, a_ub=a, b_ub=b, initial_basis=(1, 1))
        assert res.success and not res.warm_started

    def test_infeasible_vertex_falls_back_cold(self):
        # Basis {x0-slack rows} implies negative basic values once the
        # rhs shrinks below the old vertex — must fall back, not fail.
        c, a, b = _toy_lp()
        cold = solve_simplex(c, a_ub=a, b_ub=b)
        tight = solve_simplex(c, a_ub=a, b_ub=[0.5, 0.5], initial_basis=cold.basis)
        ref = solve_simplex(c, a_ub=a, b_ub=[0.5, 0.5])
        assert tight.success
        assert tight.objective == pytest.approx(ref.objective, abs=1e-8)

    def test_infeasible_program_still_detected(self):
        # x <= -1 with x >= 0 is infeasible regardless of warm basis.
        res = solve_simplex([1.0], a_ub=[[1.0]], b_ub=[-1.0], initial_basis=(0,))
        assert not res.success
        assert res.status == "infeasible"


@st.composite
def _random_feasible_lp(draw):
    """Box-bounded LPs with nonnegative rows: origin always feasible."""
    n = draw(st.integers(min_value=2, max_value=6))
    m = draw(st.integers(min_value=1, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = derive_rng("lp.warm.prop", seed)
    a = rng.uniform(0.0, 2.0, size=(m, n)).round(3)
    c = (-rng.uniform(0.1, 2.0, size=n)).round(3)
    b = rng.uniform(1.0, 8.0, size=m).round(3)
    scale = draw(st.floats(min_value=0.5, max_value=2.0))
    return c, a, b, (b * scale).round(3)


class TestWarmEqualsColdProperty:
    @settings(max_examples=30, deadline=None)
    @given(_random_feasible_lp())
    def test_warm_objective_equals_cold(self, lp):
        c, a, b, b2 = lp
        cold0 = solve_simplex(c, a_ub=a, b_ub=b)
        assert cold0.success
        cold2 = solve_simplex(c, a_ub=a, b_ub=b2)
        warm2 = solve_simplex(c, a_ub=a, b_ub=b2, initial_basis=cold0.basis)
        assert warm2.success == cold2.success
        if cold2.success:
            assert warm2.objective == pytest.approx(cold2.objective, rel=1e-6, abs=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(_random_feasible_lp())
    def test_warm_result_reusable_as_basis(self, lp):
        c, a, b, b2 = lp
        first = solve_simplex(c, a_ub=a, b_ub=b)
        second = solve_simplex(c, a_ub=a, b_ub=b2, initial_basis=first.basis)
        assert second.success
        third = solve_simplex(c, a_ub=a, b_ub=b2, initial_basis=second.basis)
        assert third.success
        assert third.iterations == 0
        assert third.objective == pytest.approx(second.objective, abs=1e-8)
