"""Cloud provider API and data-center tests."""

import numpy as np
import pytest

from repro.cloud import BillingMeter, CloudProvider, DataCenter, ProviderError
from repro.cloud.provider import LaunchLatency
from repro.cloud.trace import BandwidthTrace, TABLE_I_TRACES, table_i_statistics


@pytest.fixture
def provider(scheduler):
    dcs = [DataCenter("oregon"), DataCenter("virginia")]
    return CloudProvider("ec2", scheduler, dcs, rng=np.random.default_rng(1))


class TestLaunch:
    def test_launch_registers_in_datacenter(self, provider, scheduler):
        vm = provider.launch_vm("oregon")
        assert vm.datacenter == "oregon"
        assert vm in provider.datacenters["oregon"].vms
        scheduler.run(until=60.0)
        assert provider.datacenters["oregon"].running_vms() == [vm]

    def test_unknown_region(self, provider):
        with pytest.raises(ProviderError):
            provider.launch_vm("mars")

    def test_quota(self, scheduler):
        provider = CloudProvider("p", scheduler, [DataCenter("x")], vm_quota=2, rng=np.random.default_rng(1))
        provider.launch_vm("x")
        provider.launch_vm("x")
        with pytest.raises(ProviderError):
            provider.launch_vm("x")

    def test_launch_latency_jitter(self, scheduler):
        latency = LaunchLatency(mean_s=35.0, jitter_frac=0.15)
        rng = np.random.default_rng(0)
        samples = [latency.sample(rng) for _ in range(100)]
        assert all(35.0 * 0.85 <= s <= 35.0 * 1.15 for s in samples)
        assert np.mean(samples) == pytest.approx(35.0, rel=0.05)


class TestTerminate:
    def test_graceful_opens_grace_window(self, provider, scheduler):
        vm = provider.launch_vm("oregon", grace_tau_s=100.0)
        scheduler.run(until=60.0)
        provider.terminate_vm(vm.vm_id)
        assert vm.state.value == "stopping"
        scheduler.run(until=200.0)
        assert vm.state.value == "terminated"

    def test_hard_terminate(self, provider, scheduler):
        vm = provider.launch_vm("oregon")
        scheduler.run(until=60.0)
        provider.terminate_vm(vm.vm_id, graceful=False)
        assert vm.state.value == "terminated"

    def test_unknown_vm(self, provider):
        with pytest.raises(ProviderError):
            provider.terminate_vm("vm-unknown")


class TestListing:
    def test_list_filters_by_datacenter(self, provider):
        provider.launch_vm("oregon")
        provider.launch_vm("virginia")
        assert len(provider.list_vms()) == 2
        assert len(provider.list_vms("oregon")) == 1

    def test_get_vm(self, provider):
        vm = provider.launch_vm("oregon")
        assert provider.get_vm(vm.vm_id) is vm


class TestDataCenter:
    def test_default_caps_from_flavor(self):
        dc = DataCenter("oregon")
        inbound, outbound = dc.bandwidth_caps()
        assert inbound == 1000.0 and outbound == 1000.0

    def test_set_caps(self):
        dc = DataCenter("oregon")
        dc.set_bandwidth_caps(inbound_mbps=500.0)
        assert dc.bandwidth_caps()[0] == 500.0
        with pytest.raises(ValueError):
            dc.set_bandwidth_caps(outbound_mbps=0.0)

    def test_trace_advance(self):
        dc = DataCenter("oregon", trace=BandwidthTrace())
        rng = np.random.default_rng(0)
        caps = [dc.advance_trace(rng) for _ in range(10)]
        values = [c for pair in caps for c in pair]
        assert all(700.0 <= v <= 1000.0 for v in values)
        assert len(set(values)) > 5

    def test_stopping_vms_listed(self, provider, scheduler):
        vm = provider.launch_vm("oregon", grace_tau_s=600.0)
        scheduler.run(until=60.0)
        vm.request_shutdown()
        dc = provider.datacenters["oregon"]
        assert dc.stopping_vms() == [vm]
        assert dc.usable_vms() == [vm]
        assert dc.running_vms() == []


class TestBilling:
    def test_meter_accumulates(self, provider, scheduler):
        meter = BillingMeter([provider])
        provider.launch_vm("oregon")
        scheduler.run(until=3600.0)
        cost = meter.sample(3600.0)
        assert cost > 0
        assert meter.final_cost() == cost
        assert meter.vm_seconds(3600.0) == pytest.approx(3600.0)

    def test_cost_by_datacenter(self, provider, scheduler):
        provider.launch_vm("oregon")
        provider.launch_vm("virginia")
        scheduler.run(until=100.0)
        meter = BillingMeter([provider])
        split = meter.cost_by_datacenter(100.0)
        assert set(split) == {"oregon", "virginia"}

    def test_no_samples_raises(self, provider):
        with pytest.raises(RuntimeError):
            BillingMeter([provider]).final_cost()


class TestTableITraces:
    def test_verbatim_values(self):
        assert TABLE_I_TRACES["oregon"]["in"] == [926, 918, 906, 915, 915, 893]
        assert TABLE_I_TRACES["california"]["out"] == [928, 923, 909, 917, 919, 901]

    def test_statistics(self):
        stats = table_i_statistics()
        assert stats["samples"] == 24
        assert 900 < stats["mean_mbps"] < 925
        assert stats["min_mbps"] == 876
        assert stats["max_mbps"] == 938

    def test_synthetic_matches_measured_band(self):
        trace = BandwidthTrace()
        rng = np.random.default_rng(7)
        series = trace.generate(1000, rng)
        assert 880 < series.mean() < 945
        assert series.std() < 40

    def test_generate_pair_format(self):
        trace = BandwidthTrace()
        pair = trace.generate_pair(6, np.random.default_rng(0))
        assert set(pair) == {"in", "out"}
        assert len(pair["in"]) == 6

    def test_invalid_samples(self):
        with pytest.raises(ValueError):
            BandwidthTrace().generate(0, np.random.default_rng(0))
