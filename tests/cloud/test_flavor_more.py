"""Extra flavour/NIC interaction coverage."""

import pytest

from repro.cloud.flavor import C3_XLARGE, InstanceFlavor
from repro.net.nic import InterruptNic, PollModeNic


class TestEffectiveCapacity:
    def test_poll_nic_does_not_bind(self):
        # With a DPDK NIC, the C3.xlarge ceiling is its coding capacity.
        assert C3_XLARGE.effective_capacity_mbps() == pytest.approx(900.0)

    def test_interrupt_nic_binds(self):
        slow = InstanceFlavor(
            name="legacy",
            vcpus=1,
            ram_gb=1.0,
            inbound_mbps=20_000.0,
            outbound_mbps=20_000.0,
            coding_capacity_mbps=10_000.0,
            hourly_cost_usd=0.1,
            nic=InterruptNic(),
        )
        # The interrupt path cannot sustain 10 Gbps of 1500 B packets.
        assert slow.effective_capacity_mbps() < 10_000.0
        assert slow.effective_capacity_mbps() == pytest.approx(
            InterruptNic().max_throughput_bps(1500) / 1e6
        )

    def test_bandwidth_cap_binds(self):
        capped = InstanceFlavor(
            name="capped",
            vcpus=4,
            ram_gb=4.0,
            inbound_mbps=100.0,
            outbound_mbps=100.0,
            coding_capacity_mbps=900.0,
            hourly_cost_usd=0.1,
            nic=PollModeNic(),
        )
        assert capped.effective_capacity_mbps() == pytest.approx(100.0)

    def test_cost_validation(self):
        with pytest.raises(ValueError):
            InstanceFlavor("x", 1, 1.0, 1.0, 1.0, 1.0, -0.1)
