"""VM lifecycle tests: launch latency, τ grace, reuse."""

import pytest

from repro.cloud.flavor import C3_XLARGE, LINODE_1GB
from repro.cloud.vm import VirtualMachine, VmLifecycleError, VmState


def make_vm(scheduler, **kwargs):
    defaults = dict(datacenter="oregon", flavor=C3_XLARGE, launch_latency_s=35.0, grace_tau_s=600.0)
    defaults.update(kwargs)
    return VirtualMachine(scheduler, **defaults)


class TestBoot:
    def test_starts_pending(self, scheduler):
        vm = make_vm(scheduler)
        assert vm.state is VmState.PENDING
        assert not vm.is_usable

    def test_running_after_launch_latency(self, scheduler):
        vm = make_vm(scheduler)
        scheduler.run(until=34.0)
        assert vm.state is VmState.PENDING
        scheduler.run(until=36.0)
        assert vm.state is VmState.RUNNING
        assert vm.running_since == pytest.approx(35.0)

    def test_on_running_callback(self, scheduler):
        seen = []
        make_vm(scheduler, on_running=seen.append)
        scheduler.run()
        assert len(seen) == 1

    def test_terminate_while_pending(self, scheduler):
        vm = make_vm(scheduler)
        vm.request_shutdown()
        assert vm.state is VmState.TERMINATED
        scheduler.run()
        assert vm.state is VmState.TERMINATED  # boot event must not resurrect it


class TestGraceWindow:
    def test_shutdown_after_tau(self, scheduler):
        vm = make_vm(scheduler)
        scheduler.run(until=40.0)
        vm.request_shutdown()
        assert vm.state is VmState.STOPPING
        assert vm.is_usable  # still usable inside the grace window
        scheduler.run(until=40.0 + 599.0)
        assert vm.state is VmState.STOPPING
        scheduler.run(until=40.0 + 601.0)
        assert vm.state is VmState.TERMINATED

    def test_reuse_cancels_shutdown(self, scheduler):
        vm = make_vm(scheduler)
        scheduler.run(until=40.0)
        vm.request_shutdown()
        scheduler.run(until=200.0)
        vm.reuse()
        assert vm.state is VmState.RUNNING
        assert vm.reuse_count == 1
        scheduler.run(until=5000.0)
        assert vm.state is VmState.RUNNING  # grace timer was cancelled

    def test_reuse_requires_stopping(self, scheduler):
        vm = make_vm(scheduler)
        scheduler.run(until=40.0)
        with pytest.raises(VmLifecycleError):
            vm.reuse()

    def test_double_shutdown_is_idempotent(self, scheduler):
        vm = make_vm(scheduler)
        scheduler.run(until=40.0)
        vm.request_shutdown()
        vm.request_shutdown()
        scheduler.run()
        assert vm.state is VmState.TERMINATED

    def test_shutdown_after_terminated_raises(self, scheduler):
        vm = make_vm(scheduler)
        vm.terminate_now()
        with pytest.raises(VmLifecycleError):
            vm.request_shutdown()

    def test_terminate_now_bypasses_grace(self, scheduler):
        vm = make_vm(scheduler)
        scheduler.run(until=40.0)
        vm.request_shutdown()
        vm.terminate_now()
        assert vm.state is VmState.TERMINATED

    def test_on_terminated_callback(self, scheduler):
        seen = []
        vm = make_vm(scheduler, on_terminated=seen.append)
        scheduler.run(until=40.0)
        vm.terminate_now()
        assert seen == [vm]


class TestBilling:
    def test_billed_from_launch_to_termination(self, scheduler):
        vm = make_vm(scheduler)
        scheduler.run(until=100.0)
        vm.terminate_now()
        scheduler.run(until=500.0)
        assert vm.billed_seconds() == pytest.approx(100.0)

    def test_billed_while_running(self, scheduler):
        vm = make_vm(scheduler)
        scheduler.run(until=50.0)
        assert vm.billed_seconds(now=50.0) == pytest.approx(50.0)

    def test_cost_uses_flavor_rate(self, scheduler):
        vm = make_vm(scheduler, flavor=LINODE_1GB)
        scheduler.run(until=3600.0 + 35.0)
        vm.terminate_now()
        assert vm.cost_usd() == pytest.approx(LINODE_1GB.hourly_cost_usd * (3635.0 / 3600.0))


class TestFlavors:
    def test_paper_flavors(self):
        assert C3_XLARGE.vcpus == 4
        assert C3_XLARGE.inbound_mbps == 1000.0
        assert LINODE_1GB.outbound_mbps == 125.0

    def test_effective_capacity_bounded_by_weakest(self):
        assert LINODE_1GB.effective_capacity_mbps() <= 125.0

    def test_validation(self):
        from repro.cloud.flavor import InstanceFlavor

        with pytest.raises(ValueError):
            InstanceFlavor("bad", 0, 1.0, 1.0, 1.0, 1.0, 0.1)
        with pytest.raises(ValueError):
            InstanceFlavor("bad", 1, 1.0, 0.0, 1.0, 1.0, 0.1)
