"""CLI smoke tests (the fast commands; sims are covered elsewhere)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_parse(self):
        parser = build_parser()
        for argv in (
            ["capacity"],
            ["butterfly", "--duration", "1.0"],
            ["delays"],
            ["loss", "--model", "burst", "--points", "0,0.1"],
            ["churn", "--seed", "1"],
            ["sweep", "--knob", "lmax"],
        ):
            args = parser.parse_args(argv)
            assert args.command == argv[0]

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bad_knob_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--knob", "bogus"])


class TestExecution:
    def test_capacity(self, capsys):
        assert main(["capacity"]) == 0
        out = capsys.readouterr().out
        assert "70.0" in out
        assert "52.5" in out

    def test_capacity_csv(self, tmp_path, capsys):
        path = tmp_path / "out.csv"
        assert main(["--csv", str(path), "capacity"]) == 0
        content = path.read_text()
        assert content.startswith("bound,Mbps")
        assert "70.0" in content

    def test_sweep_alpha(self, capsys):
        assert main(["sweep", "--knob", "alpha"]) == 0
        out = capsys.readouterr().out
        assert "alpha" in out
        assert "vnfs" in out

    def test_churn_runs(self, capsys):
        assert main(["churn", "--interval", "30"]) == 0
        out = capsys.readouterr().out
        assert "minute" in out
