"""Streaming application tests: playout deadlines and continuity."""

import numpy as np
import pytest

from repro.apps.file_transfer import install_control_relay
from repro.apps.streaming import StreamingReceiver, StreamingSource
from repro.core.forwarding import ForwardingTable
from repro.core.session import CodingConfig, MulticastSession
from repro.core.vnf import CodingVnf, VnfRole
from repro.net import LinkSpec, Topology
from repro.net.loss import UniformLoss


def make_stream(rng, loss=None, playout_delay_s=0.5):
    topo = Topology(rng=rng)
    topo.add_node("src")
    relay = CodingVnf("relay", topo.scheduler, rng=rng, payload_mode="coefficients-only")
    topo.add_node(relay)
    topo.add_node("dst")
    topo.add_link(LinkSpec("src", "relay", 30.0, 10.0))
    topo.add_link(LinkSpec("relay", "dst", 30.0, 10.0, loss=loss))
    topo.add_link(LinkSpec("dst", "relay", 5.0, 10.0))
    topo.add_link(LinkSpec("relay", "src", 5.0, 10.0))
    session = MulticastSession(source="src", receivers=["dst"], coding=CodingConfig())
    relay.configure_session(session.session_id, VnfRole.RECODER, session.coding)
    relay.forwarding_table = ForwardingTable({session.session_id: ["dst"]})
    install_control_relay(relay, "src")
    source = StreamingSource(
        topo.get("src"),
        session,
        link_shares={"relay": 10.0},
        stream_rate_mbps=10.0,
        payload_mode="coefficients-only",
        rng=rng,
    )
    receiver = StreamingReceiver(
        topo.get("dst"),
        session,
        source,
        playout_delay_s=playout_delay_s,
        payload_mode="coefficients-only",
        ack_to="relay",
        stall_generations=8,
    )
    return topo, source, receiver


class TestContinuity:
    def test_clean_stream_all_on_time(self, rng):
        topo, source, receiver = make_stream(rng)
        source.start()
        topo.run(until=2.0)
        source.stop()
        topo.run(until=3.0)
        assert receiver.continuity() > 0.97
        assert receiver.late_generations() <= 2

    def test_latencies_bounded_on_clean_path(self, rng):
        topo, source, receiver = make_stream(rng)
        source.start()
        topo.run(until=1.0)
        lat = receiver.decode_latencies()
        assert lat.size > 0
        assert lat.max() < 0.2  # propagation + decode sync only

    def test_lossy_stream_lower_continuity_with_tight_playout(self, rng):
        topo_clean, src_clean, recv_clean = make_stream(rng, playout_delay_s=0.06)
        src_clean.start()
        topo_clean.run(until=2.0)
        topo_lossy, src_lossy, recv_lossy = make_stream(
            np.random.default_rng(1), loss=UniformLoss(0.3), playout_delay_s=0.06
        )
        src_lossy.start()
        topo_lossy.run(until=2.0)
        # Repairs take an extra RTT: they miss a 60 ms playout budget.
        assert recv_lossy.continuity() < recv_clean.continuity()

    def test_generation_production_clock(self, rng):
        topo, source, receiver = make_stream(rng)
        source.start()
        topo.run(until=1.0)
        t0 = source.generation_produced_at(0)
        t10 = source.generation_produced_at(10)
        assert t10 - t0 == pytest.approx(10 * source._gen_interval_s)

    def test_invalid_playout_delay(self, rng):
        with pytest.raises(ValueError):
            make_stream(rng, playout_delay_s=0.0)

    def test_continuity_zero_before_start(self, rng):
        topo, source, receiver = make_stream(rng)
        assert receiver.continuity() == 0.0
