"""File-transfer application tests: pacing, windowing, NACK repair."""

import numpy as np
import pytest

from repro.apps.file_transfer import ACK_PORT, NcReceiverApp, NcSourceApp, install_control_relay
from repro.core.forwarding import ForwardingTable
from repro.core.session import CodingConfig, MulticastSession
from repro.core.vnf import NC_PORT, CodingVnf, VnfRole
from repro.net import LinkSpec, Topology
from repro.net.loss import UniformLoss


def line_topology(rng, loss=None, capacity=50.0):
    """src -> relay -> dst data path with a clean reverse control path."""
    topo = Topology(rng=rng)
    topo.add_node("src")
    relay = CodingVnf("relay", topo.scheduler, rng=rng, payload_mode="coefficients-only")
    topo.add_node(relay)
    topo.add_node("dst")
    topo.add_link(LinkSpec("src", "relay", capacity, 5.0))
    topo.add_link(LinkSpec("relay", "dst", capacity, 5.0, loss=loss))
    topo.add_link(LinkSpec("dst", "relay", 5.0, 5.0))
    topo.add_link(LinkSpec("relay", "src", 5.0, 5.0))
    return topo, relay


def make_session():
    return MulticastSession(source="src", receivers=["dst"], coding=CodingConfig())


def wire_session(topo, relay, session, rng, loss_repair=True, **source_kwargs):
    relay.configure_session(session.session_id, VnfRole.RECODER, session.coding)
    relay.forwarding_table = ForwardingTable({session.session_id: ["dst"]})
    install_control_relay(relay, "src")
    receiver = NcReceiverApp(
        topo.get("dst"),
        session,
        payload_mode="coefficients-only",
        ack_to="relay",
        stall_generations=8,
    )
    source = NcSourceApp(
        topo.get("src"),
        session,
        link_shares={"relay": 20.0},
        data_rate_mbps=20.0,
        payload_mode="coefficients-only",
        rng=rng,
        **source_kwargs,
    )
    return source, receiver


class TestPacing:
    def test_clean_link_full_goodput(self, rng):
        topo, relay = line_topology(rng)
        session = make_session()
        source, receiver = wire_session(topo, relay, session, rng)
        source.start()
        topo.run(until=2.0)
        assert receiver.goodput_mbps(start_s=0.2) == pytest.approx(20.0, rel=0.1)

    def test_generation_count_matches_rate(self, rng):
        topo, relay = line_topology(rng)
        session = make_session()
        source, receiver = wire_session(topo, relay, session, rng)
        source.start()
        topo.run(until=1.0)
        expected = 20e6 / (session.coding.generation_bytes * 8)
        assert source.sent_generations == pytest.approx(expected, rel=0.05)

    def test_total_generations_limit(self, rng):
        topo, relay = line_topology(rng)
        session = make_session()
        source, receiver = wire_session(topo, relay, session, rng, total_generations=10)
        source.start()
        topo.run(until=2.0)
        assert source.sent_generations == 10
        assert len(receiver.completed) == 10

    def test_stop(self, rng):
        topo, relay = line_topology(rng)
        session = make_session()
        source, receiver = wire_session(topo, relay, session, rng)
        source.start()
        topo.run(until=0.5)
        source.stop()
        sent = source.sent_generations
        topo.run(until=1.0)
        assert source.sent_generations == sent


class TestReliability:
    def test_loss_repaired_by_nacks(self, rng):
        topo, relay = line_topology(rng, loss=UniformLoss(0.2))
        session = make_session()
        source, receiver = wire_session(topo, relay, session, rng, window_generations=256)
        source.start()
        topo.run(until=4.0)
        assert receiver.nacks_sent > 0
        assert source.repair_packets > 0
        # Despite 20% loss, the overwhelming majority of generations complete.
        assert len(receiver.completed) >= 0.9 * source.sent_generations

    def test_window_stalls_without_acks(self, rng):
        topo, relay = line_topology(rng)
        session = make_session()
        source, receiver = wire_session(topo, relay, session, rng, window_generations=16)
        receiver.stop_acks()  # simulate a dead control path
        receiver.ack_to = None
        source.start()
        topo.run(until=2.0)
        assert source.sent_generations == 16  # window exhausted, then stall
        assert source._stalled

    def test_cum_ack_advances_window(self, rng):
        topo, relay = line_topology(rng)
        session = make_session()
        source, receiver = wire_session(topo, relay, session, rng, window_generations=16)
        source.start()
        topo.run(until=2.0)
        assert source.sent_generations > 100  # flowing freely

    def test_uncoded_mode_roundtrip(self, rng):
        topo, relay = line_topology(rng)
        relay_config = make_session()
        session = relay_config
        relay.configure_session(session.session_id, VnfRole.FORWARDER, session.coding)
        relay.forwarding_table = ForwardingTable({session.session_id: ["dst"]})
        install_control_relay(relay, "src")
        receiver = NcReceiverApp(topo.get("dst"), session, payload_mode="coefficients-only", ack_to="relay")
        source = NcSourceApp(
            topo.get("src"),
            session,
            link_shares={"relay": 20.0},
            data_rate_mbps=20.0,
            coded=False,
            payload_mode="coefficients-only",
            rng=rng,
        )
        source.start()
        topo.run(until=1.0)
        assert len(receiver.completed) >= 0.95 * source.sent_generations


class TestMetrics:
    def test_throughput_series_sums_to_goodput(self, rng):
        topo, relay = line_topology(rng)
        session = make_session()
        source, receiver = wire_session(topo, relay, session, rng)
        source.start()
        topo.run(until=2.0)
        times, rates = receiver.throughput_series(window_s=0.25, duration_s=2.0)
        assert len(times) == len(rates) == 8
        total_from_series = sum(rates) * 0.25 * 1e6 / 8
        total = len(receiver.completed) * session.coding.generation_bytes
        assert total_from_series == pytest.approx(total, rel=0.05)

    def test_invalid_series_args(self, rng):
        topo, relay = line_topology(rng)
        session = make_session()
        _, receiver = wire_session(topo, relay, session, rng)
        with pytest.raises(ValueError):
            receiver.throughput_series(0, 1)


class TestValidation:
    def test_bad_source_args(self, rng):
        topo, relay = line_topology(rng)
        session = make_session()
        with pytest.raises(ValueError):
            NcSourceApp(topo.get("src"), session, link_shares={}, data_rate_mbps=1.0)
        with pytest.raises(ValueError):
            NcSourceApp(topo.get("src"), session, link_shares={"relay": 1.0}, data_rate_mbps=0.0)
        with pytest.raises(ValueError):
            NcSourceApp(
                topo.get("src"), session, link_shares={"relay": 1.0}, data_rate_mbps=1.0, window_generations=0
            )
