"""Shared helpers for the lint-engine fixture tests."""

from __future__ import annotations

import textwrap

from repro.analysis import analyze_source
from repro.analysis.findings import Finding


def lint(
    source: str, path: str = "src/repro/mod.py", select: list[str] | None = None
) -> list[Finding]:
    """Lint a dedented snippet as if it lived at ``path``."""
    return analyze_source(textwrap.dedent(source), path=path, select=select)


def active_ids(findings: list[Finding]) -> list[str]:
    return [f.rule_id for f in findings if not f.suppressed]
