"""Shared helpers for the lint-engine fixture tests."""

from __future__ import annotations

import ast
import textwrap
from pathlib import Path

from repro.analysis import analyze_source
from repro.analysis.astutil import import_aliases
from repro.analysis.engine import SourceModule, analyze_modules
from repro.analysis.findings import Finding
from repro.analysis.suppressions import scan_suppressions


def lint(
    source: str, path: str = "src/repro/mod.py", select: list[str] | None = None
) -> list[Finding]:
    """Lint a dedented snippet as if it lived at ``path``."""
    return analyze_source(textwrap.dedent(source), path=path, select=select)


def make_module(source: str, path: str) -> SourceModule:
    """Parse a dedented snippet into a SourceModule at ``path``."""
    src = textwrap.dedent(source)
    tree = ast.parse(src, filename=path)
    return SourceModule(
        path=Path(path),
        source=src,
        tree=tree,
        suppressions=scan_suppressions(src),
        aliases=import_aliases(tree),
    )


def lint_modules(
    sources: dict[str, str], select: list[str] | None = None
) -> list[Finding]:
    """Lint several snippets together as one project (path -> source)."""
    modules = [make_module(src, path) for path, src in sources.items()]
    return analyze_modules(modules, select=select)


def active_ids(findings: list[Finding]) -> list[str]:
    return [f.rule_id for f in findings if not f.suppressed]
