"""End-to-end CLI tests for ``python -m repro.analysis``."""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.analysis.__main__ import main

REPO_ROOT = Path(__file__).resolve().parents[2]

BAD_SNIPPET = """
    import numpy as np

    def f(x, acc=[]):
        rng = np.random.default_rng()
        return acc
"""


def run_cli(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
    )


class TestCleanTree:
    def test_src_repro_json_exits_zero(self):
        proc = run_cli("src/repro", "--format", "json")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["findings"] == []
        assert payload["exit_code"] == 0
        assert payload["files_scanned"] > 50
        assert payload["rules_run"] == [
            "RL001", "RL002", "RL003", "RL004", "RL005", "RL006",
            "RL007", "RL008", "RL009", "RL010", "RL011", "RL012",
        ]

    def test_full_tree_text_clean(self):
        proc = run_cli("src", "tests", "benchmarks", "examples")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean: 0 findings" in proc.stdout


class TestFindingsPath:
    def _bad_file(self, tmp_path: Path) -> Path:
        pkg = tmp_path / "repro"
        pkg.mkdir()
        target = pkg / "bad.py"
        target.write_text(textwrap.dedent(BAD_SNIPPET))
        return target

    def test_findings_exit_one_with_json_payload(self, tmp_path):
        proc = run_cli(str(self._bad_file(tmp_path)), "--format", "json")
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        reported = {f["rule_id"] for f in payload["findings"]}
        assert reported == {"RL001", "RL005"}
        assert all(set(f) >= {"rule_id", "path", "line", "col", "message"} for f in payload["findings"])

    def test_select_narrows_rules(self, tmp_path):
        proc = run_cli(str(self._bad_file(tmp_path)), "--select", "RL005", "--format", "json")
        payload = json.loads(proc.stdout)
        assert {f["rule_id"] for f in payload["findings"]} == {"RL005"}

    def test_ignore_drops_rules(self, tmp_path):
        proc = run_cli(str(self._bad_file(tmp_path)), "--ignore", "RL001,RL005")
        assert proc.returncode == 0

    def test_syntax_error_reported_not_crash(self, tmp_path):
        target = tmp_path / "broken.py"
        target.write_text("def f(:\n")
        proc = run_cli(str(target), "--format", "json")
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert [f["rule_id"] for f in payload["findings"]] == ["RL000"]


class TestUsageErrors:
    def test_unknown_rule_id_exits_two(self):
        proc = run_cli("src/repro", "--select", "RL999")
        assert proc.returncode == 2
        assert "RL999" in proc.stderr

    def test_missing_path_exits_two(self):
        proc = run_cli("no/such/dir")
        assert proc.returncode == 2


class TestInProcess:
    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RL001", "RL002", "RL003", "RL004", "RL005"):
            assert rule_id in out

    def test_main_clean_run(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["src/repro", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["exit_code"] == 0
