"""CLI gate modes: --fix, --sarif, --baseline, --cache, --changed-only.

This is also the CI-gate regression suite demanded by the analyzer
design: a seeded violation (an unstamped ``NC_FORWARD_TAB`` push) must
fail the exact invocation CI runs, and must stop failing once accepted
into a baseline — without letting a *second* violation through.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.__main__ import main

UNSTAMPED_PUSH = """\
    from repro.core.signals import NcForwardTab


    def push(bus, name, text):
        bus.send(NcForwardTab(target=name, table_text=text))
"""


@pytest.fixture()
def seeded_tree(tmp_path, monkeypatch):
    """A scratch repo layout with one seeded RL009 violation."""
    pkg = tmp_path / "src" / "repro" / "ctrl"
    pkg.mkdir(parents=True)
    (pkg / "push.py").write_text(textwrap.dedent(UNSTAMPED_PUSH), encoding="utf-8")
    monkeypatch.chdir(tmp_path)
    return tmp_path


class TestSeededViolationGate:
    def test_ci_invocation_fails_on_seeded_violation(self, seeded_tree, capsys):
        # The same flags .github/workflows/ci.yml passes on main.
        code = main(["src", "--baseline", "bl.json", "--sarif", "out.sarif"])
        out = capsys.readouterr().out
        assert code == 1
        assert "RL009" in out and "without an epoch= stamp" in out
        sarif = json.loads(Path("out.sarif").read_text(encoding="utf-8"))
        assert [r["ruleId"] for r in sarif["runs"][0]["results"]] == ["RL009"]

    def test_baseline_accepts_then_blocks_new_debt(self, seeded_tree, capsys):
        assert main(["src", "--update-baseline", "--baseline", "bl.json"]) == 0
        assert main(["src", "--baseline", "bl.json"]) == 0

        # A second, different violation is new debt: the gate closes.
        push = seeded_tree / "src" / "repro" / "ctrl" / "push.py"
        push.write_text(
            push.read_text(encoding="utf-8")
            + "\n\ndef push2(bus, name):\n"
            "    from repro.core.signals import NcSettings\n"
            "    bus.send(NcSettings(target=name))\n",
            encoding="utf-8",
        )
        capsys.readouterr()
        assert main(["src", "--baseline", "bl.json"]) == 1
        assert "NcSettings" in capsys.readouterr().out

    def test_fixing_the_violation_clears_the_gate(self, seeded_tree):
        push = seeded_tree / "src" / "repro" / "ctrl" / "push.py"
        push.write_text(
            textwrap.dedent(
                """\
                from repro.core.signals import NcForwardTab


                def push(bus, name, text, epoch):
                    bus.send(NcForwardTab(target=name, table_text=text, epoch=epoch))
                """
            ),
            encoding="utf-8",
        )
        assert main(["src", "--baseline", "bl.json"]) == 0


class TestFixCli:
    @pytest.fixture()
    def fixable_tree(self, tmp_path, monkeypatch):
        pkg = tmp_path / "src" / "repro" / "demo"
        pkg.mkdir(parents=True)
        (pkg / "mod.py").write_text(
            "import numpy as np\n\n\ndef f():\n    return np.random.default_rng()\n",
            encoding="utf-8",
        )
        monkeypatch.chdir(tmp_path)
        return pkg / "mod.py"

    def test_fix_rewrites_and_exits_zero(self, fixable_tree, capsys):
        assert main(["src", "--fix"]) == 0
        assert "fixed 1 finding(s)" in capsys.readouterr().out
        assert "derive_rng(" in fixable_tree.read_text(encoding="utf-8")

    def test_fix_dry_run_previews_without_writing(self, fixable_tree, capsys):
        before = fixable_tree.read_bytes()
        assert main(["src", "--fix", "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "would fix 1 finding(s)" in out and "+++" in out
        assert fixable_tree.read_bytes() == before

    def test_second_fix_run_is_noop(self, fixable_tree, capsys):
        assert main(["src", "--fix"]) == 0
        after = fixable_tree.read_bytes()
        assert main(["src", "--fix"]) == 0
        assert fixable_tree.read_bytes() == after
        assert "fixed 0 finding(s)" in capsys.readouterr().out


class TestCacheCli:
    def test_cache_file_written_and_reused(self, seeded_tree, capsys):
        assert main(["src", "--cache", "c.json", "--format", "json"]) == 1
        first = json.loads(capsys.readouterr().out)
        assert first["cache_misses"] > 0
        assert Path("c.json").is_file()

        assert main(["src", "--cache", "c.json", "--format", "json"]) == 1
        second = json.loads(capsys.readouterr().out)
        assert second["cache_misses"] == 0
        assert [f["rule_id"] for f in second["findings"]] == [
            f["rule_id"] for f in first["findings"]
        ]


class TestChangedOnly:
    def test_unresolvable_base_falls_back_to_full_report(self, seeded_tree, capsys):
        # Not a git repo: fail safe by reporting everything.
        code = main(["src", "--changed-only", "--base", "no-such-ref"])
        captured = capsys.readouterr()
        assert code == 1
        assert "RL009" in captured.out
        assert "cannot diff" in captured.err


class TestSarifStdout:
    def test_format_sarif_prints_document(self, seeded_tree, capsys):
        assert main(["src", "--format", "sarif"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        assert [r["ruleId"] for r in doc["runs"][0]["results"]] == ["RL009"]
