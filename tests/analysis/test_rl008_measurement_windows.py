"""RL008 fixtures: MeasurementService windows opened but never closed."""

from tests.analysis.helpers import active_ids, lint

SELECT = ["RL008"]


class TestFires:
    def test_started_never_stopped(self):
        findings = lint(
            """
            from repro.net.measurement import MeasurementService

            def test_periodic(topology):
                service = MeasurementService(topology, print, interval_s=5.0)
                service.start()
                topology.run(until=20.0)
            """,
            select=SELECT,
        )
        assert active_ids(findings) == ["RL008"]
        assert "service.stop()" in findings[0].message

    def test_alias_import_still_resolves(self):
        findings = lint(
            """
            from repro.net.measurement import MeasurementService as Sampler

            def probe(topology):
                sampler = Sampler(topology, print)
                sampler.start()
            """,
            select=SELECT,
        )
        assert active_ids(findings) == ["RL008"]

    def test_attribute_receiver_in_one_scope(self):
        findings = lint(
            """
            from repro.net.measurement import MeasurementService

            class Harness:
                def run_once(self, topology):
                    self.service = MeasurementService(topology, print)
                    self.service.start()
                    topology.run(until=10.0)
            """,
            select=SELECT,
        )
        assert active_ids(findings) == ["RL008"]

    def test_module_level_window(self):
        findings = lint(
            """
            from repro.net.measurement import MeasurementService

            service = MeasurementService(None, print)
            service.start()
            """,
            select=SELECT,
        )
        assert active_ids(findings) == ["RL008"]

    def test_two_leaks_two_findings(self):
        findings = lint(
            """
            from repro.net.measurement import MeasurementService

            def test_a(topology):
                a = MeasurementService(topology, print)
                a.start()

            def test_b(topology):
                b = MeasurementService(topology, print)
                b.start()
            """,
            select=SELECT,
        )
        assert active_ids(findings) == ["RL008", "RL008"]


class TestQuiet:
    def test_started_and_stopped(self):
        findings = lint(
            """
            from repro.net.measurement import MeasurementService

            def test_window(topology):
                service = MeasurementService(topology, print, interval_s=5.0)
                service.start()
                topology.run(until=6.0)
                service.stop()
            """,
            select=SELECT,
        )
        assert active_ids(findings) == []

    def test_constructed_but_never_started(self):
        findings = lint(
            """
            from repro.net.measurement import MeasurementService

            def test_validation(topology):
                service = MeasurementService(topology, print)
                service.sample_once()
            """,
            select=SELECT,
        )
        assert active_ids(findings) == []

    def test_cross_scope_lifecycle_is_not_flagged(self):
        # Construction in __init__, start/stop from different methods:
        # the window is managed, just not scope-locally visible.
        findings = lint(
            """
            from repro.net.measurement import MeasurementService

            class Daemon:
                def __init__(self, topology):
                    self.service = MeasurementService(topology, print)

                def bring_up(self):
                    self.service.start()

                def tear_down(self):
                    self.service.stop()
            """,
            select=SELECT,
        )
        assert active_ids(findings) == []

    def test_unrelated_start_calls_ignored(self):
        findings = lint(
            """
            def boot(daemon):
                daemon.start()
            """,
            select=SELECT,
        )
        assert active_ids(findings) == []

    def test_suppression_comment_respected(self):
        findings = lint(
            """
            from repro.net.measurement import MeasurementService

            def soak_forever(topology):
                service = MeasurementService(topology, print)
                service.start()  # repro-lint: disable=RL008
            """,
            select=SELECT,
        )
        assert [f.rule_id for f in findings] == ["RL008"]
        assert active_ids(findings) == []
