"""SARIF 2.1.0 reporter: document shape and finding mapping."""

import json

from repro.analysis.engine import AnalysisResult, analyze_paths
from repro.analysis.findings import Finding
from repro.analysis.registry import all_rules
from repro.analysis.sarif import SARIF_VERSION, render_sarif, to_sarif


def _result(findings=()):
    return AnalysisResult(findings=list(findings), files_scanned=1)


def test_document_envelope():
    doc = to_sarif(_result())
    assert doc["version"] == SARIF_VERSION
    assert "$schema" in doc
    assert len(doc["runs"]) == 1


def test_rule_catalogue_embedded_even_with_zero_results():
    doc = to_sarif(_result())
    driver = doc["runs"][0]["tool"]["driver"]
    ids = [r["id"] for r in driver["rules"]]
    assert ids == [r.rule_id for r in all_rules()]
    assert all(r["shortDescription"]["text"] for r in driver["rules"])


def test_finding_maps_to_result_with_one_based_region():
    finding = Finding(rule_id="RL001", path="src/repro/m.py", line=7, col=0, message="boom")
    doc = to_sarif(_result([finding]))
    result = doc["runs"][0]["results"][0]
    assert result["ruleId"] == "RL001"
    assert result["message"]["text"] == "boom"
    loc = result["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uri"] == "src/repro/m.py"
    assert loc["region"] == {"startLine": 7, "startColumn": 1}  # SARIF is 1-based
    assert "suppressions" not in result


def test_suppressed_finding_carries_suppression_object():
    finding = Finding(
        rule_id="RL001", path="src/repro/m.py", line=1, col=0, message="x", suppressed=True
    )
    doc = to_sarif(_result([finding]))
    result = doc["runs"][0]["results"][0]
    assert result["suppressions"] == [{"kind": "inSource", "status": "accepted"}]


def test_render_is_valid_json_and_roundtrips_real_run(tmp_path):
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text(
        "import numpy as np\n\n\ndef f():\n    return np.random.default_rng()\n",
        encoding="utf-8",
    )
    result = analyze_paths([tmp_path / "src"])
    doc = json.loads(render_sarif(result))
    assert [r["ruleId"] for r in doc["runs"][0]["results"]] == ["RL001"]
    assert doc["runs"][0]["properties"]["filesScanned"] == 1
