"""RL003 fixtures: blocking sleeps, negative schedules, time equality."""

from tests.analysis.helpers import active_ids, lint

SELECT = ["RL003"]


class TestFires:
    def test_time_sleep_blocks_process(self):
        findings = lint(
            """
            import time

            def handler(scheduler):
                time.sleep(0.5)
            """,
            select=SELECT,
        )
        assert active_ids(findings) == ["RL003"]
        assert "schedule" in findings[0].message

    def test_negative_delay_schedule(self):
        findings = lint(
            """
            def f(scheduler, fn):
                scheduler.schedule(-1.0, fn)
            """,
            select=SELECT,
        )
        assert active_ids(findings) == ["RL003"]

    def test_negative_absolute_schedule_at(self):
        findings = lint(
            """
            def f(scheduler, fn):
                scheduler.schedule_at(-0.25, fn)
            """,
            select=SELECT,
        )
        assert active_ids(findings) == ["RL003"]

    def test_equality_on_now(self):
        findings = lint(
            """
            def f(scheduler, deadline):
                if scheduler.now == deadline:
                    return True
                return False
            """,
            select=SELECT,
        )
        assert active_ids(findings) == ["RL003"]

    def test_equality_on_name_bound_to_now(self):
        findings = lint(
            """
            def f(scheduler, deadline):
                t = scheduler.now
                return t != deadline
            """,
            select=SELECT,
        )
        assert active_ids(findings) == ["RL003"]


class TestClean:
    def test_scheduled_delay_instead_of_sleep(self):
        assert lint(
            """
            def handler(scheduler, fn):
                scheduler.schedule(0.5, fn)
            """,
            select=SELECT,
        ) == []

    def test_negative_literal_inside_pytest_raises(self):
        assert lint(
            """
            import pytest

            def test_rejects_past(scheduler, fn):
                with pytest.raises(ValueError):
                    scheduler.schedule(-1.0, fn)
            """,
            select=SELECT,
        ) == []

    def test_ordering_comparison_allowed(self):
        assert lint(
            """
            def f(scheduler, deadline):
                return scheduler.now >= deadline
            """,
            select=SELECT,
        ) == []

    def test_tolerant_comparators_allowed(self):
        assert lint(
            """
            import math
            import pytest

            def f(scheduler, deadline):
                a = scheduler.now == pytest.approx(deadline)
                b = math.isclose(scheduler.now, deadline)
                return a and b
            """,
            select=SELECT,
        ) == []

    def test_exact_time_assert_allowed_in_tests(self):
        assert lint(
            """
            def test_clock(scheduler):
                assert scheduler.now == 1.0
            """,
            path="tests/net/test_events.py",
            select=SELECT,
        ) == []


class TestSuppression:
    def test_pragma_silences_sleep(self):
        findings = lint(
            """
            import time

            def warmup():
                time.sleep(0.01)  # repro-lint: disable=RL003
            """,
            select=SELECT,
        )
        assert active_ids(findings) == []
        assert len(findings) == 1 and findings[0].suppressed
