"""RL006 fixtures: wall-clock reads and file I/O in scheduled callbacks."""

from tests.analysis.helpers import active_ids, lint

SELECT = ["RL006"]


class TestFires:
    def test_wall_clock_in_scheduled_method(self):
        findings = lint(
            """
            import time

            class Probe:
                def start(self):
                    self.scheduler.schedule(1.0, self._tick)

                def _tick(self):
                    self.samples.append(time.time())
            """,
            select=SELECT,
        )
        assert active_ids(findings) == ["RL006"]
        assert "time.time" in findings[0].message
        assert "_tick" in findings[0].message

    def test_monotonic_via_alias(self):
        findings = lint(
            """
            from time import monotonic as clock

            def poll():
                return clock()

            def start(scheduler):
                scheduler.schedule_every(0.5, poll)
            """,
            select=SELECT,
        )
        assert active_ids(findings) == ["RL006"]

    def test_datetime_now(self):
        findings = lint(
            """
            from datetime import datetime

            class Logger:
                def install(self):
                    self.scheduler.schedule_at(2.0, self._stamp)

                def _stamp(self):
                    self.when = datetime.now()
            """,
            select=SELECT,
        )
        assert active_ids(findings) == ["RL006"]

    def test_open_in_handler(self):
        findings = lint(
            """
            class Dumper:
                def start(self):
                    self.scheduler.schedule(1.0, self._flush)

                def _flush(self):
                    with open("trace.log", "a") as fh:
                        fh.write("tick")
            """,
            select=SELECT,
        )
        assert active_ids(findings) == ["RL006"]
        assert "open()" in findings[0].message

    def test_path_io_in_handler(self):
        findings = lint(
            """
            class Snapshotter:
                def start(self):
                    self.scheduler.schedule(1.0, self._snap)

                def _snap(self):
                    self.path.write_text(repr(self.state))
            """,
            select=SELECT,
        )
        assert active_ids(findings) == ["RL006"]
        assert "write_text" in findings[0].message

    def test_lambda_callback_inline(self):
        findings = lint(
            """
            import time

            def start(scheduler, log):
                scheduler.schedule(0.1, lambda: log.append(time.time()))
            """,
            select=SELECT,
        )
        assert active_ids(findings) == ["RL006"]
        assert "<lambda>" in findings[0].message

    def test_multiple_impurities_all_reported(self):
        findings = lint(
            """
            import time

            class Bad:
                def start(self):
                    self.scheduler.schedule(1.0, self._tick)

                def _tick(self):
                    t = time.monotonic()
                    open("out.txt", "w").write(str(t))
            """,
            select=SELECT,
        )
        assert active_ids(findings) == ["RL006", "RL006"]


class TestQuiet:
    def test_simulated_time_is_pure(self):
        findings = lint(
            """
            class Probe:
                def start(self):
                    self.scheduler.schedule(1.0, self._tick)

                def _tick(self):
                    self.samples.append(self.scheduler.now)
                    self.scheduler.schedule(1.0, self._tick)
            """,
            select=SELECT,
        )
        assert active_ids(findings) == []

    def test_wall_clock_outside_handlers(self):
        # Setup/teardown and plain helpers may read the wall clock; only
        # scheduled callbacks are held to the purity contract.
        findings = lint(
            """
            import time

            def benchmark(fn):
                start = time.perf_counter()
                fn()
                return time.perf_counter() - start
            """,
            select=SELECT,
        )
        assert active_ids(findings) == []

    def test_file_io_outside_handlers(self):
        findings = lint(
            """
            def load_config(path):
                return path.read_text()
            """,
            select=SELECT,
        )
        assert active_ids(findings) == []

    def test_handler_name_matching_is_module_local(self):
        # A function never passed to schedule() is not a handler even if
        # another name is.
        findings = lint(
            """
            import time

            def tick():
                pass

            def other():
                return time.time()

            def start(scheduler):
                scheduler.schedule(1.0, tick)
            """,
            select=SELECT,
        )
        assert active_ids(findings) == []

    def test_suppression_comment_respected(self):
        findings = lint(
            """
            import time

            class Probe:
                def start(self):
                    self.scheduler.schedule(1.0, self._tick)

                def _tick(self):
                    self.t = time.time()  # repro-lint: disable=RL006
            """,
            select=SELECT,
        )
        assert [f.rule_id for f in findings] == ["RL006"]
        assert active_ids(findings) == []
