"""RL009: config-epoch monotonicity on NC_SETTINGS / NC_FORWARD_TAB."""

from tests.analysis.helpers import active_ids, lint, lint_modules

_SIGNALS = """\
    from dataclasses import dataclass


    @dataclass
    class Signal:
        target: str


    @dataclass
    class NcForwardTab(Signal):
        table_text: str = ""
        epoch: int = 0


    @dataclass
    class NcSettings(Signal):
        epoch: int = 0
"""


def test_unstamped_forward_tab_flagged():
    findings = lint_modules(
        {
            "src/repro/core/signals.py": _SIGNALS,
            "src/repro/core/push.py": """\
                from repro.core.signals import NcForwardTab


                def push(bus, name, text):
                    bus.send(NcForwardTab(target=name, table_text=text))
            """,
        },
        select=["RL009"],
    )
    assert active_ids(findings) == ["RL009"]
    assert "without an epoch= stamp" in findings[0].message
    assert findings[0].path == "src/repro/core/push.py"


def test_literal_epoch_flagged():
    findings = lint_modules(
        {
            "src/repro/core/signals.py": _SIGNALS,
            "src/repro/core/push.py": """\
                from repro.core.signals import NcSettings


                def push(bus, name):
                    bus.send(NcSettings(target=name, epoch=7))
            """,
        },
        select=["RL009"],
    )
    assert active_ids(findings) == ["RL009"]
    assert "hard-coded epoch=7" in findings[0].message


def test_live_epoch_expression_clean():
    findings = lint_modules(
        {
            "src/repro/core/signals.py": _SIGNALS,
            "src/repro/core/push.py": """\
                from repro.core.signals import NcForwardTab, NcSettings


                class Controller:
                    config_epoch = 1

                    def push(self, bus, name, text):
                        bus.send(NcSettings(target=name, epoch=self.config_epoch))
                        bus.send(NcForwardTab(target=name, table_text=text, epoch=self.config_epoch))
            """,
        },
        select=["RL009"],
    )
    assert active_ids(findings) == []


def test_aliased_import_still_caught():
    findings = lint_modules(
        {
            "src/repro/core/signals.py": _SIGNALS,
            "src/repro/core/push.py": """\
                from repro.core import signals


                def push(bus, name, text):
                    bus.send(signals.NcForwardTab(target=name, table_text=text))
            """,
        },
        select=["RL009"],
    )
    assert active_ids(findings) == ["RL009"]


def test_renamed_import_still_caught():
    findings = lint(
        """
        from repro.core.signals import NcForwardTab as FT


        def push(bus, name, text):
            bus.send(FT(target=name, table_text=text))
        """,
        path="src/repro/core/push.py",
        select=["RL009"],
    )
    assert active_ids(findings) == ["RL009"]


def test_same_named_local_class_not_flagged():
    findings = lint_modules(
        {
            "src/repro/core/signals.py": _SIGNALS,
            "src/repro/core/other.py": """\
                class NcForwardTab:  # unrelated local type, not the signal
                    def __init__(self, rows):
                        self.rows = rows


                def build(rows):
                    return NcForwardTab(rows)
            """,
        },
        select=["RL009"],
    )
    assert active_ids(findings) == []


def test_signals_module_itself_exempt():
    findings = lint(_SIGNALS, path="src/repro/core/signals.py", select=["RL009"])
    assert active_ids(findings) == []


def test_outside_repro_package_exempt():
    findings = lint(
        """
        from repro.core.signals import NcForwardTab


        def push(bus):
            bus.send(NcForwardTab(target="n", table_text=""))
        """,
        path="tests/test_push.py",
        select=["RL009"],
    )
    assert active_ids(findings) == []


def test_suppression_respected():
    findings = lint(
        """
        from repro.core.signals import NcForwardTab


        def push(bus, name, text):
            bus.send(NcForwardTab(target=name, table_text=text))  # repro-lint: disable=RL009
        """,
        path="src/repro/core/push.py",
        select=["RL009"],
    )
    assert active_ids(findings) == []
    assert [f.rule_id for f in findings if f.suppressed] == ["RL009"]
