"""RL001 fixtures: unseeded randomness and wall-clock reads."""

from tests.analysis.helpers import active_ids, lint

SELECT = ["RL001"]


class TestFires:
    def test_unseeded_default_rng(self):
        findings = lint(
            """
            import numpy as np

            def make():
                return np.random.default_rng()
            """,
            select=SELECT,
        )
        assert active_ids(findings) == ["RL001"]
        assert "derive_rng" in findings[0].message

    def test_unseeded_default_rng_via_from_import(self):
        findings = lint(
            """
            from numpy.random import default_rng

            rng = default_rng()
            """,
            select=SELECT,
        )
        assert active_ids(findings) == ["RL001"]

    def test_legacy_numpy_global_state(self):
        findings = lint(
            """
            import numpy as np

            x = np.random.rand(3)
            y = np.random.randint(0, 10)
            """,
            select=SELECT,
        )
        assert active_ids(findings) == ["RL001", "RL001"]

    def test_stdlib_random_module(self):
        findings = lint(
            """
            import random

            x = random.random()
            random.seed(0)
            """,
            select=SELECT,
        )
        assert active_ids(findings) == ["RL001", "RL001"]

    def test_seedless_random_random_instance(self):
        findings = lint(
            """
            import random

            r = random.Random()
            """,
            select=SELECT,
        )
        assert active_ids(findings) == ["RL001"]

    def test_wall_clock(self):
        findings = lint(
            """
            import time

            started = time.time()
            t = time.perf_counter()
            """,
            select=SELECT,
        )
        assert active_ids(findings) == ["RL001", "RL001"]

    def test_default_factory_fallback(self):
        findings = lint(
            """
            from dataclasses import dataclass, field
            import numpy as np

            @dataclass
            class C:
                rng: np.random.Generator = field(default_factory=np.random.default_rng)
            """,
            select=SELECT,
        )
        assert active_ids(findings) == ["RL001"]


class TestClean:
    def test_seeded_default_rng(self):
        assert lint(
            """
            import numpy as np

            rng = np.random.default_rng(42)
            """,
            select=SELECT,
        ) == []

    def test_seeded_random_instance_and_generator_api(self):
        assert lint(
            """
            import random
            import numpy as np

            r = random.Random(7)
            g = np.random.Generator(np.random.PCG64(3))
            ss = np.random.SeedSequence([1, 2])
            """,
            select=SELECT,
        ) == []

    def test_outside_repro_package_not_scoped(self):
        assert lint(
            """
            import numpy as np

            rng = np.random.default_rng()
            """,
            path="tests/conftest.py",
            select=SELECT,
        ) == []

    def test_helper_module_exempt(self):
        assert lint(
            """
            import numpy as np

            def derive():
                return np.random.default_rng()
            """,
            path="src/repro/util/rng.py",
            select=SELECT,
        ) == []


class TestSuppression:
    def test_same_line_pragma(self):
        findings = lint(
            """
            import numpy as np

            rng = np.random.default_rng()  # repro-lint: disable=RL001
            """,
            select=SELECT,
        )
        assert active_ids(findings) == []
        assert [f.rule_id for f in findings if f.suppressed] == ["RL001"]

    def test_next_line_pragma(self):
        findings = lint(
            """
            import numpy as np

            # repro-lint: disable-next-line=RL001
            rng = np.random.default_rng()
            """,
            select=SELECT,
        )
        assert active_ids(findings) == []

    def test_pragma_for_other_rule_does_not_apply(self):
        findings = lint(
            """
            import numpy as np

            rng = np.random.default_rng()  # repro-lint: disable=RL002
            """,
            select=SELECT,
        )
        assert active_ids(findings) == ["RL001"]
