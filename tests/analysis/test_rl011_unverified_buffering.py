"""RL011: verify() must dominate CodedPacket buffering."""

from tests.analysis.helpers import active_ids, lint, lint_modules


def test_unverified_buffer_add_flagged():
    findings = lint(
        """
        from repro.rlnc.packet import CodedPacket


        class Vnf:
            def on_packet(self, packet: CodedPacket):
                self.buffer.add(packet.generation_id, packet)
        """,
        select=["RL011"],
    )
    assert active_ids(findings) == ["RL011"]
    assert "dominating verify()" in findings[0].message


def test_verify_before_add_clean():
    findings = lint(
        """
        from repro.rlnc.packet import CodedPacket


        class Vnf:
            def on_packet(self, packet: CodedPacket):
                if not packet.verify():
                    return
                self.buffer.add(packet.generation_id, packet)
        """,
        select=["RL011"],
    )
    assert active_ids(findings) == []


def test_verify_after_add_flagged():
    findings = lint(
        """
        from repro.rlnc.packet import CodedPacket


        class Vnf:
            def on_packet(self, packet: CodedPacket):
                self.recoder.add(packet)
                packet.verify()
        """,
        select=["RL011"],
    )
    assert active_ids(findings) == ["RL011"]


def test_isinstance_narrowing_tracked():
    findings = lint(
        """
        from repro.rlnc.packet import CodedPacket


        class Receiver:
            def on_datagram(self, dgram):
                payload = dgram.payload
                if isinstance(payload, CodedPacket):
                    self.decoder.add(payload)
        """,
        select=["RL011"],
    )
    assert active_ids(findings) == ["RL011"]


def test_verify_one_frame_up_clean():
    # The pipelined VNF shape: the gate lives in the dispatching
    # handler, the buffering in the helper it calls.
    findings = lint(
        """
        from repro.rlnc.packet import CodedPacket


        class Vnf:
            def _handle_packet(self, packet: CodedPacket):
                if not packet.verify():
                    return
                self._recode(packet)

            def _recode(self, packet: CodedPacket):
                self.recoder.add(packet)
        """,
        select=["RL011"],
    )
    assert active_ids(findings) == []


def test_unverified_caller_chain_flagged():
    findings = lint(
        """
        from repro.rlnc.packet import CodedPacket


        class Vnf:
            def _handle_packet(self, packet: CodedPacket):
                self._recode(packet)

            def _recode(self, packet: CodedPacket):
                self.recoder.add(packet)
        """,
        select=["RL011"],
    )
    # The sink function has a caller, but the caller never verifies.
    assert active_ids(findings) == ["RL011"]


def test_cross_module_verify_gate_clean():
    findings = lint_modules(
        {
            "src/repro/core/ingress.py": """\
                from repro.rlnc.packet import CodedPacket
                from repro.core.store import stash


                def on_wire(packet: CodedPacket):
                    if not packet.verify():
                        return
                    stash(packet)
            """,
            "src/repro/core/store.py": """\
                from repro.rlnc.packet import CodedPacket

                generation_buffer = {}


                def stash(packet: CodedPacket):
                    generation_buffer.add(packet)
            """,
        },
        select=["RL011"],
    )
    assert active_ids(findings) == []


def test_rlnc_package_internals_exempt():
    findings = lint(
        """
        from repro.rlnc.packet import CodedPacket


        class Recoder:
            def on_packet(self, packet: CodedPacket):
                self.buffer.add(packet)
        """,
        path="src/repro/rlnc/recode.py",
        select=["RL011"],
    )
    assert active_ids(findings) == []


def test_untyped_packet_not_tracked():
    # No annotation and no isinstance: the rule stays conservative.
    findings = lint(
        """
        class Vnf:
            def on_packet(self, packet):
                self.buffer.add(packet)
        """,
        select=["RL011"],
    )
    assert active_ids(findings) == []


def test_suppression_respected():
    findings = lint(
        """
        from repro.rlnc.packet import CodedPacket


        class Vnf:
            def on_packet(self, packet: CodedPacket):
                self.buffer.add(packet)  # repro-lint: disable=RL011
        """,
        select=["RL011"],
    )
    assert active_ids(findings) == []
