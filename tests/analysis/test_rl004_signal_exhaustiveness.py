"""RL004 fixtures: cross-module signal-protocol exhaustiveness."""

import textwrap
from pathlib import Path

from repro.analysis import analyze_paths

PROTOCOL = """
    class Signal:
        pass

    class NcAlpha(Signal):
        pass

    class NcBeta(Signal):
        pass

    class NcOrphan(Signal):
        pass
"""

DAEMON = """
    def handle_signal(signal):
        if isinstance(signal, NcAlpha):
            return "alpha"
        if isinstance(signal, (NcGhost, tuple)):
            return "ghost"
        return None
"""

CONTROLLER = """
    def plan():
        return [NcBeta(target="V1"), NcPhantom(target="V1")]
"""


def _write_tree(root: Path, protocol=PROTOCOL, daemon=DAEMON, controller=CONTROLLER) -> Path:
    core = root / "repro" / "core"
    core.mkdir(parents=True)
    if protocol is not None:
        (core / "signals.py").write_text(textwrap.dedent(protocol))
    if daemon is not None:
        (core / "daemon.py").write_text(textwrap.dedent(daemon))
    if controller is not None:
        (core / "controller.py").write_text(textwrap.dedent(controller))
    return core


class TestFires:
    def test_all_three_drift_bugs(self, tmp_path):
        core = _write_tree(tmp_path)
        result = analyze_paths([core], select=["RL004"])
        messages = {f.message for f in result.active}
        assert len(result.active) == 3
        assert any("NcOrphan" in m and "neither dispatched" in m for m in messages)
        assert any("unknown signal NcGhost" in m for m in messages)
        assert any("unknown signal NcPhantom" in m for m in messages)

    def test_orphan_anchored_at_protocol_class_line(self, tmp_path):
        core = _write_tree(tmp_path)
        result = analyze_paths([core], select=["RL004"])
        orphan = [f for f in result.active if "NcOrphan" in f.message]
        assert orphan and orphan[0].path.endswith("signals.py")


class TestClean:
    def test_closed_protocol(self, tmp_path):
        core = _write_tree(
            tmp_path,
            daemon="""
                def handle_signal(signal):
                    if isinstance(signal, NcAlpha):
                        return "alpha"
                    if isinstance(signal, NcOrphan):
                        return "orphan"
            """,
            controller="""
                def plan():
                    return [NcBeta(target="V1")]
            """,
        )
        assert analyze_paths([core], select=["RL004"]).active == []

    def test_silent_without_protocol_module(self, tmp_path):
        core = _write_tree(tmp_path, protocol=None)
        assert analyze_paths([core], select=["RL004"]).active == []

    def test_silent_without_any_dispatcher(self, tmp_path):
        core = _write_tree(tmp_path, daemon=None, controller=None)
        assert analyze_paths([core], select=["RL004"]).active == []

    def test_non_nc_names_ignored(self, tmp_path):
        core = _write_tree(
            tmp_path,
            daemon="""
                def handle_signal(signal):
                    if isinstance(signal, NcAlpha):
                        return "alpha"
                    if isinstance(signal, (NcBeta, NcOrphan)):
                        return "rest"
                    if isinstance(signal, ValueError):
                        raise signal
            """,
            controller="""
                def plan():
                    return [dict(target="V1")]
            """,
        )
        assert analyze_paths([core], select=["RL004"]).active == []


class TestGeneralizedDiscovery:
    """The protocol is discovered structurally, not by filename, so
    extension packages get the same exhaustiveness checking."""

    def test_extension_module_signal_declarations_are_checked(self, tmp_path):
        _write_tree(tmp_path)
        faults = tmp_path / "repro" / "faults"
        faults.mkdir()
        (faults / "signals.py").write_text(textwrap.dedent("""
            from repro.core.signals import Signal

            class NcGamma(Signal):
                pass
        """))
        result = analyze_paths([tmp_path / "repro"], select=["RL004"])
        gamma = [f for f in result.active if "NcGamma" in f.message]
        assert gamma, "an unhandled extension signal must be flagged"
        assert gamma[0].path.endswith("faults/signals.py")

    def test_signal_annotated_handler_counts_as_dispatcher(self, tmp_path):
        core = _write_tree(tmp_path, daemon=None, controller=None)
        (core / "faults.py").write_text(textwrap.dedent("""
            from signals import NcAlpha, NcBeta, NcOrphan, Signal

            def on_delivery(signal: Signal):
                if isinstance(signal, (NcAlpha, NcBeta, NcOrphan)):
                    return signal
        """))
        assert analyze_paths([core], select=["RL004"]).active == []

    def test_imported_names_are_never_unknown_signals(self, tmp_path):
        # A stale imported name fails at import time on its own; the
        # rule only hunts names that are built without an import.
        core = _write_tree(
            tmp_path,
            daemon="""
                def handle_signal(signal):
                    if isinstance(signal, (NcAlpha, NcBeta, NcOrphan)):
                        return signal
            """,
            controller="""
                from vendor import NcLegacyKnob

                def plan():
                    return [NcBeta(target="V1"), NcLegacyKnob()]
            """,
        )
        assert analyze_paths([core], select=["RL004"]).active == []

    def test_nc_named_non_signal_classes_are_not_unknown(self, tmp_path):
        core = _write_tree(
            tmp_path,
            daemon="""
                class NcSourceApp:
                    pass

                def handle_signal(signal):
                    if isinstance(signal, (NcAlpha, NcBeta, NcOrphan)):
                        return signal
            """,
            controller="""
                def plan():
                    return [NcBeta(target="V1"), NcSourceApp()]
            """,
        )
        assert analyze_paths([core], select=["RL004"]).active == []


class TestRealTree:
    def test_repo_protocol_is_closed(self):
        result = analyze_paths(["src/repro/core"], select=["RL004"])
        assert result.active == []

    def test_full_src_tree_is_closed(self):
        # Includes repro.faults and the experiments' Signal-annotated
        # handlers, which the generalized discovery must cover without
        # fabricating findings.
        result = analyze_paths(["src/repro"], select=["RL004"])
        assert result.active == []
