"""RL007 fixtures: forwarding-table text-format validation."""

from tests.analysis.helpers import active_ids, lint

SELECT = ["RL007"]


class TestFires:
    def test_bad_session_id_literal(self):
        findings = lint(
            """
            from repro.core.forwarding import ForwardingTable

            table = ForwardingTable.parse("notanumber a\\n")
            """,
            select=SELECT,
        )
        assert active_ids(findings) == ["RL007"]
        assert "bad session id" in findings[0].message

    def test_duplicate_session_literal(self):
        findings = lint(
            """
            from repro.core.forwarding import ForwardingTable

            table = ForwardingTable.parse("1 a\\n1 b\\n")
            """,
            select=SELECT,
        )
        assert active_ids(findings) == ["RL007"]
        assert "duplicate session" in findings[0].message

    def test_duplicate_hop_literal(self):
        findings = lint(
            """
            from repro.core import forwarding

            table = forwarding.ForwardingTable.parse("1 a a\\n")
            """,
            select=SELECT,
        )
        assert active_ids(findings) == ["RL007"]

    def test_multiline_string_reports_call_site(self):
        findings = lint(
            '''
            from repro.core.forwarding import ForwardingTable

            table = ForwardingTable.parse(
                """
                1 relay-a relay-b
                oops relay-c
                """
            )
            ''',
            select=SELECT,
        )
        assert active_ids(findings) == ["RL007"]
        assert findings[0].line == 4


class TestSilent:
    def test_valid_literal(self):
        findings = lint(
            """
            from repro.core.forwarding import ForwardingTable

            table = ForwardingTable.parse("1 a b\\n2 c\\n# comment\\n")
            """,
            select=SELECT,
        )
        assert active_ids(findings) == []

    def test_empty_literal(self):
        findings = lint(
            """
            from repro.core.forwarding import ForwardingTable

            table = ForwardingTable.parse("")
            """,
            select=SELECT,
        )
        assert active_ids(findings) == []

    def test_dynamic_argument(self):
        findings = lint(
            """
            from repro.core.forwarding import ForwardingTable

            def load(path):
                return ForwardingTable.parse(open(path).read())
            """,
            select=SELECT,
        )
        assert active_ids(findings) == []

    def test_fstring_argument(self):
        findings = lint(
            """
            from repro.core.forwarding import ForwardingTable

            def build(sid):
                return ForwardingTable.parse(f"{sid} a b\\n")
            """,
            select=SELECT,
        )
        assert active_ids(findings) == []

    def test_pytest_raises_block_exempt(self):
        findings = lint(
            """
            import pytest

            from repro.core.forwarding import ForwardingTable, ForwardingTableError

            def test_rejects_garbage():
                with pytest.raises(ForwardingTableError):
                    ForwardingTable.parse("notanumber a\\n")
                with pytest.raises(ForwardingTableError):
                    ForwardingTable.parse("1 a\\n1 b\\n")
            """,
            path="tests/core/test_forwarding.py",
            select=SELECT,
        )
        assert active_ids(findings) == []

    def test_unrelated_parse_method(self):
        findings = lint(
            """
            class Config:
                @classmethod
                def parse(cls, text):
                    return cls()

            conf = Config.parse("notanumber a\\n")
            """,
            select=SELECT,
        )
        assert active_ids(findings) == []

    def test_suppression_pragma(self):
        findings = lint(
            """
            from repro.core.forwarding import ForwardingTable

            table = ForwardingTable.parse("oops a\\n")  # repro-lint: disable=RL007
            """,
            select=SELECT,
        )
        assert active_ids(findings) == []
        assert [f.rule_id for f in findings if f.suppressed] == ["RL007"]
