"""RL002 fixtures: native arithmetic applied to GF(2^w) values."""

from tests.analysis.helpers import active_ids, lint

SELECT = ["RL002"]


class TestFires:
    def test_plus_on_field_producer(self):
        findings = lint(
            """
            def combine(field, acc, c, row):
                return acc + field.scale(c, row)
            """,
            select=SELECT,
        )
        assert active_ids(findings) == ["RL002"]
        assert "`+`" in findings[0].message

    def test_tainted_name_propagates(self):
        findings = lint(
            """
            def f(field, a, b):
                x = field.mul(a, b)
                y = x
                return y * 2
            """,
            select=SELECT,
        )
        assert active_ids(findings) == ["RL002"]

    def test_augmented_assignment(self):
        findings = lint(
            """
            def f(field, acc, c, row):
                acc += field.scale(c, row)
                return acc
            """,
            select=SELECT,
        )
        assert active_ids(findings) == ["RL002"]
        assert "`+=`" in findings[0].message

    def test_matrix_helper_producers(self):
        findings = lint(
            """
            from repro.gf.matrix import gf_matvec

            def f(field, m, v):
                out = gf_matvec(field, m, v)
                return out - 1
            """,
            select=SELECT,
        )
        assert active_ids(findings) == ["RL002"]

    def test_self_assignment_reports(self):
        findings = lint(
            """
            def f(field, x, a, b):
                x = x + field.mul(a, b)
                return x
            """,
            select=SELECT,
        )
        assert active_ids(findings) == ["RL002"]


class TestClean:
    def test_field_api_accumulation(self):
        assert lint(
            """
            def combine(field, acc, c, row):
                return field.add(acc, field.scale(c, row))
            """,
            select=SELECT,
        ) == []

    def test_xor_is_field_addition(self):
        assert lint(
            """
            def combine(field, acc, c, row):
                return acc ^ field.scale(c, row)
            """,
            select=SELECT,
        ) == []

    def test_reassignment_clears_taint(self):
        assert lint(
            """
            def f(field, a, b):
                x = field.mul(a, b)
                x = 3
                return x * 2
            """,
            select=SELECT,
        ) == []

    def test_non_field_receiver_not_tainted(self):
        assert lint(
            """
            def f(model, a, b):
                x = model.mul(a, b)
                return x + 1
            """,
            select=SELECT,
        ) == []

    def test_integer_arithmetic_untouched(self):
        assert lint(
            """
            def f(n, k):
                return n * k + 1
            """,
            select=SELECT,
        ) == []


class TestSuppression:
    def test_pragma_silences(self):
        findings = lint(
            """
            def f(field, a, b):
                return field.mul(a, b) * 2  # repro-lint: disable=RL002
            """,
            select=SELECT,
        )
        assert active_ids(findings) == []
        assert len(findings) == 1 and findings[0].suppressed
