"""RL005 fixtures: mutable default arguments."""

from tests.analysis.helpers import active_ids, lint

SELECT = ["RL005"]


class TestFires:
    def test_list_display_default(self):
        findings = lint(
            """
            def f(x, acc=[]):
                acc.append(x)
                return acc
            """,
            select=SELECT,
        )
        assert active_ids(findings) == ["RL005"]
        assert "f()" in findings[0].message

    def test_dict_and_set_displays(self):
        findings = lint(
            """
            def f(a={}, b={1, 2}):
                return a, b
            """,
            select=SELECT,
        )
        assert active_ids(findings) == ["RL005", "RL005"]

    def test_constructor_calls(self):
        findings = lint(
            """
            from collections import OrderedDict, defaultdict

            def f(a=list(), b=defaultdict(int), c=OrderedDict()):
                return a, b, c
            """,
            select=SELECT,
        )
        assert active_ids(findings) == ["RL005"] * 3

    def test_keyword_only_default(self):
        findings = lint(
            """
            def f(*, registry={}):
                return registry
            """,
            select=SELECT,
        )
        assert active_ids(findings) == ["RL005"]

    def test_lambda_default(self):
        findings = lint(
            """
            g = lambda xs=[]: xs
            """,
            select=SELECT,
        )
        assert active_ids(findings) == ["RL005"]
        assert "<lambda>" in findings[0].message

    def test_comprehension_default(self):
        findings = lint(
            """
            def f(squares=[i * i for i in range(4)]):
                return squares
            """,
            select=SELECT,
        )
        assert active_ids(findings) == ["RL005"]


class TestClean:
    def test_none_sentinel_pattern(self):
        assert lint(
            """
            def f(x, acc=None):
                if acc is None:
                    acc = []
                acc.append(x)
                return acc
            """,
            select=SELECT,
        ) == []

    def test_immutable_defaults(self):
        assert lint(
            """
            def f(a=0, b="x", c=(1, 2), d=frozenset({1}), e=None):
                return a, b, c, d, e
            """,
            select=SELECT,
        ) == []

    def test_dataclass_default_factory_is_fine(self):
        assert lint(
            """
            from dataclasses import dataclass, field

            @dataclass
            class C:
                entries: dict = field(default_factory=dict)
            """,
            select=SELECT,
        ) == []


class TestSuppression:
    def test_pragma_silences(self):
        findings = lint(
            """
            def f(x, acc=[]):  # repro-lint: disable=RL005
                return acc
            """,
            select=SELECT,
        )
        assert active_ids(findings) == []
        assert len(findings) == 1 and findings[0].suppressed
