"""Baseline ratchet: accepted debt in, new findings out."""

import json

from repro.analysis.baseline import (
    finding_key,
    load_baseline,
    new_findings,
    save_baseline,
)
from repro.analysis.findings import Finding


def _finding(rule="RL009", path="src/repro/a.py", line=5, message="unstamped"):
    return Finding(rule_id=rule, path=path, line=line, col=0, message=message)


def test_roundtrip(tmp_path):
    target = tmp_path / "baseline.json"
    findings = [_finding(), _finding(rule="RL001", message="rng")]
    assert save_baseline(target, findings) == 2
    assert load_baseline(target) == {finding_key(f) for f in findings}


def test_key_ignores_line_numbers():
    a = _finding(line=5)
    b = _finding(line=500)
    assert finding_key(a) == finding_key(b)
    assert new_findings([b], {finding_key(a)}) == []


def test_new_finding_not_in_baseline_gates():
    baseline = {finding_key(_finding())}
    fresh = _finding(message="a different violation")
    assert new_findings([_finding(), fresh], baseline) == [fresh]


def test_suppressed_findings_never_gate_or_enter_baseline(tmp_path):
    suppressed = Finding(
        rule_id="RL009", path="src/repro/a.py", line=1, col=0, message="x", suppressed=True
    )
    target = tmp_path / "baseline.json"
    assert save_baseline(target, [suppressed]) == 0
    assert new_findings([suppressed], set()) == []


def test_missing_or_corrupt_baseline_is_empty(tmp_path):
    assert load_baseline(tmp_path / "absent.json") == set()
    bad = tmp_path / "bad.json"
    bad.write_text("{oops", encoding="utf-8")
    assert load_baseline(bad) == set()
    wrong_version = tmp_path / "wrong.json"
    wrong_version.write_text(json.dumps({"version": 99, "entries": []}), encoding="utf-8")
    assert load_baseline(wrong_version) == set()


def test_duplicate_messages_collapse_to_one_entry(tmp_path):
    target = tmp_path / "baseline.json"
    assert save_baseline(target, [_finding(line=1), _finding(line=2)]) == 1
