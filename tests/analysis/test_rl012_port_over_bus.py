"""RL012 fixtures: concrete SignalBus where SignalPort suffices."""

from repro.analysis import analyze_paths
from tests.analysis.helpers import active_ids, lint


class TestFunctions:
    def test_port_only_param_flagged(self):
        findings = lint(
            """
            def announce(bus: SignalBus, signal):
                bus.send(signal)
            """,
            select=["RL012"],
        )
        assert active_ids(findings) == ["RL012"]
        assert "SignalPort" in findings[0].message

    def test_optional_port_only_param_flagged(self):
        findings = lint(
            """
            def announce(bus: SignalBus | None, signal):
                if bus is not None:
                    bus.send(signal)
            """,
            select=["RL012"],
        )
        assert active_ids(findings) == ["RL012"]

    def test_concrete_attribute_use_exempt(self):
        findings = lint(
            """
            def probe(bus: SignalBus):
                bus.send(None)
                return bus.latency_s  # concrete-only surface
            """,
            select=["RL012"],
        )
        assert active_ids(findings) == []

    def test_is_registered_use_exempt(self):
        findings = lint(
            """
            def check(bus: SignalBus, name: str) -> bool:
                return bus.is_registered(name)
            """,
            select=["RL012"],
        )
        assert active_ids(findings) == []

    def test_escaping_reference_exempt(self):
        # Passing the bus on whole: this scope cannot prove the callee
        # needs only the port, so the rule stays silent.
        findings = lint(
            """
            def wire(bus: SignalBus, daemon):
                daemon.attach(bus)
            """,
            select=["RL012"],
        )
        assert active_ids(findings) == []

    def test_constructing_scope_exempt(self):
        findings = lint(
            """
            def rebuild(bus: SignalBus):
                bus.send(None)
                return SignalBus(bus.scheduler)
            """,
            select=["RL012"],
        )
        assert active_ids(findings) == []

    def test_unannotated_param_ignored(self):
        findings = lint(
            """
            def announce(bus, signal):
                bus.send(signal)
            """,
            select=["RL012"],
        )
        assert active_ids(findings) == []


class TestClasses:
    def test_init_mirror_with_port_only_methods_flagged(self):
        findings = lint(
            """
            class Publisher:
                def __init__(self, bus: SignalBus) -> None:
                    self.bus = bus

                def publish(self, signal):
                    self.bus.register("x", self.publish)
                    self.bus.send(signal)

                def retire(self):
                    self.bus.unregister("x")
            """,
            select=["RL012"],
        )
        assert active_ids(findings) == ["RL012"]
        assert "Publisher.__init__" in findings[0].message

    def test_class_touching_concrete_surface_exempt(self):
        findings = lint(
            """
            class Prober:
                def __init__(self, bus: SignalBus) -> None:
                    self.bus = bus

                def publish(self, signal):
                    self.bus.send(signal)

                def tail(self):
                    return self.bus.log[-1]  # concrete-only surface
            """,
            select=["RL012"],
        )
        assert active_ids(findings) == []

    def test_class_leaking_bus_exempt(self):
        findings = lint(
            """
            class Wirer:
                def __init__(self, bus: SignalBus) -> None:
                    self.bus = bus

                def wire(self, daemon):
                    daemon.attach(self.bus)
            """,
            select=["RL012"],
        )
        assert active_ids(findings) == []

    def test_truthiness_and_none_checks_stay_port_only(self):
        findings = lint(
            """
            class MaybePublisher:
                def __init__(self, bus: SignalBus | None = None) -> None:
                    self.bus = bus

                def publish(self, signal):
                    if self.bus is None:
                        return
                    self.bus.send(signal)

                def live(self) -> bool:
                    return self.bus is not None
            """,
            select=["RL012"],
        )
        assert active_ids(findings) == ["RL012"]

    def test_suppression_comment_respected(self):
        findings = lint(
            """
            class Pinned:
                def __init__(self, bus: SignalBus) -> None:  # repro-lint: disable=RL012
                    self.bus = bus

                def publish(self, signal):
                    self.bus.send(signal)
            """,
            select=["RL012"],
        )
        assert active_ids(findings) == []

    def test_tests_are_out_of_scope(self):
        findings = lint(
            """
            def announce(bus: SignalBus, signal):
                bus.send(signal)
            """,
            path="tests/test_mod.py",
            select=["RL012"],
        )
        assert active_ids(findings) == []


class TestRealTree:
    def test_full_src_tree_is_closed(self):
        # FleetManager, _FanBus and the shard package all take the port;
        # nothing in src/ holds a concrete bus it doesn't need.
        result = analyze_paths(["src/repro"], select=["RL012"])
        assert result.active == []
