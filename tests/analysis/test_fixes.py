"""Autofix engine: safety contract (anchored, verified, idempotent)."""

import textwrap

from repro.analysis.engine import analyze_paths
from repro.analysis.fixes import fix_file, fix_paths, render_fix_report


def _write(tmp_path, source, name="mod.py"):
    pkg = tmp_path / "src" / "repro" / "demo"
    pkg.mkdir(parents=True, exist_ok=True)
    path = pkg / name
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def test_rl001_bare_call_rewritten_with_import(tmp_path):
    path = _write(
        tmp_path,
        """\
        \"\"\"Demo.\"\"\"

        import numpy as np


        def make_gen():
            return np.random.default_rng()
        """,
    )
    result = fix_file(path)
    assert result.applied and len(result.fixed) == 1
    fixed = path.read_text(encoding="utf-8")
    assert 'derive_rng("repro.demo.mod.make_gen")' in fixed
    assert "from repro.util.rng import derive_rng" in fixed
    assert "default_rng()" not in fixed


def test_rl001_default_factory_rewritten_as_lambda(tmp_path):
    path = _write(
        tmp_path,
        """\
        import numpy as np
        from dataclasses import dataclass, field


        @dataclass
        class Holder:
            rng: object = field(default_factory=np.random.default_rng)
        """,
    )
    result = fix_file(path)
    assert result.applied
    fixed = path.read_text(encoding="utf-8")
    assert 'default_factory=lambda: derive_rng("repro.demo.mod.Holder")' in fixed


def test_rl001_seeded_call_left_alone(tmp_path):
    path = _write(
        tmp_path,
        """\
        import numpy as np


        def make_gen(seed):
            return np.random.default_rng(seed)
        """,
    )
    before = path.read_bytes()
    result = fix_file(path)
    assert not result.fixed and not result.applied
    assert path.read_bytes() == before


def test_rl005_mutable_default_rewritten(tmp_path):
    path = _write(
        tmp_path,
        """\
        def accumulate(x, acc: list = [], tags={}):
            \"\"\"Collect x.\"\"\"
            acc.append(x)
            return acc, tags
        """,
    )
    result = fix_file(path)
    assert result.applied and len(result.fixed) == 2
    fixed = path.read_text(encoding="utf-8")
    assert "acc: list | None = None" in fixed
    assert "tags=None" in fixed
    assert "if acc is None:" in fixed and "acc = []" in fixed
    assert "if tags is None:" in fixed and "tags = {}" in fixed
    # The docstring stays the first statement.
    body = fixed.split("def accumulate", 1)[1]
    assert body.index('"""Collect x."""') < body.index("if acc is None:")


def test_rl005_kwonly_default_rewritten(tmp_path):
    path = _write(
        tmp_path,
        """\
        def f(x, *, seen=set()):
            seen.add(x)
            return seen
        """,
    )
    result = fix_file(path)
    assert result.applied
    fixed = path.read_text(encoding="utf-8")
    assert "seen=None" in fixed and "seen = set()" in fixed


def test_rl005_lambda_reported_unfixable(tmp_path):
    path = _write(tmp_path, "collect = lambda x, acc=[]: acc + [x]\n")
    before = path.read_bytes()
    result = fix_file(path)
    assert not result.applied
    assert len(result.skipped) == 1
    assert path.read_bytes() == before


def test_pragma_suppressed_finding_never_rewritten(tmp_path):
    path = _write(
        tmp_path,
        """\
        import numpy as np


        def entropy_gen():
            return np.random.default_rng()  # repro-lint: disable=RL001
        """,
    )
    before = path.read_bytes()
    result = fix_file(path)
    assert not result.fixed and not result.applied
    assert path.read_bytes() == before


def test_fix_is_idempotent_and_relints_clean(tmp_path):
    path = _write(
        tmp_path,
        """\
        import numpy as np


        def make_gen():
            return np.random.default_rng()


        def accumulate(x, acc=[]):
            acc.append(x)
            return acc
        """,
    )
    first = fix_paths([tmp_path / "src"])
    assert first.fixed_count == 2 and not first.failed_files
    after_first = path.read_bytes()

    # Re-lint clean for the fixed rules.
    relint = analyze_paths([tmp_path / "src"])
    assert not [f for f in relint.active if f.rule_id in ("RL001", "RL005")]

    # Second run: byte-exact no-op.
    second = fix_paths([tmp_path / "src"])
    assert second.fixed_count == 0
    assert path.read_bytes() == after_first


def test_clean_tree_is_byte_exact_noop(tmp_path):
    path = _write(
        tmp_path,
        """\
        from repro.util.rng import derive_rng


        def make_gen():
            return derive_rng("demo")
        """,
    )
    before = path.read_bytes()
    result = fix_paths([tmp_path / "src"])
    assert result.fixed_count == 0 and not result.files
    assert path.read_bytes() == before


def test_dry_run_prints_diff_but_touches_nothing(tmp_path):
    path = _write(
        tmp_path,
        """\
        import numpy as np


        def make_gen():
            return np.random.default_rng()
        """,
    )
    before = path.read_bytes()
    result = fix_paths([tmp_path / "src"], dry_run=True)
    assert result.fixed_count == 1
    assert path.read_bytes() == before
    report = render_fix_report(result, dry_run=True)
    assert "would fix 1 finding(s)" in report
    assert "-    return np.random.default_rng()" in report
    assert '+    return derive_rng("repro.demo.mod.make_gen")' in report


def test_select_narrows_fixed_rules(tmp_path):
    path = _write(
        tmp_path,
        """\
        import numpy as np


        def make_gen():
            return np.random.default_rng()


        def accumulate(x, acc=[]):
            acc.append(x)
            return acc
        """,
    )
    result = fix_paths([tmp_path / "src"], select=["RL005"])
    assert result.fixed_count == 1
    fixed = path.read_text(encoding="utf-8")
    assert "np.random.default_rng()" in fixed  # RL001 untouched
    assert "acc=None" in fixed


def test_unparseable_file_reported_not_crashed(tmp_path):
    path = _write(tmp_path, "def broken(:\n")
    result = fix_file(path)
    assert result.verify_error is not None
    assert not result.applied
