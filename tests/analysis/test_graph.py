"""ProjectGraph: symbol resolution, call graph, reachability."""

from repro.analysis.graph import build_graph, module_name_for

from tests.analysis.helpers import make_module


def _graph(sources: dict[str, str]):
    return build_graph([make_module(src, path) for path, src in sources.items()])


def test_module_name_for_src_layout():
    assert module_name_for(("src", "repro", "core", "vnf.py")) == "repro.core.vnf"
    assert module_name_for(("src", "repro", "core", "__init__.py")) == "repro.core"
    assert module_name_for(("tests", "test_x.py")) == "tests.test_x"


def test_symbols_indexed():
    graph = _graph(
        {
            "src/repro/a.py": """\
                def top():
                    pass


                class C:
                    def method(self):
                        pass
            """
        }
    )
    assert "repro.a.top" in graph.functions
    assert "repro.a.C.method" in graph.functions
    assert "repro.a.C" in graph.classes
    assert graph.classes["repro.a.C"].methods["method"] == "repro.a.C.method"


def test_direct_call_resolved_through_import_alias():
    graph = _graph(
        {
            "src/repro/util_mod.py": """\
                def helper():
                    pass
            """,
            "src/repro/user.py": """\
                from repro.util_mod import helper as h


                def caller():
                    h()
            """,
        }
    )
    assert "repro.util_mod.helper" in graph.functions["repro.user.caller"].callees


def test_self_method_call_resolved_including_base_class():
    graph = _graph(
        {
            "src/repro/a.py": """\
                class Base:
                    def shared(self):
                        pass


                class Child(Base):
                    def run(self):
                        self.shared()
            """
        }
    )
    assert "repro.a.Base.shared" in graph.functions["repro.a.Child.run"].callees


def test_class_construction_maps_to_init():
    graph = _graph(
        {
            "src/repro/a.py": """\
                class Thing:
                    def __init__(self):
                        pass


                def make():
                    return Thing()
            """
        }
    )
    assert "repro.a.Thing.__init__" in graph.functions["repro.a.make"].callees


def test_unresolved_calls_kept_as_external():
    graph = _graph(
        {
            "src/repro/a.py": """\
                import time


                def f():
                    return time.monotonic()
            """
        }
    )
    assert "time.monotonic" in graph.functions["repro.a.f"].external_calls


def test_callers_of_reverse_index():
    graph = _graph(
        {
            "src/repro/a.py": """\
                def leaf():
                    pass


                def mid():
                    leaf()


                def top():
                    mid()
            """
        }
    )
    assert graph.callers_of("repro.a.leaf") == {"repro.a.mid"}
    assert graph.callers_of("repro.a.mid") == {"repro.a.top"}


def test_reaches_external_returns_shortest_chain():
    graph = _graph(
        {
            "src/repro/a.py": """\
                import time


                def sink():
                    return time.time()


                def mid():
                    sink()


                def top():
                    mid()


                def clean():
                    pass
            """
        }
    )
    reached = graph.reaches_external({"time.time"})
    assert reached["repro.a.sink"] == ("repro.a.sink", "time.time")
    assert reached["repro.a.top"] == ("repro.a.top", "repro.a.mid", "repro.a.sink", "time.time")
    assert "repro.a.clean" not in reached


def test_nested_defs_own_their_calls():
    graph = _graph(
        {
            "src/repro/a.py": """\
                import time


                def outer():
                    def inner():
                        return time.time()
                    return inner
            """
        }
    )
    # The wall-clock call belongs to inner's (unindexed) scope, not outer.
    assert "time.time" not in graph.functions["repro.a.outer"].external_calls


def test_fingerprint_changes_with_content():
    base = {
        "src/repro/a.py": "def f():\n    pass\n",
        "src/repro/b.py": "def g():\n    pass\n",
    }
    fp1 = _graph(base).fingerprint()
    fp2 = _graph(base).fingerprint()
    assert fp1 == fp2
    changed = dict(base, **{"src/repro/b.py": "def g():\n    return 1\n"})
    assert _graph(changed).fingerprint() != fp1
