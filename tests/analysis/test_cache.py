"""Incremental cache: correctness and the warm-run speedup guarantee."""

import json
import time

from repro.analysis.cache import CACHE_VERSION, AnalysisCache, load_cache, rules_key
from repro.analysis.engine import analyze_paths, select_rules

_RULE_IDS = [r.rule_id for r in select_rules(None)]


def _make_tree(root, n_files=30, violate_in=()):
    pkg = root / "src" / "repro" / "gen"
    pkg.mkdir(parents=True)
    body = "\n".join(
        f"def fn_{i}(x):\n"
        f"    acc = x + {i}\n"
        f"    for j in range(10):\n"
        f"        acc = acc * 2 - j\n"
        f"    return acc\n" for i in range(40)
    )
    for idx in range(n_files):
        extra = ""
        if idx in violate_in:
            extra = "\nimport numpy as np\n\ndef bad():\n    return np.random.default_rng()\n"
        (pkg / f"mod_{idx:03d}.py").write_text(f'"""Module {idx}."""\n\n{body}{extra}', encoding="utf-8")
    return root / "src"


def test_warm_run_serves_everything_from_cache(tmp_path):
    tree = _make_tree(tmp_path, violate_in={3})
    cache_file = tmp_path / "cache.json"

    cache = load_cache(cache_file, _RULE_IDS)
    cold = analyze_paths([tree], cache=cache)
    cache.save()
    assert cold.cache_hits == 0
    assert [f.rule_id for f in cold.active] == ["RL001"]

    warm_cache = load_cache(cache_file, _RULE_IDS)
    warm = analyze_paths([tree], cache=warm_cache)
    assert warm.cache_misses == 0
    assert warm.files_parsed == 0  # fully-warm fast path: no AST work at all
    assert [f.rule_id for f in warm.active] == ["RL001"]
    assert [f.location() for f in warm.active] == [f.location() for f in cold.active]


def test_warm_run_is_at_least_5x_faster(tmp_path):
    tree = _make_tree(tmp_path, n_files=40)
    cache_file = tmp_path / "cache.json"

    cache = load_cache(cache_file, _RULE_IDS)
    t0 = time.perf_counter()
    analyze_paths([tree], cache=cache)
    cold_s = time.perf_counter() - t0
    cache.save()

    warm_cache = load_cache(cache_file, _RULE_IDS)
    t0 = time.perf_counter()
    analyze_paths([tree], cache=warm_cache)
    warm_s = time.perf_counter() - t0

    assert warm_s * 5 <= cold_s, (
        f"warm run {warm_s * 1e3:.1f}ms not >=5x faster than cold {cold_s * 1e3:.1f}ms"
    )


def test_single_file_edit_invalidates_only_that_module(tmp_path):
    tree = _make_tree(tmp_path, n_files=10)
    cache_file = tmp_path / "cache.json"
    cache = load_cache(cache_file, _RULE_IDS)
    analyze_paths([tree], cache=cache)
    cache.save()

    edited = tree / "repro" / "gen" / "mod_004.py"
    edited.write_text(
        edited.read_text(encoding="utf-8")
        + "\nimport numpy as np\n\ndef bad():\n    return np.random.default_rng()\n",
        encoding="utf-8",
    )

    warm_cache = load_cache(cache_file, _RULE_IDS)
    result = analyze_paths([tree], cache=warm_cache)
    # Only the edited file misses; findings reflect the edit.
    assert warm_cache.misses == 1
    assert [f.rule_id for f in result.active] == ["RL001"]
    assert result.active[0].path.endswith("mod_004.py")


def test_cache_discarded_on_version_or_rules_mismatch(tmp_path):
    tree = _make_tree(tmp_path, n_files=3)
    cache_file = tmp_path / "cache.json"
    cache = load_cache(cache_file, _RULE_IDS)
    analyze_paths([tree], cache=cache)
    cache.save()

    # Different active rule set: same file, fresh cache.
    assert load_cache(cache_file, ["RL001"]).entries == {}

    # Future engine version: discarded wholesale.
    doc = json.loads(cache_file.read_text(encoding="utf-8"))
    doc["version"] = CACHE_VERSION + 1
    doc["rules"] = rules_key(_RULE_IDS)
    cache_file.write_text(json.dumps(doc), encoding="utf-8")
    assert load_cache(cache_file, _RULE_IDS).entries == {}


def test_corrupt_cache_file_starts_empty(tmp_path):
    cache_file = tmp_path / "cache.json"
    cache_file.write_text("{not json", encoding="utf-8")
    cache = load_cache(cache_file, _RULE_IDS)
    assert cache.entries == {}
    assert cache.graph_fingerprint is None


def test_prune_drops_removed_files(tmp_path):
    tree = _make_tree(tmp_path, n_files=4)
    cache_file = tmp_path / "cache.json"
    cache = load_cache(cache_file, _RULE_IDS)
    analyze_paths([tree], cache=cache)
    cache.save()
    assert len(cache.entries) == 4

    (tree / "repro" / "gen" / "mod_003.py").unlink()
    warm_cache = load_cache(cache_file, _RULE_IDS)
    analyze_paths([tree], cache=warm_cache)
    assert len(warm_cache.entries) == 3
    assert not any(p.endswith("mod_003.py") for p in warm_cache.entries)


def test_cache_never_used_across_rule_sets():
    cache = AnalysisCache(rules=rules_key(["RL001"]))
    cache.store("a.py", "sha", [])
    assert cache.lookup("a.py", "sha") == []
    assert cache.lookup("a.py", "other-sha") is None
