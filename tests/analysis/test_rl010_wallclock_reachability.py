"""RL010: handlers transitively reaching wall-clock / sleep calls."""

from tests.analysis.helpers import active_ids, lint, lint_modules


def test_direct_wallclock_in_handler_flagged():
    findings = lint(
        """
        import time


        class Daemon:
            def on_packet(self, pkt):
                return time.time()
        """,
        select=["RL010"],
    )
    assert active_ids(findings) == ["RL010"]
    assert "time.time" in findings[0].message


def test_one_hop_helper_chain_flagged_with_chain():
    findings = lint(
        """
        import time


        def _stamp():
            return time.time()


        class Daemon:
            def on_packet(self, pkt):
                return _stamp()
        """,
        select=["RL010"],
    )
    ids = active_ids(findings)
    # Only the entry point is flagged; the helper itself is not a handler.
    assert ids == ["RL010"]
    assert "on_packet" in findings[0].message
    assert "_stamp" in findings[0].message and "time.time" in findings[0].message


def test_cross_module_chain_flagged():
    findings = lint_modules(
        {
            "src/repro/util/clock.py": """\
                import time


                def stamp():
                    return time.time()
            """,
            "src/repro/core/daemon.py": """\
                from repro.util.clock import stamp


                class Daemon:
                    def handle_signal(self, sig):
                        return stamp()
            """,
        },
        select=["RL010"],
    )
    assert active_ids(findings) == ["RL010"]
    assert findings[0].path == "src/repro/core/daemon.py"


def test_sleep_in_scheduled_callback_flagged():
    findings = lint(
        """
        import time


        class Source:
            def __init__(self, scheduler):
                scheduler.schedule(0.1, self._tick)

            def _tick(self):
                time.sleep(0.01)
        """,
        select=["RL010"],
    )
    assert active_ids(findings) == ["RL010"]
    assert "_tick" in findings[0].message


def test_simulated_clock_use_clean():
    findings = lint(
        """
        class Daemon:
            def __init__(self, scheduler):
                self.scheduler = scheduler

            def on_packet(self, pkt):
                return self.scheduler.now
        """,
        select=["RL010"],
    )
    assert active_ids(findings) == []


def test_non_handler_reaching_clock_not_flagged():
    findings = lint(
        """
        import time


        def measure_wall_runtime():
            # Not a handler and never scheduled: host-side tooling.
            return time.time()
        """,
        select=["RL010"],
    )
    assert active_ids(findings) == []


def test_outside_repro_package_exempt():
    findings = lint(
        """
        import time


        class Daemon:
            def on_packet(self, pkt):
                return time.time()
        """,
        path="tools/daemon.py",
        select=["RL010"],
    )
    assert active_ids(findings) == []


def test_suppression_on_handler_def_respected():
    findings = lint(
        """
        import time


        class Daemon:
            def on_packet(self, pkt):  # repro-lint: disable=RL010
                return time.time()
        """,
        select=["RL010"],
    )
    assert active_ids(findings) == []
