"""Encoder / Recoder / Decoder unit tests."""

import numpy as np
import pytest

from repro.gf import GF16
from repro.rlnc import Decoder, Encoder, Generation, Recoder
from repro.rlnc.encoder import encode_message
from repro.rlnc.generation import segment


def make_generation(rng, k=4, block_bytes=32, gen_id=0):
    blocks = rng.integers(0, 256, (k, block_bytes), dtype=np.uint8)
    return Generation(generation_id=gen_id, blocks=blocks)


class TestEncoder:
    def test_systematic_prefix(self, rng):
        gen = make_generation(rng)
        enc = Encoder(1, gen, rng=rng)
        for i in range(4):
            packet = enc.next_packet()
            assert packet.header.systematic
            expected = np.zeros(4, dtype=np.uint8)
            expected[i] = 1
            assert np.array_equal(packet.coefficients, expected)
            assert np.array_equal(packet.payload, gen.blocks[i])

    def test_coded_after_systematic(self, rng):
        gen = make_generation(rng)
        enc = Encoder(1, gen, rng=rng)
        for _ in range(4):
            enc.next_packet()
        coded = enc.next_packet()
        assert not coded.header.systematic

    def test_non_systematic_mode(self, rng):
        gen = make_generation(rng)
        enc = Encoder(1, gen, systematic=False, rng=rng)
        packet = enc.next_packet()
        assert not packet.header.systematic

    def test_coded_payload_is_combination(self, rng):
        gen = make_generation(rng)
        enc = Encoder(1, gen, systematic=False, rng=rng)
        packet = enc.next_packet()
        from repro.gf import GF256

        expected = GF256.linear_combination(packet.coefficients, gen.blocks)
        assert np.array_equal(packet.payload, expected)

    def test_large_field_rejected(self, rng):
        from repro.gf import GF65536

        with pytest.raises(ValueError):
            Encoder(1, make_generation(rng), field=GF65536)

    def test_packets_count(self, rng):
        enc = Encoder(1, make_generation(rng), rng=rng)
        assert len(list(enc.packets(6))) == 6
        with pytest.raises(ValueError):
            list(enc.packets(-1))

    def test_small_field(self, rng):
        gen = Generation(0, rng.integers(0, 16, (4, 8), dtype=np.uint8))
        enc = Encoder(1, gen, field=GF16, systematic=False, rng=rng)
        packet = enc.next_packet()
        assert packet.coefficients.max() < 16


class TestDecoder:
    def test_decodes_systematic(self, rng):
        gen = make_generation(rng)
        enc = Encoder(1, gen, rng=rng)
        dec = Decoder(1, 0, 4, 32)
        for _ in range(4):
            assert dec.add(enc.next_packet())
        assert dec.complete
        assert dec.decode() == gen

    def test_decodes_dense(self, rng):
        gen = make_generation(rng)
        enc = Encoder(1, gen, systematic=False, rng=rng)
        dec = Decoder(1, 0, 4, 32)
        while not dec.complete:
            dec.add(enc.next_packet())
        assert dec.decode() == gen
        # Dense coding over GF(2^8) rarely wastes packets.
        assert dec.received <= 6

    def test_redundant_packet_detected(self, rng):
        gen = make_generation(rng)
        enc = Encoder(1, gen, rng=rng)
        dec = Decoder(1, 0, 4, 32)
        p = enc.next_packet()
        assert dec.add(p)
        assert not dec.add(p)  # same packet again: dependent
        assert dec.redundant == 1

    def test_incomplete_decode_raises(self, rng):
        dec = Decoder(1, 0, 4, 32)
        with pytest.raises(RuntimeError):
            dec.decode()

    def test_rank_monotone(self, rng):
        gen = make_generation(rng)
        enc = Encoder(1, gen, systematic=False, rng=rng)
        dec = Decoder(1, 0, 4, 32)
        last = 0
        for _ in range(8):
            dec.add(enc.next_packet())
            assert dec.rank >= last
            last = dec.rank
        assert dec.complete

    def test_wrong_session_rejected(self, rng):
        gen = make_generation(rng)
        enc = Encoder(2, gen, rng=rng)
        dec = Decoder(1, 0, 4, 32)
        with pytest.raises(ValueError):
            dec.add(enc.next_packet())

    def test_wrong_block_size_rejected(self, rng):
        gen = make_generation(rng)
        enc = Encoder(1, gen, rng=rng)
        dec = Decoder(1, 0, 4, 16)
        with pytest.raises(ValueError):
            dec.add(enc.next_packet())

    def test_missing_pivots(self, rng):
        gen = make_generation(rng)
        enc = Encoder(1, gen, rng=rng)
        dec = Decoder(1, 0, 4, 32)
        dec.add(enc.next_packet())  # systematic block 0
        assert dec.missing_pivots() == (1, 2, 3)


class TestRecoder:
    def test_first_packet_forwarded_verbatim(self, rng):
        gen = make_generation(rng)
        enc = Encoder(1, gen, rng=rng)
        rec = Recoder(1, 0, 4, rng=rng)
        p = enc.next_packet()
        assert rec.on_packet(p) is p

    def test_recoded_packets_decode(self, rng):
        gen = make_generation(rng)
        enc = Encoder(1, gen, systematic=False, rng=rng)
        rec = Recoder(1, 0, 4, rng=rng)
        dec = Decoder(1, 0, 4, 32)
        for _ in range(10):
            out = rec.on_packet(enc.next_packet())
            dec.add(out)
            if dec.complete:
                break
        assert dec.complete
        assert dec.decode() == gen

    def test_recode_before_any_packet_raises(self, rng):
        rec = Recoder(1, 0, 4, rng=rng)
        with pytest.raises(RuntimeError):
            rec.recode()

    def test_effective_coefficients_consistent(self, rng):
        # The recoded packet's payload must equal its claimed coefficient
        # combination of the ORIGINAL blocks.
        from repro.gf import GF256

        gen = make_generation(rng)
        enc = Encoder(1, gen, systematic=False, rng=rng)
        rec = Recoder(1, 0, 4, rng=rng)
        for _ in range(3):
            rec.add(enc.next_packet())
        out = rec.recode()
        expected = GF256.linear_combination(out.coefficients, gen.blocks)
        assert np.array_equal(out.payload, expected)

    def test_wrong_generation_rejected(self, rng):
        gen = make_generation(rng, gen_id=5)
        enc = Encoder(1, gen, rng=rng)
        rec = Recoder(1, 0, 4, rng=rng)
        with pytest.raises(ValueError):
            rec.add(enc.next_packet())


class TestEncodeMessage:
    def test_whole_message_roundtrip(self, rng):
        data = rng.integers(0, 256, 5000, dtype=np.uint8).tobytes()
        gens = segment(data, block_bytes=100, blocks_per_generation=4)
        packets = encode_message(3, gens, packets_per_generation=5, rng=rng)
        assert len(packets) == 5 * len(gens)
        decoders = {}
        for p in packets:
            dec = decoders.setdefault(p.generation_id, Decoder(3, p.generation_id, 4, 100))
            if not dec.complete:
                dec.add(p)
        assert all(d.complete for d in decoders.values())
