"""Batch fast path == packet-at-a-time path, bit for bit.

The data-plane fast path draws a burst's coefficient vectors in one RNG
call and codes payloads through one batch matmul.  numpy's bounded-
integer sampling consumes the generator stream element-by-element, so a
batched draw and sequential draws read the same bits — these tests pin
that down: same seed, same packets, byte for byte, for the encoder, the
recoder, and the wire round-trip.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf import GF16, GF256
from repro.rlnc import Encoder, Generation, Recoder

seed_st = st.integers(min_value=0, max_value=2**31 - 1)


def make_generation(seed, field, k, block_bytes, gen_id=0):
    rng = np.random.default_rng(seed)
    blocks = field.random_elements(rng, (k, block_bytes)).astype(np.uint8)
    return Generation(generation_id=gen_id, blocks=blocks)


def packets_equal(batch, sequential):
    assert len(batch) == len(sequential)
    for got, want in zip(batch, sequential):
        assert got == want, f"batch packet differs: {got!r} != {want!r}"
        assert got.encode() == want.encode()


class TestEncoderBatch:
    @given(
        seed=seed_st,
        field=st.sampled_from(["GF16", "GF256"]),
        k=st.integers(min_value=1, max_value=6),
        count=st.integers(min_value=0, max_value=12),
        systematic=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_next_packets_matches_sequential(self, seed, field, k, count, systematic):
        field = GF16 if field == "GF16" else GF256
        gen = make_generation(seed, field, k, 24)
        batch_enc = Encoder(
            7, gen, field=field, systematic=systematic, rng=np.random.default_rng(seed)
        )
        seq_enc = Encoder(
            7, gen, field=field, systematic=systematic, rng=np.random.default_rng(seed)
        )
        packets_equal(batch_enc.next_packets(count), [seq_enc.next_packet() for _ in range(count)])

    @given(seed=seed_st, count=st.integers(min_value=1, max_value=10))
    @settings(max_examples=30, deadline=None)
    def test_coded_packets_matches_sequential(self, seed, count):
        gen = make_generation(seed, GF256, 4, 64)
        batch_enc = Encoder(1, gen, systematic=False, rng=np.random.default_rng(seed))
        seq_enc = Encoder(1, gen, systematic=False, rng=np.random.default_rng(seed))
        packets_equal(batch_enc.coded_packets(count), [seq_enc.next_packet() for _ in range(count)])

    @given(seed=seed_st)
    @settings(max_examples=20, deadline=None)
    def test_split_bursts_match_one_burst(self, seed):
        """Batching boundaries don't matter: 3+4 packets == 7 packets."""
        gen = make_generation(seed, GF256, 4, 32)
        split_enc = Encoder(1, gen, rng=np.random.default_rng(seed))
        whole_enc = Encoder(1, gen, rng=np.random.default_rng(seed))
        split = split_enc.next_packets(3) + split_enc.next_packets(4)
        packets_equal(whole_enc.next_packets(7), split)


class TestRecoderBatch:
    @given(
        seed=seed_st,
        buffered=st.integers(min_value=1, max_value=6),
        count=st.integers(min_value=0, max_value=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_recode_batch_matches_sequential(self, seed, buffered, count):
        gen = make_generation(seed, GF256, 4, 48)
        feed = Encoder(3, gen, systematic=False, rng=np.random.default_rng(seed)).coded_packets(buffered)
        batch_rec = Recoder(3, 0, 4, rng=np.random.default_rng(seed + 1))
        seq_rec = Recoder(3, 0, 4, rng=np.random.default_rng(seed + 1))
        for packet in feed:
            batch_rec.add(packet)
            seq_rec.add(packet)
        packets_equal(batch_rec.recode_batch(count), [seq_rec.recode() for _ in range(count)])

    @given(seed=seed_st)
    @settings(max_examples=20, deadline=None)
    def test_recoded_effective_coefficients_are_consistent(self, seed):
        """A batch-recoded payload is the claimed combination of the originals."""
        gen = make_generation(seed, GF256, 4, 48)
        feed = Encoder(3, gen, systematic=False, rng=np.random.default_rng(seed)).coded_packets(5)
        rec = Recoder(3, 0, 4, rng=np.random.default_rng(seed + 1))
        for packet in feed:
            rec.add(packet)
        for out in rec.recode_batch(4):
            expected = GF256.linear_combination(out.coefficients, gen.blocks)
            assert np.array_equal(out.payload, expected)
