"""Redundancy policy (NC0/NC1/NC2) tests."""

import pytest

from repro.rlnc import RedundancyPolicy
from repro.rlnc.redundancy import (
    NC0,
    NC1,
    NC2,
    expected_delivery_probability,
    recommend_redundancy,
)


class TestPolicy:
    def test_paper_names(self):
        assert NC0.name == "NC0"
        assert NC1.name == "NC1"
        assert NC2.name == "NC2"

    def test_packets_per_generation(self):
        assert NC0.packets_per_generation(4) == 4
        assert NC1.packets_per_generation(4) == 5
        assert NC2.packets_per_generation(4) == 6

    def test_overhead(self):
        assert NC0.overhead_fraction(4) == 0.0
        assert NC2.overhead_fraction(4) == 0.5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            RedundancyPolicy(-1)

    def test_bad_block_count(self):
        with pytest.raises(ValueError):
            NC0.packets_per_generation(0)


class TestDeliveryProbability:
    def test_no_loss_certain(self):
        assert expected_delivery_probability(0.0, 4, 0) == 1.0

    def test_total_loss_impossible(self):
        assert expected_delivery_probability(1.0, 4, 2) == 0.0

    def test_monotone_in_redundancy(self):
        probs = [expected_delivery_probability(0.2, 4, r) for r in range(5)]
        assert probs == sorted(probs)

    def test_monotone_in_loss(self):
        probs = [expected_delivery_probability(p, 4, 1) for p in (0.0, 0.1, 0.3, 0.5)]
        assert probs == sorted(probs, reverse=True)

    def test_exact_binomial_value(self):
        # k=2, extra=1, p=0.5: P[Bin(3, .5) >= 2] = 4/8.
        assert expected_delivery_probability(0.5, 2, 1) == pytest.approx(0.5)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            expected_delivery_probability(-0.1, 4, 0)
        with pytest.raises(ValueError):
            expected_delivery_probability(0.1, 0, 0)


class TestRecommendation:
    def test_reliable_links_no_redundancy(self):
        # The paper: "no extra coded packets if the links are reliable".
        assert recommend_redundancy(0.0, 4).extra == 0
        assert recommend_redundancy(0.005, 4).extra == 0

    def test_lossy_links_get_redundancy(self):
        # "a small number of extra coded packets ... in cases of high
        # packet loss rate".
        assert recommend_redundancy(0.3, 4, target_delivery=0.9).extra >= 2

    def test_monotone_in_loss(self):
        extras = [recommend_redundancy(p, 4).extra for p in (0.0, 0.1, 0.2, 0.4)]
        assert extras == sorted(extras)

    def test_cap_respected(self):
        assert recommend_redundancy(0.9, 4, max_extra=3).extra == 3
