"""Hypothesis property tests for the RLNC pipeline.

Invariant under test: any k linearly independent packets — from the
encoder directly or re-mixed through an arbitrary chain of recoders —
recover the original generation exactly.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rlnc import Decoder, Encoder, Generation, Recoder
from repro.rlnc.generation import reassemble, segment


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    k=st.integers(min_value=1, max_value=8),
    block_bytes=st.integers(min_value=1, max_value=64),
)
@settings(max_examples=40, deadline=None)
def test_encode_decode_roundtrip(seed, k, block_bytes):
    rng = np.random.default_rng(seed)
    gen = Generation(0, rng.integers(0, 256, (k, block_bytes), dtype=np.uint8))
    enc = Encoder(1, gen, systematic=bool(seed % 2), rng=rng)
    dec = Decoder(1, 0, k, block_bytes)
    budget = 4 * k + 8
    while not dec.complete and budget:
        dec.add(enc.next_packet())
        budget -= 1
    assert dec.complete
    assert dec.decode() == gen


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    k=st.integers(min_value=2, max_value=6),
    chain=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=30, deadline=None)
def test_recoding_chain_preserves_decodability(seed, k, chain):
    rng = np.random.default_rng(seed)
    gen = Generation(0, rng.integers(0, 256, (k, 16), dtype=np.uint8))
    enc = Encoder(1, gen, systematic=False, rng=rng)
    recoders = [Recoder(1, 0, k, rng=rng) for _ in range(chain)]
    dec = Decoder(1, 0, k, 16)
    budget = 6 * k + 12
    while not dec.complete and budget:
        packet = enc.next_packet()
        for recoder in recoders:
            packet = recoder.on_packet(packet)
        dec.add(packet)
        budget -= 1
    assert dec.complete
    assert dec.decode() == gen


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    drop_pattern=st.lists(st.booleans(), min_size=8, max_size=20),
)
@settings(max_examples=30, deadline=None)
def test_losses_only_delay_decoding(seed, drop_pattern):
    rng = np.random.default_rng(seed)
    gen = Generation(0, rng.integers(0, 256, (4, 16), dtype=np.uint8))
    enc = Encoder(1, gen, systematic=False, rng=rng)
    dec = Decoder(1, 0, 4, 16)
    for dropped in drop_pattern:
        packet = enc.next_packet()
        if dropped:
            continue
        dec.add(packet)
        if dec.complete:
            break
    # Whether it completed depends on the pattern; if it did, it must be
    # exactly right.
    if dec.complete:
        assert dec.decode() == gen
    else:
        assert dec.rank < 4


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    size=st.integers(min_value=0, max_value=4000),
)
@settings(max_examples=30, deadline=None)
def test_segment_reassemble_identity(seed, size):
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size, dtype=np.uint8).tobytes()
    gens = segment(data, block_bytes=128, blocks_per_generation=4)
    assert reassemble(gens, len(data)) == data
