"""CodedPacket wire-format tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rlnc import Encoder, Generation
from repro.rlnc.packet import CodedPacket


class TestWireFormat:
    def test_roundtrip(self, rng):
        gen = Generation(3, rng.integers(0, 256, (4, 100), dtype=np.uint8))
        packet = Encoder(9, gen, rng=rng).next_packet()
        restored = CodedPacket.decode(packet.encode())
        assert restored == packet

    def test_size_accounting(self, rng):
        gen = Generation(0, rng.integers(0, 256, (4, 1460), dtype=np.uint8))
        packet = Encoder(1, gen, rng=rng).next_packet()
        # 12 fixed header (incl. CRC32) + 4 coefficients + 1460 block =
        # 1476 bytes of UDP payload (DESIGN.md §11 for the MTU note).
        assert packet.size_bytes == 1476
        assert len(packet.encode()) == 1476

    def test_payload_must_be_1d(self):
        from repro.rlnc.header import NCHeader

        header = NCHeader(1, 0, np.array([1], dtype=np.uint8))
        with pytest.raises(ValueError):
            CodedPacket(header=header, payload=np.zeros((2, 2), dtype=np.uint8))

    def test_properties_delegate(self, rng):
        gen = Generation(5, rng.integers(0, 256, (2, 8), dtype=np.uint8))
        packet = Encoder(7, gen, rng=rng).next_packet()
        assert packet.session_id == 7
        assert packet.generation_id == 5
        assert packet.coefficients.shape == (2,)


@given(
    session=st.integers(min_value=0, max_value=65535),
    generation=st.integers(min_value=0, max_value=2**32 - 1),
    k=st.integers(min_value=1, max_value=16),
    block_bytes=st.integers(min_value=0, max_value=64),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=60, deadline=None)
def test_wire_roundtrip_property(session, generation, k, block_bytes, seed):
    from repro.rlnc.header import NCHeader

    rng = np.random.default_rng(seed)
    packet = CodedPacket(
        header=NCHeader(
            session_id=session,
            generation_id=generation,
            coefficients=rng.integers(0, 256, k, dtype=np.uint8),
            systematic=bool(seed % 2),
        ),
        payload=rng.integers(0, 256, block_bytes, dtype=np.uint8),
    )
    assert CodedPacket.decode(packet.encode()) == packet
