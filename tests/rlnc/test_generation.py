"""Generation segmentation and reassembly tests."""

import numpy as np
import pytest

from repro.rlnc import Generation, reassemble, segment
from repro.rlnc.generation import DEFAULT_BLOCK_BYTES, DEFAULT_BLOCKS_PER_GENERATION


class TestDefaults:
    def test_paper_constants(self):
        assert DEFAULT_BLOCK_BYTES == 1460
        assert DEFAULT_BLOCKS_PER_GENERATION == 4

    def test_packet_vs_mtu(self):
        # block + NC header (12 + 4, incl. CRC32) + UDP (8) + IP (20) =
        # 1504: four bytes over the classic MTU since the integrity word
        # landed.  Exact 1500-byte fill needs 1456-byte blocks
        # (DESIGN.md §11); the default keeps the paper's 1460.
        assert DEFAULT_BLOCK_BYTES + 16 + 8 + 20 == 1504


class TestSegment:
    def test_exact_fit(self, rng):
        data = rng.integers(0, 256, 2 * 4 * 100, dtype=np.uint8).tobytes()
        gens = segment(data, block_bytes=100, blocks_per_generation=4)
        assert len(gens) == 2
        assert all(g.block_count == 4 and g.block_bytes == 100 for g in gens)

    def test_padding(self):
        gens = segment(b"abc", block_bytes=4, blocks_per_generation=2)
        assert len(gens) == 1
        assert gens[0].blocks.tobytes() == b"abc" + b"\x00" * 5

    def test_empty_input_gives_one_generation(self):
        gens = segment(b"", block_bytes=4, blocks_per_generation=2)
        assert len(gens) == 1
        assert not gens[0].blocks.any()

    def test_generation_ids_sequential(self, rng):
        data = bytes(50)
        gens = segment(data, block_bytes=4, blocks_per_generation=2, first_generation_id=10)
        assert [g.generation_id for g in gens] == list(range(10, 10 + len(gens)))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            segment(b"x", block_bytes=0)
        with pytest.raises(ValueError):
            segment(b"x", blocks_per_generation=0)

    def test_size_bytes(self):
        gens = segment(bytes(16), block_bytes=4, blocks_per_generation=2)
        assert gens[0].size_bytes == 8


class TestReassemble:
    def test_roundtrip(self, rng):
        data = rng.integers(0, 256, 12345, dtype=np.uint8).tobytes()
        gens = segment(data, block_bytes=64, blocks_per_generation=4)
        assert reassemble(gens, len(data)) == data

    def test_out_of_order_generations(self, rng):
        data = rng.integers(0, 256, 1000, dtype=np.uint8).tobytes()
        gens = segment(data, block_bytes=32, blocks_per_generation=4)
        shuffled = list(reversed(gens))
        assert reassemble(shuffled, len(data)) == data

    def test_missing_generation_detected(self, rng):
        data = bytes(1000)
        gens = segment(data, block_bytes=32, blocks_per_generation=4)
        with pytest.raises(ValueError):
            reassemble(gens[:-2] + gens[-1:], len(data))

    def test_short_decode_detected(self):
        gens = segment(bytes(8), block_bytes=4, blocks_per_generation=2)
        with pytest.raises(ValueError):
            reassemble(gens, 100)

    def test_negative_total(self):
        with pytest.raises(ValueError):
            reassemble([], -1)


class TestGenerationObject:
    def test_equality(self, rng):
        blocks = rng.integers(0, 256, (4, 8), dtype=np.uint8)
        assert Generation(1, blocks) == Generation(1, blocks.copy())
        assert Generation(1, blocks) != Generation(2, blocks)

    def test_requires_matrix(self):
        with pytest.raises(ValueError):
            Generation(0, np.zeros(8, dtype=np.uint8))
