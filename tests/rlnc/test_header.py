"""NC header wire-format tests."""

import numpy as np
import pytest

from repro.rlnc import NCHeader
from repro.rlnc.header import FIXED_HEADER_BYTES


def make_header(**overrides):
    defaults = dict(
        session_id=7,
        generation_id=123456,
        coefficients=np.array([1, 0, 9, 255], dtype=np.uint8),
        systematic=False,
    )
    defaults.update(overrides)
    return NCHeader(**defaults)


class TestEncodeDecode:
    def test_roundtrip(self):
        header = make_header()
        decoded, rest = NCHeader.decode(header.encode())
        assert decoded == header
        assert rest == b""

    def test_roundtrip_with_payload(self):
        header = make_header(systematic=True)
        wire = header.encode() + b"payload-bytes"
        decoded, rest = NCHeader.decode(wire)
        assert decoded == header
        assert rest == b"payload-bytes"

    def test_fixed_part_is_12_bytes(self):
        # The paper's 8-byte fixed part plus the CRC32 word (DESIGN.md §11).
        assert FIXED_HEADER_BYTES == 12

    def test_paper_default_is_16_bytes(self):
        # 4 blocks per generation -> 16-byte header (paper §III-B1's 12
        # plus the 4-byte integrity word).
        header = make_header()
        assert header.size_bytes == 16
        assert len(header.encode()) == 16

    def test_systematic_flag_survives(self):
        header = make_header(systematic=True)
        decoded, _ = NCHeader.decode(header.encode())
        assert decoded.systematic


class TestValidation:
    def test_session_id_range(self):
        with pytest.raises(ValueError):
            make_header(session_id=1 << 16)
        with pytest.raises(ValueError):
            make_header(session_id=-1)

    def test_generation_id_range(self):
        with pytest.raises(ValueError):
            make_header(generation_id=1 << 32)

    def test_coefficients_bounds(self):
        with pytest.raises(ValueError):
            make_header(coefficients=np.zeros(0, dtype=np.uint8))
        with pytest.raises(ValueError):
            make_header(coefficients=np.zeros(256, dtype=np.uint8))

    def test_short_header_rejected(self):
        with pytest.raises(ValueError):
            NCHeader.decode(b"\x00\x01")

    def test_truncated_coefficients_rejected(self):
        header = make_header()
        wire = header.encode()[:-2]  # lose two coefficient bytes
        with pytest.raises(ValueError):
            NCHeader.decode(wire)


class TestEquality:
    def test_equal_headers(self):
        assert make_header() == make_header()

    def test_different_coefficients(self):
        other = make_header(coefficients=np.array([1, 1, 9, 255], dtype=np.uint8))
        assert make_header() != other

    def test_not_equal_to_other_types(self):
        assert make_header() != "not a header"
