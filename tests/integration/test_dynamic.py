"""Integration tests for the six-DC dynamic scenarios (Fig. 10-13)."""

import pytest

from repro.core.scaling import ScalingConfig
from repro.experiments.dynamic import (
    DynamicScenario,
    SIX_DATACENTERS,
    alpha_sweep,
    build_six_dc_graph,
    generate_sessions,
    lmax_sweep,
    make_controller,
    region_delay_ms,
)

import numpy as np


class TestWorldConstruction:
    def test_six_datacenters(self):
        assert len(SIX_DATACENTERS) == 6

    def test_region_delay_symmetric(self):
        for a in SIX_DATACENTERS:
            for b in SIX_DATACENTERS:
                assert region_delay_ms(a, b) == region_delay_ms(b, a)

    def test_graph_attaches_endpoints(self):
        rng = np.random.default_rng(0)
        specs = generate_sessions(3, rng)
        g = build_six_dc_graph(specs, rng)
        for source, receivers, _ in specs:
            assert g.out_degree(source.name) >= 3  # 3 access DCs (+ direct links)
            for r in receivers:
                assert g.in_degree(r.name) >= 3

    def test_direct_paths_exist(self):
        rng = np.random.default_rng(0)
        specs = generate_sessions(2, rng)
        g = build_six_dc_graph(specs, rng)
        for source, receivers, _ in specs:
            for r in receivers:
                assert g.has_edge(source.name, r.name)

    def test_sessions_have_1_to_4_receivers(self):
        rng = np.random.default_rng(1)
        specs = generate_sessions(50, rng)
        counts = {len(receivers) for _, receivers, _ in specs}
        assert counts == {1, 2, 3, 4}


class TestFig10Churn:
    @pytest.fixture(scope="class")
    def series(self):
        return DynamicScenario(seed=3).run_churn(sample_interval_min=5.0)

    def test_throughput_tracks_session_count(self, series):
        by_minute = dict(zip(series["minutes"], series["throughput_mbps"]))
        assert by_minute[35.0] > by_minute[5.0]   # 6 sessions > 3 sessions
        assert by_minute[35.0] > by_minute[65.0]  # decays after departures

    def test_vnfs_grow_and_recycle(self, series):
        by_minute = dict(zip(series["minutes"], series["vnfs"]))
        assert by_minute[35.0] > by_minute[0.0]
        assert by_minute[120.0] < by_minute[35.0]  # resources recycled

    def test_throughput_stable_during_receiver_churn(self, series):
        window = [
            t for m, t in zip(series["minutes"], series["throughput_mbps"]) if 70.0 <= m <= 120.0
        ]
        assert max(window) - min(window) < 0.35 * max(window)

    def test_session_counts(self, series):
        assert max(series["sessions"]) == 6
        assert series["sessions"][-1] == 3


class TestFig11BandwidthCuts:
    @pytest.fixture(scope="class")
    def series(self):
        return DynamicScenario(seed=4).run_bandwidth_cuts(duration_min=45.0, cut_interval_min=20.0)

    def test_cut_causes_dip_then_recovery(self, series):
        thpt = series["throughput_mbps"]
        minutes = series["minutes"]
        steady = max(thpt[4:10])
        dip_window = [t for m, t in zip(minutes, thpt) if 11.0 <= m <= 19.0]
        recovered = [t for m, t in zip(minutes, thpt) if 22.0 <= m <= 29.0]
        assert min(dip_window) < 0.8 * steady        # visible dip after the cut
        assert max(recovered) > 0.95 * steady        # recovered within ~10 min

    def test_scale_out_adds_vnfs(self, series):
        vnfs = series["vnfs"]
        assert vnfs[-1] > vnfs[0]


class TestFig12Lmax:
    @pytest.fixture(scope="class")
    def sweep(self):
        return lmax_sweep([60, 75, 100, 150, 200], seed=3)

    def test_throughput_nondecreasing(self, sweep):
        t = sweep["throughput_mbps"]
        assert all(b >= a - 1e-6 for a, b in zip(t, t[1:]))

    def test_saturates(self, sweep):
        t = sweep["throughput_mbps"]
        assert t[-1] == pytest.approx(t[-2], rel=0.02)  # no growth at the top end

    def test_small_lmax_restricts(self, sweep):
        t = sweep["throughput_mbps"]
        assert t[0] < t[-1]


class TestFig13Alpha:
    @pytest.fixture(scope="class")
    def sweep(self):
        return alpha_sweep([0, 20, 50, 100, 150, 200], seed=3)

    def test_throughput_nonincreasing(self, sweep):
        t = sweep["throughput_mbps"]
        assert all(b <= a + 1e-6 for a, b in zip(t, t[1:]))

    def test_vnfs_shrink(self, sweep):
        v = sweep["vnfs"]
        assert v[-1] < v[0]

    def test_huge_alpha_refuses_vnfs(self, sweep):
        # Paper: "the system refuses to launch any new VNF when α = 200".
        assert sweep["vnfs"][-1] == 0
        assert sweep["throughput_mbps"][-1] > 0  # direct paths still carry data


class TestControllerFactory:
    def test_providers_by_region(self, scheduler):
        rng = np.random.default_rng(0)
        specs = generate_sessions(1, rng)
        g = build_six_dc_graph(specs, rng)
        c = make_controller(g, scheduler=scheduler)
        assert set(c.providers) == set(SIX_DATACENTERS)
        assert c.providers["oregon"].name.startswith("ec2")
        assert c.providers["texas"].name.startswith("linode")
