"""Plan → packets: the LP's promise holds at the packet level."""

import pytest

from repro.core.dataplane import build_data_plane
from repro.core.deployment import DataCenterSpec, DeploymentProblem
from repro.core.session import MulticastSession

RELAYS = ["O1", "C1", "T", "V2"]


def solve_butterfly(butterfly_graph, session):
    problem = DeploymentProblem(
        butterfly_graph, [DataCenterSpec(n, 900, 900, 900) for n in RELAYS], alpha=1.0
    )
    return problem.solve([problem.build_demand(session)])


class TestButterflyEndToEnd:
    @pytest.fixture(scope="class")
    def outcome(self):
        import networkx as nx

        from repro.experiments.butterfly import butterfly_graph

        g = butterfly_graph()
        session = MulticastSession(source="V1", receivers=["O2", "C2"], max_delay_ms=250.0)
        plan = solve_butterfly(g, session)
        live = build_data_plane(plan, g, [session], rate_fraction=0.95, seed=5)
        live.start()
        live.run(2.0)
        return session, plan, live

    def test_plan_promises_70(self, outcome):
        session, plan, _ = outcome
        assert plan.lambdas[session.session_id] == pytest.approx(70.0, rel=1e-6)

    def test_packets_deliver_the_promise(self, outcome):
        session, plan, live = outcome
        measured = live.session_throughput_mbps(session.session_id, start_s=0.5)
        promised = plan.lambdas[session.session_id] * 0.95
        assert measured > 0.85 * promised

    def test_merge_point_recodes(self, outcome):
        session, plan, live = outcome
        # T merges two incoming flows: it must be a recoder with shaping.
        t_vnfs = live.vnfs["T"]
        assert all(v.roles[session.session_id].value == "recoder" for v in t_vnfs)
        assert any(v._hop_shapes for v in t_vnfs)

    def test_receivers_registered(self, outcome):
        session, _, live = outcome
        assert {(session.session_id, "O2"), (session.session_id, "C2")} <= set(live.receivers)


class TestUnicastChain:
    def test_single_path_uses_forwarders(self, small_graph):
        # Unicast through the diamond: each relay sees one incoming flow,
        # so the controller assigns plain forwarding (paper §IV-A).
        dcs = [DataCenterSpec(n, 900, 900, 900) for n in ("a", "b")]
        problem = DeploymentProblem(small_graph, dcs, alpha=1.0)
        session = MulticastSession(source="s", receivers=["t"], max_delay_ms=200.0)
        plan = problem.solve([problem.build_demand(session)])
        live = build_data_plane(plan, small_graph, [session], rate_fraction=0.9, seed=6)
        live.start()
        live.run(1.0)
        measured = live.session_throughput_mbps(session.session_id, start_s=0.3)
        assert measured > 0.7 * plan.lambdas[session.session_id] * 0.9
        for name, vnfs in live.vnfs.items():
            for vnf in vnfs:
                role = vnf.roles.get(session.session_id)
                if role is not None:
                    assert role.value == "forwarder"

    def test_bad_rate_fraction(self, small_graph):
        dcs = [DataCenterSpec(n, 900, 900, 900) for n in ("a", "b")]
        problem = DeploymentProblem(small_graph, dcs, alpha=1.0)
        session = MulticastSession(source="s", receivers=["t"])
        plan = problem.solve([problem.build_demand(session)])
        with pytest.raises(ValueError):
            build_data_plane(plan, small_graph, [session], rate_fraction=0.0)
