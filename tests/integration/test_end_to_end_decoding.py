"""Cross-checks tying independent components together."""

import numpy as np
import pytest

from repro.gf import GF256, gf_solve
from repro.rlnc import Decoder, Encoder, Generation


class TestDecoderVsDirectSolve:
    """The progressive decoder must agree with one-shot Gaussian solve."""

    @pytest.mark.parametrize("k", [1, 2, 4, 8])
    def test_agreement(self, k, rng):
        gen = Generation(0, rng.integers(0, 256, (k, 32), dtype=np.uint8))
        enc = Encoder(1, gen, systematic=False, rng=rng)
        packets = []
        dec = Decoder(1, 0, k, 32)
        while not dec.complete:
            p = enc.next_packet()
            if dec.add(p):
                packets.append(p)  # keep only the innovative ones
        progressive = dec.decode()

        coeff_matrix = np.stack([p.coefficients for p in packets])
        payload_matrix = np.stack([p.payload for p in packets])
        direct = gf_solve(GF256, coeff_matrix, payload_matrix)
        assert np.array_equal(progressive.blocks, direct)


class TestCapacityConsistency:
    """The LP, the max-flow bound and the packing bound must cohere."""

    def test_lp_never_beats_maxflow(self, butterfly_graph, rng):
        from repro.core.deployment import DataCenterSpec, DeploymentProblem
        from repro.core.session import MulticastSession
        from repro.routing import multicast_capacity

        dcs = [DataCenterSpec(n, 900, 900, 900) for n in ["O1", "C1", "T", "V2"]]
        problem = DeploymentProblem(butterfly_graph, dcs, alpha=0.0)
        for receivers in (["O2"], ["C2"], ["O2", "C2"]):
            session = MulticastSession(source="V1", receivers=list(receivers), max_delay_ms=250.0)
            plan = problem.solve([problem.build_demand(session)])
            bound = multicast_capacity(butterfly_graph, "V1", receivers)
            assert plan.lambdas[session.session_id] <= bound + 1e-6

    def test_lp_matches_maxflow_with_free_vnfs(self, butterfly_graph):
        # α = 0 and generous capacity: the conceptual-flow LP equals the
        # information-theoretic bound (Li-Li-Lau).
        from repro.core.deployment import DataCenterSpec, DeploymentProblem
        from repro.core.session import MulticastSession
        from repro.routing import multicast_capacity

        dcs = [DataCenterSpec(n, 900, 900, 900) for n in ["O1", "C1", "T", "V2"]]
        problem = DeploymentProblem(butterfly_graph, dcs, alpha=0.0)
        session = MulticastSession(source="V1", receivers=["O2", "C2"], max_delay_ms=250.0)
        plan = problem.solve([problem.build_demand(session)])
        assert plan.lambdas[session.session_id] == pytest.approx(
            multicast_capacity(butterfly_graph, "V1", ["O2", "C2"]), rel=1e-6
        )

    def test_packing_upper_bounded_by_lp(self, butterfly_graph):
        from repro.routing import tree_packing_rate

        packing = tree_packing_rate(
            butterfly_graph, "V1", ["O2", "C2"], relay_nodes={"O1", "C1", "T", "V2"}
        )
        assert packing <= 70.0


class TestHeaderMtuInvariant:
    """Any (block size, k) respecting the paper's sizing fills the MTU."""

    @pytest.mark.parametrize("k", [1, 2, 4, 8, 16])
    def test_mtu_budget(self, k):
        from repro.net.packet import IP_HEADER_BYTES, UDP_HEADER_BYTES
        from repro.rlnc.header import FIXED_HEADER_BYTES

        block = 1500 - IP_HEADER_BYTES - UDP_HEADER_BYTES - FIXED_HEADER_BYTES - k
        overhead = FIXED_HEADER_BYTES + k + UDP_HEADER_BYTES + IP_HEADER_BYTES
        assert block + overhead == 1500
        if k == 4:
            # The paper's 8-byte header gave 1460-byte blocks; the CRC32
            # integrity word costs 4 bytes of the MTU budget.
            assert block == 1456
