"""Same seed, same run: the determinism contract of the simulator.

Every fallback randomness source in the ``repro`` package is derived
from :mod:`repro.util.rng` with a stable per-component key, and every
explicitly seeded experiment threads its own generators.  The result —
checked here end to end — is that two butterfly runs with the same seed
produce bit-identical throughput traces, and a different seed produces
a different (but still valid) run.
"""

import numpy as np
import pytest

from repro.experiments.butterfly import RECEIVERS, run_butterfly_nc
from repro.net.loss import UniformLoss
from repro.util.rng import DEFAULT_SEED, derive_rng, get_global_seed, set_global_seed


def _run(seed: int):
    # Loss on the bottleneck exercises the link RNGs; jitter exercises
    # the per-packet delay draws.  Short run keeps the test fast.
    return run_butterfly_nc(
        duration_s=1.0,
        warmup_s=0.25,
        loss_on_bottleneck=UniformLoss(0.05),
        jitter_s=0.0005,
        window_generations=512,
        seed=seed,
    )


class TestButterflyDeterminism:
    def test_same_seed_identical_traces(self):
        first = _run(seed=7)
        second = _run(seed=7)

        assert first.sent_generations == second.sent_generations
        assert first.session_throughput_mbps == second.session_throughput_mbps
        assert first.throughput_mbps == second.throughput_mbps
        for receiver in RECEIVERS:
            times_a, rates_a = first.series[receiver]
            times_b, rates_b = second.series[receiver]
            assert np.array_equal(np.asarray(times_a), np.asarray(times_b))
            assert np.array_equal(np.asarray(rates_a), np.asarray(rates_b))

    def test_different_seed_diverges(self):
        base = _run(seed=7)
        other = _run(seed=8)
        # With loss and jitter in play, two seeds agreeing on every
        # windowed rate sample would mean the seed is being ignored.
        same = all(
            np.array_equal(np.asarray(base.series[r][1]), np.asarray(other.series[r][1]))
            for r in RECEIVERS
        )
        assert not same


class TestFailoverDeterminism:
    """The seed contract holds on the failure path too (see also
    ``tests/faults/test_fault_properties.py`` for random fault plans)."""

    def test_same_seed_identical_recovery(self):
        from repro.experiments.failures import run_butterfly_failover

        first = run_butterfly_failover(duration_s=2.0)
        second = run_butterfly_failover(duration_s=2.0)
        assert first.detected_at == second.detected_at
        assert first.recovery_latency_s == second.recovery_latency_s
        assert first.decoded_after == second.decoded_after
        assert first.decode_stall_s == second.decode_stall_s

    def test_different_seed_diverges_after_recovery(self):
        from repro.experiments.failures import run_butterfly_failover

        base = run_butterfly_failover(duration_s=2.0, seed=7)
        other = run_butterfly_failover(duration_s=2.0, seed=8)
        # Detection is clocked by heartbeats, so it matches; the coded
        # payloads do not, so the decode trace must differ.
        assert base.detected_at == other.detected_at
        assert base.decode_stall_s != other.decode_stall_s


class TestDeriveRng:
    def test_same_key_same_stream(self):
        a = derive_rng("net.link", "V1", "T")
        b = derive_rng("net.link", "V1", "T")
        assert np.array_equal(a.integers(0, 256, 64), b.integers(0, 256, 64))

    def test_different_key_different_stream(self):
        a = derive_rng("net.link", "V1", "T")
        b = derive_rng("net.link", "T", "V1")
        assert not np.array_equal(a.integers(0, 256, 64), b.integers(0, 256, 64))

    def test_explicit_seed_overrides_global(self):
        a = derive_rng("x", seed=123)
        b = derive_rng("x", seed=123)
        c = derive_rng("x", seed=124)
        assert np.array_equal(a.integers(0, 1 << 30, 16), b.integers(0, 1 << 30, 16))
        assert not np.array_equal(derive_rng("x", seed=123).integers(0, 1 << 30, 16),
                                  c.integers(0, 1 << 30, 16))

    def test_global_seed_round_trip(self):
        assert get_global_seed() == DEFAULT_SEED
        try:
            set_global_seed(99)
            assert get_global_seed() == 99
            a = derive_rng("y")
            set_global_seed(99)
            b = derive_rng("y")
            assert np.array_equal(a.integers(0, 1 << 30, 16), b.integers(0, 1 << 30, 16))
        finally:
            set_global_seed(DEFAULT_SEED)

    def test_rejects_float_keys(self):
        with pytest.raises(TypeError):
            derive_rng("z", 1.5)  # type: ignore[arg-type]
