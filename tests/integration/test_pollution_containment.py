"""End-to-end dirty-wire acceptance tests (ISSUE tentpole).

Two scenarios the checksum + epoch machinery exists for:

- *Pollution containment*: a lossy-wire butterfly run where a relay's
  ingress link flips bits in 5 % of packets for the whole transfer.
  Every corrupted packet must die at the relay's verify gate (never
  entering a recoding buffer), the resulting rank shortfall must heal
  through the ordinary NACK-repair path, and every generation must
  decode bit-identically to what the source sent — zero polluted
  decodes.
- *Stale control plane*: a pre-V2-failure NC_FORWARD_TAB delayed across
  a second healing replan arrives after newer config was applied; the
  daemon's epoch check must reject it so the recovery table survives,
  and the session must still finish at full rank.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.failures import run_butterfly_failover
from repro.faults import FaultEvent, FaultKind, FaultPlan
from repro.faults.injector import link_key


class TestPollutionContainment:
    def test_corrupted_relay_ingress_decodes_bit_identically(self):
        total = 40
        plan = FaultPlan(
            [FaultEvent(0.0, FaultKind.LINK_CORRUPT, link_key("T", "V2"), param=0.05)]
        )
        result = run_butterfly_failover(
            plan=plan,
            duration_s=6.0,
            payload_mode="full",
            relay_repair=True,
            total_generations=total,
            retain_decoded=True,
        )

        # The wire really was dirty, and the relay's verify gate caught it.
        dirty = result.topology.links[("T", "V2")].stats
        assert dirty.corrupted_packets > 0
        assert result.daemons["V2"].vnf.corrupt_dropped > 0
        # No crash in this scenario: the detector stays quiet.
        assert result.detected_at is None

        # Containment: corruption degraded into loss, loss healed via
        # NACK repair, and every decode matches the source bit for bit.
        source_cache = result.source._cache
        for name, app in result.receivers.items():
            assert len(app.completed) == total, f"{name} finished {len(app.completed)}/{total}"
            for gen_id in range(total):
                decoded = app.decoded_generations[gen_id]
                assert np.array_equal(decoded.blocks, source_cache[gen_id].blocks), (
                    f"{name} decoded a polluted generation {gen_id}"
                )

    def test_clean_wire_run_sees_no_corruption_counters(self):
        result = run_butterfly_failover(
            plan=FaultPlan([]),
            duration_s=3.0,
            payload_mode="full",
            total_generations=16,
            retain_decoded=True,
        )
        assert result.topology.links[("T", "V2")].stats.corrupted_packets == 0
        for daemon in result.daemons.values():
            assert daemon.vnf.corrupt_dropped == 0
        for app in result.receivers.values():
            assert app.corrupt_dropped == 0
            assert len(app.completed) == 16


class TestStaleControlPlane:
    def test_delayed_prereplan_table_is_rejected_across_second_replan(self):
        total = 60
        # T's daemon dies at 0.5 (detected ~0.9 → replan epoch 1); the
        # first epoch-1 NC_FORWARD_TAB (alphabetically C1's) is delayed
        # a full second in flight.  V2's daemon dies at 1.2 (detected
        # ~1.6 → replan epoch 2, applied immediately).  The delayed
        # epoch-1 table then lands at ~1.9 — stale, and must bounce off
        # C1's epoch check instead of clobbering the epoch-2 route.
        plan = FaultPlan(
            [
                FaultEvent(0.5, FaultKind.DAEMON_KILL, "T"),
                FaultEvent(0.55, FaultKind.SIGNAL_DELAY, "NcForwardTab", param=1.0),
                FaultEvent(1.2, FaultKind.DAEMON_KILL, "V2"),
            ]
        )
        result = run_butterfly_failover(
            plan=plan,
            duration_s=5.0,
            total_generations=total,
            relay_repair=True,
        )

        # Two death verdicts, two feasible replans.
        assert result.dead_nodes == ["T", "V2"]
        assert len(result.recovery_plans) == 2
        assert all(p.feasible for p in result.recovery_plans)

        c1 = result.daemons["C1"]
        assert c1.stale_rejected == 1
        assert c1.config_epoch == 2
        # The recovery table survived the stale delivery.
        assert c1.vnf.forwarding_table == result.recovery_plans[1].tables["C1"]

        # And the defense is not at the session's expense: both
        # receivers still reach full rank on the rerouted topology.
        for name, app in result.receivers.items():
            assert len(app.completed) == total, f"{name} finished {len(app.completed)}/{total}"
            assert app._cum_ack == total - 1
            assert not app._decoders
