"""Full control-path integration: signals configure the data plane."""

import pytest

from repro.core.deployment import DataCenterSpec
from repro.core.orchestrator import Orchestrator
from repro.core.session import MulticastSession
from repro.core.vnf import VnfRole

RELAYS = ["O1", "C1", "T", "V2"]


@pytest.fixture(scope="module")
def orchestration():
    from repro.experiments.butterfly import butterfly_graph

    orchestrator = Orchestrator(
        butterfly_graph(),
        [DataCenterSpec(n, 900, 900, 900) for n in RELAYS],
        alpha=1.0,
        seed=4,
    )
    session = MulticastSession(source="V1", receivers=["O2", "C2"], max_delay_ms=250.0)
    deployed = orchestrator.deploy([session])
    deployed.run(2.5)
    return session, deployed


class TestSignalChain:
    def test_settings_and_tables_sent(self, orchestration):
        _, deployed = orchestration
        assert len(deployed.bus.sent_of_kind("NcSettings")) == 4  # one per relay
        assert len(deployed.bus.sent_of_kind("NcForwardTab")) == 4
        assert len(deployed.bus.sent_of_kind("NcStart")) == 1

    def test_daemons_brought_functions_up(self, orchestration):
        _, deployed = orchestration
        assert all(d.function_running for d in deployed.daemons.values())

    def test_roles_configured_by_signal(self, orchestration):
        session, deployed = orchestration
        roles = {name: vnfs[0].roles[session.session_id] for name, vnfs in deployed.deployment.vnfs.items()}
        assert roles["T"] is VnfRole.RECODER
        assert roles["O1"] is VnfRole.FORWARDER

    def test_shapes_configured_by_signal(self, orchestration):
        session, deployed = orchestration
        t = deployed.deployment.vnfs["T"][0]
        assert (session.session_id, "V2") in t._hop_shapes

    def test_tables_configured_by_signal(self, orchestration):
        session, deployed = orchestration
        v2 = deployed.deployment.vnfs["V2"][0]
        assert set(v2.forwarding_table.next_hops(session.session_id)) == {"O2", "C2"}

    def test_source_started_by_nc_start(self, orchestration):
        session, deployed = orchestration
        source = deployed.deployment.sources[session.session_id]
        assert source.sent_generations > 0

    def test_promised_rate_survives_signalling(self, orchestration):
        session, deployed = orchestration
        measured = deployed.session_throughput_mbps(session.session_id, start_s=0.8)
        promised = deployed.plan.lambdas[session.session_id] * 0.95
        assert measured > 0.8 * promised

    def test_function_start_latency_respected(self, orchestration):
        _, deployed = orchestration
        for daemon in deployed.daemons.values():
            for member in daemon.members:
                # Coding functions came up after the ~376 ms start plus
                # the control-plane latency.
                assert member.started_at >= 0.37
