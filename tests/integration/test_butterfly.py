"""Integration tests on the butterfly testbed (the Fig. 6/7 setup)."""

import pytest

from repro.experiments.butterfly import (
    RECEIVERS,
    build_butterfly,
    measure_delays,
    routing_only_capacity_mbps,
    run_butterfly_nc,
    run_butterfly_non_nc,
    run_direct_tcp,
    theoretical_capacity_mbps,
)
from repro.net.loss import UniformLoss
from repro.rlnc.redundancy import RedundancyPolicy


class TestCapacities:
    def test_coding_capacity_is_70(self):
        assert theoretical_capacity_mbps() == pytest.approx(70.0)

    def test_routing_only_is_52_5(self):
        assert routing_only_capacity_mbps() == pytest.approx(52.5, rel=1e-6)

    def test_topology_builds(self):
        topo = build_butterfly()
        assert len(topo.nodes) == 7
        # 9 data links + 9 reverse control links.
        assert len(topo.links) == 18


class TestFig7Ordering:
    """NC > Non-NC > direct TCP, with NC near the max-flow bound."""

    @pytest.fixture(scope="class")
    def results(self):
        nc = run_butterfly_nc(duration_s=1.5, warmup_s=0.5)
        non_nc = run_butterfly_non_nc(duration_s=1.5, warmup_s=0.5, mode="striped")
        tcp = run_direct_tcp(duration_s=30.0)
        return nc, non_nc, tcp

    def test_nc_approaches_capacity(self, results):
        nc, _, _ = results
        assert nc.session_throughput_mbps > 0.85 * 70.0

    def test_nc_beats_non_nc(self, results):
        nc, non_nc, _ = results
        assert nc.session_throughput_mbps > non_nc.session_throughput_mbps

    def test_non_nc_beats_direct_tcp(self, results):
        _, non_nc, tcp = results
        assert non_nc.session_throughput_mbps > tcp["session"]

    def test_non_nc_near_packing_bound(self, results):
        _, non_nc, _ = results
        assert non_nc.session_throughput_mbps > 0.85 * 52.5
        assert non_nc.session_throughput_mbps <= 52.5 * 1.02

    def test_both_receivers_served(self, results):
        nc, _, _ = results
        rates = list(nc.throughput_mbps.values())
        assert max(rates) - min(rates) < 0.2 * max(rates)


class TestRobustness:
    def test_redundancy_helps_under_loss(self):
        # The redundant stream's rate is tuned to just fit the bottleneck;
        # the CRC32 header word grew the packet from 1472 to 1476 bytes,
        # so the equivalent rate is 52.6 * 1500/1504 ~= 52.46 Mb/s.
        loss = UniformLoss(0.3)
        nc0 = run_butterfly_nc(
            duration_s=1.5, rate_mbps=66.0, window_generations=512, loss_on_bottleneck=loss
        )
        nc1 = run_butterfly_nc(
            duration_s=1.5,
            rate_mbps=52.45,
            window_generations=512,
            loss_on_bottleneck=UniformLoss(0.3),
            redundancy=RedundancyPolicy(1),
        )
        assert nc1.session_throughput_mbps > nc0.session_throughput_mbps

    def test_redundancy_wastes_bandwidth_when_clean(self):
        nc0 = run_butterfly_nc(duration_s=1.5, rate_mbps=66.0, window_generations=1024)
        nc1 = run_butterfly_nc(
            duration_s=1.5, rate_mbps=52.6, window_generations=1024, redundancy=RedundancyPolicy(1)
        )
        assert nc0.session_throughput_mbps > nc1.session_throughput_mbps


class TestTabII:
    @pytest.fixture(scope="class")
    def delays(self):
        return measure_delays()

    def test_direct_rtts_match_paper(self, delays):
        # Tab. II: 90.88 ms to O2, 77.03 ms to C2 (±2 ms of modelling).
        assert delays["direct:O2"] == pytest.approx(90.88, abs=2.5)
        assert delays["direct:C2"] == pytest.approx(77.03, abs=2.5)

    def test_relayed_slower_than_direct(self, delays):
        for receiver in RECEIVERS:
            assert delays[f"relayed:{receiver}:wo_coding"] > delays[f"direct:{receiver}"]

    def test_coding_overhead_is_small(self, delays):
        # The paper's headline: coding adds only 0.9-1.5% over relaying.
        for receiver in RECEIVERS:
            with_coding = delays[f"relayed:{receiver}:w_coding"]
            without = delays[f"relayed:{receiver}:wo_coding"]
            overhead = (with_coding - without) / without
            assert 0.0 <= overhead < 0.04

    def test_relayed_rtt_magnitude(self, delays):
        # Paper: ~166-169 ms on the relayed paths.
        for receiver in RECEIVERS:
            assert 150.0 < delays[f"relayed:{receiver}:w_coding"] < 190.0
