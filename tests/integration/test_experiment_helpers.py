"""Unit tests for experiment-harness helpers."""

import numpy as np
import pytest

from repro.experiments.butterfly import (
    BUTTERFLY_DELAYS_MS,
    BUTTERFLY_LINKS_MBPS,
    _nc_hop_shapes,
    _nc_source_shares,
    build_butterfly,
)
from repro.experiments.dynamic import generate_sessions, region_delay_ms


class TestButterflyHelpers:
    def test_source_shares_nc0(self):
        shares = _nc_source_shares(70.0, 4, 0)
        assert shares == {"O1": pytest.approx(35.0), "C1": pytest.approx(35.0)}

    def test_source_shares_grow_with_redundancy(self):
        nc1 = _nc_source_shares(52.8, 4, 1)
        assert nc1["O1"] == pytest.approx(52.8 * 5 / 8)

    def test_over_capacity_rejected(self):
        with pytest.raises(ValueError):
            _nc_source_shares(70.0, 4, 2)  # 70 * 6/8 = 52.5 > 35 per branch

    def test_hop_shapes(self):
        assert _nc_hop_shapes(4, 0) == {("T", "V2"): (2, None)}
        assert _nc_hop_shapes(8, 1) == {("T", "V2"): (4, None)}
        assert _nc_hop_shapes(1, 0) == {}

    def test_topology_delays_match_spec(self):
        topo = build_butterfly()
        for edge, delay in BUTTERFLY_DELAYS_MS.items():
            assert topo.link(*edge).delay_s == pytest.approx(delay / 1e3)

    def test_all_links_35(self):
        assert set(BUTTERFLY_LINKS_MBPS.values()) == {35.0}

    def test_direct_links_optional(self):
        without = build_butterfly(include_direct_links=False)
        with_direct = build_butterfly(include_direct_links=True)
        assert ("V1", "O2") not in without.links
        assert ("V1", "O2") in with_direct.links


class TestDynamicHelpers:
    def test_region_delay_identity(self):
        assert region_delay_ms("oregon", "oregon") == 2.0

    def test_region_delay_lookup_both_orders(self):
        assert region_delay_ms("oregon", "texas") == region_delay_ms("texas", "oregon") > 0

    def test_unknown_region_raises(self):
        with pytest.raises(KeyError):
            region_delay_ms("oregon", "mars")

    def test_generate_sessions_deterministic(self):
        a = generate_sessions(5, np.random.default_rng(9))
        b = generate_sessions(5, np.random.default_rng(9))
        assert [(s.name, s.region) for s, _, _ in a] == [(s.name, s.region) for s, _, _ in b]

    def test_receivers_range_respected(self):
        specs = generate_sessions(30, np.random.default_rng(1), receivers_range=(2, 2))
        assert all(len(receivers) == 2 for _, receivers, _ in specs)
