"""Data plane with multi-VNF data centers: the dispatcher path."""

import pytest

from repro.core.dataplane import build_data_plane
from repro.core.deployment import DataCenterSpec, DeploymentProblem
from repro.core.session import MulticastSession

RELAYS = ["O1", "C1", "T", "V2"]


class TestMultiInstance:
    @pytest.fixture(scope="class")
    def outcome(self):
        from repro.experiments.butterfly import butterfly_graph

        g = butterfly_graph()
        # Small per-VNF caps force several instances per data center:
        # T carries 70 Mbps of inflow but one VNF only handles 40.
        problem = DeploymentProblem(
            g, [DataCenterSpec(n, 40, 40, 40) for n in RELAYS], alpha=0.1
        )
        session = MulticastSession(source="V1", receivers=["O2", "C2"], max_delay_ms=250.0)
        plan = problem.solve([problem.build_demand(session)])
        live = build_data_plane(plan, g, [session], rate_fraction=0.95, seed=8)
        live.start()
        live.run(2.0)
        return session, plan, live

    def test_plan_needs_multiple_vnfs(self, outcome):
        _, plan, _ = outcome
        assert plan.vnfs_at("T") >= 2

    def test_dispatcher_installed(self, outcome):
        _, plan, live = outcome
        assert "T" in live.dispatchers
        assert len(live.vnfs["T"]) == plan.vnfs_at("T")

    def test_generations_stay_on_one_instance(self, outcome):
        session, _, live = outcome
        dispatcher = live.dispatchers["T"]
        assert dispatcher.dispatched > 0
        # Each instance holds recoding state for a disjoint set of
        # generations (the (session, generation) hash key).
        seen = {}
        for vnf in live.vnfs["T"]:
            for (sid, gen_id) in vnf._recoders:
                assert (sid, gen_id) not in seen, "generation split across instances"
                seen[(sid, gen_id)] = vnf.name
        assert seen

    def test_throughput_close_to_plan(self, outcome):
        session, plan, live = outcome
        measured = live.session_throughput_mbps(session.session_id, start_s=0.5)
        assert measured > 0.8 * plan.lambdas[session.session_id] * 0.95

    def test_instances_share_outgoing_links(self, outcome):
        _, _, live = outcome
        for vnf in live.vnfs["T"]:
            assert "V2" in vnf.neighbors()
