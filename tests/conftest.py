"""Shared fixtures for the reproduction's test suite."""

import networkx as nx
import numpy as np
import pytest

from repro.net.events import EventScheduler


@pytest.fixture
def rng():
    """Deterministic randomness for reproducible tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def scheduler():
    return EventScheduler()


@pytest.fixture
def butterfly_graph():
    """The uniform-capacity butterfly (NC capacity 70, packing 52.5)."""
    from repro.experiments.butterfly import butterfly_graph

    return butterfly_graph()


@pytest.fixture
def small_graph():
    """A 4-node diamond: s -> {a, b} -> t with asymmetric capacities."""
    g = nx.DiGraph()
    g.add_edge("s", "a", capacity_mbps=40.0, delay_ms=10.0)
    g.add_edge("s", "b", capacity_mbps=30.0, delay_ms=20.0)
    g.add_edge("a", "t", capacity_mbps=25.0, delay_ms=10.0)
    g.add_edge("b", "t", capacity_mbps=35.0, delay_ms=15.0)
    g.add_edge("s", "t", capacity_mbps=10.0, delay_ms=50.0)
    return g
