"""Gated static-tooling checks: mypy --strict and ruff.

The container used for day-to-day test runs does not ship mypy or ruff;
CI installs both.  These tests therefore skip cleanly when the tool is
absent and act as the local entry point when it is installed, so the
same command (``pytest tests/test_toolchain.py``) works in both places.
"""

from __future__ import annotations

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]


def test_mypy_strict_core_packages() -> None:
    pytest.importorskip("mypy", reason="mypy not installed; enforced in CI")
    result = subprocess.run(
        [sys.executable, "-m", "mypy"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, f"mypy --strict failed:\n{result.stdout}{result.stderr}"


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed; enforced in CI")
def test_ruff_clean() -> None:
    result = subprocess.run(
        ["ruff", "check", "src", "benchmarks"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, f"ruff check failed:\n{result.stdout}{result.stderr}"
