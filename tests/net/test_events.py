"""Event scheduler tests."""

import pytest

from repro.net.events import EventScheduler


class TestScheduling:
    def test_fires_in_time_order(self, scheduler):
        fired = []
        scheduler.schedule(2.0, fired.append, "b")
        scheduler.schedule(1.0, fired.append, "a")
        scheduler.schedule(3.0, fired.append, "c")
        scheduler.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self, scheduler):
        fired = []
        for name in "abc":
            scheduler.schedule(1.0, fired.append, name)
        scheduler.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self, scheduler):
        times = []
        scheduler.schedule(1.5, lambda: times.append(scheduler.now))
        scheduler.run()
        assert times == [1.5]

    def test_negative_delay_rejected(self, scheduler):
        with pytest.raises(ValueError):
            scheduler.schedule(-1.0, lambda: None)

    def test_schedule_at_absolute(self, scheduler):
        scheduler.schedule(1.0, lambda: None)
        scheduler.run()
        assert scheduler.now == 1.0
        scheduler.schedule_at(5.0, lambda: None)
        scheduler.run()
        assert scheduler.now == 5.0

    def test_events_scheduled_during_run(self, scheduler):
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                scheduler.schedule(1.0, chain, n + 1)

        scheduler.schedule(0.0, chain, 0)
        scheduler.run()
        assert fired == [0, 1, 2, 3]
        assert scheduler.now == 3.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, scheduler):
        fired = []
        event = scheduler.schedule(1.0, fired.append, "x")
        event.cancel()
        scheduler.run()
        assert fired == []

    def test_pending_count_excludes_cancelled(self, scheduler):
        e1 = scheduler.schedule(1.0, lambda: None)
        scheduler.schedule(2.0, lambda: None)
        assert scheduler.pending == 2
        e1.cancel()
        assert scheduler.pending == 1

    def test_double_cancel_counts_once(self, scheduler):
        event = scheduler.schedule(1.0, lambda: None)
        scheduler.schedule(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert scheduler.pending == 1

    def test_cancel_after_fire_is_noop(self, scheduler):
        event = scheduler.schedule(1.0, lambda: None)
        scheduler.schedule(2.0, lambda: None)
        scheduler.run(max_events=1)
        assert scheduler.pending == 1
        event.cancel()  # already fired; counters must not move
        assert scheduler.pending == 1

    def test_mass_cancellation_pending_and_drain(self, scheduler):
        """Cancel 10k of 10k+5 events: pending stays exact, run() drains.

        This exercises the O(1) pending counter and the heap compaction
        path (cancelled entries heavily outnumber live ones).
        """
        fired = []
        keep = []
        cancel = []
        for i in range(10_005):
            if i % 2001 == 1000:  # 5 survivors spread through the heap
                keep.append(scheduler.schedule(float(i), fired.append, i))
            else:
                cancel.append(scheduler.schedule(float(i), fired.append, i))
        assert scheduler.pending == 10_005
        for event in cancel:
            event.cancel()
        assert scheduler.pending == 5
        # Compaction must have trimmed the underlying heap too.
        assert len(scheduler._queue) < 100
        scheduler.run()
        assert fired == sorted(fired)
        assert len(fired) == 5
        assert scheduler.pending == 0
        assert scheduler.processed == 5


class TestRunUntil:
    def test_stops_at_until(self, scheduler):
        fired = []
        scheduler.schedule(1.0, fired.append, "a")
        scheduler.schedule(5.0, fired.append, "b")
        scheduler.run(until=3.0)
        assert fired == ["a"]
        assert scheduler.now == 3.0  # clock advanced even with no event at 3

    def test_resume_after_until(self, scheduler):
        fired = []
        scheduler.schedule(5.0, fired.append, "b")
        scheduler.run(until=3.0)
        scheduler.run()
        assert fired == ["b"]

    def test_max_events(self, scheduler):
        fired = []
        for i in range(10):
            scheduler.schedule(float(i), fired.append, i)
        scheduler.run(max_events=4)
        assert fired == [0, 1, 2, 3]

    def test_processed_counter(self, scheduler):
        for i in range(5):
            scheduler.schedule(float(i), lambda: None)
        scheduler.run()
        assert scheduler.processed == 5
