"""NIC cost-model tests: DPDK poll mode vs interrupts (paper §III-B2)."""

import pytest

from repro.net.nic import InterruptNic, PollModeNic


class TestPollMode:
    def test_constant_cost(self):
        nic = PollModeNic()
        assert nic.cpu_seconds_per_packet(0) == nic.cpu_seconds_per_packet(1e6)

    def test_max_rate(self):
        nic = PollModeNic(cycles_per_packet=100, cpu_hz=1e9)
        assert nic.max_packet_rate() == pytest.approx(1e7)

    def test_throughput_ceiling(self):
        nic = PollModeNic(cycles_per_packet=100, cpu_hz=1e9)
        assert nic.max_throughput_bps(1500) == pytest.approx(1e7 * 1500 * 8)

    def test_cpu_share(self):
        nic = PollModeNic()
        assert nic.max_packet_rate(0.5) == pytest.approx(nic.max_packet_rate() / 2)

    def test_invalid_inputs(self):
        nic = PollModeNic()
        with pytest.raises(ValueError):
            nic.cpu_seconds_per_packet(-1)
        with pytest.raises(ValueError):
            nic.max_packet_rate(0)
        with pytest.raises(ValueError):
            nic.max_throughput_bps(0)


class TestInterrupt:
    def test_cost_grows_with_rate(self):
        nic = InterruptNic()
        assert nic.cpu_seconds_per_packet(500_000) > nic.cpu_seconds_per_packet(1_000)

    def test_self_limiting_rate_consistent(self):
        # At the self-limiting rate, rate * cost(rate) ≈ 1 CPU.
        nic = InterruptNic()
        rate = nic.max_packet_rate()
        assert rate * nic.cpu_seconds_per_packet(rate) == pytest.approx(1.0, rel=1e-6)

    def test_poll_mode_beats_interrupts(self):
        # The paper's whole reason for DPDK: poll mode sustains a much
        # higher packet rate than the interrupt path.
        assert PollModeNic().max_packet_rate() > 5 * InterruptNic().max_packet_rate()

    def test_efficiency_deteriorates(self):
        # "The efficiency deteriorates when the number of interrupts
        # grows" — cost at high rate is superlinear vs the base cost.
        nic = InterruptNic()
        low = nic.cpu_seconds_per_packet(0)
        high = nic.cpu_seconds_per_packet(2 * nic.saturation_pps)
        assert high > 1.5 * low
