"""Loss-model tests: i.i.d., burst (netem-style), literal recursion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.loss import BurstLoss, CompositeLoss, LiteralRecursionLoss, NoLoss, UniformLoss


def drop_series(model, rng, n=20000):
    return np.array([model.drop(rng) for _ in range(n)])


class TestNoLoss:
    def test_never_drops(self, rng):
        assert not drop_series(NoLoss(), rng, 1000).any()


class TestUniformLoss:
    def test_rate_zero(self, rng):
        assert not drop_series(UniformLoss(0.0), rng, 1000).any()

    def test_rate_one(self, rng):
        assert drop_series(UniformLoss(1.0), rng, 100).all()

    def test_empirical_rate(self, rng):
        drops = drop_series(UniformLoss(0.2), rng)
        assert drops.mean() == pytest.approx(0.2, abs=0.02)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            UniformLoss(1.5)
        with pytest.raises(ValueError):
            UniformLoss(-0.1)

    def test_independence(self, rng):
        # Autocorrelation of consecutive drops should be ~0.
        drops = drop_series(UniformLoss(0.3), rng).astype(float)
        corr = np.corrcoef(drops[:-1], drops[1:])[0, 1]
        assert abs(corr) < 0.03


class TestBurstLoss:
    def test_stationary_rate_close_to_p(self, rng):
        model = BurstLoss(p=0.05, correlation=0.25)
        drops = drop_series(model, rng, 50000)
        assert drops.mean() == pytest.approx(model.stationary_rate(), abs=0.01)

    def test_drops_are_correlated(self, rng):
        model = BurstLoss(p=0.1, correlation=0.5)
        drops = drop_series(model, rng, 50000).astype(float)
        corr = np.corrcoef(drops[:-1], drops[1:])[0, 1]
        assert corr > 0.1  # clearly positive: bursts

    def test_reset_clears_state(self, rng):
        model = BurstLoss(p=0.0, correlation=0.9)
        model._prev_dropped = True
        model.reset()
        assert not model._prev_dropped

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BurstLoss(p=2.0)
        with pytest.raises(ValueError):
            BurstLoss(p=0.1, correlation=1.0)

    def test_zero_p_zero_drops(self, rng):
        assert not drop_series(BurstLoss(p=0.0), rng, 1000).any()

    def test_expected_loss_equals_marginal_rate(self):
        # The two-state chain's stationary rate collapses to p exactly,
        # independent of the correlation (the analytic identity the
        # adaptive controller's TCP comparison leans on).
        for p in (0.0, 0.05, 0.3, 0.9):
            for c in (0.0, 0.25, 0.6, 0.95):
                assert BurstLoss(p, c).expected_loss() == pytest.approx(p)

    @settings(max_examples=30, deadline=None)
    @given(
        p=st.floats(min_value=0.02, max_value=0.5),
        correlation=st.floats(min_value=0.0, max_value=0.9),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_expected_loss_matches_empirical_rate(self, p, correlation, seed):
        # Property: across the whole (p, correlation) plane the analytic
        # expectation predicts the empirical drop rate of the sampler.
        model = BurstLoss(p=p, correlation=correlation)
        rng = np.random.default_rng(seed)
        drops = drop_series(model, rng, 30000)
        # Correlated drops have a larger effective variance than i.i.d.
        # ones: var ≈ p(1-p)(1+c)/(1-c) per sample.  Five sigmas keeps
        # the property sound across the sampled plane.
        sigma = np.sqrt(p * (1 - p) * (1 + correlation) / (1 - correlation) / 30000)
        assert abs(drops.mean() - model.expected_loss()) < 5 * sigma + 1e-3


class TestLiteralRecursion:
    def test_converges_to_limit(self, rng):
        model = LiteralRecursionLoss(p=0.03, correlation=0.25)
        drops = drop_series(model, rng, 50000)
        assert drops.mean() == pytest.approx(model.limit_rate(), abs=0.01)
        assert model.limit_rate() == pytest.approx(0.04)

    def test_p0_starts_at_zero(self, rng):
        model = LiteralRecursionLoss(p=0.5, correlation=0.25)
        # First packet: P_1 = 0.25 * 0 + 0.5 = 0.5 exactly.
        assert model._prob == 0.0
        model.drop(rng)
        assert model._prob == pytest.approx(0.5)

    def test_reset(self, rng):
        model = LiteralRecursionLoss(p=0.5)
        model.drop(rng)
        model.reset()
        assert model._prob == 0.0


class TestComposite:
    def test_any_component_drops(self, rng):
        model = CompositeLoss(UniformLoss(0.0), UniformLoss(1.0))
        assert drop_series(model, rng, 50).all()

    def test_rate_composes(self, rng):
        model = CompositeLoss(UniformLoss(0.1), UniformLoss(0.1))
        drops = drop_series(model, rng, 50000)
        assert drops.mean() == pytest.approx(1 - 0.9 * 0.9, abs=0.01)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CompositeLoss()

    def test_reset_propagates(self, rng):
        burst = BurstLoss(p=0.5)
        burst._prev_dropped = True
        CompositeLoss(burst).reset()
        assert not burst._prev_dropped
