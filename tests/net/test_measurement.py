"""Measurement plane tests: ping, iperf-style probe, periodic sampler."""

import numpy as np
import pytest

from repro.net import LinkSpec, Topology
from repro.net.measurement import (
    BandwidthProbe,
    MeasurementService,
    Pinger,
    path_one_way_delay,
    path_rtt,
)


@pytest.fixture
def line_topology():
    topo = Topology(rng=np.random.default_rng(2))
    for name in ("a", "b", "c"):
        topo.add_node(name)
    topo.add_duplex("a", "b", capacity_mbps=100.0, delay_ms=10.0)
    topo.add_duplex("b", "c", capacity_mbps=50.0, delay_ms=20.0)
    return topo


class TestAnalyticDelay:
    def test_one_way(self, line_topology):
        d = path_one_way_delay(line_topology, ["a", "b", "c"], payload_bytes=972)
        tx = 1000 * 8 / 100e6 + 1000 * 8 / 50e6
        assert d == pytest.approx(0.030 + tx)

    def test_rtt_symmetric(self, line_topology):
        assert path_rtt(line_topology, ["a", "b", "c"]) == pytest.approx(
            2 * path_one_way_delay(line_topology, ["a", "b", "c"])
        )

    def test_short_path_rejected(self, line_topology):
        with pytest.raises(ValueError):
            path_one_way_delay(line_topology, ["a"])


class TestPinger:
    def test_rtt_matches_analytic(self, line_topology):
        pinger = Pinger(line_topology.get("a"), "b")
        Pinger.install_responder(line_topology.get("b"))
        for i in range(3):
            line_topology.scheduler.schedule(i * 0.1, pinger.probe)
        line_topology.run()
        stats = pinger.stats_ms()
        assert stats["average"] == pytest.approx(path_rtt(line_topology, ["a", "b"]) * 1e3, rel=0.01)

    def test_no_samples_raises(self, line_topology):
        pinger = Pinger(line_topology.get("a"), "b")
        with pytest.raises(RuntimeError):
            pinger.stats_ms()


class TestBandwidthProbe:
    def test_measures_bottleneck(self, line_topology):
        probe = BandwidthProbe(line_topology.get("b"), line_topology.get("c"))
        probe.run(duration_s=1.0, offered_rate_bps=200e6)  # over-drive the 50 Mbps link
        line_topology.run()
        measured = probe.measured_bps()
        assert measured <= 50e6 * 1.02
        assert measured >= 20e6  # queue limits what gets through, but it's substantial

    def test_underdriven_measures_offered(self, line_topology):
        probe = BandwidthProbe(line_topology.get("a"), line_topology.get("b"), payload_bytes=972)
        probe.run(duration_s=1.0, offered_rate_bps=10e6)
        line_topology.run()
        assert probe.measured_bps() == pytest.approx(10e6, rel=0.05)

    def test_invalid_args(self, line_topology):
        probe = BandwidthProbe(line_topology.get("a"), line_topology.get("b"))
        with pytest.raises(ValueError):
            probe.run(0, 1e6)


class TestMeasurementService:
    def test_periodic_reports(self, line_topology):
        reports = []
        service = MeasurementService(
            line_topology,
            lambda now, key, bw, delay: reports.append((now, key, bw, delay)),
            interval_s=10.0,
        )
        service.start()
        line_topology.run(until=35.0)
        service.stop()
        # 3 ticks × 4 links.
        assert len(reports) == 12
        times = sorted({r[0] for r in reports})
        assert times == [10.0, 20.0, 30.0]

    def test_reports_live_values(self, line_topology):
        reports = {}
        service = MeasurementService(
            line_topology, lambda now, key, bw, delay: reports.__setitem__(key, (bw, delay)), interval_s=5.0
        )
        service.start()
        line_topology.run(until=6.0)
        service.stop()
        assert reports[("a", "b")] == (pytest.approx(100.0), pytest.approx(10.0))

    def test_stop(self, line_topology):
        count = []
        service = MeasurementService(line_topology, lambda *a: count.append(1), interval_s=5.0)
        service.start()
        line_topology.run(until=6.0)
        service.stop()
        line_topology.run(until=30.0)
        assert len(count) == 4  # one tick × 4 links only

    def test_noise(self, line_topology):
        values = []
        service = MeasurementService(
            line_topology,
            lambda now, key, bw, delay: values.append(bw),
            interval_s=1.0,
            noise_std=0.1,
            rng=np.random.default_rng(0),
        )
        service.start()
        line_topology.run(until=20.0)
        service.stop()
        assert len(set(values)) > 5  # noisy, not constant
