"""Dirty-wire impairment tests: corruption, duplication, blackhole, resets."""

import numpy as np
import pytest

from repro.net.impairments import (
    BitFlipCorruption,
    Blackhole,
    Duplication,
    corrupt_coded_packet,
)
from repro.net.link import Link
from repro.net.loss import BurstLoss
from repro.net.packet import Datagram
from repro.rlnc.header import NCHeader
from repro.rlnc.packet import CodedPacket


def make_link(scheduler, capacity_mbps=8.0, delay_ms=10.0, **kwargs):
    link = Link(
        scheduler,
        "a",
        "b",
        capacity_bps=capacity_mbps * 1e6,
        delay_s=delay_ms / 1e3,
        rng=np.random.default_rng(5),
        **kwargs,
    )
    delivered = []
    link.connect(delivered.append)
    return link, delivered


def coded_dgram(rng, generation_id=0):
    header = NCHeader(
        session_id=1,
        generation_id=generation_id,
        coefficients=rng.integers(0, 256, 4, dtype=np.uint8),
    )
    packet = CodedPacket(header=header, payload=rng.integers(0, 256, 64, dtype=np.uint8))
    return Datagram(src="a", dst="b", payload=packet, payload_bytes=packet.size_bytes)


class TestCorruptCodedPacket:
    def test_copy_differs_but_original_untouched(self, rng):
        original = coded_dgram(rng).payload
        before_coeffs = original.coefficients.copy()
        before_payload = original.payload.copy()
        damaged = corrupt_coded_packet(original, rng)
        assert damaged != original
        assert np.array_equal(original.coefficients, before_coeffs)
        assert np.array_equal(original.payload, before_payload)

    def test_carries_pristine_seal_so_verify_fails(self, rng):
        original = coded_dgram(rng).payload
        damaged = corrupt_coded_packet(original, rng)
        assert original.verify()  # unsealed original stays trusted
        assert damaged.checksum == original.content_checksum()
        assert not damaged.verify()

    def test_byte_rate_always_corrupts_selected_packet(self, rng):
        # Even a tiny byte rate must flip at least one byte.
        original = coded_dgram(rng).payload
        for _ in range(20):
            damaged = corrupt_coded_packet(original, rng, byte_rate=1e-9)
            assert not damaged.verify()

    def test_high_byte_rate_damages_many_bytes(self, rng):
        original = coded_dgram(rng).payload
        damaged = corrupt_coded_packet(original, rng, byte_rate=0.5)
        diff = np.count_nonzero(damaged.payload != original.payload) + np.count_nonzero(
            damaged.coefficients != original.coefficients
        )
        assert diff > 10

    def test_validation(self):
        with pytest.raises(ValueError):
            BitFlipCorruption(1.5)
        with pytest.raises(ValueError):
            BitFlipCorruption(0.5, byte_rate=0.0)
        with pytest.raises(ValueError):
            Duplication(-0.1)


class TestLinkCorruption:
    def test_all_packets_corrupted_at_rate_one(self, scheduler, rng):
        link, delivered = make_link(scheduler)
        link.add_impairment(BitFlipCorruption(1.0))
        sent = [coded_dgram(rng, generation_id=i) for i in range(8)]
        for d in sent:
            link.send(d)
        scheduler.run()
        assert len(delivered) == 8
        assert link.stats.corrupted_packets == 8
        for before, after in zip(sent, delivered):
            assert not after.payload.verify()
            assert after.payload is not before.payload  # damaged copies
            assert before.payload.verify()

    def test_non_coded_payload_is_dropped(self, scheduler):
        # A corrupted ACK/probe datagram fails the kernel UDP checksum.
        link, delivered = make_link(scheduler)
        link.add_impairment(BitFlipCorruption(1.0))
        link.send(Datagram(src="a", dst="b", payload=("cum_ack", 1, 5), payload_bytes=64))
        scheduler.run()
        assert delivered == []
        assert link.stats.dropped_corrupt == 1

    def test_zero_rate_is_transparent(self, scheduler, rng):
        link, delivered = make_link(scheduler)
        link.add_impairment(BitFlipCorruption(0.0))
        link.send(coded_dgram(rng))
        scheduler.run()
        assert len(delivered) == 1
        assert delivered[0].payload.verify()
        assert link.stats.corrupted_packets == 0


class TestDuplication:
    def test_duplicates_delivered_with_fresh_ids(self, scheduler, rng):
        link, delivered = make_link(scheduler)
        link.add_impairment(Duplication(1.0))
        d = coded_dgram(rng)
        link.send(d)
        scheduler.run()
        assert len(delivered) == 2
        assert delivered[0].payload is delivered[1].payload  # same coded packet
        assert delivered[0].dgram_id != delivered[1].dgram_id
        assert link.stats.duplicated_packets == 1
        assert link.stats.delivered_packets == 2

    def test_composes_with_corruption(self, scheduler, rng):
        # Attachment order: duplicate first, then corrupt each copy
        # independently — both copies arrive damaged.
        link, delivered = make_link(scheduler)
        link.add_impairment(Duplication(1.0))
        link.add_impairment(BitFlipCorruption(1.0))
        link.send(coded_dgram(rng))
        scheduler.run()
        assert len(delivered) == 2
        assert all(not d.payload.verify() for d in delivered)
        assert link.stats.corrupted_packets == 2


class TestBlackhole:
    def test_swallows_everything_silently(self, scheduler, rng):
        link, delivered = make_link(scheduler)
        link.add_impairment(Blackhole())
        for i in range(5):
            link.send(coded_dgram(rng, generation_id=i))
        scheduler.run()
        assert delivered == []
        assert link.stats.dropped_blackhole == 5
        assert link.stats.sent_packets == 5  # the sender saw nothing wrong

    def test_clear_impairments_restores_the_wire(self, scheduler, rng):
        link, delivered = make_link(scheduler)
        link.add_impairment(Blackhole())
        link.send(coded_dgram(rng))
        scheduler.run()  # the wire eats it in flight
        link.clear_impairments()
        link.send(coded_dgram(rng, generation_id=1))
        scheduler.run()
        assert len(delivered) == 1
        assert delivered[0].payload.generation_id == 1


class TestDeterminism:
    def test_cleared_impairments_restore_zero_draw_path(self, scheduler):
        # An empty impairments list consumes no extra RNG draws: a link
        # that had an impairment attached and cleared produces the exact
        # jittered arrival sequence of one that never had any — which is
        # what keeps committed chaos fingerprints replay-identical.
        from repro.net.events import EventScheduler

        def run(touch_impairments):
            sched = EventScheduler()
            link = Link(sched, "a", "b", 8e6, 0.01, rng=np.random.default_rng(7), jitter_s=0.002)
            if touch_impairments:
                link.add_impairment(Duplication(1.0))
                link.clear_impairments()
            arrivals = []
            link.connect(lambda d: arrivals.append((d.payload, sched.now)))
            for i in range(20):
                link.send(Datagram(src="a", dst="b", payload=i, payload_bytes=972))
            sched.run()
            return arrivals

        assert run(False) == run(True)


class TestLinkResetRegression:
    def test_burst_loss_state_resets_on_reconnect(self, scheduler):
        # Regression: up() never called loss.reset(), so BurstLoss's
        # previous-packet correlation memory leaked across a flap.
        loss = BurstLoss(p=0.5, correlation=0.9)
        link, _ = make_link(scheduler, loss=loss)
        loss._prev_dropped = True
        link.down()
        link.up()
        assert loss._prev_dropped is False

    def test_up_on_an_up_link_keeps_correlation_state(self, scheduler):
        loss = BurstLoss(p=0.5, correlation=0.9)
        link, _ = make_link(scheduler, loss=loss)
        loss._prev_dropped = True
        link.up()  # no flap happened: not a reconnect
        assert loss._prev_dropped is True

    def test_impairment_reset_called_on_reconnect(self, scheduler):
        class Recorder(Blackhole):
            resets = 0

            def reset(self):
                self.resets += 1

        recorder = Recorder()
        link, _ = make_link(scheduler)
        link.add_impairment(recorder)
        link.down()
        link.up()
        assert recorder.resets == 1
