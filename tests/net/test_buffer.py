"""FIFO generation buffer tests (paper Fig. 5 semantics)."""

import pytest

from repro.net.buffer import DEFAULT_BUFFER_GENERATIONS, GenerationBuffer


class TestBasics:
    def test_paper_default(self):
        assert DEFAULT_BUFFER_GENERATIONS == 1024
        assert GenerationBuffer().capacity_generations == 1024

    def test_add_and_query(self):
        buf = GenerationBuffer(4)
        buf.add(0, "p0")
        buf.add(0, "p1")
        assert len(buf) == 1
        assert buf.packets(0) == ["p0", "p1"]
        assert 0 in buf
        assert 1 not in buf

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            GenerationBuffer(0)


class TestFifoEviction:
    def test_oldest_generation_evicted(self):
        buf = GenerationBuffer(2)
        buf.add(0, "a")
        buf.add(1, "b")
        buf.add(2, "c")  # evicts generation 0
        assert 0 not in buf
        assert list(buf.generations()) == [1, 2]
        assert buf.evicted_generations == 1

    def test_existing_generation_never_evicts(self):
        buf = GenerationBuffer(2)
        buf.add(0, "a")
        buf.add(1, "b")
        for i in range(10):
            buf.add(1, f"x{i}")
        assert 0 in buf  # adding to gen 1 must not evict gen 0

    def test_eviction_order_is_insertion_order(self):
        buf = GenerationBuffer(3)
        for g in (5, 3, 9):  # insertion order, not numeric order
            buf.add(g, "p")
        buf.add(1, "p")
        assert 5 not in buf
        assert list(buf.generations()) == [3, 9, 1]

    def test_packet_count_tracks_eviction(self):
        buf = GenerationBuffer(1)
        buf.add(0, "a")
        buf.add(0, "b")
        assert buf.stored_packets == 2
        buf.add(1, "c")
        assert buf.stored_packets == 1


class TestRelease:
    def test_release_removes(self):
        buf = GenerationBuffer(4)
        buf.add(3, "x")
        assert buf.release(3) == ["x"]
        assert 3 not in buf
        assert buf.stored_packets == 0

    def test_release_missing_is_empty(self):
        assert GenerationBuffer(4).release(7) == []

    def test_clear(self):
        buf = GenerationBuffer(4)
        buf.add(0, "x")
        buf.clear()
        assert len(buf) == 0
        assert buf.stored_packets == 0
