"""FIFO generation buffer tests (paper Fig. 5 semantics)."""

import pytest

from repro.net.buffer import DEFAULT_BUFFER_GENERATIONS, GenerationBuffer


class TestBasics:
    def test_paper_default(self):
        assert DEFAULT_BUFFER_GENERATIONS == 1024
        assert GenerationBuffer().capacity_generations == 1024

    def test_add_and_query(self):
        buf = GenerationBuffer(4)
        buf.add(0, "p0")
        buf.add(0, "p1")
        assert len(buf) == 1
        assert buf.packets(0) == ["p0", "p1"]
        assert 0 in buf
        assert 1 not in buf

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            GenerationBuffer(0)


class TestFifoEviction:
    def test_oldest_generation_evicted(self):
        buf = GenerationBuffer(2)
        buf.add(0, "a")
        buf.add(1, "b")
        buf.add(2, "c")  # evicts generation 0
        assert 0 not in buf
        assert list(buf.generations()) == [1, 2]
        assert buf.evicted_generations == 1

    def test_existing_generation_never_evicts(self):
        buf = GenerationBuffer(2)
        buf.add(0, "a")
        buf.add(1, "b")
        for i in range(10):
            buf.add(1, f"x{i}")
        assert 0 in buf  # adding to gen 1 must not evict gen 0

    def test_eviction_order_is_insertion_order(self):
        buf = GenerationBuffer(3)
        for g in (5, 3, 9):  # insertion order, not numeric order
            buf.add(g, "p")
        buf.add(1, "p")
        assert 5 not in buf
        assert list(buf.generations()) == [3, 9, 1]

    def test_packet_count_tracks_eviction(self):
        buf = GenerationBuffer(1)
        buf.add(0, "a")
        buf.add(0, "b")
        assert buf.stored_packets == 2
        buf.add(1, "c")
        assert buf.stored_packets == 1


class TestDirtyWireHardening:
    """Duplication + severe reordering must not distort accounting."""

    def test_duplicate_does_not_inflate_stored_packets(self):
        buf = GenerationBuffer(4)
        assert buf.add(0, "a") is True
        assert buf.add(0, "a") is False  # wire-duplicated copy
        assert buf.stored_packets == 1
        assert buf.packets(0) == ["a"]
        assert buf.duplicate_packets == 1

    def test_distinct_packets_of_a_generation_still_fit(self):
        buf = GenerationBuffer(4)
        assert buf.add(0, "a")
        assert buf.add(0, "b")
        assert buf.stored_packets == 2

    def test_same_payload_in_different_generations_is_not_a_duplicate(self):
        buf = GenerationBuffer(4)
        assert buf.add(0, "p")
        assert buf.add(1, "p")
        assert buf.duplicate_packets == 0

    def test_stale_straggler_cannot_evict_live_generations(self):
        buf = GenerationBuffer(2)
        buf.add(0, "a")
        buf.add(1, "b")
        buf.add(2, "c")  # evicts generation 0
        assert buf.add(0, "late") is False  # straggler for a dead generation
        assert buf.rejected_stale == 1
        assert list(buf.generations()) == [1, 2]  # live generations intact
        assert buf.evicted_generations == 1

    def test_duplicate_of_evicted_generation_is_stale_not_duplicate(self):
        buf = GenerationBuffer(1)
        buf.add(0, "a")
        buf.add(1, "b")  # evicts generation 0
        assert buf.add(0, "a") is False
        assert buf.rejected_stale == 1
        assert buf.duplicate_packets == 0

    def test_severe_reordering_with_duplication(self):
        # Arrival order scrambled and every packet delivered twice: the
        # buffer must hold exactly one copy of each and never evict a
        # live generation to store a straggler.
        buf = GenerationBuffer(4)
        arrivals = [3, 0, 2, 1, 0, 3, 2, 1]  # each generation twice
        for gen in arrivals:
            buf.add(gen, f"pkt-{gen}")
        assert buf.stored_packets == 4
        assert buf.duplicate_packets == 4
        assert buf.evicted_generations == 0
        assert sorted(buf.generations()) == [0, 1, 2, 3]

    def test_accounting_survives_eviction_with_duplicates(self):
        buf = GenerationBuffer(2)
        for gen in (0, 0, 1, 1, 2, 2, 3, 3):  # duplicates throughout
            buf.add(gen, f"pkt-{gen}")
        assert len(buf) == 2
        assert buf.stored_packets == 2  # one live copy per buffered generation
        assert buf.evicted_generations == 2


class TestRelease:
    def test_release_removes(self):
        buf = GenerationBuffer(4)
        buf.add(3, "x")
        assert buf.release(3) == ["x"]
        assert 3 not in buf
        assert buf.stored_packets == 0

    def test_release_missing_is_empty(self):
        assert GenerationBuffer(4).release(7) == []

    def test_clear(self):
        buf = GenerationBuffer(4)
        buf.add(0, "x")
        buf.clear()
        assert len(buf) == 0
        assert buf.stored_packets == 0
