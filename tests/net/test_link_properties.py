"""Hypothesis property tests for the link model."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.events import EventScheduler
from repro.net.link import Link
from repro.net.loss import UniformLoss
from repro.net.packet import Datagram


@given(
    n_packets=st.integers(min_value=1, max_value=60),
    capacity_mbps=st.floats(min_value=0.5, max_value=100.0),
    loss=st.floats(min_value=0.0, max_value=1.0),
    queue_kb=st.integers(min_value=2, max_value=64),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=60, deadline=None)
def test_packet_conservation(n_packets, capacity_mbps, loss, queue_kb, seed):
    """Every sent packet is delivered, loss-dropped, or queue-dropped."""
    scheduler = EventScheduler()
    link = Link(
        scheduler,
        "a",
        "b",
        capacity_bps=capacity_mbps * 1e6,
        delay_s=0.01,
        loss=UniformLoss(loss),
        queue_bytes=queue_kb * 1024,
        rng=np.random.default_rng(seed),
    )
    delivered = []
    link.connect(delivered.append)
    for _ in range(n_packets):
        link.send(Datagram(src="a", dst="b", payload=None, payload_bytes=972))
    scheduler.run()
    stats = link.stats
    assert stats.sent_packets == n_packets
    assert stats.delivered_packets + stats.dropped_loss + stats.dropped_queue == n_packets
    assert len(delivered) == stats.delivered_packets
    assert link.backlog_bytes == 0


@given(
    n_packets=st.integers(min_value=2, max_value=40),
    capacity_mbps=st.floats(min_value=1.0, max_value=50.0),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_throughput_never_exceeds_capacity(n_packets, capacity_mbps, seed):
    """Delivered rate over the busy period is bounded by link capacity."""
    scheduler = EventScheduler()
    link = Link(scheduler, "a", "b", capacity_bps=capacity_mbps * 1e6, delay_s=0.0, queue_bytes=10**9)
    times = []
    link.connect(lambda d: times.append(scheduler.now))
    for _ in range(n_packets):
        link.send(Datagram(src="a", dst="b", payload=None, payload_bytes=972))
    scheduler.run()
    assert len(times) == n_packets
    duration = times[-1]
    assert duration > 0
    bits = n_packets * 1000 * 8
    assert bits / duration <= capacity_mbps * 1e6 * 1.001


@given(
    delays=st.lists(st.floats(min_value=0.0, max_value=0.05), min_size=1, max_size=30),
)
@settings(max_examples=40, deadline=None)
def test_fifo_without_jitter(delays):
    """Without jitter, delivery preserves send order regardless of spacing."""
    scheduler = EventScheduler()
    link = Link(scheduler, "a", "b", capacity_bps=1e7, delay_s=0.005, queue_bytes=10**9)
    order = []
    link.connect(lambda d: order.append(d.payload))
    for i, delay in enumerate(delays):
        scheduler.schedule(delay, link.send, Datagram(src="a", dst="b", payload=i, payload_bytes=100))
    scheduler.run()
    # Sent order is by scheduled time (stable for ties); delivery must match.
    expected = [i for _, i in sorted(zip(delays, range(len(delays))), key=lambda t: (t[0], t[1]))]
    assert order == expected
