"""Link model tests: serialization, queueing, loss, dynamics."""

import numpy as np
import pytest

from repro.net.events import EventScheduler
from repro.net.link import Link
from repro.net.loss import UniformLoss
from repro.net.packet import Datagram


def make_link(scheduler, capacity_mbps=8.0, delay_ms=10.0, **kwargs):
    link = Link(
        scheduler,
        "a",
        "b",
        capacity_bps=capacity_mbps * 1e6,
        delay_s=delay_ms / 1e3,
        rng=np.random.default_rng(5),
        **kwargs,
    )
    delivered = []
    link.connect(delivered.append)
    return link, delivered


def dgram(payload_bytes=972):
    # 972 + 28 headers = 1000 wire bytes = 8000 bits: neat numbers.
    return Datagram(src="a", dst="b", payload="x", payload_bytes=payload_bytes)


class TestDelivery:
    def test_arrival_time(self, scheduler):
        link, delivered = make_link(scheduler)  # 8 Mbps, 10 ms
        link.send(dgram())  # 8000 bits / 8 Mbps = 1 ms tx
        scheduler.run()
        assert delivered
        assert scheduler.now == pytest.approx(0.001 + 0.010)

    def test_back_to_back_serialization(self, scheduler):
        link, delivered = make_link(scheduler)
        link.send(dgram())
        link.send(dgram())
        scheduler.run()
        # Second packet starts transmitting after the first: 2 ms + 10 ms.
        assert scheduler.now == pytest.approx(0.012)
        assert len(delivered) == 2

    def test_fifo_order(self, scheduler):
        link, delivered = make_link(scheduler)
        for i in range(5):
            d = dgram()
            d.payload = i
            link.send(d)
        scheduler.run()
        assert [d.payload for d in delivered] == list(range(5))

    def test_unconnected_link_raises(self, scheduler):
        link = Link(scheduler, "a", "b", 1e6, 0.01)
        with pytest.raises(RuntimeError):
            link.send(dgram())


class TestQueueing:
    def test_drop_tail(self, scheduler):
        link, delivered = make_link(scheduler, queue_bytes=2500)
        results = [link.send(dgram()) for _ in range(5)]  # 1000 B wire each
        assert results == [True, True, False, False, False]
        scheduler.run()
        assert len(delivered) == 2
        assert link.stats.dropped_queue == 3

    def test_backlog_drains(self, scheduler):
        link, _ = make_link(scheduler, queue_bytes=10_000)
        for _ in range(3):
            link.send(dgram())
        assert link.backlog_bytes == 3000
        scheduler.run()
        assert link.backlog_bytes == 0


class TestLoss:
    def test_lossy_link_drops_fraction(self, scheduler):
        link, delivered = make_link(scheduler, loss=UniformLoss(0.5), queue_bytes=10**9)
        for _ in range(2000):
            link.send(dgram())
        scheduler.run()
        assert 800 < len(delivered) < 1200
        assert link.stats.dropped_loss == 2000 - len(delivered)

    def test_stats_accounting(self, scheduler):
        link, delivered = make_link(scheduler)
        link.send(dgram())
        scheduler.run()
        assert link.stats.sent_packets == 1
        assert link.stats.delivered_packets == 1
        assert link.stats.sent_bytes == 1000


class TestDynamics:
    def test_capacity_change_applies_to_new_packets(self, scheduler):
        link, _ = make_link(scheduler)
        link.send(dgram())
        scheduler.run()
        t1 = scheduler.now
        link.set_capacity(4e6)  # half speed
        link.send(dgram())
        scheduler.run()
        assert scheduler.now - t1 == pytest.approx(0.002 + 0.010)

    def test_invalid_updates_rejected(self, scheduler):
        link, _ = make_link(scheduler)
        with pytest.raises(ValueError):
            link.set_capacity(0)
        with pytest.raises(ValueError):
            link.set_delay(-1)

    def test_jitter_bounds_delay(self, scheduler):
        link, delivered = make_link(scheduler, jitter_s=0.005, queue_bytes=10**9)
        times = []
        link.connect(lambda d: times.append(scheduler.now))
        sent_at = []
        for i in range(200):
            scheduler.schedule(i * 0.01, link.send, dgram())
            sent_at.append(i * 0.01)
        scheduler.run()
        lags = [t - s for t, s in zip(times, sent_at)]
        assert all(0.011 - 1e-9 <= lag <= 0.016 + 1e-9 for lag in lags)
        assert max(lags) - min(lags) > 0.002  # jitter actually varies

    def test_jitter_can_reorder(self):
        scheduler = EventScheduler()
        link = Link(scheduler, "a", "b", 1e9, 0.01, jitter_s=0.02, rng=np.random.default_rng(3))
        order = []
        link.connect(lambda d: order.append(d.payload))
        for i in range(50):
            d = dgram()
            d.payload = i
            link.send(d)
        scheduler.run()
        assert order != sorted(order)
