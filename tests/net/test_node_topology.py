"""Node, Host and Topology wiring tests."""

import pytest

from repro.net import Host, LinkSpec, Topology
from repro.net.packet import Datagram


@pytest.fixture
def duplex_topology():
    topo = Topology()
    topo.add_node("a")
    topo.add_node("b")
    topo.add_duplex("a", "b", capacity_mbps=10.0, delay_ms=5.0)
    return topo


class TestNode:
    def test_port_demultiplexing(self, duplex_topology):
        topo = duplex_topology
        got = {"p1": [], "p2": []}
        topo.get("b").listen(1, lambda d: got["p1"].append(d))
        topo.get("b").listen(2, lambda d: got["p2"].append(d))
        topo.get("a").send("b", "one", 100, dst_port=1)
        topo.get("a").send("b", "two", 100, dst_port=2)
        topo.run()
        assert len(got["p1"]) == 1 and got["p1"][0].payload == "one"
        assert len(got["p2"]) == 1 and got["p2"][0].payload == "two"

    def test_default_handler_catches_unbound_ports(self, duplex_topology):
        topo = duplex_topology
        fallback = []
        topo.get("b").listen_default(fallback.append)
        topo.get("a").send("b", "x", 10, dst_port=99)
        topo.run()
        assert len(fallback) == 1

    def test_unknown_destination_raises(self, duplex_topology):
        with pytest.raises(KeyError):
            duplex_topology.get("a").send("zz", "x", 10)

    def test_duplicate_port_binding_rejected(self, duplex_topology):
        node = duplex_topology.get("a")
        node.listen(5, lambda d: None)
        with pytest.raises(ValueError):
            node.listen(5, lambda d: None)

    def test_unlisten(self, duplex_topology):
        topo = duplex_topology
        got = []
        topo.get("b").listen(1, got.append)
        topo.get("b").unlisten(1)
        topo.get("a").send("b", "x", 10, dst_port=1)
        topo.run()
        assert got == []
        assert topo.get("b").received_packets == 1  # counted, not handled

    def test_neighbors(self, duplex_topology):
        assert duplex_topology.get("a").neighbors() == ["b"]


class TestTopology:
    def test_duplicate_node_rejected(self):
        topo = Topology()
        topo.add_node("a")
        with pytest.raises(ValueError):
            topo.add_node("a")

    def test_duplicate_link_rejected(self):
        topo = Topology()
        topo.add_node("a")
        topo.add_node("b")
        topo.add_link(LinkSpec("a", "b", 1.0, 1.0))
        with pytest.raises(ValueError):
            topo.add_link(LinkSpec("a", "b", 1.0, 1.0))

    def test_custom_node_instances(self, scheduler):
        topo = Topology()
        host = Host("h", topo.scheduler)
        assert topo.add_node(host) is host
        assert topo.get("h") is host

    def test_graph_export(self, duplex_topology):
        g = duplex_topology.graph()
        assert g.number_of_nodes() == 2
        assert g.number_of_edges() == 2
        assert g.edges["a", "b"]["capacity_mbps"] == pytest.approx(10.0)
        assert g.edges["a", "b"]["delay_ms"] == pytest.approx(5.0)

    def test_unknown_link_raises(self, duplex_topology):
        with pytest.raises(KeyError):
            duplex_topology.link("b", "zz")

    def test_wire_size_accounting(self):
        d = Datagram(src="a", dst="b", payload=None, payload_bytes=1472)
        assert d.wire_bytes == 1500  # exactly one MTU
        assert d.wire_bits == 12000

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            Datagram(src="a", dst="b", payload=None, payload_bytes=-1)
