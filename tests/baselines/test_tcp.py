"""Direct-TCP baseline model tests."""

import numpy as np
import pytest

from repro.baselines import MathisModel, TcpAimdSimulator, direct_tcp_throughput_mbps


class TestMathis:
    def test_lossless_is_capacity_limited(self):
        assert MathisModel().throughput_mbps(0.1, 0.0, capacity_mbps=50.0) == 50.0

    def test_formula_value(self):
        # MSS 1460 B, RTT 100 ms, p = 1%: 1460*8/(0.1*sqrt(2*.01/3)) bps.
        expected = 1460 * 8 / (0.1 * (2 * 0.01 / 3) ** 0.5) / 1e6
        assert MathisModel().throughput_mbps(0.1, 0.01) == pytest.approx(expected)

    def test_rate_decreases_with_loss(self):
        model = MathisModel()
        rates = [model.throughput_mbps(0.1, p) for p in (0.001, 0.01, 0.05)]
        assert rates == sorted(rates, reverse=True)

    def test_rate_decreases_with_rtt(self):
        model = MathisModel()
        assert model.throughput_mbps(0.2, 0.01) < model.throughput_mbps(0.05, 0.01)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            MathisModel().throughput_mbps(0.0, 0.01)
        with pytest.raises(ValueError):
            MathisModel().throughput_mbps(0.1, 1.5)


class TestAimd:
    def test_lossless_fills_pipe(self, rng):
        sim = TcpAimdSimulator(capacity_mbps=20.0, rtt_s=0.05, loss_rate=0.0)
        result = sim.run(30.0, rng)
        assert result["mean_mbps"] == pytest.approx(20.0, rel=0.15)

    def test_sawtooth_under_loss(self, rng):
        sim = TcpAimdSimulator(capacity_mbps=50.0, rtt_s=0.08, loss_rate=0.01)
        result = sim.run(60.0, rng)
        rates = result["throughput_mbps"]
        assert rates.max() > rates.min()  # visible sawtooth
        assert result["mean_mbps"] < 50.0

    def test_loss_hurts(self, rng):
        clean = TcpAimdSimulator(capacity_mbps=50.0, rtt_s=0.08, loss_rate=0.0).run(60.0, rng)
        lossy = TcpAimdSimulator(capacity_mbps=50.0, rtt_s=0.08, loss_rate=0.02).run(
            60.0, np.random.default_rng(1)
        )
        assert lossy["mean_mbps"] < clean["mean_mbps"]

    def test_long_rtt_hurts(self):
        fast = TcpAimdSimulator(capacity_mbps=50.0, rtt_s=0.02, loss_rate=0.01).run(60.0, np.random.default_rng(2))
        slow = TcpAimdSimulator(capacity_mbps=50.0, rtt_s=0.2, loss_rate=0.01).run(60.0, np.random.default_rng(2))
        assert slow["mean_mbps"] < fast["mean_mbps"]

    def test_validation(self):
        with pytest.raises(ValueError):
            TcpAimdSimulator(capacity_mbps=0, rtt_s=0.1)
        sim = TcpAimdSimulator(capacity_mbps=10, rtt_s=0.1)
        with pytest.raises(ValueError):
            sim.run(0.0, np.random.default_rng(0))


class TestHelper:
    def test_clamped_by_mathis(self, rng):
        rate = direct_tcp_throughput_mbps(100.0, rtt_s=0.15, loss_rate=0.05, rng=rng)
        assert rate <= MathisModel().throughput_mbps(0.15, 0.05, 100.0) + 1e-9


class TestRelayBaseline:
    def test_non_nc_rate_on_butterfly(self, butterfly_graph):
        from repro.baselines import non_nc_multicast_rate

        relays = {"O1", "C1", "T", "V2"}
        multi = non_nc_multicast_rate(butterfly_graph, "V1", ["O2", "C2"], relay_nodes=relays)
        single = non_nc_multicast_rate(butterfly_graph, "V1", ["O2", "C2"], relay_nodes=relays, multipath=False)
        assert multi == pytest.approx(52.5, rel=1e-6)
        assert single == pytest.approx(35.0)
        assert single <= multi
