"""Failure matrix × fleet churn: session joins/leaves during faults.

New cells for the matrix: controller-visible session churn (a
:class:`~repro.fleet.manager.FleetManager` admitting and departing
sessions, pushing NC_SETTINGS / NC_FORWARD_TAB / NC_VNF_* over the
*same* signal bus) runs concurrently with {vm-crash, link-flap} faults
injected into the packet-level butterfly.  The contracts:

- the surviving data-plane session keeps decoding at full rank;
- vm-crash MTTR stays inside the PR 3 envelope (< 1 s to first
  post-crash decode at every receiver);
- every churn join still ends in a typed verdict — faults on the data
  plane never leak untyped outcomes into the admission path;
- no control signal becomes undeliverable: churn traffic and recovery
  pushes coexist on one bus without eating each other.
"""

from __future__ import annotations

import pytest

from repro.experiments.failures import run_butterfly_failover
from repro.faults import FaultEvent, FaultKind, FaultPlan
from repro.faults.injector import link_key
from repro.fleet import AdmissionStatus, FleetManager, SessionSpec, fleet_of

CHURN_DC_CITIES = ("Seattle", "Denver", "Chicago", "Houston", "New York")

#: (time_s, "join"/"leave", session id) — interleaved around the t=1.0 s
#: fault window so admissions land before, during, and after recovery.
CHURN_SCRIPT = (
    (0.2, "join", 1),
    (0.6, "join", 2),
    (1.2, "join", 3),
    (1.7, "leave", 1),
    (2.0, "leave", 2),
)

CHURN_SPECS = {
    1: SessionSpec(session_id=1, source_city="Portland", receiver_cities=("Boston",), rate_mbps=10.0),
    # Tight delay bound leaves exactly one candidate path (via the
    # Houston DC, which no other session touches): session 2 cannot
    # detour through VNFs others already launched, so its departure
    # drains Houston and the crash cell gets to observe an NC_VNF_END
    # retirement mid-faults.
    2: SessionSpec(
        session_id=2,
        source_city="El Paso",
        receiver_cities=("Baton Rouge",),
        rate_mbps=20.0,
        max_delay_ms=18.0,
    ),
    3: SessionSpec(session_id=3, source_city="Sunnyvale", receiver_cities=("Miami", "Boston"), rate_mbps=5.0),
}


class ChurnDriver:
    """Builds the churn hook and keeps the manager for assertions."""

    def __init__(self):
        self.manager: FleetManager | None = None
        self.verdicts = []
        self.departed = []

    def hook(self, scheduler, bus) -> None:
        # Sink endpoints for the fleet's config pushes: every DC and
        # every source host must be addressable or the bus records the
        # sends as undeliverable (which the cells assert against).
        for city in CHURN_DC_CITIES:
            bus.register(city, lambda signal: None)
        for spec in CHURN_SPECS.values():
            bus.register(spec.source_host(), lambda signal: None)
        self.manager = FleetManager(
            fleet_of(CHURN_DC_CITIES, inbound_mbps=400.0, outbound_mbps=400.0, coding_mbps=360.0),
            bus=bus,
        )
        for at, kind, sid in CHURN_SCRIPT:
            if kind == "join":
                scheduler.schedule_at(at, lambda s=sid: self.verdicts.append(self.manager.admit(CHURN_SPECS[s])))
            else:
                scheduler.schedule_at(at, lambda s=sid: self.departed.append((s, self.manager.depart(s))))


def assert_churn_completed_typed(driver: ChurnDriver) -> None:
    assert len(driver.verdicts) == 3
    assert all(v.status is AdmissionStatus.ADMITTED for v in driver.verdicts)
    assert all(released is not None for _, released in driver.departed)
    epochs = [v.epoch for v in driver.verdicts]
    assert epochs == sorted(epochs) and len(set(epochs)) == len(epochs)
    # Only session 3 remains; the index agrees with its plans alone.
    assert driver.manager.active_sessions == 1


class TestVmCrashUnderChurn:
    def test_crash_cell_keeps_full_rank_and_mttr_envelope(self):
        driver = ChurnDriver()
        r = run_butterfly_failover(duration_s=2.5, churn_hook=driver.hook)
        # The data-plane contract is unchanged by concurrent churn:
        # detect, replan, keep decoding at full rank on both receivers.
        assert r.recovered
        assert r.detection_latency_s == pytest.approx(0.4, abs=1e-9)
        assert r.recovery_latency_s is not None and r.recovery_latency_s < 1.0
        for name in r.receivers:
            assert r.decoded_before[name] > 0
            assert r.decoded_after[name] > 0
        assert_churn_completed_typed(driver)
        assert r.undeliverable_signals == 0

    def test_crash_cell_is_deterministic_with_churn(self):
        def run_once():
            driver = ChurnDriver()
            r = run_butterfly_failover(duration_s=2.5, churn_hook=driver.hook)
            return (
                r.recovery_latency_s,
                tuple(v.canonical() for v in driver.verdicts),
                driver.manager.index.canonical(),
            )

        assert run_once() == run_once()

    def test_churn_rides_the_same_bus_as_recovery(self):
        driver = ChurnDriver()
        r = run_butterfly_failover(duration_s=2.5, churn_hook=driver.hook)
        kinds = {record.signal.kind for record in r.bus.log}
        # Fleet config pushes and the healing layer's table pushes are
        # interleaved on one bus — the cell exercises real contention.
        assert {"NcSettings", "NcForwardTab", "NcStart", "NcVnfStart", "NcVnfEnd"} <= kinds


class TestLinkFlapUnderChurn:
    def test_flap_cell_absorbs_and_admissions_stay_typed(self):
        plan = FaultPlan(
            [
                FaultEvent(0.4, FaultKind.LINK_DOWN, link_key("V1", "C1")),
                FaultEvent(0.8, FaultKind.LINK_UP, link_key("V1", "C1")),
            ]
        )
        driver = ChurnDriver()
        r = run_butterfly_failover(
            duration_s=2.5, fail_at_s=0.4, plan=plan, churn_hook=driver.hook
        )
        # No node died, so no death verdict — the flap is absorbed by
        # the ARQ layer and decoding continues on both receivers.
        assert r.dead_nodes == []
        for name in r.receivers:
            assert r.decoded_after[name] > 0
            assert r.decode_stall_s[name] < 1.0
        assert_churn_completed_typed(driver)
        assert r.undeliverable_signals == 0

    def test_churn_without_faults_is_the_control_cell(self):
        driver = ChurnDriver()
        r = run_butterfly_failover(duration_s=2.5, plan=FaultPlan([]), churn_hook=driver.hook)
        assert r.dead_nodes == []
        for name in r.receivers:
            assert r.decoded_after[name] > 0
        assert_churn_completed_typed(driver)
        assert r.undeliverable_signals == 0
