"""Property-based fault testing: random seeded plans never wedge the sim.

Two contracts, checked over randomly drawn fault schedules:

1. **Liveness** — whatever a survivable plan breaks (links flap,
   daemons die and restart, heartbeats vanish), the event scheduler
   always drains to the horizon and every control signal reaches a
   terminal recorded status.
2. **Determinism** — the whole run, faults and recovery included, is a
   pure function of the seed: replaying the same plan gives bit-equal
   decode counts, fault application times and detection times.  This
   extends the seed contract of ``tests/integration/test_determinism``
   to the failure path.
"""

from hypothesis import given, settings, strategies as st

from repro.experiments.butterfly import RECEIVERS, RELAYS
from repro.experiments.failures import run_butterfly_failover
from repro.faults import FaultKind, FaultPlan

#: The nine data links of the Fig. 6 butterfly.
DATA_LINKS = (
    "V1->O1", "V1->C1",
    "O1->O2", "O1->T",
    "C1->C2", "C1->T",
    "T->V2", "V2->O2", "V2->C2",
)

PLAN_POOLS = dict(
    duration_s=1.5,
    links=DATA_LINKS,
    daemons=RELAYS,
    signal_kinds=("NcHeartbeat",),
    max_outage_s=0.4,
)


class TestPlanProperties:
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_random_plans_are_deterministic_and_survivable(self, seed):
        plan = FaultPlan.random(seed, **PLAN_POOLS)
        again = FaultPlan.random(seed, **PLAN_POOLS)
        assert plan.events == again.events
        # Time-sorted total order.
        times = [e.time_s for e in plan]
        assert times == sorted(times)
        assert all(e.time_s >= 0 for e in plan)
        # Survivable by construction: every outage has a recovery
        # scheduled after it, on the same target.
        for down in plan.of_kind(FaultKind.LINK_DOWN):
            assert any(up.target == down.target and up.time_s > down.time_s
                       for up in plan.of_kind(FaultKind.LINK_UP))
        for kill in plan.of_kind(FaultKind.DAEMON_KILL):
            assert any(r.target == kill.target and r.time_s > kill.time_s
                       for r in plan.of_kind(FaultKind.DAEMON_RESTART))

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_plan_draw_never_exceeds_fault_budget(self, seed):
        plan = FaultPlan.random(seed, max_faults=3, **PLAN_POOLS)
        primaries = [e for e in plan
                     if e.kind not in (FaultKind.LINK_UP, FaultKind.DAEMON_RESTART)]
        assert 1 <= len(primaries) <= 3


def _run(seed: int):
    plan = FaultPlan.random(seed, **PLAN_POOLS)
    result = run_butterfly_failover(plan=plan, duration_s=2.0, seed=seed)
    return plan, result


class TestButterflyUnderRandomPlans:
    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=4, deadline=None, derandomize=True)
    def test_scheduler_always_drains_and_run_is_bit_deterministic(self, seed):
        plan, first = _run(seed)
        _, second = _run(seed)

        # Liveness: the run reached the horizon and applied every fault
        # it was asked to (same count both times).
        assert first.topology.scheduler.now == 2.0
        assert len(first.applied_faults) == len(plan)
        # Signals sent with time to spare are all terminal — nothing
        # hangs in "pending" forever, nothing is silently lost.
        assert all(r.status in ("delivered", "dropped", "undeliverable")
                   for r in first.bus.log if r.sent_at < 1.0)
        # The transfer made progress despite the faults.
        for name in RECEIVERS:
            assert first.decoded_before[name] + first.decoded_after[name] > 0

        # Determinism: the failure path is a pure function of the seed.
        assert first.decoded_before == second.decoded_before
        assert first.decoded_after == second.decoded_after
        assert first.detected_at == second.detected_at
        assert first.recovery_latency_s == second.recovery_latency_s
        assert [(t, e) for t, e in first.applied_faults] == \
               [(t, e) for t, e in second.applied_faults]
        assert first.heartbeats_sent == second.heartbeats_sent

    def test_headline_recovery_metrics_are_bit_identical_across_replays(self):
        first = run_butterfly_failover(duration_s=2.5)
        second = run_butterfly_failover(duration_s=2.5)
        assert first.recovery_latency_s == second.recovery_latency_s
        assert first.detected_at == second.detected_at
        assert first.decoded_after == second.decoded_after
        assert first.decode_stall_s == second.decode_stall_s
