"""Fault-injection suite: plans, the injector, and the failure matrix."""
