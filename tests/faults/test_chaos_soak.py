"""Chaos soak: ≥50 seeded random fault plans × live transfers.

The acceptance contract for the self-healing layer: every soaked
session completes at full rank or ends typed, never hangs, and replays
bit-identically per seed.  The sweep runs with replay verification on,
so a single nondeterministic observable anywhere in the
detect→replan→repair pipeline fails this file.
"""

import pytest

from repro.experiments.chaos import (
    DATA_LINKS,
    run_chaos_session,
    run_chaos_soak,
    soak_summary,
)
from repro.faults import FaultEvent, FaultKind, FaultPlan
from repro.faults.injector import link_key

SOAK_SEEDS = range(50)


@pytest.fixture(scope="module")
def soak_outcomes():
    # replay=True runs every seed twice and asserts fingerprint equality
    # inside the harness — determinism is checked for all 50 seeds, not
    # a sample.
    return run_chaos_soak(SOAK_SEEDS, replay=True)


class TestSoakContract:
    def test_fifty_seeds_complete_or_fail_typed(self, soak_outcomes):
        assert len(soak_outcomes) == 50
        for outcome in soak_outcomes:
            assert outcome.outcome in ("completed", "degraded-typed"), (
                f"seed {outcome.seed}: incomplete with no typed evidence"
            )

    def test_completions_land_inside_the_deadline(self, soak_outcomes):
        for outcome in soak_outcomes:
            if outcome.completed:
                assert outcome.finished_at is not None
                assert outcome.finished_at <= outcome.deadline_s

    def test_sweep_actually_exercises_faults(self, soak_outcomes):
        # A soak that never injects anything proves nothing.
        summary = soak_summary(soak_outcomes)
        assert summary["total_faults_applied"] > 50
        assert summary["total_dead_nodes"] > 0  # some daemon outages blow the deadline
        assert not summary["violations"]

    def test_full_rank_means_every_generation(self, soak_outcomes):
        for outcome in soak_outcomes:
            if outcome.completed:
                assert all(
                    count == outcome.total_generations for count in outcome.decoded.values()
                )


class TestSoakDeterminism:
    def test_fingerprint_is_stable_across_reruns(self):
        first = run_chaos_session(11)
        second = run_chaos_session(11)
        assert first.fingerprint == second.fingerprint
        assert first.decoded == second.decoded

    def test_fingerprint_distinguishes_seeds(self):
        assert run_chaos_session(3).fingerprint != run_chaos_session(4).fingerprint


class TestDirtySoak:
    """Dirty-wire soak: the corruption/duplication/blackhole menu on.

    The CI ``--impairments`` batch runs a wider sweep; this is the
    in-tree slice that keeps the dirty menu honest — same contracts as
    the clean soak (terminate typed, replay bit-identically), plus the
    guarantee that corruption never pollutes a completed decode (a
    polluted generation would decode to wrong bytes at full rank, which
    the transfer-level checks downstream would flag as completed-but-
    wrong; here the typed-outcome contract is the gate).
    """

    def test_dirty_seeds_complete_or_fail_typed_and_replay(self):
        outcomes = run_chaos_soak(range(8), replay=True, impairments=True)
        for outcome in outcomes:
            assert outcome.outcome in ("completed", "degraded-typed"), (
                f"dirty seed {outcome.seed}: incomplete with no typed evidence"
            )

    def test_dirty_menu_is_actually_drawn(self):
        dirty_kinds = {FaultKind.LINK_CORRUPT, FaultKind.LINK_DUPLICATE,
                       FaultKind.LINK_BLACKHOLE}
        seen = set()
        for seed in range(12):
            plan = FaultPlan.random(seed, duration_s=2.0, links=DATA_LINKS,
                                    daemons=("T",), max_faults=4, impairments=True)
            seen |= {e.kind for e in plan}
        assert seen & dirty_kinds

    def test_impairments_default_off_leaves_fingerprints_alone(self):
        # run_chaos_session with the flag off must be byte-for-byte the
        # run it was before impairments existed.
        assert run_chaos_session(11).fingerprint == \
            run_chaos_session(11, impairments=False).fingerprint


class TestAdversarialPlans:
    def test_forward_tab_drop_during_recovery_still_terminates(self):
        # Kill T's daemon long enough for a death verdict, and eat the
        # next forwarding-table push: recovery is applied with stale
        # routes and the ARQ layer has to carry the session.
        plan = FaultPlan(
            [
                FaultEvent(0.5, FaultKind.DAEMON_KILL, "T"),
                FaultEvent(0.9, FaultKind.SIGNAL_DROP, "NcForwardTab"),
                FaultEvent(1.2, FaultKind.DAEMON_RESTART, "T"),
            ]
        )
        outcome = run_chaos_session(21, plan=plan)
        assert outcome.outcome in ("completed", "degraded-typed")
        assert outcome.dead_nodes == ["T"]

    def test_reverse_path_flap_is_absorbed(self):
        # Flap the C1->V1 data link; its reverse control link stays up,
        # so ACKs keep flowing and the transfer completes.
        plan = FaultPlan(
            [
                FaultEvent(0.4, FaultKind.LINK_DOWN, link_key("V1", "C1")),
                FaultEvent(0.8, FaultKind.LINK_UP, link_key("V1", "C1")),
            ]
        )
        outcome = run_chaos_session(22, plan=plan)
        assert outcome.completed

    def test_pools_cover_the_whole_butterfly(self):
        assert len(DATA_LINKS) == 9
