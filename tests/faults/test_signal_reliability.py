"""Signals to dead daemons and the heartbeat failure detector.

Regression surface for the old silent-loss bug: a control signal
addressed to a node with no registered daemon used to vanish without a
trace.  Now it retries (the daemon may be mid-restart) and, failing
that, lands on ``SignalBus.undeliverable`` with a typed status.
"""

import numpy as np
import pytest

from repro.core.controller import HeartbeatMonitor
from repro.core.daemon import VnfDaemon
from repro.core.signals import NcForwardTab, NcHeartbeat, SignalBus
from repro.core.vnf import CodingVnf


def _daemon(scheduler, bus, name="relay", heartbeat_interval_s=None):
    vnf = CodingVnf(name, scheduler, rng=np.random.default_rng(0))
    return VnfDaemon(vnf, bus, heartbeat_interval_s=heartbeat_interval_s)


TABLE_TEXT = "1 a b\n"


class TestRetryThenUndeliverable:
    def test_signal_to_killed_daemon_is_recorded_not_lost(self, scheduler):
        bus = SignalBus(scheduler, latency_s=0.05)
        daemon = _daemon(scheduler, bus)
        daemon.kill()
        record = bus.send(NcForwardTab(target="relay", table_text=TABLE_TEXT))
        scheduler.run(until=5.0)
        assert record.status == "undeliverable"
        # First attempt plus every retry was made before giving up.
        assert record.attempts == bus.max_retries + 1
        assert record in bus.undeliverable_of_kind("NcForwardTab")
        assert daemon.applied_tables == 0

    def test_undeliverable_callback_fires(self, scheduler):
        bus = SignalBus(scheduler, latency_s=0.05)
        lost = []
        bus.on_undeliverable = lost.append
        daemon = _daemon(scheduler, bus)
        daemon.kill()
        bus.send(NcForwardTab(target="relay", table_text=TABLE_TEXT))
        scheduler.run(until=5.0)
        assert len(lost) == 1
        assert lost[0].signal.kind == "NcForwardTab"

    def test_restart_within_retry_window_recovers_delivery(self, scheduler):
        bus = SignalBus(scheduler, latency_s=0.05)
        daemon = _daemon(scheduler, bus)
        daemon.kill()
        record = bus.send(NcForwardTab(target="relay", table_text=TABLE_TEXT))
        # First attempt at 0.05 finds nobody; the daemon is back before
        # the 0.30 retry, so the signal lands on the second attempt.
        scheduler.schedule_at(0.2, daemon.restart)
        scheduler.run(until=5.0)
        assert record.status == "delivered"
        assert record.attempts == 2
        assert bus.undeliverable == []
        # The restarted daemon has no running function yet, so the table
        # parks until the controller re-sends NC_SETTINGS.
        assert daemon.pending_table is not None


class TestHeartbeats:
    def test_beats_stop_on_kill_and_resume_on_restart(self, scheduler):
        bus = SignalBus(scheduler, latency_s=0.02)
        bus.register("controller", lambda signal: None)
        daemon = _daemon(scheduler, bus, heartbeat_interval_s=0.1)
        scheduler.run(until=0.35)
        assert daemon.heartbeats_sent == 3
        daemon.kill()
        scheduler.run(until=1.0)
        assert daemon.heartbeats_sent == 3  # a corpse does not beat
        daemon.restart()
        scheduler.run(until=1.35)
        assert daemon.heartbeats_sent == 6

    def test_monitor_declares_dead_deterministically(self, scheduler):
        bus = SignalBus(scheduler, latency_s=0.02)
        deaths = []
        monitor = HeartbeatMonitor(scheduler, interval_s=0.1, miss_threshold=3,
                                   on_dead=deaths.append)
        bus.register("controller", lambda signal: monitor.beat(signal.vnf_name))
        daemon = _daemon(scheduler, bus, heartbeat_interval_s=0.1)
        monitor.watch("relay")
        scheduler.schedule_at(0.35, daemon.kill)
        scheduler.run(until=2.0)
        monitor.stop()
        # Last beat delivered at 0.32; the first check past 0.32 + 3×0.1
        # is the tick at t=0.7 — detection latency is deterministic.
        assert deaths == ["relay"]
        assert monitor.dead["relay"] == pytest.approx(0.7)

    def test_live_daemon_is_never_declared_dead(self, scheduler):
        bus = SignalBus(scheduler, latency_s=0.02)
        monitor = HeartbeatMonitor(scheduler, interval_s=0.1, miss_threshold=3)
        bus.register("controller", lambda signal: monitor.beat(signal.vnf_name))
        _daemon(scheduler, bus, heartbeat_interval_s=0.1)
        monitor.watch("relay")
        scheduler.run(until=5.0)
        monitor.stop()
        assert monitor.dead == {}

    def test_unwatch_is_a_planned_shutdown_not_a_failure(self, scheduler):
        monitor = HeartbeatMonitor(scheduler, interval_s=0.1, miss_threshold=3)
        monitor.watch("relay")
        monitor.unwatch("relay")
        scheduler.run(until=2.0)
        monitor.stop()
        assert monitor.dead == {}

    def test_beats_from_unwatched_names_are_ignored(self, scheduler):
        monitor = HeartbeatMonitor(scheduler, interval_s=0.1)
        monitor.beat("stranger")
        assert "stranger" not in monitor.last_heard

    def test_rewatch_clears_a_death_verdict(self, scheduler):
        monitor = HeartbeatMonitor(scheduler, interval_s=0.1, miss_threshold=3)
        monitor.watch("relay")
        scheduler.run(until=1.0)
        assert "relay" in monitor.dead
        monitor.watch("relay")  # re-adopted after a restart
        assert "relay" not in monitor.dead
        monitor.stop()

    def test_monitor_rejects_bad_parameters(self, scheduler):
        with pytest.raises(ValueError, match="interval"):
            HeartbeatMonitor(scheduler, interval_s=0.0)
        with pytest.raises(ValueError, match="threshold"):
            HeartbeatMonitor(scheduler, miss_threshold=0)

    def test_heartbeat_signal_carries_monotonic_beat_numbers(self, scheduler):
        bus = SignalBus(scheduler, latency_s=0.02)
        beats = []
        bus.register("controller", lambda signal: beats.append(signal.beat))
        _daemon(scheduler, bus, heartbeat_interval_s=0.1)
        scheduler.run(until=0.55)
        assert beats == [1, 2, 3, 4, 5]
        assert all(isinstance(r.signal, NcHeartbeat)
                   for r in bus.sent_of_kind("NcHeartbeat"))
