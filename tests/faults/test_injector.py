"""Unit tests for :mod:`repro.faults`: plans, validation, firing."""

import numpy as np
import pytest

from repro.cloud.flavor import InstanceFlavor
from repro.cloud.vm import VirtualMachine, VmState
from repro.core.daemon import VnfDaemon
from repro.core.signals import NcStart, SignalBus
from repro.core.vnf import CodingVnf
from repro.faults import (
    FaultError,
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultTargetError,
)
from repro.faults.injector import link_key
from repro.net.impairments import BitFlipCorruption, Duplication
from repro.net.link import Link
from repro.net.loss import NoLoss, UniformLoss
from repro.net.packet import Datagram

FLAVOR = InstanceFlavor("test.small", 2, 4.0, 1000.0, 1000.0, 900.0, 0.10)


def _link(scheduler, src="a", dst="b", delay_s=0.05):
    link = Link(scheduler, src, dst, capacity_bps=100e6, delay_s=delay_s,
                rng=np.random.default_rng(0))
    delivered = []
    link.connect(lambda dgram: delivered.append(dgram))
    return link, delivered


def _daemon(scheduler, name="relay", bus=None):
    bus = bus if bus is not None else SignalBus(scheduler, latency_s=0.02)
    vnf = CodingVnf(name, scheduler, rng=np.random.default_rng(0))
    return VnfDaemon(vnf, bus, heartbeat_interval_s=None), bus


class TestFaultEvent:
    def test_rejects_negative_time(self):
        with pytest.raises(ValueError, match="non-negative"):
            FaultEvent(-0.1, FaultKind.LINK_DOWN, "a->b")

    def test_rejects_empty_target(self):
        with pytest.raises(ValueError, match="target"):
            FaultEvent(1.0, FaultKind.VM_CRASH, "")

    def test_signal_delay_needs_positive_param(self):
        with pytest.raises(ValueError, match="positive delay"):
            FaultEvent(1.0, FaultKind.SIGNAL_DELAY, "NcSettings")
        with pytest.raises(ValueError, match="positive delay"):
            FaultEvent(1.0, FaultKind.SIGNAL_DELAY, "NcSettings", param=0.0)

    def test_link_degrade_needs_probability(self):
        with pytest.raises(ValueError, match="probability"):
            FaultEvent(1.0, FaultKind.LINK_DEGRADE, "a->b")
        with pytest.raises(ValueError, match="probability"):
            FaultEvent(1.0, FaultKind.LINK_DEGRADE, "a->b", param=1.5)

    def test_dirty_wire_kinds_need_packet_rates(self):
        with pytest.raises(ValueError, match="packet rate"):
            FaultEvent(1.0, FaultKind.LINK_CORRUPT, "a->b")
        with pytest.raises(ValueError, match="packet rate"):
            FaultEvent(1.0, FaultKind.LINK_DUPLICATE, "a->b", param=1.5)
        # Blackhole and clear are parameterless.
        FaultEvent(1.0, FaultKind.LINK_BLACKHOLE, "a->b")
        FaultEvent(1.0, FaultKind.LINK_CLEAR, "a->b")

    def test_events_are_immutable(self):
        event = FaultEvent(1.0, FaultKind.VM_CRASH, "vm-1")
        with pytest.raises(AttributeError):
            event.time_s = 2.0


class TestFaultPlan:
    def test_sorts_by_time_stably(self):
        a = FaultEvent(2.0, FaultKind.LINK_DOWN, "x->y")
        b = FaultEvent(1.0, FaultKind.VM_CRASH, "vm-1")
        c = FaultEvent(2.0, FaultKind.LINK_UP, "x->y")
        plan = FaultPlan([a, b, c])
        assert plan.events == (b, a, c)  # ties keep authored order

    def test_of_kind_and_len(self):
        plan = FaultPlan([
            FaultEvent(1.0, FaultKind.LINK_DOWN, "x->y"),
            FaultEvent(1.5, FaultKind.LINK_UP, "x->y"),
        ])
        assert len(plan) == 2
        assert [e.kind for e in plan.of_kind(FaultKind.LINK_UP)] == [FaultKind.LINK_UP]

    def test_describe_lists_every_fault(self):
        plan = FaultPlan([FaultEvent(0.5, FaultKind.LINK_DEGRADE, "x->y", param=0.1)])
        text = plan.describe()
        assert "link-degrade" in text and "x->y" in text and "param=0.1" in text

    def test_random_is_deterministic_per_seed(self):
        kwargs = dict(duration_s=5.0, links=["a->b", "b->c"], daemons=["a", "b"])
        assert FaultPlan.random(3, **kwargs).events == FaultPlan.random(3, **kwargs).events
        assert FaultPlan.random(3, **kwargs).events != FaultPlan.random(4, **kwargs).events

    def test_random_pairs_outages_with_recovery(self):
        for seed in range(20):
            plan = FaultPlan.random(seed, duration_s=5.0,
                                    links=["a->b"], daemons=["a"], max_faults=6)
            downs = plan.of_kind(FaultKind.LINK_DOWN)
            ups = plan.of_kind(FaultKind.LINK_UP)
            assert len(downs) == len(ups)
            kills = plan.of_kind(FaultKind.DAEMON_KILL)
            restarts = plan.of_kind(FaultKind.DAEMON_RESTART)
            assert len(kills) == len(restarts)
            for kill in kills:
                assert any(r.target == kill.target and r.time_s > kill.time_s
                           for r in restarts)

    def test_impairments_off_keeps_plans_bit_identical(self):
        # The dirty-wire menu is opt-in; existing seeded plans must not
        # shift when the flag stays off.
        kwargs = dict(duration_s=5.0, links=["a->b"], daemons=["a"], max_faults=6)
        dirty_kinds = {FaultKind.LINK_CORRUPT, FaultKind.LINK_DUPLICATE, FaultKind.LINK_BLACKHOLE}
        for seed in range(10):
            plan = FaultPlan.random(seed, **kwargs)
            assert plan.events == FaultPlan.random(seed, impairments=False, **kwargs).events
            assert not any(e.kind in dirty_kinds for e in plan)

    def test_impairments_opt_in_draws_dirty_faults(self):
        kinds = set()
        for seed in range(40):
            plan = FaultPlan.random(seed, duration_s=5.0, links=["a->b"],
                                    max_faults=6, impairments=True)
            kinds |= {e.kind for e in plan}
        assert {FaultKind.LINK_CORRUPT, FaultKind.LINK_DUPLICATE,
                FaultKind.LINK_BLACKHOLE} <= kinds

    def test_every_dirty_window_is_cleared(self):
        dirty_kinds = (FaultKind.LINK_CORRUPT, FaultKind.LINK_DUPLICATE, FaultKind.LINK_BLACKHOLE)
        for seed in range(40):
            plan = FaultPlan.random(seed, duration_s=5.0, links=["a->b", "b->c"],
                                    max_faults=6, impairments=True)
            clears = plan.of_kind(FaultKind.LINK_CLEAR)
            for event in plan:
                if event.kind in dirty_kinds:
                    assert any(c.target == event.target and c.time_s > event.time_s
                               for c in clears)
                if event.kind in (FaultKind.LINK_CORRUPT, FaultKind.LINK_DUPLICATE):
                    assert 0.0 <= event.param <= 1.0

    def test_random_rejects_empty_pools(self):
        with pytest.raises(ValueError, match="nothing to break"):
            FaultPlan.random(1, duration_s=5.0)

    def test_random_rejects_bad_bounds(self):
        with pytest.raises(ValueError, match="duration"):
            FaultPlan.random(1, duration_s=0.0, links=["a->b"])
        with pytest.raises(ValueError, match="max_faults"):
            FaultPlan.random(1, duration_s=1.0, links=["a->b"], max_faults=0)


class TestArmTimeValidation:
    """A typo'd plan fails loudly at arm(), not silently at fire time."""

    def test_unknown_vm(self, scheduler):
        injector = FaultInjector(scheduler, FaultPlan([
            FaultEvent(1.0, FaultKind.VM_CRASH, "vm-404")]))
        with pytest.raises(FaultTargetError, match="no VM registered"):
            injector.arm()

    def test_unknown_link(self, scheduler):
        injector = FaultInjector(scheduler, FaultPlan([
            FaultEvent(1.0, FaultKind.LINK_DOWN, "a->z")]))
        with pytest.raises(FaultTargetError, match="no link registered"):
            injector.arm()

    def test_unknown_impairment_link(self, scheduler):
        injector = FaultInjector(scheduler, FaultPlan([
            FaultEvent(1.0, FaultKind.LINK_CORRUPT, "a->z", param=0.1)]))
        with pytest.raises(FaultTargetError, match="no link registered"):
            injector.arm()

    def test_unknown_daemon(self, scheduler):
        injector = FaultInjector(scheduler, FaultPlan([
            FaultEvent(1.0, FaultKind.DAEMON_KILL, "ghost")]))
        with pytest.raises(FaultTargetError, match="no daemon registered"):
            injector.arm()

    def test_signal_fault_needs_bus(self, scheduler):
        injector = FaultInjector(scheduler, FaultPlan([
            FaultEvent(1.0, FaultKind.SIGNAL_DROP, "NcSettings")]))
        with pytest.raises(FaultTargetError, match="no bus attached"):
            injector.arm()

    def test_unknown_node(self, scheduler):
        injector = FaultInjector(scheduler, FaultPlan([
            FaultEvent(1.0, FaultKind.NODE_CRASH, "atlantis")]))
        with pytest.raises(FaultTargetError, match="no registered links or daemon"):
            injector.arm()

    def test_validation_schedules_nothing(self, scheduler):
        injector = FaultInjector(scheduler, FaultPlan([
            FaultEvent(1.0, FaultKind.VM_CRASH, "vm-404")]))
        with pytest.raises(FaultTargetError):
            injector.arm()
        assert scheduler.pending == 0

    def test_double_arm_is_an_error(self, scheduler):
        injector = FaultInjector(scheduler, FaultPlan())
        injector.arm()
        with pytest.raises(FaultError, match="already armed"):
            injector.arm()

    def test_set_bus_refuses_to_clobber_foreign_hook(self, scheduler):
        bus = SignalBus(scheduler)
        bus.fault_hook = lambda record: None
        injector = FaultInjector(scheduler, FaultPlan())
        with pytest.raises(FaultError, match="already has a fault hook"):
            injector.set_bus(bus)


class TestFiring:
    def test_vm_crash(self, scheduler):
        vm = VirtualMachine(scheduler, "oregon", FLAVOR, launch_latency_s=0.1)
        injector = FaultInjector(scheduler, FaultPlan([
            FaultEvent(1.0, FaultKind.VM_CRASH, vm.vm_id)]))
        injector.add_vm(vm.vm_id, vm)
        injector.arm()
        scheduler.run(until=2.0)
        assert vm.state is VmState.FAILED
        assert vm.failed_at == pytest.approx(1.0)
        assert injector.applied == [(1.0, injector.plan.events[0])]

    def test_link_flap_drops_in_flight_then_restores(self, scheduler):
        link, delivered = _link(scheduler, delay_s=0.05)
        injector = FaultInjector(scheduler, FaultPlan([
            FaultEvent(0.01, FaultKind.LINK_DOWN, link_key("a", "b")),
            FaultEvent(0.30, FaultKind.LINK_UP, link_key("a", "b")),
        ]))
        injector.add_link("a", "b", link)
        injector.arm()
        # In flight when the link goes down at t=0.01: dropped, not delivered.
        link.send(Datagram("a", "b", None, 1200))
        # Sent while down: refused at the head of the queue.
        scheduler.schedule_at(0.1, link.send, Datagram("a", "b", None, 1200))
        # Sent after recovery: delivered normally.
        scheduler.schedule_at(0.5, link.send, Datagram("a", "b", None, 1200))
        scheduler.run(until=1.0)
        assert link.is_up
        assert link.stats.dropped_down == 2
        assert len(delivered) == 1

    def test_link_degrade_swaps_loss_model(self, scheduler):
        link, _ = _link(scheduler)
        injector = FaultInjector(scheduler, FaultPlan([
            FaultEvent(1.0, FaultKind.LINK_DEGRADE, link_key("a", "b"), param=0.25)]))
        injector.add_link("a", "b", link)
        injector.arm()
        assert isinstance(link.loss, NoLoss)
        scheduler.run(until=2.0)
        assert isinstance(link.loss, UniformLoss)
        assert link.loss.rate == pytest.approx(0.25)

    def test_daemon_kill_and_restart(self, scheduler):
        daemon, bus = _daemon(scheduler)
        injector = FaultInjector(scheduler, FaultPlan([
            FaultEvent(1.0, FaultKind.DAEMON_KILL, "relay"),
            FaultEvent(1.5, FaultKind.DAEMON_RESTART, "relay"),
        ]))
        injector.add_daemon("relay", daemon)
        injector.arm()
        scheduler.run(until=1.2)
        assert not daemon.alive
        assert not bus.is_registered("relay")
        scheduler.run(until=2.0)
        assert daemon.alive
        assert daemon.restarts == 1
        assert bus.is_registered("relay")

    def test_node_crash_composes_links_and_daemon(self, scheduler):
        inbound, _ = _link(scheduler, "x", "n")
        outbound, _ = _link(scheduler, "n", "y")
        daemon, bus = _daemon(scheduler, name="n")
        injector = FaultInjector(scheduler, FaultPlan([
            FaultEvent(1.0, FaultKind.NODE_CRASH, "n")]))
        injector.add_link("x", "n", inbound)
        injector.add_link("n", "y", outbound)
        injector.add_daemon("n", daemon)
        injector.arm()
        scheduler.run(until=2.0)
        assert not inbound.is_up and not outbound.is_up
        assert not daemon.alive
        assert not bus.is_registered("n")

    def test_corrupt_window_attaches_then_clear_detaches(self, scheduler):
        link, delivered = _link(scheduler)
        injector = FaultInjector(scheduler, FaultPlan([
            FaultEvent(0.1, FaultKind.LINK_CORRUPT, link_key("a", "b"), param=1.0),
            FaultEvent(0.5, FaultKind.LINK_CLEAR, link_key("a", "b")),
        ]))
        injector.add_link("a", "b", link)
        injector.arm()
        # Inside the window every packet is selected for corruption; a
        # non-coded payload can't carry a damaged copy, so it is dropped
        # (the kernel-UDP-checksum model).  After LINK_CLEAR the wire is
        # pristine again.
        scheduler.schedule_at(0.3, link.send, Datagram("a", "b", None, 1200))
        scheduler.schedule_at(0.7, link.send, Datagram("a", "b", None, 1200))
        scheduler.run(until=0.4)
        assert isinstance(link.impairments[0], BitFlipCorruption)
        scheduler.run(until=1.0)
        assert link.impairments == []
        assert link.stats.dropped_corrupt == 1
        assert len(delivered) == 1

    def test_duplicate_window_doubles_the_wire(self, scheduler):
        link, delivered = _link(scheduler)
        injector = FaultInjector(scheduler, FaultPlan([
            FaultEvent(0.1, FaultKind.LINK_DUPLICATE, link_key("a", "b"), param=1.0)]))
        injector.add_link("a", "b", link)
        injector.arm()
        scheduler.schedule_at(0.3, link.send, Datagram("a", "b", None, 1200))
        scheduler.run(until=1.0)
        assert isinstance(link.impairments[0], Duplication)
        assert link.stats.duplicated_packets == 1
        assert len(delivered) == 2

    def test_blackhole_window_swallows_silently(self, scheduler):
        link, delivered = _link(scheduler)
        injector = FaultInjector(scheduler, FaultPlan([
            FaultEvent(0.1, FaultKind.LINK_BLACKHOLE, link_key("a", "b")),
            FaultEvent(0.5, FaultKind.LINK_CLEAR, link_key("a", "b")),
        ]))
        injector.add_link("a", "b", link)
        injector.arm()
        scheduler.schedule_at(0.3, link.send, Datagram("a", "b", None, 1200))
        scheduler.schedule_at(0.7, link.send, Datagram("a", "b", None, 1200))
        scheduler.run(until=1.0)
        assert link.stats.dropped_blackhole == 1
        # Unlike LINK_DOWN, the sender sees a healthy link throughout.
        assert link.stats.sent_packets == 2
        assert len(delivered) == 1

    def test_signal_drop_rule_is_one_shot(self, scheduler):
        bus = SignalBus(scheduler, latency_s=0.02)
        received = []
        bus.register("sink", received.append)
        injector = FaultInjector(scheduler, FaultPlan([
            FaultEvent(0.01, FaultKind.SIGNAL_DROP, "NcStart")]))
        injector.set_bus(bus)
        injector.arm()
        scheduler.schedule_at(0.05, bus.send, NcStart(target="sink", session_id=1))
        scheduler.schedule_at(0.50, bus.send, NcStart(target="sink", session_id=2))
        scheduler.run(until=1.0)
        assert [s.session_id for s in received] == [2]
        assert len(bus.dropped) == 1
        assert bus.dropped[0].status == "dropped"

    def test_signal_delay_postpones_delivery(self, scheduler):
        bus = SignalBus(scheduler, latency_s=0.02)
        received_at = []
        bus.register("sink", lambda s: received_at.append(scheduler.now))
        injector = FaultInjector(scheduler, FaultPlan([
            FaultEvent(0.01, FaultKind.SIGNAL_DELAY, "NcStart", param=0.5)]))
        injector.set_bus(bus)
        injector.arm()
        scheduler.schedule_at(0.05, bus.send, NcStart(target="sink"))
        scheduler.run(until=1.0)
        # 0.05 send + 0.02 bus latency + 0.5 injected delay.
        assert received_at == [pytest.approx(0.57)]
