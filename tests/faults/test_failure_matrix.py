"""The failure matrix: fault kind × session phase, end to end.

Every cell must end one of two ways — the lifecycle completes, or a
*typed*, observable outcome is recorded (a monitor death, a dropped or
undeliverable signal record, a FAILED VM).  No cell may wedge the
scheduler, and no control signal may disappear without a trace.

Two levels:

- :class:`TestLifecycleMatrix` drives the real control-plane script
  (NC_SETTINGS → function start → NC_FORWARD_TAB → NC_VNF_END →
  τ-grace → VM termination) against faults injected before settings,
  mid-generation, and during the grace window.
- :class:`TestButterflyUnderFaults` injects the same fault kinds into
  the packet-level Fig. 6 butterfly mid-transfer, including the
  headline relay-crash → detect → reroute → keep-decoding run.
"""

from dataclasses import dataclass, field

import numpy as np
import pytest

from repro.cloud.flavor import InstanceFlavor
from repro.cloud.vm import VirtualMachine, VmState
from repro.core.controller import HeartbeatMonitor
from repro.core.daemon import VnfDaemon
from repro.core.signals import (
    NcForwardTab,
    NcHeartbeat,
    NcSettings,
    NcVnfEnd,
    SignalBus,
)
from repro.core.vnf import CodingVnf
from repro.experiments.failures import run_butterfly_failover
from repro.faults import FaultEvent, FaultInjector, FaultKind, FaultPlan
from repro.faults.injector import link_key
from repro.net.link import Link
from repro.net.packet import Datagram

FLAVOR = InstanceFlavor("test.small", 2, 4.0, 1000.0, 1000.0, 900.0, 0.10)

# Lifecycle script (times in seconds).
BOOT_AT = 0.05       # VM comes up
SETTINGS_AT = 0.5    # NC_SETTINGS sent (delivered +0.02, function +~0.376)
TABLE_AT = 1.0       # NC_FORWARD_TAB sent
END_AT = 2.4         # NC_VNF_END sent; τ-grace follows
GRACE_TAU_S = 0.5    # VM grace window: 2.42 .. 2.92
HORIZON = 4.0

PHASE_TIMES = {
    "before-settings": 0.2,
    "mid-generation": 1.5,
    "during-grace": 2.55,
}

FAULT_KINDS = ("vm-crash", "link-flap", "daemon-kill", "signal-drop")


@dataclass
class CellResult:
    scheduler: object = None
    bus: object = None
    vm: object = None
    link: object = None
    daemon: object = None
    monitor: object = None
    deaths: list = field(default_factory=list)
    shutdowns: int = 0
    delivered_payloads: int = 0


def _plan_for(kind: str, phase: str, at: float, vm_id: str) -> FaultPlan:
    if kind == "vm-crash":
        # The daemon process lives on the VM; the crash takes both.
        return FaultPlan([
            FaultEvent(at, FaultKind.VM_CRASH, vm_id),
            FaultEvent(at, FaultKind.DAEMON_KILL, "relay"),
        ])
    if kind == "link-flap":
        return FaultPlan([
            FaultEvent(at, FaultKind.LINK_DOWN, link_key("relay", "sink")),
            FaultEvent(at + 0.2, FaultKind.LINK_UP, link_key("relay", "sink")),
        ])
    if kind == "daemon-kill":
        return FaultPlan([
            FaultEvent(at, FaultKind.DAEMON_KILL, "relay"),
            FaultEvent(at + 0.3, FaultKind.DAEMON_RESTART, "relay"),
        ])
    # signal-drop: eat the next delivery of whichever control signal is
    # still ahead of the fault in the lifecycle script.
    target = {
        "before-settings": "NcSettings",
        "mid-generation": "NcVnfEnd",
        "during-grace": "NcForwardTab",  # a late reconfigure racing shutdown
    }[phase]
    return FaultPlan([FaultEvent(at, FaultKind.SIGNAL_DROP, target)])


def _run_cell(kind: str, phase: str) -> CellResult:
    """One matrix cell: the full lifecycle script with one fault in it."""
    from repro.net.events import EventScheduler

    scheduler = EventScheduler()
    bus = SignalBus(scheduler, latency_s=0.02)
    result = CellResult(scheduler=scheduler, bus=bus)

    vm = VirtualMachine(scheduler, "oregon", FLAVOR,
                        launch_latency_s=BOOT_AT, grace_tau_s=GRACE_TAU_S)
    vnf = CodingVnf("relay", scheduler, rng=np.random.default_rng(0))

    def _on_shutdown(daemon: VnfDaemon) -> None:
        result.shutdowns += 1
        result.monitor.unwatch("relay")  # planned shutdown, not a failure
        vm.request_shutdown()

    daemon = VnfDaemon(vnf, bus, session_configs={},
                       on_shutdown=_on_shutdown, heartbeat_interval_s=0.1)
    result.vm, result.daemon = vm, daemon

    def _on_dead(name: str) -> None:
        first_death = not result.deaths
        result.deaths.append((name, scheduler.now))
        if first_death:
            # Recovery control loop in miniature: re-adopt once and
            # re-push the settings so a restarted daemon brings the
            # function back up.  A second death means nobody came back;
            # the name stays dead.
            result.monitor.watch(name)
            bus.send(NcSettings(target=name, session_ids=(1,), roles=()))

    monitor = HeartbeatMonitor(scheduler, interval_s=0.1, miss_threshold=3,
                               on_dead=_on_dead)
    result.monitor = monitor
    bus.register("controller",
                 lambda s: monitor.beat(s.vnf_name) if isinstance(s, NcHeartbeat) else None)
    monitor.watch("relay")

    # A small data stream through the node's egress link so link faults
    # have packets to hit.
    link = Link(scheduler, "relay", "sink", capacity_bps=10e6, delay_s=0.005,
                rng=np.random.default_rng(1))
    link.connect(lambda dgram: setattr(
        result, "delivered_payloads", result.delivered_payloads + 1))
    result.link = link

    def _stream() -> None:
        if scheduler.now <= 3.5:
            link.send(Datagram("relay", "sink", None, 1200))

    stream = scheduler.schedule_every(0.05, _stream, first_delay=0.1)

    # The controller's script.
    scheduler.schedule_at(SETTINGS_AT, bus.send,
                          NcSettings(target="relay", session_ids=(1,), roles=()))
    scheduler.schedule_at(TABLE_AT, bus.send,
                          NcForwardTab(target="relay", table_text="1 sink\n"))
    scheduler.schedule_at(END_AT, bus.send,
                          NcVnfEnd(target="relay", vnf_name="relay", tau_s=GRACE_TAU_S))
    if kind == "signal-drop" and phase == "during-grace":
        scheduler.schedule_at(2.6, bus.send,
                              NcForwardTab(target="relay", table_text="1 sink\n"))

    plan = _plan_for(kind, phase, PHASE_TIMES[phase], vm.vm_id)
    injector = FaultInjector(scheduler, plan)
    injector.add_vm(vm.vm_id, vm)
    injector.add_link("relay", "sink", link)
    injector.add_daemon("relay", daemon)
    injector.set_bus(bus)
    injector.arm()

    scheduler.run(until=HORIZON)
    monitor.stop()
    stream.cancel()
    return result


class TestLifecycleMatrix:
    @pytest.mark.parametrize("phase", PHASE_TIMES)
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_cell_terminates_with_typed_outcome(self, kind, phase):
        cell = _run_cell(kind, phase)
        # The scheduler ran to the horizon — no wedge, no livelock.
        assert cell.scheduler.now == pytest.approx(HORIZON)
        # Every control signal reached a terminal, *recorded* status;
        # nothing is still pending and nothing vanished silently.
        assert all(r.status in ("delivered", "dropped", "undeliverable")
                   for r in cell.bus.log)
        # Either the lifecycle completed or a typed failure artifact
        # exists for the experiment to assert on.
        completed = cell.shutdowns == 1 and cell.vm.state is VmState.TERMINATED
        typed_failure = (bool(cell.deaths) or bool(cell.bus.dropped)
                         or bool(cell.bus.undeliverable)
                         or cell.vm.state is VmState.FAILED)
        assert completed or typed_failure

    @pytest.mark.parametrize("phase", PHASE_TIMES)
    def test_vm_crash_fails_vm_and_is_detected(self, phase):
        cell = _run_cell("vm-crash", phase)
        assert cell.vm.state is VmState.FAILED
        # Billing froze at the crash, not at the horizon.
        assert cell.vm.billed_seconds(HORIZON) <= PHASE_TIMES[phase] + 1e-9
        if phase != "during-grace":
            # Heartbeats were flowing when the crash hit: the monitor
            # must notice, and the one-shot recovery push must leave an
            # undeliverable trace (nobody is left to receive it).
            # (During grace the daemon had already been unwatched by
            # the planned shutdown.)
            assert cell.deaths
            assert all(name == "relay" for name, _ in cell.deaths)
            assert cell.bus.undeliverable_of_kind("NcSettings")

    @pytest.mark.parametrize("phase", PHASE_TIMES)
    def test_link_flap_recovers_and_control_plane_is_untouched(self, phase):
        cell = _run_cell("link-flap", phase)
        assert cell.link.is_up
        assert cell.link.stats.dropped_down > 0  # the flap hit real traffic
        assert cell.delivered_payloads > 0       # ...and traffic resumed
        # A data-plane flap is invisible to the control plane.
        assert cell.deaths == []
        assert cell.bus.undeliverable == []
        assert cell.shutdowns == 1
        assert cell.vm.state is VmState.TERMINATED

    @pytest.mark.parametrize("phase", PHASE_TIMES)
    def test_daemon_kill_restarts_with_amnesia(self, phase):
        cell = _run_cell("daemon-kill", phase)
        assert cell.daemon.restarts == 1
        assert cell.daemon.alive
        assert cell.daemon.killed_at == pytest.approx(PHASE_TIMES[phase])
        if phase == "mid-generation":
            # The 0.3 s outage exceeds the 3×0.1 s deadline: declared
            # dead, then the recovery loop re-sent NC_SETTINGS and the
            # restarted daemon brought the function back up before the
            # session ended.
            assert [name for name, _ in cell.deaths] == ["relay"]
            assert cell.daemon.started_at > PHASE_TIMES[phase]
            assert cell.shutdowns == 1

    @pytest.mark.parametrize("phase", PHASE_TIMES)
    def test_signal_drop_leaves_a_typed_record(self, phase):
        cell = _run_cell("signal-drop", phase)
        assert len(cell.bus.dropped) == 1
        dropped = cell.bus.dropped[0]
        assert dropped.status == "dropped"
        if phase == "before-settings":
            # The settings never arrived: the function never started.
            assert dropped.signal.kind == "NcSettings"
            assert not cell.daemon.function_running
            assert cell.daemon.applied_tables == 0
        elif phase == "mid-generation":
            # NC_VNF_END was eaten: the session never winds down and the
            # VM keeps running — exactly the leak the record exposes.
            assert dropped.signal.kind == "NcVnfEnd"
            assert cell.shutdowns == 0
            assert cell.vm.state is VmState.RUNNING
        else:
            # A late reconfigure racing the shutdown was dropped; the
            # planned shutdown itself completed normally.
            assert dropped.signal.kind == "NcForwardTab"
            assert cell.shutdowns == 1
            assert cell.vm.state is VmState.TERMINATED


class TestButterflyUnderFaults:
    """Packet-level matrix: the Fig. 6 butterfly mid-transfer."""

    def test_relay_crash_recovers_with_bounded_mttr(self):
        """The headline: V2 dies at t=1 s; decoding survives it."""
        r = run_butterfly_failover(duration_s=2.5)
        assert r.recovered
        # Detection latency is deterministic: miss_threshold × interval,
        # quantized to the monitor's own tick (0.1 s grid).
        assert r.detection_latency_s == pytest.approx(0.4, abs=1e-9)
        # MTTR for seed 7 is a deterministic bound, not a distribution.
        # (PR 3: up from 0.441 — recovery now runs the full LP replan and
        # pushes hop-shape clears alongside the tables, buying the O1
        # fix at ~40 ms of extra reload pause.)
        assert r.recovery_latency_s == pytest.approx(0.482, abs=0.01)
        for name in r.receivers:
            assert r.decoded_before[name] > 0
            assert r.decoded_after[name] > 0
        # The recovery path checks registration before pushing tables,
        # so routing around the corpse loses no control signals.
        assert r.undeliverable_signals == 0
        assert [e.kind for _, e in r.applied_faults] == [FaultKind.NODE_CRASH]

    @pytest.mark.parametrize("fail_node", ["T", "V2"])
    def test_core_relay_crashes_are_survivable(self, fail_node):
        r = run_butterfly_failover(fail_node=fail_node, duration_s=2.5)
        assert r.recovered
        for name in r.receivers:
            assert r.decoded_after[name] > 0

    def test_side_relay_crash_recovers_to_full_rank(self):
        # O1 carries half the source's degrees of freedom AND O2's
        # reverse NACK path.  PR 2 could only terminate this as a typed
        # failure (both receivers stuck at half rank); the healing layer
        # re-runs the LP with O1 excised, moves the whole flow onto the
        # C1 branch and re-routes O2's feedback via V2→T→C1 — so both
        # receivers keep decoding at *full* rank.
        r = run_butterfly_failover(fail_node="O1", duration_s=2.5)
        assert r.detected_at is not None
        assert r.recovered
        # Detection + repair bound: first post-crash decode at both
        # receivers within a second of the failure (deterministic for
        # seed 7; detection alone accounts for 0.4 s of it).
        assert r.detection_latency_s == pytest.approx(0.4, abs=1e-9)
        assert r.recovery_latency_s is not None and r.recovery_latency_s < 1.0
        # Full rank, not a trickle: each receiver decodes at least a
        # hundred complete generations in the remaining ~1.1 s (the
        # window over the longer surviving path bounds the rate; what
        # matters is that *every* generation completes).
        for name, app in r.receivers.items():
            assert r.decoded_after[name] > 100
            # No half-rank residue: everything each receiver has seen
            # is fully decoded — the PR 2 outcome left decoders stuck
            # open at rank k/2 forever.
            assert app._cum_ack == app.highest_seen
            assert not app._decoders
        # The replan is recorded and feasible.
        assert r.recovery_plans and r.recovery_plans[0].feasible
        assert r.recovery_plans[0].dead_nodes == ("O1",)
        assert r.recovery_plans[0].source_shares == {"C1": pytest.approx(34.0)}
        assert all(record.status != "pending"
                   for record in r.bus.log if record.sent_at < 1.5)

    def test_without_recovery_decoding_starves(self):
        r = run_butterfly_failover(duration_s=2.5, recover=False)
        assert r.detected_at is not None  # detector still fires
        recovered = run_butterfly_failover(duration_s=2.5)
        # ARQ repair over the side branches salvages something, but far
        # less than detection + reroute + rate fallback recovers.
        assert sum(r.decoded_after.values()) < 0.8 * sum(recovered.decoded_after.values())

    def test_bottleneck_flap_is_absorbed_by_arq(self):
        plan = FaultPlan([
            FaultEvent(1.0, FaultKind.LINK_DOWN, link_key("T", "V2")),
            FaultEvent(1.3, FaultKind.LINK_UP, link_key("T", "V2")),
        ])
        r = run_butterfly_failover(plan=plan, duration_s=2.5)
        assert r.detected_at is None  # heartbeats kept flowing: no false positive
        bottleneck = r.topology.links[("T", "V2")]
        assert bottleneck.stats.dropped_down > 0
        for name in r.receivers:
            assert r.decoded_after[name] > 0

    def test_daemon_kill_triggers_reroute_and_transfer_survives(self):
        plan = FaultPlan([
            FaultEvent(1.0, FaultKind.DAEMON_KILL, "T"),
            FaultEvent(1.6, FaultKind.DAEMON_RESTART, "T"),
        ])
        r = run_butterfly_failover(plan=plan, duration_s=2.5)
        # The 0.6 s outage blows the 0.4 s heartbeat deadline: T is
        # declared dead and the reroute fires even though the crash was
        # only the control-plane process.
        assert r.detected_at is not None
        assert r.daemons["T"].restarts == 1
        for name in r.receivers:
            assert r.decoded_after[name] > 0

    def test_corruption_window_is_contained_at_the_relay(self):
        # Bit-flip a third of the bottleneck's packets for 0.4 s.  V2's
        # checksum gate must drop every damaged packet before it can be
        # mixed into a recode — corruption degrades into loss, loss is
        # repaired, and the control plane never even notices.
        plan = FaultPlan([
            FaultEvent(1.0, FaultKind.LINK_CORRUPT, link_key("T", "V2"), param=0.3),
            FaultEvent(1.4, FaultKind.LINK_CLEAR, link_key("T", "V2")),
        ])
        r = run_butterfly_failover(plan=plan, duration_s=2.5)
        dirty = r.topology.links[("T", "V2")]
        assert dirty.stats.corrupted_packets > 0   # the window hit real traffic
        assert dirty.impairments == []             # ...and was cleared
        assert r.daemons["V2"].vnf.corrupt_dropped > 0
        assert r.detected_at is None  # data-plane dirt: no false death verdict
        for name in r.receivers:
            assert r.decoded_after[name] > 0

    def test_duplication_window_is_deduplicated_at_the_relay(self):
        # Duplicate every packet entering O1 for 0.4 s.  The relay's
        # generation buffer must refuse the copies instead of emitting a
        # redundant recode per duplicate.
        plan = FaultPlan([
            FaultEvent(1.0, FaultKind.LINK_DUPLICATE, link_key("V1", "O1"), param=1.0),
            FaultEvent(1.4, FaultKind.LINK_CLEAR, link_key("V1", "O1")),
        ])
        r = run_butterfly_failover(plan=plan, duration_s=2.5)
        dirty = r.topology.links[("V1", "O1")]
        assert dirty.stats.duplicated_packets > 0
        assert r.daemons["O1"].vnf.duplicate_dropped > 0
        assert r.detected_at is None
        for name in r.receivers:
            assert r.decoded_after[name] > 0

    def test_blackhole_window_is_absorbed_by_arq(self):
        # Unlike LINK_DOWN, a blackhole keeps the sender's view of the
        # link healthy — packets vanish with no local drop signal, the
        # purest exercise of the end-to-end NACK repair path.
        plan = FaultPlan([
            FaultEvent(1.0, FaultKind.LINK_BLACKHOLE, link_key("T", "V2")),
            FaultEvent(1.3, FaultKind.LINK_CLEAR, link_key("T", "V2")),
        ])
        r = run_butterfly_failover(plan=plan, duration_s=2.5)
        dirty = r.topology.links[("T", "V2")]
        assert dirty.stats.dropped_blackhole > 0
        assert dirty.stats.dropped_down == 0  # never actually went down
        assert r.detected_at is None
        for name in r.receivers:
            assert r.decoded_after[name] > 0

    def test_dropped_heartbeats_below_threshold_are_tolerated(self):
        plan = FaultPlan([
            FaultEvent(1.0, FaultKind.SIGNAL_DROP, "NcHeartbeat"),
            FaultEvent(1.0, FaultKind.SIGNAL_DROP, "NcHeartbeat"),
        ])
        r = run_butterfly_failover(plan=plan, duration_s=2.0)
        assert len(r.bus.dropped) == 2
        assert r.detected_at is None  # two misses < threshold of three
        for name in r.receivers:
            assert r.decoded_after[name] > 0


class TestCrashDuringRetune:
    """The adaptive-loop cell: a retune NC_SETTINGS meets a crash.

    The adaptive controller (DESIGN.md §15) streams mid-session retunes
    at the relay daemons.  This cell kills the daemon while retunes are
    in flight (and, in the drop variant, eats one on the wire) and holds
    the loop to the matrix contract: typed records for every lost
    signal, staged-only application at generation boundaries, and a run
    that still ends complete-or-degraded-typed.
    """

    def _run(self, plan):
        from repro.adapt.soak import classify
        from repro.experiments.scenarios import GEO_SATELLITE, run_scenario

        result = run_scenario(
            GEO_SATELLITE, mode="adaptive", loss=0.2, duration_s=6.0, seed=2, plan=plan
        )
        return result, classify(result)

    def test_daemon_crash_mid_retune_leaves_typed_records(self):
        # Kill the relay daemon inside the retune flurry (reports start
        # arriving ~0.5 s in); revive it a second later.
        plan = FaultPlan([
            FaultEvent(0.9, FaultKind.DAEMON_KILL, "geo-sat"),
            FaultEvent(1.9, FaultKind.DAEMON_RESTART, "geo-sat"),
        ])
        result, outcome = self._run(plan)
        daemon = result.daemons["geo-sat"]
        assert daemon.restarts == 1 and daemon.alive
        # The controller kept pushing; whatever hit the dead daemon is
        # recorded, never silently gone.
        assert result.retunes_pushed > 0
        # (Signals sent just before the horizon may legally still be in
        # flight; anything with time to resolve must have.)
        assert all(
            r.status in ("delivered", "dropped", "undeliverable")
            for r in result.bus.log
            if r.sent_at < 4.0
        )
        lost = result.bus.undeliverable_of_kind("NcSettings")
        assert lost or daemon.retunes_staged > 0  # missed-or-staged, typed either way
        # Post-restart retunes land again and the data plane still only
        # applies them at generation boundaries (no mid-block reshape).
        assert result.retunes_applied <= result.retunes_pushed
        assert outcome.outcome in ("completed", "degraded-typed")
        assert outcome.typed

    def test_dropped_retune_is_recorded_and_superseded(self):
        plan = FaultPlan([FaultEvent(0.9, FaultKind.SIGNAL_DROP, "NcSettings")])
        result, outcome = self._run(plan)
        # Exactly one retune was eaten, with a typed record.
        dropped = [r for r in result.bus.dropped if r.signal.kind == "NcSettings"]
        assert len(dropped) == 1
        # The loop's later retunes carry higher epochs, so the lost one
        # is superseded rather than resurrected: the daemon's mirror
        # ends at the controller's final config.
        daemon = result.daemons["geo-sat"]
        assert result.retunes_pushed > 1
        controller = result.controller
        final = daemon.session_configs[result.source.session.session_id]
        assert final.blocks_per_generation == controller.config.blocks_per_generation
        assert final.redundancy.extra == controller.config.redundancy.extra
        assert outcome.outcome in ("completed", "degraded-typed")
