"""Sharded chaos soak: complete-or-typed under controller crashes."""

import pytest

from repro.shard.soak import (
    COMPLETE,
    INCOMPLETE,
    TYPED_REJECTIONS,
    run_shard_chaos_soak,
    run_shard_soak,
    soak_summary,
)

SEEDS = range(4)  # tier-1 digest; the CI shard job runs the 20-seed CLI


@pytest.fixture(scope="module")
def outcomes():
    return [run_shard_soak(seed) for seed in SEEDS]


def test_every_seed_ends_complete_or_typed(outcomes):
    for outcome in outcomes:
        assert outcome.outcome in (COMPLETE, TYPED_REJECTIONS), (
            outcome.seed,
            outcome.outcome,
        )
        assert not outcome.outcome.startswith(INCOMPLETE)


def test_every_join_got_exactly_one_typed_verdict(outcomes):
    # The outcome labels already require typed == joins; cross-check the
    # verdict ledger against the event ledger: each of the trace's
    # events is either a join (one typed verdict) or a landed leave.
    for outcome in outcomes:
        typed = (
            outcome.admitted
            + outcome.rejected_capacity
            + outcome.rejected_infeasible
            + outcome.rejected_unavailable
        )
        # Every trace event is a join (one typed verdict) or a leave;
        # the only leaves that don't land are those cancelling a join
        # that itself ended rejected-unavailable, so the ledgers bound
        # each other and every *admitted* session demonstrably departed.
        assert typed + outcome.departed <= outcome.events
        assert outcome.events - (typed + outcome.departed) <= outcome.rejected_unavailable
        assert outcome.departed >= outcome.admitted
        assert outcome.admitted > 0  # the soak actually admits load


def test_fleet_drains_to_zero(outcomes):
    for outcome in outcomes:
        assert outcome.final_sessions == 0
        assert outcome.final_vnfs == 0
        assert outcome.stranded == 0


def test_crashes_actually_happen_and_are_survived(outcomes):
    # Across the digest seeds at least one controller crash fires; every
    # run still converges (previous assertions), proving survivability.
    assert sum(o.controller_crashes for o in outcomes) > 0
    assert any(o.takeovers > 0 or o.retries > 0 for o in outcomes)


def test_replay_is_bit_identical():
    first = run_shard_soak(0)
    again = run_shard_soak(0)
    assert first.fingerprint and first.fingerprint == again.fingerprint
    assert first == again


def test_different_seeds_diverge():
    assert run_shard_soak(0).fingerprint != run_shard_soak(1).fingerprint


def test_crashes_change_the_run():
    with_faults = run_shard_soak(0)
    without = run_shard_soak(0, controller_faults=False)
    assert with_faults.fingerprint != without.fingerprint
    assert without.controller_crashes == 0
    assert without.takeovers == 0


def test_chaos_soak_runner_with_replay():
    outcomes = run_shard_chaos_soak(2, replay=True)
    summary = soak_summary(outcomes)
    assert summary["seeds"] == 2
    assert summary["incomplete_untyped"] == 0
    assert summary["complete"] + summary["complete_with_rejections"] == 2
