"""Failure matrix: controller crash x admission phase.

Each cell crashes the home shard's primary at a different point of a
session's life — before its settings push lands, mid-generation with
traffic admitted, and during a replan — and asserts the graceful
degradation contract: the operation recovers or ends in a typed
outcome, the run terminates within a bounded event budget (never
hangs), and an identical rerun produces a bit-identical canonical
state.
"""

from repro.fleet.churn import SessionSpec
from repro.fleet.manager import fleet_of
from repro.fleet.verdict import AdmissionStatus
from repro.net.events import EventScheduler
from repro.shard.plane import ShardedControlPlane

CITIES = ("Seattle", "Sunnyvale", "Chicago", "New York")

#: Generous hard budget: a scenario touching this many events is looping.
MAX_EVENTS = 50_000


def spec(sid, source, receivers, rate=10.0):
    return SessionSpec(
        session_id=sid, source_city=source, receiver_cities=tuple(receivers), rate_mbps=rate
    )


def build():
    scheduler = EventScheduler()
    plane = ShardedControlPlane(2, fleet_of(CITIES), scheduler)
    return scheduler, plane


def run_bounded(scheduler, until):
    """Run to the horizon; a still-pending queue afterwards means a hang."""
    scheduler.run(until=until, max_events=MAX_EVENTS)
    assert scheduler.now >= until or not scheduler.pending


def cell_before_settings():
    """Crash lands before the session's first config push is applied."""
    scheduler, plane = build()
    s = spec(1, CITIES[0], CITIES[1:2])
    home = plane.home_of(s)
    plane.shards[home].replicas[0].crash()  # down before the join arrives
    plane.submit(s)
    run_bounded(scheduler, 20.0)
    plane.stop()
    (verdict,) = plane.verdicts
    # The standby detects, takes the lease, and admits the retried join;
    # the settings push carries the successor's fence.
    assert verdict.status is AdmissionStatus.ADMITTED
    assert plane.shards[home].lease.fence == 2
    store = plane.shards[home].store
    assert store is not None
    assert any(gate.epoch > 0 and gate.fence == 2 for gate in store.gates.values())
    return plane.canonical()


def cell_mid_generation():
    """Crash mid-flight with admitted sessions carrying traffic."""
    scheduler, plane = build()
    sessions = [spec(1, CITIES[0], CITIES[1:3]), spec(2, CITIES[2], CITIES[3:4])]
    for s in sessions:
        plane.submit(s)
    run_bounded(scheduler, 1.0)
    assert plane.active_sessions == 2
    vnfs_before = plane.total_vnfs
    home = plane.home_of(sessions[0])
    scheduler.schedule_at(1.5, plane.shards[home].replicas[0].crash)
    run_bounded(scheduler, 10.0)
    plane.stop()
    # No admitted state lost: both sessions and every VNF survive.
    assert len(plane.shards[home].takeovers) == 1
    assert plane.active_sessions == 2
    assert plane.total_vnfs == vnfs_before
    return plane.canonical()


def cell_during_replan():
    """Crash racing a replan: the replan retries onto the successor."""
    scheduler, plane = build()
    s = spec(1, CITIES[0], CITIES[1:3])
    home = plane.home_of(s)
    plane.submit(s)
    run_bounded(scheduler, 1.0)
    # Crash first, then issue the replan into the headless window.
    scheduler.schedule_at(1.5, plane.shards[home].replicas[0].crash)
    scheduler.schedule_at(1.6, plane.replan, 1)
    run_bounded(scheduler, 20.0)
    plane.stop()
    assert len(plane.shards[home].takeovers) == 1
    statuses = [v.status for v in plane.verdicts]
    # Join verdict + replan verdict, both typed, none stranded.
    assert statuses == [AdmissionStatus.ADMITTED, AdmissionStatus.ADMITTED]
    assert plane.stats.replans == 1
    assert not plane.stats.stranded
    assert plane.active_sessions == 1
    return plane.canonical()


def test_cell_crash_before_settings_recovers_and_replays():
    assert cell_before_settings() == cell_before_settings()


def test_cell_crash_mid_generation_recovers_and_replays():
    assert cell_mid_generation() == cell_mid_generation()


def test_cell_crash_during_replan_recovers_and_replays():
    assert cell_during_replan() == cell_during_replan()


def test_matrix_cells_are_distinguishable_states():
    # Sanity: the three cells exercise genuinely different end states.
    states = {repr(cell_before_settings()), repr(cell_mid_generation()), repr(cell_during_replan())}
    assert len(states) == 3
