"""Shard lease: monotone fencing and the ConfigEpochGate order."""

import pytest

from repro.core.signals import ConfigEpochGate
from repro.shard.lease import ShardLease


def test_transfer_bumps_fence_and_records_succession():
    lease = ShardLease("Chicago", holder="Chicago#r0")
    assert lease.fence == 1 and lease.held_by("Chicago#r0")
    fence = lease.transfer("Chicago#r1", at_s=2.5)
    assert fence == 2
    assert lease.held_by("Chicago#r1")
    (transfer,) = lease.transfers
    assert transfer.deposed == "Chicago#r0"
    assert transfer.holder == "Chicago#r1"
    assert transfer.at_s == 2.5
    assert transfer.fence == 2


def test_fence_is_strictly_monotone_over_many_transfers():
    lease = ShardLease("s", holder="a")
    holders = ["b", "a", "b", "a"]
    fences = [lease.transfer(h, at_s=float(i)) for i, h in enumerate(holders)]
    assert fences == [2, 3, 4, 5]


def test_invalid_constructions_rejected():
    with pytest.raises(ValueError):
        ShardLease("", holder="a")
    with pytest.raises(ValueError):
        ShardLease("s", holder="")
    with pytest.raises(ValueError):
        ShardLease("s", holder="a", fence=0)
    lease = ShardLease("s", holder="a")
    with pytest.raises(ValueError):
        lease.transfer("a", at_s=0.0)  # self-transfer would fake a bump
    with pytest.raises(ValueError):
        lease.transfer("", at_s=0.0)


def test_gate_orders_by_fence_then_epoch():
    gate = ConfigEpochGate()
    assert gate.accepts(1, 5)  # first config
    assert not gate.accepts(1, 4)  # older epoch, same fence
    assert gate.accepts(1, 5)  # equal stamp ties are accepted
    assert gate.accepts(2, 1)  # new fence dominates ANY old epoch
    assert not gate.accepts(1, 999)  # zombie primary: huge epoch, old fence
    assert gate.stale_rejected == 2


def test_gate_pre_shard_zero_stamps_keep_working():
    gate = ConfigEpochGate()
    assert gate.accepts(0, 0)
    assert gate.accepts(0, 1)
    assert gate.accepts(0, 1)
    assert not gate.accepts(0, 0)
