"""Controller placement: greedy k-median over the OS3E latency map."""

import pytest

from repro.net.topology import OS3E_SITES, os3e_latency_ms
from repro.shard.placement import ShardMap, place_controllers, total_assignment_ms


def test_k1_is_the_maximum_closeness_city():
    lat = os3e_latency_ms()
    (chosen,) = place_controllers(1, latency=lat)
    best = min(sorted(lat), key=lambda c: sum(lat[city][c] for city in lat))
    assert chosen == best


def test_greedy_total_latency_monotone_in_k():
    lat = os3e_latency_ms()
    totals = [
        total_assignment_ms(place_controllers(k, latency=lat), lat) for k in (1, 2, 3, 5, 8)
    ]
    assert totals == sorted(totals, reverse=True)
    assert totals[-1] < totals[0]  # more controllers strictly help on OS3E


def test_placement_is_deterministic():
    assert place_controllers(4) == place_controllers(4)


def test_candidates_restrict_the_pool():
    pool = ("Seattle", "Denver", "New York")
    chosen = place_controllers(2, candidates=pool)
    assert set(chosen) <= set(pool)


def test_invalid_k_and_unknown_candidates_rejected():
    with pytest.raises(ValueError):
        place_controllers(0)
    with pytest.raises(ValueError):
        place_controllers(len(OS3E_SITES) + 1)
    with pytest.raises(ValueError):
        place_controllers(1, candidates=("Atlantis",))


def test_shard_map_assigns_every_city_to_nearest_controller():
    lat = os3e_latency_ms()
    shard_map = ShardMap.build(3, latency=lat)
    assert set(shard_map.assignment) == set(lat)
    for city, home in shard_map.assignment.items():
        nearest = min(lat[city][c] for c in shard_map.controllers)
        assert lat[city][home] == pytest.approx(nearest)
    # A controller city is its own region (distance 0 beats everyone).
    for controller in shard_map.controllers:
        assert shard_map.region_of(controller) == controller


def test_shard_map_regions_partition_the_cities():
    shard_map = ShardMap.build(4)
    seen: set[str] = set()
    for controller in shard_map.controllers:
        cities = shard_map.cities_of(controller)
        assert not seen & set(cities)
        seen.update(cities)
    assert seen == set(shard_map.assignment)


def test_shard_map_unknown_lookups_raise():
    shard_map = ShardMap.build(2)
    with pytest.raises(KeyError):
        shard_map.region_of("Atlantis")
    with pytest.raises(KeyError):
        shard_map.cities_of("Atlantis")
