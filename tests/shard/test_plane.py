"""Sharded control plane: channel retry/backoff, gossip, typed degradation."""

import pytest

from repro.core.signals import NcShardLease
from repro.fleet.churn import SessionSpec
from repro.fleet.manager import fleet_of
from repro.fleet.verdict import AdmissionStatus
from repro.net.events import EventScheduler
from repro.shard.plane import DELIVERED, EXPIRED, CrossShardChannel, ShardedControlPlane

LAT = {"A": {"A": 0.0, "B": 50.0}, "B": {"A": 50.0, "B": 0.0}}
CITIES = ("Seattle", "Sunnyvale", "Chicago", "New York")


def lease(shard_id="X", fence=2):
    return NcShardLease(target="peer", shard_id=shard_id, holder="h", fence=fence)


def make_plane(**kwargs):
    scheduler = EventScheduler()
    plane = ShardedControlPlane(2, fleet_of(CITIES), scheduler, **kwargs)
    return scheduler, plane


def spec(sid, source, receivers, rate=10.0):
    return SessionSpec(
        session_id=sid, source_city=source, receiver_cities=tuple(receivers), rate_mbps=rate
    )


# -- CrossShardChannel -----------------------------------------------------


def test_channel_delivers_after_wan_latency():
    scheduler = EventScheduler()
    channel = CrossShardChannel(scheduler, LAT)
    got = []
    channel.connect("B", got.append)
    delivery = channel.send("A", "B", lease())
    scheduler.run(until=1.0)
    assert delivery.status == DELIVERED
    assert delivery.delivered_at == pytest.approx(0.05)  # 50 ms WAN hop
    assert delivery.attempts == 1
    assert got == [delivery.signal]


def test_channel_retries_with_backoff_until_endpoint_ready():
    scheduler = EventScheduler()
    channel = CrossShardChannel(scheduler, LAT, base_backoff_s=0.1)
    got = []
    up = [False]
    channel.connect("B", got.append, ready=lambda: up[0])
    delivery = channel.send("A", "B", lease())
    scheduler.schedule_at(0.5, lambda: up.__setitem__(0, True))
    scheduler.run(until=5.0)
    assert delivery.status == DELIVERED
    assert delivery.attempts > 1
    assert channel.retries == delivery.attempts - 1
    # Retry spacing doubles: attempts at 0.05, +0.1, +0.2, +0.4 -> 0.75.
    assert delivery.delivered_at == pytest.approx(0.75)
    assert got == [delivery.signal]


def test_channel_expires_after_attempt_budget():
    scheduler = EventScheduler()
    channel = CrossShardChannel(scheduler, LAT, base_backoff_s=0.1, max_attempts=3)
    channel.connect("B", lambda s: None, ready=lambda: False)
    delivery = channel.send("A", "B", lease())
    scheduler.run(until=60.0)
    assert delivery.status == EXPIRED
    assert delivery.attempts == 3
    assert channel.expired == [delivery]


def test_channel_expires_on_timeout_even_with_attempts_left():
    scheduler = EventScheduler()
    channel = CrossShardChannel(
        scheduler, LAT, base_backoff_s=2.0, max_attempts=50, timeout_s=5.0
    )
    channel.connect("B", lambda s: None, ready=lambda: False)
    delivery = channel.send("A", "B", lease())
    scheduler.run(until=60.0)
    assert delivery.status == EXPIRED
    assert delivery.attempts < 50
    assert channel.expired == [delivery]


def test_channel_missing_endpoint_behaves_like_not_ready():
    scheduler = EventScheduler()
    channel = CrossShardChannel(scheduler, LAT, base_backoff_s=0.1, max_attempts=2)
    delivery = channel.send("A", "B", lease())  # nothing connected at B
    scheduler.run(until=60.0)
    assert delivery.status == EXPIRED


def test_channel_rejects_duplicate_connect_and_bad_params():
    scheduler = EventScheduler()
    channel = CrossShardChannel(scheduler, LAT)
    channel.connect("B", lambda s: None)
    with pytest.raises(ValueError):
        channel.connect("B", lambda s: None)
    with pytest.raises(ValueError):
        CrossShardChannel(scheduler, LAT, base_backoff_s=0.0)
    with pytest.raises(ValueError):
        CrossShardChannel(scheduler, LAT, max_attempts=0)
    with pytest.raises(ValueError):
        CrossShardChannel(scheduler, LAT, timeout_s=-1.0)


# -- plane homing + gossip -------------------------------------------------


def test_every_city_homes_to_a_live_shard():
    scheduler, plane = make_plane()
    assert len(plane.shards) == 2
    for i, city in enumerate(CITIES):
        home = plane.home_of(spec(i, city, [c for c in CITIES if c != city][:1]))
        assert home in plane.shards
    plane.stop()


def test_takeover_gossips_the_new_fence_to_peers():
    scheduler, plane = make_plane()
    victim, other = sorted(plane.shards)
    plane.shards[victim].replicas[0].crash()
    scheduler.run(until=5.0)
    plane.stop()
    assert len(plane.shards[victim].takeovers) == 1
    assert plane.peer_views[other] == {victim: 2}
    assert plane.peer_views[victim] == {}  # no takeover on the other shard


def test_stale_lease_announcements_are_discarded():
    scheduler, plane = make_plane()
    a, b = sorted(plane.shards)
    plane.channel.send(a, b, lease(shard_id=a, fence=3))
    plane.channel.send(a, b, lease(shard_id=a, fence=2))  # reordered stale
    scheduler.run(until=2.0)
    plane.stop()
    assert plane.peer_views[b] == {a: 3}


# -- plane retry / typed degradation --------------------------------------


def outage(plane, city):
    """Crash every replica of one shard: headless until a restore."""
    for replica in plane.shards[city].replicas:
        replica.crash()


def test_join_during_outage_is_retried_then_admitted():
    scheduler, plane = make_plane()
    home = plane.home_of(spec(1, CITIES[0], CITIES[1:2]))
    outage(plane, home)
    plane.submit(spec(1, CITIES[0], CITIES[1:2]))
    scheduler.schedule_at(0.3, plane.shards[home].replicas[0].restore)
    scheduler.run(until=20.0)
    plane.stop()
    (verdict,) = plane.verdicts
    assert verdict.status is AdmissionStatus.ADMITTED
    assert plane.stats.retries > 0
    assert plane.active_sessions == 1


def test_join_with_no_primary_ever_gets_a_typed_unavailable_verdict():
    scheduler, plane = make_plane(max_attempts=4, base_backoff_s=0.05)
    home = plane.home_of(spec(1, CITIES[0], CITIES[1:2]))
    outage(plane, home)
    plane.submit(spec(1, CITIES[0], CITIES[1:2]))
    scheduler.run(until=30.0)
    plane.stop()
    (verdict,) = plane.verdicts
    assert verdict.status is AdmissionStatus.REJECTED_UNAVAILABLE
    assert verdict.reason is not None and home in verdict.reason
    assert plane.stats.unavailable_rejections == 1
    assert plane.active_sessions == 0
    assert not plane.stats.stranded  # a typed verdict, not a strand


def test_leave_overtaking_a_delayed_join_still_drains():
    scheduler, plane = make_plane()
    s = spec(1, CITIES[0], CITIES[1:2])
    home = plane.home_of(s)
    outage(plane, home)
    plane.submit(s)  # stuck in the retry loop
    plane.depart(1)  # leave arrives while the join is still pending
    scheduler.schedule_at(0.3, plane.shards[home].replicas[0].restore)
    scheduler.run(until=20.0)
    plane.stop()
    (verdict,) = plane.verdicts
    assert verdict.status is AdmissionStatus.ADMITTED  # the join DID land...
    assert plane.departed == [1]  # ...and then undid itself
    assert plane.active_sessions == 0
    assert plane.total_vnfs == 0
    assert not plane.stats.stranded


def test_leave_during_brief_outage_is_retried_until_it_lands():
    scheduler, plane = make_plane()
    s = spec(1, CITIES[0], CITIES[1:2])
    home = plane.home_of(s)
    plane.submit(s)
    outage(plane, home)
    plane.depart(1)
    scheduler.schedule_at(0.3, plane.shards[home].replicas[0].restore)
    scheduler.run(until=20.0)
    plane.stop()
    assert plane.departed == [1]
    assert plane.active_sessions == 0
    assert not plane.stats.stranded


def test_canonical_is_stable_across_identical_runs():
    def run():
        scheduler, plane = make_plane()
        victim = sorted(plane.shards)[0]
        scheduler.schedule_at(0.4, plane.shards[victim].replicas[0].crash)
        plane.submit(spec(1, CITIES[0], CITIES[1:2]))
        plane.submit(spec(2, CITIES[2], CITIES[3:4]))
        scheduler.run(until=10.0)
        plane.stop()
        return plane.canonical()

    assert run() == run()
