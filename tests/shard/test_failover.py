"""Shard failover: takeover, state adoption, split-brain fencing."""

import pytest

from repro.fleet.churn import SessionSpec
from repro.fleet.manager import fleet_of
from repro.net.events import EventScheduler
from repro.shard.controller import ShardController

CITIES = ("Chicago", "Denver", "Kansas City")


def make_shard(**kwargs):
    scheduler = EventScheduler()
    shard = ShardController("Chicago", fleet_of(CITIES), scheduler, **kwargs)
    return scheduler, shard


def spec(sid, source="Chicago", receivers=("Denver",), rate=10.0):
    return SessionSpec(
        session_id=sid, source_city=source, receiver_cities=tuple(receivers), rate_mbps=rate
    )


def test_admit_pushes_config_at_founding_fence():
    scheduler, shard = make_shard()
    verdict = shard.try_admit(spec(1))
    assert verdict is not None and verdict.admitted
    scheduler.run(until=1.0)
    shard.stop()
    assert shard.store is not None
    touched = [dc for dc, gate in shard.store.gates.items() if gate.epoch > 0]
    assert touched  # at least one PoP got the push
    for dc in touched:
        assert shard.store.gates[dc].fence == 1  # the founding lease fence


def test_primary_crash_takes_over_without_losing_state():
    scheduler, shard = make_shard()
    for sid in (1, 2):
        verdict = shard.try_admit(spec(sid, receivers=("Denver", "Kansas City")))
        assert verdict is not None and verdict.admitted
    before_index = shard.manager.index.canonical()
    before_tables = shard.manager.forwarding_tables()
    before_epoch = shard.manager.config_epoch
    scheduler.schedule_at(1.05, shard.replicas[0].crash)
    scheduler.run(until=5.0)
    shard.stop()
    (takeover,) = shard.takeovers
    assert shard.lease.fence == 2
    assert shard.lease.holder == "Chicago#r1"
    assert takeover.successor == "Chicago#r1"
    assert takeover.deposed == "Chicago#r0"
    # No admitted state lost: same sessions, same index, same routing.
    assert shard.manager.active_sessions == 2
    assert shard.manager.index.canonical() == before_index
    assert shard.manager.forwarding_tables() == before_tables
    # Epoch resumed past the replicated high-water mark, fence installed.
    assert shard.manager.config_epoch > before_epoch
    assert shard.manager.config_fence == 2
    # The re-push reconfigured every PoP the sessions touch.
    assert takeover.pops_repushed > 0
    assert shard.store is not None
    for dc, gate in shard.store.gates.items():
        if gate.epoch > 0:
            assert gate.fence == 2


def test_takeover_mttr_within_the_recovery_envelope():
    scheduler, shard = make_shard()
    assert shard.try_admit(spec(1)) is not None
    scheduler.schedule_at(1.05, shard.replicas[0].crash)
    scheduler.run(until=5.0)
    shard.stop()
    (takeover,) = shard.takeovers
    assert takeover.mttr_s is not None
    # 2x the PR 3 relay-crash recovery envelope (~0.88 s).
    assert takeover.mttr_s <= 1.76


def test_split_brain_deposed_primary_tables_rejected():
    scheduler, shard = make_shard()
    assert shard.try_admit(spec(1)) is not None
    scheduler.schedule_at(1.05, shard.replicas[0].crash)
    scheduler.run(until=5.0)
    assert shard.takeovers, "takeover must have happened"
    assert shard.store is not None
    rejected_before = shard.store.stale_rejected
    tables_before = dict(shard.store.tables)
    # The zombie: the deposed primary's manager, still wired to the bus.
    (zombie,) = shard.zombies
    assert zombie.config_fence == 1
    # Let its private epoch run far ahead — fencing must still win.
    for _ in range(5):
        zombie.republish_config()
    scheduler.run(until=8.0)
    shard.stop()
    assert zombie.config_epoch > shard.manager.config_epoch
    assert shard.store.stale_rejected > rejected_before
    assert shard.store.tables == tables_before  # nothing zombie-written


def test_restored_replica_rejoins_as_standby_and_can_take_over_again():
    scheduler, shard = make_shard()
    assert shard.try_admit(spec(1)) is not None
    scheduler.schedule_at(1.05, shard.replicas[0].crash)
    scheduler.schedule_at(3.0, shard.replicas[0].restore)
    scheduler.run(until=4.0)
    assert shard.lease.holder == "Chicago#r1"
    assert shard.replicas[0].alive  # back, but deposed: a standby now
    scheduler.schedule_at(4.5, shard.replicas[1].crash)
    scheduler.run(until=8.0)
    shard.stop()
    assert len(shard.takeovers) == 2
    assert shard.lease.holder == "Chicago#r0"
    assert shard.lease.fence == 3
    assert shard.manager.active_sessions == 1


def test_dual_failure_waits_for_any_restore_then_takes_over():
    scheduler, shard = make_shard()
    assert shard.try_admit(spec(1)) is not None
    scheduler.schedule_at(1.0, shard.replicas[1].crash)  # standby dies first
    scheduler.schedule_at(1.05, shard.replicas[0].crash)  # then the primary
    scheduler.run(until=4.0)
    assert shard.awaiting_successor
    assert not shard.has_primary
    assert not shard.takeovers
    scheduler.schedule_at(4.5, shard.replicas[1].restore)
    scheduler.run(until=6.0)
    shard.stop()
    (takeover,) = shard.takeovers
    assert takeover.successor == "Chicago#r1"
    assert shard.has_primary
    assert shard.manager.active_sessions == 1


def test_dual_failure_incumbent_restore_keeps_the_lease():
    scheduler, shard = make_shard()
    scheduler.schedule_at(1.0, shard.replicas[1].crash)
    scheduler.schedule_at(1.05, shard.replicas[0].crash)
    scheduler.run(until=4.0)
    assert shard.awaiting_successor
    scheduler.schedule_at(4.5, shard.replicas[0].restore)  # incumbent first
    scheduler.run(until=8.0)
    shard.stop()
    assert not shard.takeovers  # no succession: state never moved
    assert shard.lease.fence == 1
    assert shard.lease.holder == "Chicago#r0"
    assert shard.has_primary


def test_brief_outage_under_detection_threshold_is_a_non_event():
    scheduler, shard = make_shard()
    assert shard.try_admit(spec(1)) is not None
    scheduler.schedule_at(1.05, shard.replicas[0].crash)
    scheduler.schedule_at(1.35, shard.replicas[0].restore)  # back before deadline
    scheduler.run(until=5.0)
    shard.stop()
    assert not shard.takeovers
    assert shard.lease.fence == 1
    assert shard.manager.active_sessions == 1


def test_headless_shard_returns_none_for_every_operation():
    scheduler, shard = make_shard()
    assert shard.try_admit(spec(1)) is not None
    shard.replicas[0].crash()
    assert shard.try_admit(spec(2)) is None
    assert shard.try_depart(1) is None
    assert shard.try_replan(1) is None
    shard.stop()


def test_replan_after_takeover_rebuilds_the_lp_lazily():
    scheduler, shard = make_shard()
    assert shard.try_admit(spec(1, receivers=("Denver", "Kansas City"))) is not None
    scheduler.schedule_at(1.05, shard.replicas[0].crash)
    scheduler.run(until=5.0)
    assert shard.takeovers
    # The successor's manager has no cached LP for the adopted session;
    # the replan must rebuild it from the spec and still carry the rate.
    verdict = shard.try_replan(1)
    assert verdict is not None and verdict.admitted
    assert verdict.lambda_mbps == pytest.approx(10.0)
    shard.stop()


def test_shard_requires_at_least_one_replica():
    scheduler = EventScheduler()
    with pytest.raises(ValueError):
        ShardController("Chicago", fleet_of(CITIES), scheduler, replicas=0)
