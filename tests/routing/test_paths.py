"""Delay-bounded path enumeration tests (§IV-A DFS)."""

import networkx as nx
import pytest

from repro.routing import Path, enumerate_feasible_paths, path_delay_ms
from repro.routing.paths import feasible_path_sets


class TestEnumeration:
    def test_all_paths_within_bound(self, small_graph):
        paths = enumerate_feasible_paths(small_graph, "s", "t", max_delay_ms=100.0)
        assert {p.nodes for p in paths} == {("s", "a", "t"), ("s", "b", "t"), ("s", "t")}

    def test_delay_pruning(self, small_graph):
        paths = enumerate_feasible_paths(small_graph, "s", "t", max_delay_ms=25.0)
        assert {p.nodes for p in paths} == {("s", "a", "t")}  # 20 ms; others are 35/50

    def test_no_feasible_paths(self, small_graph):
        assert enumerate_feasible_paths(small_graph, "s", "t", max_delay_ms=5.0) == []

    def test_relay_restriction(self, small_graph):
        paths = enumerate_feasible_paths(small_graph, "s", "t", 100.0, relay_nodes={"a"})
        assert {p.nodes for p in paths} == {("s", "a", "t"), ("s", "t")}

    def test_max_hops(self, small_graph):
        paths = enumerate_feasible_paths(small_graph, "s", "t", 100.0, max_hops=1)
        assert {p.nodes for p in paths} == {("s", "t")}

    def test_no_cycles(self):
        g = nx.DiGraph()
        g.add_edge("s", "a", delay_ms=1.0)
        g.add_edge("a", "b", delay_ms=1.0)
        g.add_edge("b", "a", delay_ms=1.0)
        g.add_edge("b", "t", delay_ms=1.0)
        paths = enumerate_feasible_paths(g, "s", "t", 100.0)
        assert {p.nodes for p in paths} == {("s", "a", "b", "t")}

    def test_sorted_by_delay(self, small_graph):
        paths = enumerate_feasible_paths(small_graph, "s", "t", 100.0)
        delays = [p.delay_ms for p in paths]
        assert delays == sorted(delays)

    def test_source_equals_destination_rejected(self, small_graph):
        with pytest.raises(ValueError):
            enumerate_feasible_paths(small_graph, "s", "s", 100.0)

    def test_butterfly_path_count(self, butterfly_graph):
        paths = enumerate_feasible_paths(
            butterfly_graph, "V1", "O2", 250.0, relay_nodes={"O1", "C1", "T", "V2"}
        )
        # O1->O2 direct relay, O1->T->V2->O2, C1->T->V2->O2.
        assert {p.nodes for p in paths} == {
            ("V1", "O1", "O2"),
            ("V1", "O1", "T", "V2", "O2"),
            ("V1", "C1", "T", "V2", "O2"),
        }


class TestPathObject:
    def test_cached_delay_correct(self, small_graph):
        paths = enumerate_feasible_paths(small_graph, "s", "t", 100.0)
        for p in paths:
            assert p.delay_ms == pytest.approx(path_delay_ms(small_graph, p.nodes))

    def test_edges_and_relays(self):
        p = Path(nodes=("s", "a", "t"), delay_ms=20.0)
        assert p.edges == (("s", "a"), ("a", "t"))
        assert p.relays() == ("a",)
        assert p.hops == 2
        assert not p.is_direct

    def test_direct_path(self):
        assert Path(nodes=("s", "t"), delay_ms=50.0).is_direct

    def test_missing_edge_raises(self, small_graph):
        with pytest.raises(KeyError):
            path_delay_ms(small_graph, ["s", "zz"])


class TestPathSets:
    def test_per_destination(self, small_graph):
        sets = feasible_path_sets(small_graph, "s", ["t"], 100.0)
        assert len(sets["t"]) == 3
