"""Conceptual-flow model tests (Eqn. 1 and friends)."""

import pytest

from repro.routing import ConceptualFlow, FlowDecomposition, Path, actual_link_rates


def path(*nodes, delay=10.0):
    return Path(nodes=tuple(nodes), delay_ms=delay)


@pytest.fixture
def butterfly_decomposition():
    """The max-flow solution of the all-35 butterfly at rate 70."""
    d = FlowDecomposition(session_id=1, source="V1")
    o2 = ConceptualFlow(session_id=1, receiver="O2")
    o2.add(path("V1", "O1", "O2"), 35.0)
    o2.add(path("V1", "C1", "T", "V2", "O2"), 35.0)
    c2 = ConceptualFlow(session_id=1, receiver="C2")
    c2.add(path("V1", "C1", "C2"), 35.0)
    c2.add(path("V1", "O1", "T", "V2", "C2"), 35.0)
    d.flows = {"O2": o2, "C2": c2}
    return d


class TestConceptualFlow:
    def test_rate_sums_paths(self):
        f = ConceptualFlow(session_id=1, receiver="t")
        f.add(path("s", "t"), 10.0)
        f.add(path("s", "a", "t"), 5.0)
        assert f.rate() == pytest.approx(15.0)

    def test_rate_on_edge(self):
        f = ConceptualFlow(session_id=1, receiver="t")
        f.add(path("s", "a", "t"), 5.0)
        f.add(path("s", "a", "b", "t"), 3.0)
        assert f.rate_on_edge(("s", "a")) == pytest.approx(8.0)
        assert f.rate_on_edge(("a", "t")) == pytest.approx(5.0)

    def test_negative_rate_rejected(self):
        f = ConceptualFlow(session_id=1, receiver="t")
        with pytest.raises(ValueError):
            f.add(path("s", "t"), -1.0)

    def test_used_paths(self):
        f = ConceptualFlow(session_id=1, receiver="t")
        f.add(path("s", "t"), 0.0)
        f.add(path("s", "a", "t"), 2.0)
        assert [p.nodes for p in f.used_paths()] == [("s", "a", "t")]


class TestEqnOne:
    def test_max_not_sum_across_receivers(self, butterfly_decomposition):
        # V1->O1 carries O2's 35 and C2's 35; coded rate is max = 35.
        rates = butterfly_decomposition.link_rates()
        assert rates[("V1", "O1")] == pytest.approx(35.0)
        assert rates[("T", "V2")] == pytest.approx(35.0)

    def test_sum_within_receiver(self):
        d = FlowDecomposition(session_id=1, source="s")
        f = ConceptualFlow(session_id=1, receiver="t")
        f.add(path("s", "a", "t"), 5.0)
        f.add(path("s", "a", "b", "t"), 3.0)
        d.flows = {"t": f}
        assert d.link_rates()[("s", "a")] == pytest.approx(8.0)

    def test_throughput_is_min_over_receivers(self, butterfly_decomposition):
        assert butterfly_decomposition.throughput() == pytest.approx(70.0)
        butterfly_decomposition.flows["O2"].path_rates.clear()
        butterfly_decomposition.flows["O2"].add(path("V1", "O1", "O2"), 35.0)
        assert butterfly_decomposition.throughput() == pytest.approx(35.0)

    def test_empty_session_zero(self):
        assert FlowDecomposition(session_id=1, source="s").throughput() == 0.0


class TestCodingPoints:
    def test_butterfly_codes_at_merge_points(self, butterfly_decomposition):
        points = butterfly_decomposition.coding_points()
        assert "T" in points  # two incoming used links (O1->T? no: C1->T and O1->T)

    def test_single_path_no_coding(self):
        d = FlowDecomposition(session_id=1, source="s")
        f = ConceptualFlow(session_id=1, receiver="t")
        f.add(path("s", "a", "t"), 5.0)
        d.flows = {"t": f}
        assert d.coding_points() == set()


class TestValidation:
    def test_valid_decomposition_passes(self, butterfly_decomposition):
        butterfly_decomposition.validate(bandwidth_of=lambda e: 35.0)

    def test_capacity_violation_detected(self, butterfly_decomposition):
        with pytest.raises(ValueError):
            butterfly_decomposition.validate(bandwidth_of=lambda e: 30.0)

    def test_wrong_endpoint_detected(self):
        d = FlowDecomposition(session_id=1, source="s")
        f = ConceptualFlow(session_id=1, receiver="t")
        f.add(path("x", "t"), 1.0)
        d.flows = {"t": f}
        with pytest.raises(ValueError):
            d.validate()


class TestAggregation:
    def test_sessions_add(self, butterfly_decomposition):
        total = actual_link_rates([butterfly_decomposition, butterfly_decomposition])
        assert total[("V1", "O1")] == pytest.approx(70.0)
