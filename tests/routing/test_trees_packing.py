"""Multicast tree and tree-packing tests: the routing-only baselines."""

import networkx as nx
import pytest

from repro.routing import (
    best_multicast_tree,
    candidate_trees,
    multicast_capacity,
    tree_packing_rate,
    tree_packing_solution,
    tree_throughput,
)


class TestSingleTree:
    def test_butterfly_best_tree(self, butterfly_graph):
        edges, rate = best_multicast_tree(
            butterfly_graph, "V1", ["O2", "C2"], relay_nodes={"O1", "C1", "T", "V2"}
        )
        assert rate == pytest.approx(35.0)  # every link is 35: any tree bottlenecks there
        assert edges

    def test_tree_throughput_is_bottleneck(self, small_graph):
        edges = {("s", "a"), ("a", "t")}
        assert tree_throughput(small_graph, edges) == pytest.approx(25.0)

    def test_no_tree_when_unreachable(self):
        g = nx.DiGraph()
        g.add_edge("s", "a", capacity_mbps=1.0)
        g.add_node("t")
        edges, rate = best_multicast_tree(g, "s", ["t"])
        assert rate == 0.0 and edges == set()

    def test_empty_destinations_rejected(self, small_graph):
        with pytest.raises(ValueError):
            best_multicast_tree(small_graph, "s", [])

    def test_unicast_picks_widest_path(self, small_graph):
        _, rate = best_multicast_tree(small_graph, "s", ["t"])
        assert rate == pytest.approx(30.0)  # s->b->t is the widest single path


class TestTreePacking:
    def test_butterfly_packing_is_52_5(self, butterfly_graph):
        # The classic result: routing alone reaches 1.5 per unit capacity
        # (52.5 Mbps) where coding reaches 2 (70 Mbps).
        rate = tree_packing_rate(butterfly_graph, "V1", ["O2", "C2"], relay_nodes={"O1", "C1", "T", "V2"})
        assert rate == pytest.approx(52.5, rel=1e-6)

    def test_packing_between_tree_and_capacity(self, butterfly_graph):
        relays = {"O1", "C1", "T", "V2"}
        _, single = best_multicast_tree(butterfly_graph, "V1", ["O2", "C2"], relay_nodes=relays)
        packing = tree_packing_rate(butterfly_graph, "V1", ["O2", "C2"], relay_nodes=relays)
        coding = multicast_capacity(butterfly_graph, "V1", ["O2", "C2"])
        assert single <= packing <= coding
        assert packing < coding  # the butterfly's raison d'être

    def test_unicast_packing_equals_maxflow(self, small_graph):
        # For one receiver, tree packing = path packing = max flow.
        rate = tree_packing_rate(small_graph, "s", ["t"])
        assert rate == pytest.approx(65.0)

    def test_solution_respects_capacities(self, butterfly_graph):
        solution = tree_packing_solution(
            butterfly_graph, "V1", ["O2", "C2"], relay_nodes={"O1", "C1", "T", "V2"}
        )
        assert solution
        load = {}
        for edges, rate in solution:
            assert rate > 0
            for e in edges:
                load[e] = load.get(e, 0.0) + rate
        for e, total in load.items():
            assert total <= butterfly_graph.edges[e]["capacity_mbps"] + 1e-6

    def test_solution_total_matches_rate(self, butterfly_graph):
        relays = {"O1", "C1", "T", "V2"}
        solution = tree_packing_solution(butterfly_graph, "V1", ["O2", "C2"], relay_nodes=relays)
        total = sum(rate for _, rate in solution)
        assert total == pytest.approx(52.5, rel=1e-6)

    def test_each_tree_spans_receivers(self, butterfly_graph):
        relays = {"O1", "C1", "T", "V2"}
        for edges, _ in tree_packing_solution(butterfly_graph, "V1", ["O2", "C2"], relay_nodes=relays):
            g = nx.DiGraph(list(edges))
            for dst in ("O2", "C2"):
                assert nx.has_path(g, "V1", dst)

    def test_no_trees_when_unreachable(self):
        g = nx.DiGraph()
        g.add_edge("s", "a", capacity_mbps=1.0, delay_ms=1.0)
        g.add_node("t")
        assert tree_packing_rate(g, "s", ["t"]) == 0.0
        assert tree_packing_solution(g, "s", ["t"]) == []


class TestCandidates:
    def test_candidates_are_path_unions(self, small_graph):
        trees = candidate_trees(small_graph, "s", ["t"])
        assert frozenset({("s", "t")}) in trees
        assert all(isinstance(t, frozenset) for t in trees)

    def test_delay_bound_prunes(self, small_graph):
        trees = candidate_trees(small_graph, "s", ["t"], max_delay_ms=25.0)
        assert trees == [frozenset({("s", "a"), ("a", "t")})]
