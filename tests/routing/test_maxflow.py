"""Max-flow and multicast-capacity tests."""

import networkx as nx
import pytest

from repro.routing import max_flow, multicast_capacity


class TestMaxFlow:
    def test_single_edge(self):
        g = nx.DiGraph()
        g.add_edge("s", "t", capacity_mbps=10.0)
        assert max_flow(g, "s", "t") == pytest.approx(10.0)

    def test_diamond(self, small_graph):
        # s->a->t: min(40,25)=25; s->b->t: min(30,35)=30; direct 10 => 65.
        assert max_flow(small_graph, "s", "t") == pytest.approx(65.0)

    def test_matches_networkx(self, butterfly_graph):
        for dst in ("O2", "C2"):
            ours = max_flow(butterfly_graph, "V1", dst)
            theirs = nx.maximum_flow_value(butterfly_graph, "V1", dst, capacity="capacity_mbps")
            assert ours == pytest.approx(theirs)

    def test_disconnected(self):
        g = nx.DiGraph()
        g.add_edge("s", "a", capacity_mbps=1.0)
        g.add_node("t")
        assert max_flow(g, "s", "t") == 0.0

    def test_unknown_node(self):
        g = nx.DiGraph()
        g.add_edge("s", "t", capacity_mbps=1.0)
        assert max_flow(g, "s", "zz") == 0.0

    def test_antiparallel_edges(self):
        g = nx.DiGraph()
        g.add_edge("s", "a", capacity_mbps=10.0)
        g.add_edge("a", "s", capacity_mbps=3.0)
        g.add_edge("a", "t", capacity_mbps=8.0)
        assert max_flow(g, "s", "t") == pytest.approx(8.0)

    def test_same_node_rejected(self):
        g = nx.DiGraph()
        with pytest.raises(ValueError):
            max_flow(g, "s", "s")

    def test_negative_capacity_rejected(self):
        g = nx.DiGraph()
        g.add_edge("s", "t", capacity_mbps=-1.0)
        with pytest.raises(ValueError):
            max_flow(g, "s", "t")


class TestMulticastCapacity:
    def test_butterfly_is_70(self, butterfly_graph):
        # The all-35 butterfly codes at 70 Mbps (paper's bound: 69.9 on
        # the real testbed).
        assert multicast_capacity(butterfly_graph, "V1", ["O2", "C2"]) == pytest.approx(70.0)

    def test_min_over_receivers(self, small_graph):
        g = small_graph.copy()
        g.add_edge("a", "t2", capacity_mbps=5.0, delay_ms=1.0)
        assert multicast_capacity(g, "s", ["t", "t2"]) == pytest.approx(5.0)

    def test_unicast_special_case(self, small_graph):
        assert multicast_capacity(small_graph, "s", ["t"]) == max_flow(small_graph, "s", "t")

    def test_empty_receivers_rejected(self, small_graph):
        with pytest.raises(ValueError):
            multicast_capacity(small_graph, "s", [])
