"""repro — virtualized network coding functions on the Internet.

A full reproduction of Zhang et al., ICDCS 2017 (DOI
10.1109/ICDCS.2017.95): randomized linear network coding deployed as a
virtual network function across geo-distributed cloud data centers,
with a conceptual-flow deployment optimizer and dynamic scaling.

Public surface (see the package docstrings for detail):

- :mod:`repro.rlnc` — the codec (encoder / recoder / decoder / header);
- :mod:`repro.gf` — GF(2^w) arithmetic the codec runs on;
- :mod:`repro.core` — sessions, problem (2), controller, scaling, VNFs;
- :mod:`repro.net`, :mod:`repro.cloud` — simulated network and cloud;
- :mod:`repro.routing`, :mod:`repro.lp` — graph and LP machinery;
- :mod:`repro.baselines`, :mod:`repro.apps` — comparison systems and
  the driver applications;
- :mod:`repro.experiments` — the butterfly testbed and the six-DC
  dynamic scenario behind the paper's figures;
- :mod:`repro.functions` — pluggable relay functions (the paper's
  modularization direction);
- :mod:`repro.cli` — ``python -m repro.cli`` experiment runner.
"""

from repro.core import Controller, MulticastSession, ScalingEngine
from repro.core.deployment import DataCenterSpec, DeploymentProblem
from repro.gf import GF256
from repro.rlnc import Decoder, Encoder, Recoder, reassemble, segment

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "GF256",
    "Encoder",
    "Recoder",
    "Decoder",
    "segment",
    "reassemble",
    "MulticastSession",
    "Controller",
    "ScalingEngine",
    "DeploymentProblem",
    "DataCenterSpec",
]
