"""Surplus-capacity index: O(plan) admission bookkeeping.

The whole point of the fleet layer is that admitting a small session
must not touch the plans of sessions it does not compete with.  The
index keeps the aggregate state a delta solve needs — residual
capacity per shared WAN edge, aggregate in/out load and live VNF
count per data center — and updates it in time proportional to the
*new session's* plan, never the fleet size.

``rebuild()`` recomputes the same state from scratch out of the stored
plans; the property tests drive the incremental and rebuilt paths in
lockstep to prove they never diverge.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.routing.paths import Path

Edge = tuple[str, str]

#: Guard against float-noise ceilings: ceil(x/c - _CEIL_EPS).
_CEIL_EPS = 1e-9


@dataclass(frozen=True)
class FleetDataCenter:
    """Per-VNF capacity profile of one candidate PoP data center."""

    name: str
    inbound_mbps: float
    outbound_mbps: float
    coding_mbps: float
    max_vnfs: int = 64

    def __post_init__(self) -> None:
        if min(self.inbound_mbps, self.outbound_mbps, self.coding_mbps) <= 0:
            raise ValueError(f"{self.name}: per-VNF caps must be positive")
        if self.max_vnfs <= 0:
            raise ValueError(f"{self.name}: VNF quota must be positive")

    @property
    def in_cap_mbps(self) -> float:
        """Effective per-VNF inbound capacity: min(B_in, C) (2c ∧ 2e)."""
        return min(self.inbound_mbps, self.coding_mbps)


@dataclass(frozen=True)
class FleetPlan:
    """One admitted session's routed flows, as the index consumes them."""

    session_id: int
    lambda_mbps: float
    #: (receiver host, path, conceptual-flow rate) with rate > 0.
    path_rates: tuple[tuple[str, Path, float], ...]
    #: (edge, actual coded rate) with rate > 0; covers host + WAN edges.
    edge_rates: tuple[tuple[Edge, float], ...]

    def edges(self) -> tuple[Edge, ...]:
        return tuple(edge for edge, _ in self.edge_rates)

    def datacenters(self, dc_names: frozenset[str]) -> tuple[str, ...]:
        """Sorted data centers this plan routes through."""
        touched = {n for edge, _ in self.edge_rates for n in edge if n in dc_names}
        return tuple(sorted(touched))


class SurplusIndex:
    """Residual capacity and VNF load, maintained incrementally."""

    def __init__(
        self,
        edge_caps: Mapping[Edge, float],
        datacenters: Mapping[str, FleetDataCenter],
    ) -> None:
        self.edge_caps: dict[Edge, float] = dict(edge_caps)
        self.datacenters: dict[str, FleetDataCenter] = dict(datacenters)
        self.edge_load: dict[Edge, float] = {}
        self.dc_in: dict[str, float] = {}
        self.dc_out: dict[str, float] = {}
        self.vnfs: dict[str, int] = {}

    # -- queries the delta LP patches its rhs from -----------------------

    def residual(self, edge: Edge) -> float:
        """Spare capacity on a shared WAN edge (clamped at 0)."""
        cap = self.edge_caps.get(edge)
        if cap is None:
            raise KeyError(f"{edge} is not a shared edge")
        return max(0.0, cap - self.edge_load.get(edge, 0.0))

    def slack_in(self, dc: str) -> float:
        """Inbound Mbps the DC's *live* VNFs can still absorb."""
        spec = self.datacenters[dc]
        slack = self.vnfs.get(dc, 0) * spec.in_cap_mbps - self.dc_in.get(dc, 0.0)
        return max(0.0, slack)

    def slack_out(self, dc: str) -> float:
        """Outbound Mbps the DC's live VNFs can still emit."""
        spec = self.datacenters[dc]
        slack = self.vnfs.get(dc, 0) * spec.outbound_mbps - self.dc_out.get(dc, 0.0)
        return max(0.0, slack)

    def vnf_headroom(self, dc: str) -> int:
        """VNFs that could still be launched under the quota."""
        return max(0, self.datacenters[dc].max_vnfs - self.vnfs.get(dc, 0))

    def required_vnfs(self, dc: str) -> int:
        """Minimum VNFs the DC's current aggregate load needs."""
        spec = self.datacenters[dc]
        inbound = self.dc_in.get(dc, 0.0)
        outbound = self.dc_out.get(dc, 0.0)
        required = max(
            math.ceil(inbound / spec.in_cap_mbps - _CEIL_EPS),
            math.ceil(outbound / spec.outbound_mbps - _CEIL_EPS),
        )
        return max(0, required)

    # -- O(plan) mutation -------------------------------------------------

    def apply(self, plan: FleetPlan) -> None:
        """Charge a newly admitted plan's flows to the index."""
        for edge, rate in plan.edge_rates:
            if edge in self.edge_caps:
                self.edge_load[edge] = self.edge_load.get(edge, 0.0) + rate
            src, dst = edge
            if dst in self.datacenters:
                self.dc_in[dst] = self.dc_in.get(dst, 0.0) + rate
            if src in self.datacenters:
                self.dc_out[src] = self.dc_out.get(src, 0.0) + rate

    def release(self, plan: FleetPlan) -> None:
        """Return a departing plan's flows to the surplus pool."""
        for edge, rate in plan.edge_rates:
            if edge in self.edge_caps:
                self.edge_load[edge] = max(0.0, self.edge_load.get(edge, 0.0) - rate)
            src, dst = edge
            if dst in self.datacenters:
                self.dc_in[dst] = max(0.0, self.dc_in.get(dst, 0.0) - rate)
            if src in self.datacenters:
                self.dc_out[src] = max(0.0, self.dc_out.get(src, 0.0) - rate)

    def rebuild(self, plans: Iterable[FleetPlan]) -> None:
        """Recompute loads from scratch (the cold-mode oracle path).

        VNF counts are reset to the exact requirement of the rebuilt
        load — the state a fresh controller would arrive at.
        """
        self.edge_load = {}
        self.dc_in = {}
        self.dc_out = {}
        for plan in plans:
            self.apply(plan)
        self.vnfs = {dc: self.required_vnfs(dc) for dc in self.datacenters}
        self.vnfs = {dc: n for dc, n in self.vnfs.items() if n > 0}

    # -- state export -----------------------------------------------------

    def canonical(self) -> tuple[tuple[str, ...], ...]:
        """Deterministic state tuple for fingerprints and equivalence.

        Loads are quantized to 1e-6 Mbps: incremental apply/release is
        not bitwise reversible ((a + x) - x can differ from a in the
        last ulp), so comparing raw floats against a from-scratch
        rebuild would flag pure rounding noise as state drift.
        """

        def q(value: float) -> float:
            return round(value, 6) + 0.0  # +0.0 folds -0.0 into 0.0

        edges = tuple(
            f"{a}->{b}={q(self.edge_load[(a, b)])!r}"
            for a, b in sorted(self.edge_load)
            if self.edge_load[(a, b)] > 1e-9
        )
        dcs = tuple(
            f"{dc}:in={q(self.dc_in.get(dc, 0.0))!r}:out={q(self.dc_out.get(dc, 0.0))!r}:x={self.vnfs.get(dc, 0)}"
            for dc in sorted(self.datacenters)
        )
        return (edges, dcs)

    @property
    def total_vnfs(self) -> int:
        return sum(self.vnfs.values())
