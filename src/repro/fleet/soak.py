"""Seeded churn soak with SHA-256 replay fingerprints.

Mirrors :mod:`repro.experiments.chaos`: every soak run is summarized
into a canonical tuple — one record per churn event (time, kind,
session, typed outcome, achieved rate, config epoch) plus the final
surplus-index state — and hashed.  Replaying the same seed must
produce a bit-identical fingerprint; any divergence means a
nondeterminism bug in the admission path, which is exactly the class
of failure that silently corrupts fleet experiments.

The contract is *complete-or-typed*: every join ends in a typed
verdict, every leave drains, and the fleet returns to empty when the
trace does.  An exception or a non-empty fleet at the end is an
``incomplete-untyped`` outcome — a contract violation the tests fail
on, never a shrug.

CLI::

    python -m repro.fleet.soak --seeds 30 --replay --json fleet_soak.json
"""

from __future__ import annotations

import argparse
import hashlib
import json
from dataclasses import asdict, dataclass

from repro.fleet.capacity import FleetDataCenter
from repro.fleet.churn import JOIN, ChurnTrace
from repro.fleet.manager import INCREMENTAL, FleetManager, fleet_of
from repro.fleet.verdict import AdmissionStatus

#: Spread PoPs used as default soak data centers.
SOAK_DC_CITIES: tuple[str, ...] = (
    "Seattle",
    "Sunnyvale",
    "Denver",
    "Chicago",
    "Houston",
    "Atlanta",
    "New York",
    "Washington",
)

COMPLETE = "complete"
TYPED_REJECTIONS = "complete-with-rejections"
INCOMPLETE = "incomplete-untyped"


@dataclass(frozen=True)
class FleetSoakOutcome:
    """One seed's soak result, summarized for aggregation and JSON."""

    seed: int
    events: int
    admitted: int
    rejected_capacity: int
    rejected_infeasible: int
    departed: int
    final_sessions: int
    final_vnfs: int
    peak_sessions: int
    warm_hits: int
    lp_solves: int
    outcome: str
    fingerprint: str


def _soak_manager(n_datacenters: int, mode: str) -> FleetManager:
    cities = SOAK_DC_CITIES[: max(1, min(n_datacenters, len(SOAK_DC_CITIES)))]
    datacenters: list[FleetDataCenter] = fleet_of(
        cities, inbound_mbps=120.0, outbound_mbps=120.0, coding_mbps=108.0, max_vnfs=2
    )
    return FleetManager(datacenters, mode=mode)


def run_fleet_soak(
    seed: int,
    *,
    n_datacenters: int = 5,
    duration_s: float = 40.0,
    arrival_rate_per_s: float = 1.5,
    mean_holding_s: float = 15.0,
    mode: str = INCREMENTAL,
) -> FleetSoakOutcome:
    """Drive one seeded churn trace through a fresh fleet manager.

    The delay choices include a 16 ms tier that cross-country pairs
    cannot meet and the DC quotas are deliberately tight, so typed
    rejections (both kinds) are a *normal* soak outcome — the contract
    under test is that every outcome is typed, not that every join
    succeeds.
    """
    trace = ChurnTrace.generate(
        seed,
        duration_s=duration_s,
        arrival_rate_per_s=arrival_rate_per_s,
        mean_holding_s=mean_holding_s,
        delay_choices_ms=(16.0, 80.0),
    )
    manager = _soak_manager(n_datacenters, mode)
    digest = hashlib.sha256()
    admitted = rejected_cap = rejected_inf = departed = peak = 0
    try:
        records = trace.drive(manager)
    except Exception as exc:  # noqa: BLE001 — a crash IS the finding
        return FleetSoakOutcome(
            seed=seed,
            events=len(trace.events),
            admitted=0,
            rejected_capacity=0,
            rejected_infeasible=0,
            departed=0,
            final_sessions=-1,
            final_vnfs=-1,
            peak_sessions=0,
            warm_hits=0,
            lp_solves=0,
            outcome=f"{INCOMPLETE}: {type(exc).__name__}: {exc}",
            fingerprint="",
        )
    live: set[int] = set()
    for event, verdict in records:
        if verdict is None:
            departed += 1
            live.discard(event.session_id)
            canonical = (repr(event.time_s), event.kind, event.session_id, "departed")
        else:
            if verdict.status is AdmissionStatus.ADMITTED:
                admitted += 1
                live.add(event.session_id)
            elif verdict.status is AdmissionStatus.REJECTED_CAPACITY:
                rejected_cap += 1
            else:
                rejected_inf += 1
            canonical = (repr(event.time_s), event.kind, event.session_id, repr(verdict.canonical()))
        digest.update(repr(canonical).encode())
        peak = max(peak, len(live))
    digest.update(repr(manager.index.canonical()).encode())
    digest.update(repr(manager.config_epoch).encode())
    drained = manager.active_sessions == 0 and manager.index.total_vnfs == 0
    joins = sum(1 for ev in trace.events if ev.kind == JOIN)
    typed = admitted + rejected_cap + rejected_inf == joins
    if drained and typed and (rejected_cap or rejected_inf):
        outcome = TYPED_REJECTIONS
    elif drained and typed:
        outcome = COMPLETE
    else:
        outcome = INCOMPLETE
    return FleetSoakOutcome(
        seed=seed,
        events=len(trace.events),
        admitted=admitted,
        rejected_capacity=rejected_cap,
        rejected_infeasible=rejected_inf,
        departed=departed,
        final_sessions=manager.active_sessions,
        final_vnfs=manager.index.total_vnfs,
        peak_sessions=peak,
        warm_hits=manager.warm_hits,
        lp_solves=manager.lp_solves,
        outcome=outcome,
        fingerprint=digest.hexdigest(),
    )


def run_churn_soak(
    seeds: int = 30,
    *,
    replay: bool = False,
    mode: str = INCREMENTAL,
    n_datacenters: int = 5,
) -> list[FleetSoakOutcome]:
    """Soak ``seeds`` traces; with ``replay``, verify bit-identical reruns."""
    outcomes: list[FleetSoakOutcome] = []
    for seed in range(seeds):
        outcome = run_fleet_soak(seed, n_datacenters=n_datacenters, mode=mode)
        if replay:
            again = run_fleet_soak(seed, n_datacenters=n_datacenters, mode=mode)
            if again.fingerprint != outcome.fingerprint:
                raise AssertionError(
                    f"seed {seed}: replay fingerprint diverged "
                    f"({outcome.fingerprint[:12]}… vs {again.fingerprint[:12]}…)"
                )
        outcomes.append(outcome)
    return outcomes


def soak_summary(outcomes: list[FleetSoakOutcome]) -> dict[str, object]:
    """Aggregate counts for reporting and the CI JSON artifact."""
    return {
        "seeds": len(outcomes),
        "complete": sum(1 for o in outcomes if o.outcome == COMPLETE),
        "complete_with_rejections": sum(1 for o in outcomes if o.outcome == TYPED_REJECTIONS),
        "incomplete_untyped": sum(1 for o in outcomes if o.outcome.startswith(INCOMPLETE)),
        "admitted": sum(o.admitted for o in outcomes),
        "rejected_capacity": sum(o.rejected_capacity for o in outcomes),
        "rejected_infeasible": sum(o.rejected_infeasible for o in outcomes),
        "peak_sessions": max((o.peak_sessions for o in outcomes), default=0),
        "warm_hits": sum(o.warm_hits for o in outcomes),
        "lp_solves": sum(o.lp_solves for o in outcomes),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="fleet churn soak")
    parser.add_argument("--seeds", type=int, default=30)
    parser.add_argument("--replay", action="store_true", help="verify bit-identical replay")
    parser.add_argument("--mode", choices=("incremental", "cold"), default="incremental")
    parser.add_argument("--datacenters", type=int, default=5)
    parser.add_argument("--json", type=str, default=None, help="write outcomes to this path")
    args = parser.parse_args(argv)
    outcomes = run_churn_soak(
        args.seeds, replay=args.replay, mode=args.mode, n_datacenters=args.datacenters
    )
    summary = soak_summary(outcomes)
    for key, value in summary.items():
        print(f"{key}: {value}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(
                {"summary": summary, "outcomes": [asdict(o) for o in outcomes]}, fh, indent=2
            )
    violations = sum(1 for o in outcomes if o.outcome.startswith(INCOMPLETE))
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
