"""Seeded Poisson churn: session arrivals/departures driving Alg. 3.

Arrivals are a Poisson process (exponential inter-arrival times),
holding times are exponential, and every random choice flows from
:func:`repro.util.rng.derive_rng` under a single trace seed — the same
trace replays bit-identically, which is what the soak fingerprints
assert.  Departure events for sessions still alive at the horizon are
kept so a driven fleet always drains back to empty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.util.rng import derive_rng

if TYPE_CHECKING:
    from repro.fleet.manager import FleetManager
    from repro.fleet.verdict import AdmissionVerdict

JOIN = "join"
LEAVE = "leave"

#: Default PoP cities hosts spawn in (a spread subset of OS3E).
DEFAULT_CITIES: tuple[str, ...] = (
    "Seattle",
    "Sunnyvale",
    "Los Angeles",
    "Salt Lake City",
    "Denver",
    "Kansas City",
    "Dallas",
    "Houston",
    "Chicago",
    "Minneapolis",
    "Atlanta",
    "Nashville",
    "New York",
    "Washington",
    "Boston",
    "Miami",
)


@dataclass(frozen=True)
class SessionSpec:
    """What a tenant asks for: endpoints (as PoP cities), rate, delay."""

    session_id: int
    source_city: str
    receiver_cities: tuple[str, ...]
    rate_mbps: float
    max_delay_ms: float = 100.0

    def __post_init__(self) -> None:
        if not self.receiver_cities:
            raise ValueError("a session needs at least one receiver")
        if self.rate_mbps <= 0:
            raise ValueError("rate must be positive")
        if self.max_delay_ms <= 0:
            raise ValueError("delay bound must be positive")

    def source_host(self) -> str:
        """Unique overlay node name for this session's source."""
        return f"src{self.session_id}"

    def receiver_hosts(self) -> tuple[str, ...]:
        """Unique overlay node names, parallel to ``receiver_cities``."""
        return tuple(f"rcv{self.session_id}.{i}" for i in range(len(self.receiver_cities)))

    def host_city(self, host: str) -> str:
        """The PoP city a generated host name lives in."""
        if host == self.source_host():
            return self.source_city
        prefix = f"rcv{self.session_id}."
        if host.startswith(prefix):
            return self.receiver_cities[int(host[len(prefix):])]
        raise KeyError(f"{host} is not a host of session {self.session_id}")


@dataclass(frozen=True)
class ChurnEvent:
    """One arrival or departure on the fleet timeline."""

    time_s: float
    kind: str  # JOIN | LEAVE
    session_id: int
    spec: SessionSpec | None = None


@dataclass(frozen=True)
class ChurnTrace:
    """A deterministic, replayable sequence of churn events."""

    seed: int
    events: tuple[ChurnEvent, ...]

    @classmethod
    def generate(
        cls,
        seed: int,
        *,
        duration_s: float = 60.0,
        arrival_rate_per_s: float = 1.0,
        mean_holding_s: float = 30.0,
        cities: Sequence[str] | None = None,
        rates_mbps: Sequence[float] = (5.0, 10.0, 20.0),
        receiver_range: tuple[int, int] = (1, 3),
        delay_choices_ms: Sequence[float] = (60.0, 100.0),
        start_id: int = 1,
    ) -> "ChurnTrace":
        """Draw a Poisson arrival / exponential holding churn trace."""
        if arrival_rate_per_s <= 0 or mean_holding_s <= 0 or duration_s <= 0:
            raise ValueError("rates, holding time and duration must be positive")
        pool = tuple(cities) if cities is not None else DEFAULT_CITIES
        lo, hi = receiver_range
        if not 1 <= lo <= hi < len(pool):
            raise ValueError("receiver_range must fit inside the city pool")
        rng = derive_rng("fleet.churn", seed)
        events: list[ChurnEvent] = []
        clock = 0.0
        sid = start_id
        while True:
            clock += float(rng.exponential(1.0 / arrival_rate_per_s))
            if clock >= duration_s:
                break
            k = int(rng.integers(lo, hi + 1))
            picks = rng.choice(len(pool), size=k + 1, replace=False)
            spec = SessionSpec(
                session_id=sid,
                source_city=pool[int(picks[0])],
                receiver_cities=tuple(pool[int(i)] for i in picks[1:]),
                rate_mbps=float(rng.choice(list(rates_mbps))),
                max_delay_ms=float(rng.choice(list(delay_choices_ms))),
            )
            holding = float(rng.exponential(mean_holding_s))
            events.append(ChurnEvent(clock, JOIN, sid, spec))
            events.append(ChurnEvent(clock + max(holding, 1e-6), LEAVE, sid))
            sid += 1
        # Stable order: by time, then original emission order (a leave can
        # never precede its own join because holding > 0).
        indexed = sorted(enumerate(events), key=lambda kv: (kv[1].time_s, kv[0]))
        return cls(seed=seed, events=tuple(ev for _, ev in indexed))

    @property
    def joins(self) -> tuple[ChurnEvent, ...]:
        return tuple(ev for ev in self.events if ev.kind == JOIN)

    def drive(
        self, manager: "FleetManager"
    ) -> list[tuple[ChurnEvent, "AdmissionVerdict | None"]]:
        """Apply every event in order; leaves of rejected sessions no-op."""
        records: list[tuple[ChurnEvent, AdmissionVerdict | None]] = []
        for event in self.events:
            if event.kind == JOIN:
                assert event.spec is not None
                records.append((event, manager.admit(event.spec)))
            else:
                manager.depart(event.session_id)
                records.append((event, None))
        return records
