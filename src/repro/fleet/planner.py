"""Per-session delta LP: admit one session against residual capacity.

Instead of re-solving problem (2) over the whole fleet on every join,
the fleet layer solves a *session-local* program whose only coupling to
the rest of the fleet is through the surplus index: shared-edge rows
are bounded by residual capacity, per-DC rows by the slack of live
VNFs plus however many more the quota allows.  The matrix is built
once per session; every solve only re-patches the rhs and bounds, so
the cached simplex basis from the previous solve warm-starts the next
one (see :func:`repro.lp.simplex.solve_simplex`).

Variable order (fixed, so bases transfer between same-shape solves):
``[λ, f(receiver,path)…, g(edge)…, y(dc)…]`` with receivers, paths,
edges and DCs each in sorted order.  Rows, in order:

1. per receiver: λ − Σ_p f ≤ 0                      (2a)
2. per (receiver, edge): Σ_{p∋e} f − g_e ≤ 0        (2b)
3. per shared WAN edge: g_e ≤ residual(e)           [patched]
4. per private host edge: g_e ≤ access cap
5. source outbound: Σ g ≤ cap                       (2d')
6. per receiver inbound: Σ g ≤ cap                  (2c')
7. per DC: Σ_in g − in_cap·y ≤ slack_in             (2c/2e, patched)
   and Σ_out g − out_cap·y ≤ slack_out              (2d, patched)

Objective (minimize): −M·λ + α·Σy + 1e-6·Σg + per-path rank tie-break —
the tie-break makes the optimum a *unique* vertex so warm and cold
solves land on identical routings, not merely equal objectives, and M
(set in :meth:`SessionLP.bind`) dominates every other term so α only
ranks routings and can never refuse a feasible session.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.fleet.capacity import Edge, FleetPlan, SurplusIndex
from repro.lp.simplex import FloatArray, SimplexResult, solve_simplex
from repro.routing.paths import Path

if TYPE_CHECKING:
    from repro.fleet.churn import SessionSpec

#: Rates below this are treated as zero when extracting plans.
RATE_EPS = 1e-9

Bound = tuple[float | None, float | None]


class SessionLP:
    """Matrix-form delta LP for one session over the fleet overlay."""

    def __init__(
        self,
        spec: "SessionSpec",
        path_sets: Mapping[str, Sequence[Path]],
        shared_edges: frozenset[Edge],
        dc_names: frozenset[str],
        *,
        access_mbps: float,
        source_out_mbps: float,
        receiver_in_mbps: float,
        alpha: float,
    ) -> None:
        self.spec = spec
        self.receivers: tuple[str, ...] = tuple(sorted(path_sets))
        self.paths: dict[str, tuple[Path, ...]] = {
            recv: tuple(path_sets[recv]) for recv in self.receivers
        }
        all_edges = sorted(
            {edge for paths in self.paths.values() for p in paths for edge in p.edges}
        )
        self.edges: tuple[Edge, ...] = tuple(all_edges)
        self.touched_dcs: tuple[str, ...] = tuple(
            sorted({n for edge in all_edges for n in edge if n in dc_names})
        )

        # -- column layout -------------------------------------------------
        self._path_col: dict[tuple[str, Path], int] = {}
        col = 1  # column 0 is λ
        for recv in self.receivers:
            for path in self.paths[recv]:
                self._path_col[(recv, path)] = col
                col += 1
        self._edge_col: dict[Edge, int] = {}
        for edge in self.edges:
            self._edge_col[edge] = col
            col += 1
        self._y_col: dict[str, int] = {}
        for dc in self.touched_dcs:
            self._y_col[dc] = col
            col += 1
        n = col

        # -- rows ----------------------------------------------------------
        rows: list[FloatArray] = []
        rhs: list[float] = []

        def add_row(coeffs: dict[int, float], bound: float) -> int:
            row = np.zeros(n)
            for j, v in coeffs.items():
                row[j] = v
            rows.append(row)
            rhs.append(bound)
            return len(rows) - 1

        for recv in self.receivers:
            coeffs = {0: 1.0}
            for path in self.paths[recv]:
                coeffs[self._path_col[(recv, path)]] = -1.0
            add_row(coeffs, 0.0)

        for recv in self.receivers:
            on_edge: dict[Edge, list[int]] = {}
            for path in self.paths[recv]:
                pcol = self._path_col[(recv, path)]
                for edge in path.edges:
                    on_edge.setdefault(edge, []).append(pcol)
            for edge in sorted(on_edge):
                coeffs = {pcol: 1.0 for pcol in on_edge[edge]}
                coeffs[self._edge_col[edge]] = -1.0
                add_row(coeffs, 0.0)

        self._shared_rows: list[tuple[int, Edge]] = []
        for edge in self.edges:
            if edge in shared_edges:
                r = add_row({self._edge_col[edge]: 1.0}, 0.0)  # rhs patched
                self._shared_rows.append((r, edge))
            else:
                add_row({self._edge_col[edge]: 1.0}, access_mbps)

        source_host = self.spec.source_host()
        out_cols = {self._edge_col[e]: 1.0 for e in self.edges if e[0] == source_host}
        if out_cols:
            add_row(out_cols, source_out_mbps)
        for recv in self.receivers:
            in_cols = {self._edge_col[e]: 1.0 for e in self.edges if e[1] == recv}
            if in_cols:
                add_row(in_cols, receiver_in_mbps)

        self._dc_in_rows: list[tuple[int, str]] = []
        self._dc_out_rows: list[tuple[int, str]] = []
        for dc in self.touched_dcs:
            in_cols = {self._edge_col[e]: 1.0 for e in self.edges if e[1] == dc}
            out_cols = {self._edge_col[e]: 1.0 for e in self.edges if e[0] == dc}
            if in_cols:
                coeffs = dict(in_cols)
                coeffs[self._y_col[dc]] = 0.0  # coefficient filled by bind()
                r = add_row(coeffs, 0.0)
                self._dc_in_rows.append((r, dc))
            if out_cols:
                coeffs = dict(out_cols)
                coeffs[self._y_col[dc]] = 0.0
                r = add_row(coeffs, 0.0)
                self._dc_out_rows.append((r, dc))

        self._a: FloatArray = np.array(rows) if rows else np.zeros((0, n))
        self._static_rhs: FloatArray = np.array(rhs)
        self._n = n
        self._bound = False

        # Objective: carry the rate if at all feasible (λ's weight is set
        # in bind() to dominate any achievable VNF cost, so α only ever
        # *ranks* routings, it cannot refuse a feasible session); the
        # per-g penalty prefers short routings and the per-path epsilon
        # makes the optimal vertex unique — warm and cold solves land on
        # the identical routing, not merely equal objectives.
        self._alpha = alpha
        c = np.zeros(n)
        c[0] = -1.0  # provisional; bind() re-weights against the DC caps
        for j in self._edge_col.values():
            c[j] = 1e-6
        for j in self._y_col.values():
            c[j] += alpha
        # The rank weight must clear the simplex pivot tolerance (1e-9)
        # by orders of magnitude, or warm and cold solves can stall on
        # different same-cost vertices of a degenerate optimum.
        for rank, j in enumerate(sorted(self._path_col.values())):
            c[j] += 1e-5 * (rank + 1)
        self._c: FloatArray = c
        self._signature: str | None = None

    def bind(self, index: SurplusIndex) -> None:
        """Fill the per-VNF capacity coefficients from the DC specs.

        Coefficients (unlike the rhs) are part of the matrix, so they
        are bound once; the specs are immutable.
        """
        for row, dc in self._dc_in_rows:
            self._a[row, self._y_col[dc]] = -index.datacenters[dc].in_cap_mbps
        for row, dc in self._dc_out_rows:
            self._a[row, self._y_col[dc]] = -index.datacenters[dc].outbound_mbps
        # One Mbps of λ moves at most R Mbps (one copy per receiver)
        # through each touched DC, requiring at most R/cap VNFs there, so
        # this weight strictly dominates the worst-case marginal cost of
        # carrying traffic — feasibility always wins over VNF thrift.
        copies = float(len(self.receivers))
        worst_vnf_cost = copies * sum(
            1.0 / index.datacenters[dc].in_cap_mbps + 1.0 / index.datacenters[dc].outbound_mbps
            for dc in self.touched_dcs
        )
        # 10× safety margins over the per-edge penalty and the worst
        # per-path tie-break a unit of λ could possibly incur.
        edge_budget = 1e-5 * copies * len(self.edges)
        tie_budget = 1e-4 * copies * (len(self._path_col) + 1)
        self._c[0] = -(1.0 + self._alpha * worst_vnf_cost + edge_budget + tie_budget)
        self._bound = True
        self._signature = None

    @property
    def signature(self) -> str:
        """Structure key: two LPs with equal signatures share warm bases."""
        if self._signature is None:
            digest = hashlib.sha256()
            digest.update(self._a.tobytes())
            digest.update(self._c.tobytes())
            digest.update(str(self._n).encode())
            self._signature = digest.hexdigest()
        return self._signature

    def solve(
        self,
        index: SurplusIndex,
        initial_basis: tuple[int, ...] | None = None,
    ) -> tuple[SimplexResult, FleetPlan | None]:
        """Patch rhs/bounds from the index and solve; extract the plan."""
        if not self._bound:
            self.bind(index)
        rhs = self._static_rhs.copy()
        for row, edge in self._shared_rows:
            rhs[row] = index.residual(edge)
        for row, dc in self._dc_in_rows:
            rhs[row] = index.slack_in(dc)
        for row, dc in self._dc_out_rows:
            rhs[row] = index.slack_out(dc)

        bounds: list[Bound] = [(0.0, None)] * self._n
        bounds[0] = (0.0, self.spec.rate_mbps)
        for dc, j in self._y_col.items():
            bounds[j] = (0.0, float(index.vnf_headroom(dc)))

        result = solve_simplex(
            self._c, a_ub=self._a, b_ub=rhs, bounds=bounds, initial_basis=initial_basis
        )
        if not result.success:
            return result, None
        return result, self._extract(result.x)

    def _extract(self, x: FloatArray) -> FleetPlan:
        path_rates: list[tuple[str, Path, float]] = []
        for recv in self.receivers:
            for path in self.paths[recv]:
                rate = float(x[self._path_col[(recv, path)]])
                if rate > RATE_EPS:
                    path_rates.append((recv, path, rate))
        edge_rates: list[tuple[Edge, float]] = []
        for edge in self.edges:
            rate = float(x[self._edge_col[edge]])
            if rate > RATE_EPS:
                edge_rates.append((edge, rate))
        return FleetPlan(
            session_id=self.spec.session_id,
            lambda_mbps=float(x[0]),
            path_rates=tuple(path_rates),
            edge_rates=tuple(edge_rates),
        )
