"""Fleet-scale control plane: many sessions, incremental replanning.

The paper's controller re-optimizes the whole deployment on every
session event; this package is the layer that makes that scale.  It
runs hundreds of concurrent multicast sessions over the OS3E WAN
(:mod:`repro.net.topology`), admitting each with a warm-started
per-session delta LP against a surplus-capacity index — so a join
costs O(session), never O(fleet) — and answers every request with a
typed :class:`~repro.fleet.verdict.AdmissionVerdict`.

Modules
-------
``verdict``   typed admission outcomes
``capacity``  surplus-capacity index + fleet data-center specs
``planner``   per-session delta LP (warm-startable matrix form)
``manager``   the fleet controller (admit / depart / replan)
``churn``     seeded Poisson session churn traces
``soak``      replay-fingerprinted churn soak + CLI
"""

from repro.fleet.capacity import FleetDataCenter, FleetPlan, SurplusIndex
from repro.fleet.churn import ChurnEvent, ChurnTrace, SessionSpec
from repro.fleet.manager import COLD, INCREMENTAL, FleetManager, fleet_of
from repro.fleet.planner import SessionLP
from repro.fleet.soak import FleetSoakOutcome, run_churn_soak, run_fleet_soak, soak_summary
from repro.fleet.verdict import AdmissionStatus, AdmissionVerdict

__all__ = [
    "AdmissionStatus",
    "AdmissionVerdict",
    "COLD",
    "ChurnEvent",
    "ChurnTrace",
    "FleetDataCenter",
    "FleetManager",
    "FleetPlan",
    "FleetSoakOutcome",
    "INCREMENTAL",
    "SessionLP",
    "SessionSpec",
    "SurplusIndex",
    "fleet_of",
    "run_churn_soak",
    "run_fleet_soak",
    "soak_summary",
]
