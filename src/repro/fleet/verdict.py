"""Typed admission verdicts: rejection is an outcome, not an exception.

"Network Coding as a Service" frames the controller as a multi-tenant
front door whose admission path must answer cheaply and *legibly* —
a session that cannot be carried is told why (no feasible route vs.
no residual capacity), and the answer carries enough bookkeeping
(LP solves spent, warm-start hit, VNFs launched, config epoch) for
the fleet benchmarks and soak fingerprints to assert on.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class AdmissionStatus(Enum):
    """Outcome of one admission attempt."""

    ADMITTED = "admitted"
    #: No route within the session's delay bound (empty path set).
    REJECTED_INFEASIBLE = "rejected-infeasible"
    #: Routes exist but residual capacity cannot carry the full rate.
    REJECTED_CAPACITY = "rejected-capacity"
    #: The home shard had no live primary for the whole retry budget —
    #: a typed answer, not a hang (DESIGN.md §14 graceful degradation).
    REJECTED_UNAVAILABLE = "rejected-unavailable"


@dataclass(frozen=True)
class AdmissionVerdict:
    """The controller's answer to one join/replan request."""

    session_id: int
    status: AdmissionStatus
    lambda_mbps: float
    requested_mbps: float
    lp_solves: int
    warm_started: bool
    vnfs_launched: int
    epoch: int
    reason: str = ""

    @property
    def admitted(self) -> bool:
        return self.status is AdmissionStatus.ADMITTED

    def canonical(self) -> tuple[int, str, str, int, int]:
        """Stable tuple for soak fingerprints (floats repr'd exactly)."""
        return (
            self.session_id,
            self.status.value,
            repr(self.lambda_mbps),
            self.lp_solves,
            self.epoch,
        )
