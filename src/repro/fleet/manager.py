"""Fleet controller: hundreds of sessions on the OS3E WAN overlay.

The manager runs the service-provider side of Alg. 3 at fleet scale.
Data centers sit in a subset of OS3E PoP cities and form a full mesh
overlay whose edge latencies are shortest-path WAN propagation delays
(:func:`repro.net.topology.os3e_latency_ms`); each session's hosts
attach to their nearest PoPs over access links.  Admission solves a
*per-session delta LP* (:class:`repro.fleet.planner.SessionLP`)
against the surplus index — warm-started from the cached basis — so
the cost of a join is independent of fleet size.  Departures release
capacity and retire surplus VNFs with **zero** LP solves.

``mode="cold"`` is the equivalence oracle: it rebuilds the index from
scratch before every event and solves without a basis.  The property
suite drives both modes over the same churn traces and asserts the
verdicts, rates, VNF counts and forwarding tables never diverge.

Config pushes ride the existing epoch machinery: every applied change
bumps ``config_epoch`` and the NC_SETTINGS / NC_FORWARD_TAB signals
are stamped with it, so a stale fleet table can never clobber a newer
one at a daemon (DESIGN.md §11).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import networkx as nx

from repro.core.deployment import DataCenterSpec, DeploymentPlan, DeploymentProblem, SessionDemand
from repro.core.session import MulticastSession
from repro.core.signals import NcForwardTab, NcSettings, NcStart, NcVnfEnd, NcVnfStart, SignalPort
from repro.fleet.capacity import Edge, FleetDataCenter, FleetPlan, SurplusIndex
from repro.fleet.churn import SessionSpec
from repro.fleet.planner import SessionLP
from repro.lp.simplex import SimplexResult
from repro.fleet.verdict import AdmissionStatus, AdmissionVerdict
from repro.net.topology import os3e_latency_ms
from repro.routing.paths import Path

#: A session is admitted only if the LP carries its full rate (minus noise).
_RATE_TOL = 1e-6

INCREMENTAL = "incremental"
COLD = "cold"


class FleetManager:
    """Admission, departure and replanning for a multi-session fleet."""

    def __init__(
        self,
        datacenters: Sequence[FleetDataCenter],
        *,
        backbone_mbps: float = 20_000.0,
        access_mbps: float = 1_000.0,
        access_delay_ms: float = 2.0,
        alpha: float = 20.0,
        attach_dcs: int = 2,
        source_out_mbps: float = 1_000.0,
        receiver_in_mbps: float = 1_000.0,
        mode: str = INCREMENTAL,
        bus: SignalPort | None = None,
        latency_ms: Mapping[str, Mapping[str, float]] | None = None,
    ) -> None:
        if mode not in (INCREMENTAL, COLD):
            raise ValueError(f"unknown mode {mode!r}")
        if not datacenters:
            raise ValueError("at least one data center is required")
        if attach_dcs < 1:
            raise ValueError("hosts must attach to at least one data center")
        self.datacenters: dict[str, FleetDataCenter] = {dc.name: dc for dc in datacenters}
        if len(self.datacenters) != len(datacenters):
            raise ValueError("duplicate data-center names")
        self.wan: dict[str, dict[str, float]] = (
            {a: dict(row) for a, row in latency_ms.items()}
            if latency_ms is not None
            else os3e_latency_ms()
        )
        missing = [name for name in self.datacenters if name not in self.wan]
        if missing:
            raise ValueError(f"data centers absent from the WAN latency map: {missing}")
        self.backbone_mbps = backbone_mbps
        self.access_mbps = access_mbps
        self.access_delay_ms = access_delay_ms
        self.alpha = alpha
        self.attach_dcs = min(attach_dcs, len(self.datacenters))
        self.source_out_mbps = source_out_mbps
        self.receiver_in_mbps = receiver_in_mbps
        self.mode = mode
        self.bus = bus

        dc_names = sorted(self.datacenters)
        self.shared_edges: frozenset[Edge] = frozenset(
            (a, b) for a in dc_names for b in dc_names if a != b
        )
        edge_caps = {edge: backbone_mbps for edge in self.shared_edges}
        self.index = SurplusIndex(edge_caps, self.datacenters)
        self._dc_name_set: frozenset[str] = frozenset(dc_names)

        self.sessions: dict[int, SessionSpec] = {}
        self.plans: dict[int, FleetPlan] = {}
        self._lps: dict[int, SessionLP] = {}
        self._basis_cache: dict[str, tuple[int, ...]] = {}
        self.config_epoch = 0
        # Shard-lease fence stamped onto config pushes (DESIGN.md §14).
        # 0 for an unsharded fleet; a shard takeover installs the new
        # lease generation via adopt_state so the successor's very first
        # push dominates anything the deposed primary still sends.
        self.config_fence = 0
        self.lp_solves = 0
        self.warm_hits = 0
        self.verdicts: list[AdmissionVerdict] = []

    # -- overlay geometry --------------------------------------------------

    def attachments(self, city: str) -> tuple[str, ...]:
        """The ``attach_dcs`` nearest PoP data centers to a host city."""
        if city not in self.wan:
            raise KeyError(f"unknown city {city!r}")
        ranked = sorted(self.datacenters, key=lambda dc: (self.wan[city][dc], dc))
        return tuple(ranked[: self.attach_dcs])

    def _candidate_paths(self, spec: SessionSpec) -> dict[str, list[Path]]:
        """src→a(→b)→recv overlay paths within the session's delay bound."""
        source = spec.source_host()
        src_attach = self.attachments(spec.source_city)
        path_sets: dict[str, list[Path]] = {}
        for host, city in zip(spec.receiver_hosts(), spec.receiver_cities):
            recv_attach = self.attachments(city)
            paths: list[Path] = []
            for a in src_attach:
                d_src = self.wan[spec.source_city][a] + self.access_delay_ms
                for b in recv_attach:
                    d_recv = self.wan[b][city] + self.access_delay_ms
                    if a == b:
                        delay = d_src + d_recv
                        nodes = (source, a, host)
                    else:
                        delay = d_src + self.wan[a][b] + d_recv
                        nodes = (source, a, b, host)
                    if delay <= spec.max_delay_ms:
                        paths.append(Path(nodes=nodes, delay_ms=delay))
            paths.sort(key=lambda p: (p.delay_ms, p.hops, p.nodes))
            path_sets[host] = paths
        return path_sets

    # -- Alg. 3 at fleet scale ---------------------------------------------

    def admit(self, spec: SessionSpec) -> AdmissionVerdict:
        """Session join: one delta LP solve, or zero for infeasible asks."""
        if spec.session_id in self.sessions:
            raise ValueError(f"session {spec.session_id} is already admitted")
        if self.mode == COLD:
            self.index.rebuild(self.plans.values())
        path_sets = self._candidate_paths(spec)
        if any(not paths for paths in path_sets.values()):
            return self._record(
                AdmissionVerdict(
                    session_id=spec.session_id,
                    status=AdmissionStatus.REJECTED_INFEASIBLE,
                    lambda_mbps=0.0,
                    requested_mbps=spec.rate_mbps,
                    lp_solves=0,
                    warm_started=False,
                    vnfs_launched=0,
                    epoch=self.config_epoch,
                    reason="no route within the delay bound",
                )
            )
        lp = SessionLP(
            spec,
            path_sets,
            self.shared_edges,
            self._dc_name_set,
            access_mbps=self.access_mbps,
            source_out_mbps=self.source_out_mbps,
            receiver_in_mbps=self.receiver_in_mbps,
            alpha=self.alpha,
        )
        lp.bind(self.index)
        result, plan = self._solve(lp)
        if plan is None or plan.lambda_mbps < spec.rate_mbps - _RATE_TOL:
            achieved = 0.0 if plan is None else plan.lambda_mbps
            return self._record(
                AdmissionVerdict(
                    session_id=spec.session_id,
                    status=AdmissionStatus.REJECTED_CAPACITY,
                    lambda_mbps=achieved,
                    requested_mbps=spec.rate_mbps,
                    lp_solves=1,
                    warm_started=result.warm_started,
                    vnfs_launched=0,
                    epoch=self.config_epoch,
                    reason=f"residual capacity carries {achieved:.3f}/{spec.rate_mbps:.3f} Mbps",
                )
            )
        self.sessions[spec.session_id] = spec
        self._lps[spec.session_id] = lp
        launched = self._apply(plan)
        return self._record(
            AdmissionVerdict(
                session_id=spec.session_id,
                status=AdmissionStatus.ADMITTED,
                lambda_mbps=plan.lambda_mbps,
                requested_mbps=spec.rate_mbps,
                lp_solves=1,
                warm_started=result.warm_started,
                vnfs_launched=launched,
                epoch=self.config_epoch,
            )
        )

    def depart(self, session_id: int) -> FleetPlan | None:
        """Session leave: release capacity, retire surplus VNFs, 0 solves."""
        plan = self.plans.pop(session_id, None)
        if plan is None:
            return None  # never admitted (rejected join) — nothing to undo
        self.sessions.pop(session_id, None)
        self._lps.pop(session_id, None)
        if self.mode == COLD:
            self.index.rebuild(self.plans.values())
        else:
            self.index.release(plan)
        self._retire_surplus(plan.datacenters(self._dc_name_set))
        self.config_epoch += 1
        return plan

    def replan_session(self, session_id: int) -> AdmissionVerdict:
        """Re-route one live session (the p99 replan-latency unit of work).

        Releases the session's capacity, re-solves its delta LP against
        the refreshed surplus, and applies the new routing — rolling
        back to the old plan if the re-solve cannot carry the rate.
        """
        spec = self.sessions.get(session_id)
        old = self.plans.get(session_id)
        if spec is None or old is None:
            raise KeyError(f"session {session_id} is not admitted")
        lp = self._lp_for(session_id)
        old_dcs = old.datacenters(self._dc_name_set)
        if self.mode == COLD:
            remaining = [p for sid, p in self.plans.items() if sid != session_id]
            self.index.rebuild(remaining)
        else:
            self.index.release(old)
        # Retire the released capacity's VNF surplus so the re-solve pays
        # α for what it reclaims — identical accounting to a fresh join.
        self._retire_surplus(old_dcs)
        self.plans.pop(session_id, None)
        result, plan = self._solve(lp)
        if plan is None or plan.lambda_mbps < spec.rate_mbps - _RATE_TOL:
            # Rollback: the old routing is known-feasible.
            self.plans[session_id] = old
            self.index.apply(old)
            self._grow_vnfs(old_dcs)
            return self._record(
                AdmissionVerdict(
                    session_id=session_id,
                    status=AdmissionStatus.REJECTED_CAPACITY,
                    lambda_mbps=0.0 if plan is None else plan.lambda_mbps,
                    requested_mbps=spec.rate_mbps,
                    lp_solves=1,
                    warm_started=result.warm_started,
                    vnfs_launched=0,
                    epoch=self.config_epoch,
                    reason="replan infeasible; previous routing kept",
                )
            )
        launched = self._apply(plan)
        return self._record(
            AdmissionVerdict(
                session_id=session_id,
                status=AdmissionStatus.ADMITTED,
                lambda_mbps=plan.lambda_mbps,
                requested_mbps=spec.rate_mbps,
                lp_solves=1,
                warm_started=result.warm_started,
                vnfs_launched=launched,
                epoch=self.config_epoch,
            )
        )

    # -- warm-standby adoption ---------------------------------------------

    def adopt_state(
        self,
        sessions: Mapping[int, SessionSpec],
        plans: Mapping[int, FleetPlan],
        *,
        config_epoch: int = 0,
        fence: int = 0,
    ) -> None:
        """Install replicated session state into a fresh manager.

        A shard standby that wins the takeover lease materializes its
        manager from the replication log: the admitted specs and their
        immutable plans.  The surplus index is rebuilt from the plans
        (the exact state the deposed primary's incremental bookkeeping
        tracked), the config epoch resumes at the replicated high-water
        mark, and ``fence`` becomes the new lease generation — so the
        first post-takeover push outranks every deposed-primary config.
        Per-session LPs are *not* replicated; :meth:`_lp_for` rebuilds
        them lazily on the first replan that needs one.
        """
        if self.sessions or self.plans:
            raise ValueError("adopt_state requires a freshly constructed manager")
        self.sessions = dict(sessions)
        self.plans = dict(plans)
        self.index.rebuild(self.plans.values())
        self.config_epoch = max(self.config_epoch, config_epoch)
        self.config_fence = fence

    # -- internals ---------------------------------------------------------

    def _lp_for(self, session_id: int) -> SessionLP:
        """The session's delta LP, rebuilt from its spec if not cached.

        An adopted session has no LP object (solver state is process
        state and died with the deposed primary); rebuilding it from the
        spec is pure — same paths, same constraints — so replans after a
        takeover are bit-identical to replans before it.
        """
        lp = self._lps.get(session_id)
        if lp is None:
            spec = self.sessions[session_id]
            lp = SessionLP(
                spec,
                self._candidate_paths(spec),
                self.shared_edges,
                self._dc_name_set,
                access_mbps=self.access_mbps,
                source_out_mbps=self.source_out_mbps,
                receiver_in_mbps=self.receiver_in_mbps,
                alpha=self.alpha,
            )
            lp.bind(self.index)
            self._lps[session_id] = lp
        return lp

    def _solve(self, lp: SessionLP) -> tuple[SimplexResult, FleetPlan | None]:
        basis = self._basis_cache.get(lp.signature) if self.mode == INCREMENTAL else None
        result, plan = lp.solve(self.index, initial_basis=basis)
        self.lp_solves += 1
        if result.warm_started:
            self.warm_hits += 1
        if self.mode == INCREMENTAL and result.success and result.basis is not None:
            self._basis_cache[lp.signature] = result.basis
        return result, plan

    def _grow_vnfs(self, datacenters: tuple[str, ...]) -> int:
        """Scale touched DCs up to their load's requirement (NC_VNF_START)."""
        launched = 0
        for dc in datacenters:
            required = self.index.required_vnfs(dc)
            current = self.index.vnfs.get(dc, 0)
            if required > current:
                launched += required - current
                self.index.vnfs[dc] = required
                if self.bus is not None:
                    self.bus.send(NcVnfStart(target=dc, datacenter=dc, count=required - current))
        return launched

    def _retire_surplus(self, datacenters: tuple[str, ...]) -> int:
        """Scale touched DCs down to their load's requirement (NC_VNF_END)."""
        retired = 0
        for dc in datacenters:
            current = self.index.vnfs.get(dc, 0)
            required = self.index.required_vnfs(dc)
            if required < current:
                retired += current - required
                if required > 0:
                    self.index.vnfs[dc] = required
                else:
                    self.index.vnfs.pop(dc, None)
                if self.bus is not None:
                    for i in range(required, current):
                        self.bus.send(NcVnfEnd(target=dc, vnf_name=f"{dc}#{i}"))
        return retired

    def _apply(self, plan: FleetPlan) -> int:
        """Charge an accepted plan to the index; scale VNFs; push config."""
        self.plans[plan.session_id] = plan
        self.index.apply(plan)
        touched = plan.datacenters(self._dc_name_set)
        launched = self._grow_vnfs(touched)
        self.config_epoch += 1
        self._push_config(plan, touched)
        return launched

    def _push_config(self, plan: FleetPlan, touched: tuple[str, ...]) -> None:
        bus = self.bus
        if bus is None:
            return
        spec = self.sessions[plan.session_id]
        for dc in touched:
            bus.send(
                NcSettings(
                    target=dc,
                    session_ids=(plan.session_id,),
                    roles=((plan.session_id, "coder"),),
                    epoch=self.config_epoch,
                    fence=self.config_fence,
                )
            )
            bus.send(
                NcForwardTab(
                    target=dc,
                    table_text=self.forwarding_table(dc),
                    epoch=self.config_epoch,
                    fence=self.config_fence,
                )
            )
        bus.send(NcStart(target=spec.source_host(), session_id=plan.session_id))

    def republish_config(self) -> int:
        """Re-push every touched PoP's settings + table at the current stamp.

        The takeover fan-out: a shard's new primary bumps the epoch
        under its fresh fence and broadcasts the authoritative state
        once, so every daemon converges on the successor's view no
        matter what the deposed primary managed to deliver first.
        Returns the number of PoPs refreshed.
        """
        bus = self.bus
        if bus is None:
            return 0
        self.config_epoch += 1
        touched_by_dc: dict[str, list[int]] = {}
        for sid in sorted(self.plans):
            for dc in self.plans[sid].datacenters(self._dc_name_set):
                touched_by_dc.setdefault(dc, []).append(sid)
        for dc in sorted(touched_by_dc):
            session_ids = tuple(touched_by_dc[dc])
            bus.send(
                NcSettings(
                    target=dc,
                    session_ids=session_ids,
                    roles=tuple((sid, "coder") for sid in session_ids),
                    epoch=self.config_epoch,
                    fence=self.config_fence,
                )
            )
            bus.send(
                NcForwardTab(
                    target=dc,
                    table_text=self.forwarding_table(dc),
                    epoch=self.config_epoch,
                    fence=self.config_fence,
                )
            )
        return len(touched_by_dc)

    def _record(self, verdict: AdmissionVerdict) -> AdmissionVerdict:
        self.verdicts.append(verdict)
        return verdict

    # -- fleet views -------------------------------------------------------

    def forwarding_table(self, dc: str) -> str:
        """Deterministic text table of the routes crossing one PoP."""
        lines: set[str] = set()
        for sid in sorted(self.plans):
            plan = self.plans[sid]
            for _, path, rate in plan.path_rates:
                if rate <= _RATE_TOL:
                    continue
                nodes = path.nodes
                for i in range(1, len(nodes) - 1):
                    if nodes[i] == dc:
                        lines.add(f"{sid}:{nodes[i - 1]}->{nodes[i + 1]}")
        return "\n".join(sorted(lines))

    def forwarding_tables(self) -> dict[str, str]:
        """Per-PoP tables; the equivalence property compares these."""
        return {dc: self.forwarding_table(dc) for dc in sorted(self.datacenters)}

    @property
    def active_sessions(self) -> int:
        return len(self.plans)

    @property
    def total_throughput_mbps(self) -> float:
        return sum(plan.lambda_mbps for plan in self.plans.values())

    # -- whole-fleet resolve (the expensive baseline) ----------------------

    def fleet_graph(self) -> nx.DiGraph:
        """The full overlay as a DiGraph problem (2) can consume."""
        g = nx.DiGraph()
        dc_names = sorted(self.datacenters)
        g.add_nodes_from(dc_names)
        for a, b in sorted(self.shared_edges):
            g.add_edge(a, b, capacity_mbps=self.backbone_mbps, delay_ms=self.wan[a][b])
        for sid in sorted(self.sessions):
            spec = self.sessions[sid]
            source = spec.source_host()
            for dc in self.attachments(spec.source_city):
                g.add_edge(
                    source,
                    dc,
                    capacity_mbps=self.access_mbps,
                    delay_ms=self.wan[spec.source_city][dc] + self.access_delay_ms,
                )
            for host, city in zip(spec.receiver_hosts(), spec.receiver_cities):
                for dc in self.attachments(city):
                    g.add_edge(
                        dc,
                        host,
                        capacity_mbps=self.access_mbps,
                        delay_ms=self.wan[dc][city] + self.access_delay_ms,
                    )
        return g

    def whole_fleet_resolve(self, backend: str = "highs") -> DeploymentPlan:
        """Solve problem (2) over every live session at once.

        This is the paper's per-event behaviour and the benchmark's
        cold baseline: cost grows with the whole fleet, not the delta.
        """
        graph = self.fleet_graph()
        specs = [
            DataCenterSpec(
                name=dc.name,
                inbound_mbps=dc.inbound_mbps,
                outbound_mbps=dc.outbound_mbps,
                coding_mbps=dc.coding_mbps,
            )
            for dc in (self.datacenters[name] for name in sorted(self.datacenters))
        ]
        problem = DeploymentProblem(
            graph,
            specs,
            alpha=self.alpha,
            source_outbound_mbps=self.source_out_mbps,
            receiver_inbound_mbps=self.receiver_in_mbps,
            max_vnfs_per_dc=max(dc.max_vnfs for dc in self.datacenters.values()),
        )
        demands: list[SessionDemand] = []
        for sid in sorted(self.sessions):
            spec = self.sessions[sid]
            session = MulticastSession(
                source=spec.source_host(),
                receivers=list(spec.receiver_hosts()),
                max_delay_ms=spec.max_delay_ms,
                fixed_rate_mbps=spec.rate_mbps,
                session_id=sid,
            )
            demands.append(problem.build_demand(session, max_hops=3))
        self.lp_solves += 1
        return problem.solve(demands, backend=backend)


def fleet_of(
    cities: Iterable[str],
    *,
    inbound_mbps: float = 1_000.0,
    outbound_mbps: float = 1_000.0,
    coding_mbps: float = 900.0,
    max_vnfs: int = 64,
) -> list[FleetDataCenter]:
    """Convenience: one uniform data center per PoP city."""
    return [
        FleetDataCenter(
            name=city,
            inbound_mbps=inbound_mbps,
            outbound_mbps=outbound_mbps,
            coding_mbps=coding_mbps,
            max_vnfs=max_vnfs,
        )
        for city in cities
    ]
