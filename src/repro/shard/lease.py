"""The shard lease: who speaks for a shard, at which fence.

A shard has exactly one lease.  The holder is the replica allowed to
admit sessions and push config; the ``fence`` is the lease generation,
bumped on every transfer.  Config signals carry the fence (DESIGN.md
§14), so a deposed primary — alive again after a crash, or partitioned
and never dead at all — keeps stamping an old fence and every daemon
rejects it by ``(fence, epoch)`` order, however far its private epoch
counter ran ahead.

Transfers are *deterministic*: there is no quorum or randomized
election in the simulation — the shard's standby list is an ordered
succession line, and the failure detector's scheduler-driven check
fires at a deterministic instant, so the same seed always produces the
same takeover at the same fence.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LeaseTransfer:
    """One recorded succession: the audit trail of a takeover."""

    at_s: float
    fence: int
    holder: str
    deposed: str


class ShardLease:
    """Monotonically fenced ownership token for one shard."""

    def __init__(self, shard_id: str, holder: str, fence: int = 1) -> None:
        if not shard_id or not holder:
            raise ValueError("shard_id and holder cannot be empty")
        if fence < 1:
            raise ValueError("fence starts at 1 (0 is the unsharded stamp)")
        self.shard_id = shard_id
        self.holder = holder
        self.fence = fence
        self.transfers: list[LeaseTransfer] = []

    def held_by(self, name: str) -> bool:
        return self.holder == name

    def transfer(self, new_holder: str, at_s: float) -> int:
        """Hand the lease to ``new_holder``; returns the bumped fence.

        The deposed holder keeps believing it owns the old fence —
        that's the point: nothing revokes its in-memory state, the
        fence comparison at every receiver is what deposes it.
        """
        if not new_holder:
            raise ValueError("new holder cannot be empty")
        if new_holder == self.holder:
            raise ValueError(f"{new_holder!r} already holds the lease")
        self.transfers.append(
            LeaseTransfer(at_s=at_s, fence=self.fence + 1, holder=new_holder, deposed=self.holder)
        )
        self.holder = new_holder
        self.fence += 1
        return self.fence

    def __repr__(self) -> str:
        return f"ShardLease({self.shard_id}: {self.holder}@f{self.fence})"
