"""One controller shard: primary + warm standby with fenced takeover.

A shard owns a region of the OS3E map: the data centers assigned to
its controller city, a shard-local :class:`SignalBus` domain, a
:class:`HeartbeatMonitor` failure detector, and a
:class:`~repro.fleet.manager.FleetManager` holding the region's
SurplusIndex slice.  Two :class:`ControllerReplica` processes back the
shard — the lease holder serves admissions, the warm standby holds a
synchronously mirrored replication log (the admitted specs and their
immutable :class:`~repro.fleet.capacity.FleetPlan`\\ s, plus the config
epoch high-water mark — everything needed to materialize a successor
manager, and nothing that is process state).

Failover: the primary beats the shard's failure detector every
``heartbeat_interval_s``; a crashed primary stops beating, the
detector declares it dead after ``miss_threshold`` silent intervals,
and the first live standby takes over through the deterministic
:class:`~repro.shard.lease.ShardLease` — the fence bump is the whole
election.  The successor adopts the replicated state into a fresh
manager (index rebuilt from plans, epoch resumed, fence installed) and
re-pushes every PoP's config once; daemons and config stores converge
on the new ``(fence, epoch)`` order and anything the deposed primary
still sends is rejected as stale (split-brain defense, DESIGN.md §14).

The deposed manager is *kept* on ``zombies`` — still wired to the
shard bus — because the dangerous scenario is precisely a zombie that
can still talk; tests drive it to prove the fence holds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.core.controller import HeartbeatMonitor
from repro.core.signals import (
    ConfigEpochGate,
    NcForwardTab,
    NcSettings,
    NcShardLease,
    NcVnfEnd,
    NcVnfStart,
    Signal,
    SignalBus,
    SignalPort,
)
from repro.fleet.capacity import FleetDataCenter, FleetPlan
from repro.fleet.churn import SessionSpec
from repro.fleet.manager import FleetManager
from repro.fleet.verdict import AdmissionVerdict
from repro.net.events import EventScheduler, PeriodicEvent
from repro.shard.lease import ShardLease

#: Shard failure-detector defaults: 0.2 s beats × 3 misses puts the
#: death verdict ~0.8–1.0 s after the last beat, keeping takeover MTTR
#: inside 2× the PR 3 relay-crash recovery envelope (≈0.88 s → ≤1.76 s).
HEARTBEAT_INTERVAL_S = 0.2
MISS_THRESHOLD = 3


class ControllerReplica:
    """One controller process of a shard; the fault injector's target.

    ``crash()`` / ``restore()`` satisfy the injector's
    ``ControllerTarget`` protocol.  All failover *policy* lives in the
    owning :class:`ShardController` — the replica only models process
    liveness.
    """

    def __init__(self, name: str, shard: "ShardController") -> None:
        self.name = name
        self.shard = shard
        self.alive = True
        self.crashed_at: float | None = None
        self.restored_at: float | None = None
        self.crashes = 0

    def crash(self) -> None:
        """The process dies: heartbeats stop, in-memory state freezes."""
        if not self.alive:
            return
        self.alive = False
        self.crashes += 1
        self.crashed_at = self.shard.scheduler.now
        self.shard._replica_crashed(self)

    def restore(self) -> None:
        """The process comes back — as whatever the lease says it is."""
        if self.alive:
            return
        self.alive = True
        self.restored_at = self.shard.scheduler.now
        self.shard._replica_restored(self)

    def __repr__(self) -> str:
        state = "up" if self.alive else "down"
        return f"ControllerReplica({self.name}: {state})"


class ShardConfigStore:
    """Per-PoP config sink registered on a shard's bus domain.

    Stands in for the daemon population of the shard's data centers:
    one :class:`ConfigEpochGate` per PoP applies the ``(fence, epoch)``
    order to every NC_SETTINGS / NC_FORWARD_TAB push, so the store is
    both the delivery endpoint (keeping fleet config sends deliverable
    on the shard bus) and the split-brain assertion surface — a deposed
    primary's push lands in ``stale_rejected``, never in ``tables``.
    """

    def __init__(self, bus: SignalPort, dc_names: Sequence[str]) -> None:
        self.gates: dict[str, ConfigEpochGate] = {dc: ConfigEpochGate() for dc in dc_names}
        self.tables: dict[str, str] = {}
        self.settings: dict[str, NcSettings] = {}
        self.vnf_starts = 0
        self.vnf_ends = 0
        for dc in dc_names:
            bus.register(dc, self._handler_for(dc))

    def _handler_for(self, dc: str) -> Callable[[Signal], None]:
        def handle(signal: Signal) -> None:
            self._handle(dc, signal)

        return handle

    def _handle(self, dc: str, signal: Signal) -> None:
        gate = self.gates[dc]
        if isinstance(signal, NcSettings):
            if gate.accepts(signal.fence, signal.epoch):
                self.settings[dc] = signal
        elif isinstance(signal, NcForwardTab):
            if gate.accepts(signal.fence, signal.epoch):
                self.tables[dc] = signal.table_text
        elif isinstance(signal, NcVnfStart):
            self.vnf_starts += signal.count
        elif isinstance(signal, NcVnfEnd):
            self.vnf_ends += 1

    @property
    def stale_rejected(self) -> int:
        """Config pushes refused across all PoPs (zombie evidence)."""
        return sum(gate.stale_rejected for gate in self.gates.values())

    def canonical(self) -> tuple[tuple[str, int, int, int], ...]:
        """Deterministic per-PoP gate state for soak fingerprints."""
        return tuple(
            (dc, self.gates[dc].fence, self.gates[dc].epoch, self.gates[dc].stale_rejected)
            for dc in sorted(self.gates)
        )


@dataclass(frozen=True)
class TakeoverRecord:
    """One completed failover, for MTTR benchmarks and audits."""

    crashed_at: float | None  # None when the incumbent was deposed alive
    detected_at: float
    completed_at: float
    fence: int
    successor: str
    deposed: str
    pops_repushed: int

    @property
    def mttr_s(self) -> float | None:
        """Crash → re-pushed-config latency (None for live depositions)."""
        if self.crashed_at is None:
            return None
        return self.completed_at - self.crashed_at


class ShardController:
    """A region's control plane: replicas, lease, detector, manager."""

    def __init__(
        self,
        shard_id: str,
        datacenters: Sequence[FleetDataCenter],
        scheduler: EventScheduler,
        *,
        heartbeat_interval_s: float = HEARTBEAT_INTERVAL_S,
        miss_threshold: int = MISS_THRESHOLD,
        replicas: int = 2,
        bus: SignalBus | None = None,
        with_store: bool = True,
        manager_kwargs: Mapping[str, object] | None = None,
    ) -> None:
        if replicas < 1:
            raise ValueError("a shard needs at least one replica")
        self.shard_id = shard_id
        self.datacenters = list(datacenters)
        self.scheduler = scheduler
        self.bus = bus if bus is not None else SignalBus(scheduler)
        self._manager_kwargs = dict(manager_kwargs or {})
        self.replicas: list[ControllerReplica] = [
            ControllerReplica(f"{shard_id}#r{i}", self) for i in range(replicas)
        ]
        self.lease = ShardLease(shard_id, holder=self.replicas[0].name)
        self.store: ShardConfigStore | None = (
            ShardConfigStore(self.bus, [dc.name for dc in self.datacenters])
            if with_store
            else None
        )
        # Replication log: mirrored synchronously on every commit.
        self._replica_sessions: dict[int, SessionSpec] = {}
        self._replica_plans: dict[int, FleetPlan] = {}
        self._replica_epoch = 0
        self.manager = self._make_manager()
        self.zombies: list[FleetManager] = []
        self.takeovers: list[TakeoverRecord] = []
        self.awaiting_successor = False
        self.unavailable_since: float | None = None
        # Peer announcement hook, wired by the control plane: called
        # with the NcShardLease to fan out after every takeover.
        self.announce: Callable[[NcShardLease], None] | None = None
        self.monitor = HeartbeatMonitor(
            scheduler,
            interval_s=heartbeat_interval_s,
            miss_threshold=miss_threshold,
            on_dead=self._on_primary_dead,
        )
        self.monitor.watch(self.lease.holder)
        self._beat_ev: PeriodicEvent = scheduler.schedule_every(heartbeat_interval_s, self._beat)

    # -- plumbing --------------------------------------------------------

    def _make_manager(self) -> FleetManager:
        # Lease installation happens via adopt_state; a fresh shard's
        # first manager gets the founding fence directly.
        manager = FleetManager(self.datacenters, bus=self.bus, **self._manager_kwargs)  # type: ignore[arg-type]
        manager.config_fence = self.lease.fence
        return manager

    def _holder_replica(self) -> ControllerReplica:
        for replica in self.replicas:
            if replica.name == self.lease.holder:
                return replica
        raise RuntimeError(f"lease holder {self.lease.holder!r} is not a replica")

    @property
    def has_primary(self) -> bool:
        """True when the lease holder's process is up and serving."""
        return self._holder_replica().alive

    def _beat(self) -> None:
        holder = self._holder_replica()
        if holder.alive:
            self.monitor.beat(holder.name)

    def stop(self) -> None:
        """Cancel periodic machinery (end of an experiment)."""
        self._beat_ev.cancel()
        self.monitor.stop()

    # -- serving (None = no live primary; caller retries with backoff) ---

    def try_admit(self, spec: SessionSpec) -> AdmissionVerdict | None:
        """Admit via the primary; mirror admitted state to the standby."""
        if not self.has_primary:
            return None
        verdict = self.manager.admit(spec)
        self._mirror(spec.session_id)
        return verdict

    def try_depart(self, session_id: int) -> bool | None:
        """Depart via the primary; ``None`` while the shard is headless."""
        if not self.has_primary:
            return None
        self.manager.depart(session_id)
        self._mirror(session_id)
        return True

    def try_replan(self, session_id: int) -> AdmissionVerdict | None:
        """Replan one session via the primary (None while headless)."""
        if not self.has_primary:
            return None
        verdict = self.manager.replan_session(session_id)
        self._mirror(session_id)
        return verdict

    def _mirror(self, session_id: int) -> None:
        """Synchronous replication: the standby sees every commit.

        The mirrored values are immutable (frozen specs and plans), so
        sharing references with the primary's manager is safe — there
        is nothing a crash can half-write.
        """
        plan = self.manager.plans.get(session_id)
        if plan is None:
            self._replica_sessions.pop(session_id, None)
            self._replica_plans.pop(session_id, None)
        else:
            self._replica_sessions[session_id] = self.manager.sessions[session_id]
            self._replica_plans[session_id] = plan
        self._replica_epoch = self.manager.config_epoch

    # -- failover --------------------------------------------------------

    def _replica_crashed(self, replica: ControllerReplica) -> None:
        if replica.name == self.lease.holder and self.unavailable_since is None:
            self.unavailable_since = self.scheduler.now
        # Detection is the monitor's job: nothing else happens until the
        # missed-heartbeat deadline passes — that latency IS the MTTR.

    def _replica_restored(self, replica: ControllerReplica) -> None:
        if not self.awaiting_successor:
            if replica.name == self.lease.holder:
                # Brief outage, never declared dead: the incumbent
                # resumes with state intact; re-arm its grace clock.
                self.monitor.watch(replica.name)
                self.unavailable_since = None
            return
        self.awaiting_successor = False
        if replica.name == self.lease.holder:
            self.monitor.watch(replica.name)
            self.unavailable_since = None
        else:
            self._takeover(replica)

    def _on_primary_dead(self, name: str) -> None:
        if name != self.lease.holder:
            return  # stale verdict about an already-deposed replica
        successor = next((r for r in self.replicas if r.alive and r.name != name), None)
        if successor is None:
            holder = self._holder_replica()
            if holder.alive:
                # False verdict (slow, not dead) and nobody to succeed:
                # the incumbent keeps the lease; re-arm its grace clock.
                self.monitor.watch(name)
            else:
                self.awaiting_successor = True
            return
        self._takeover(successor)

    def _takeover(self, successor: ControllerReplica) -> None:
        """Deterministic lease succession + state adoption + re-push."""
        detected_at = self.scheduler.now
        deposed_holder = self._holder_replica()
        crashed_at = None if deposed_holder.alive else deposed_holder.crashed_at
        fence = self.lease.transfer(successor.name, detected_at)
        self.zombies.append(self.manager)
        manager = self._make_manager()
        manager.adopt_state(
            self._replica_sessions,
            self._replica_plans,
            config_epoch=self._replica_epoch,
            fence=fence,
        )
        self.manager = manager
        repushed = manager.republish_config()
        self._replica_epoch = manager.config_epoch
        self.monitor.unwatch(deposed_holder.name)
        self.monitor.watch(successor.name)
        self.unavailable_since = None
        record = TakeoverRecord(
            crashed_at=crashed_at,
            detected_at=detected_at,
            completed_at=self.scheduler.now,
            fence=fence,
            successor=successor.name,
            deposed=deposed_holder.name,
            pops_repushed=repushed,
        )
        self.takeovers.append(record)
        if self.announce is not None:
            self.announce(
                NcShardLease(
                    target=self.shard_id, shard_id=self.shard_id, holder=successor.name, fence=fence
                )
            )

    # -- views -----------------------------------------------------------

    def canonical(self) -> tuple[object, ...]:
        """Deterministic shard state tuple for soak fingerprints."""
        return (
            self.shard_id,
            self.lease.holder,
            self.lease.fence,
            self.manager.active_sessions,
            self.manager.config_epoch,
            self.manager.index.canonical(),
            tuple(
                (repr(t.detected_at), t.fence, t.successor, t.deposed, t.pops_repushed)
                for t in self.takeovers
            ),
            self.store.canonical() if self.store is not None else (),
        )
