"""Sharded controller plane over the OS3E WAN (DESIGN.md §14).

One central controller is the paper's design and the availability
ceiling: every session dies with it, and until PR 8 `FaultKind` had no
way to even crash it.  This package partitions the fleet across *k*
regional controller shards placed by weighted-graph closeness over the
OS3E latency map, gives each shard its own SignalBus domain, heartbeat
monitor and SurplusIndex slice, and pairs every primary with a warm
standby that takes over through a deterministic fenced lease when the
primary misses heartbeats.

Modules
=======

``placement``   greedy k-median controller placement (latency = 1 /
                closeness centrality) and the city → shard map
``lease``       the monotonically fenced shard lease
``controller``  one shard: primary + standby replicas, failure
                detector, replication log, takeover, config re-push
``plane``       the front door: session homing, retry/backoff
                admission, cross-shard lease announcements
``soak``        seeded controller-crash chaos soak with SHA-256
                replay fingerprints (the CI ``shard`` job)
"""

from repro.shard.controller import ControllerReplica, ShardConfigStore, ShardController
from repro.shard.lease import ShardLease
from repro.shard.placement import ShardMap, place_controllers
from repro.shard.plane import CrossShardChannel, ShardedControlPlane

__all__ = [
    "ControllerReplica",
    "CrossShardChannel",
    "ShardConfigStore",
    "ShardController",
    "ShardLease",
    "ShardMap",
    "ShardedControlPlane",
    "place_controllers",
]
