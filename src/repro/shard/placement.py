"""Controller placement: k shards over the OS3E WAN by closeness.

SNIPPETS.md's controller-placement study frames the problem on a
weighted graph whose edge weights are propagation latencies: a node's
expected latency to the rest of the network is the reciprocal of its
weighted closeness centrality, and placing k controllers is the
k-median problem over that metric.  k-median is NP-hard; the standard
greedy (pick the single best site, then repeatedly add the site that
most reduces the total assignment latency) is the classic
(1 - 1/e)-style approximation and — crucially for this codebase —
deterministic: ties break on the city name, so the same k always
yields the same placement and every soak fingerprint stays stable.

The output is a :class:`ShardMap`: the chosen controller cities plus
the assignment of *every* PoP city to its nearest controller, which is
the region a session (homed by its source city) belongs to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.net.topology import os3e_latency_ms

Latency = Mapping[str, Mapping[str, float]]


def total_assignment_ms(controllers: Sequence[str], latency: Latency) -> float:
    """Σ over cities of the latency to the nearest chosen controller."""
    if not controllers:
        raise ValueError("at least one controller is required")
    return sum(min(latency[city][c] for c in controllers) for city in latency)


def place_controllers(
    k: int,
    *,
    latency: Latency | None = None,
    candidates: Sequence[str] | None = None,
) -> tuple[str, ...]:
    """Greedy k-median controller placement over the WAN latency map.

    The first pick is the city with minimum total latency to all
    cities — the maximum-closeness node, i.e. the optimal k=1 placement.
    Each further pick greedily maximizes the reduction in total
    assignment latency.  All ties break lexicographically on the city
    name so the placement is a pure function of (k, latency map).
    """
    lat = latency if latency is not None else os3e_latency_ms()
    pool = sorted(candidates) if candidates is not None else sorted(lat)
    unknown = [c for c in pool if c not in lat]
    if unknown:
        raise ValueError(f"candidate cities absent from the latency map: {unknown}")
    if not 1 <= k <= len(pool):
        raise ValueError(f"k must be in [1, {len(pool)}], got {k}")
    chosen: list[str] = []
    # nearest[city] = latency to the closest already-chosen controller.
    nearest: dict[str, float] = {}
    for _ in range(k):
        best_city: str | None = None
        best_total = float("inf")
        for cand in pool:
            if cand in chosen:
                continue
            total = sum(min(nearest.get(city, float("inf")), lat[city][cand]) for city in lat)
            if total < best_total - 1e-12:
                best_total = total
                best_city = cand
        assert best_city is not None  # pool is larger than chosen
        chosen.append(best_city)
        for city in lat:
            d = lat[city][best_city]
            if d < nearest.get(city, float("inf")):
                nearest[city] = d
    return tuple(chosen)


@dataclass(frozen=True)
class ShardMap:
    """k controller cities plus every city's region assignment."""

    controllers: tuple[str, ...]
    assignment: Mapping[str, str]  # city -> controller city

    @classmethod
    def build(
        cls,
        k: int,
        *,
        latency: Latency | None = None,
        candidates: Sequence[str] | None = None,
    ) -> "ShardMap":
        """Place k controllers and assign every city to its nearest one.

        Assignment ties (equidistant controllers) break on the
        controller city name, keeping the map deterministic.
        """
        lat = latency if latency is not None else os3e_latency_ms()
        controllers = place_controllers(k, latency=lat, candidates=candidates)
        assignment = {
            city: min(controllers, key=lambda c: (lat[city][c], c)) for city in sorted(lat)
        }
        return cls(controllers=controllers, assignment=assignment)

    def region_of(self, city: str) -> str:
        """The controller city owning ``city``'s region."""
        try:
            return self.assignment[city]
        except KeyError:
            raise KeyError(f"unknown city {city!r}") from None

    def cities_of(self, controller: str) -> tuple[str, ...]:
        """All cities assigned to one controller, sorted."""
        if controller not in self.controllers:
            raise KeyError(f"{controller!r} is not a placed controller")
        return tuple(
            sorted(city for city, home in self.assignment.items() if home == controller)
        )
