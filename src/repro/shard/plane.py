"""The sharded control plane: session homing, backoff, peer gossip.

The plane is the fleet's front door after sharding: it builds the
:class:`~repro.shard.placement.ShardMap` over the data-center cities,
raises one :class:`~repro.shard.controller.ShardController` per
controller city (each with its own bus domain, detector and manager),
and homes every session at the shard owning its *source* city.

Two delivery disciplines live here:

- **Admission retry**: a join/leave/replan that lands on a headless
  shard (primary crashed, takeover pending) is retried with
  exponential backoff; a bounded attempt budget converts "the
  controller never came back" into a typed
  ``REJECTED_UNAVAILABLE`` verdict instead of a hang — the graceful
  degradation contract of DESIGN.md §14.
- **Cross-shard signals**: lease announcements travel shard-to-shard
  over :class:`CrossShardChannel`, which models WAN propagation delay
  from the OS3E latency map plus retry/timeout/exponential backoff
  against endpoints that are down mid-takeover; exhausted deliveries
  are recorded, never silently dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.core.signals import NcShardLease, Signal
from repro.fleet.capacity import FleetDataCenter
from repro.fleet.churn import SessionSpec
from repro.fleet.verdict import AdmissionStatus, AdmissionVerdict
from repro.net.events import EventScheduler
from repro.net.topology import os3e_latency_ms
from repro.shard.controller import ShardController
from repro.shard.placement import ShardMap

#: CrossShardDelivery.status values.
PENDING = "pending"
DELIVERED = "delivered"
EXPIRED = "expired"  # timeout or attempt budget exhausted


@dataclass
class CrossShardDelivery:
    """One tracked shard-to-shard signal delivery."""

    src: str
    dst: str
    signal: Signal
    sent_at: float
    delivered_at: float | None = None
    attempts: int = 0
    status: str = PENDING


class CrossShardChannel:
    """WAN delivery between shard controllers with retry + backoff.

    Latency is the OS3E propagation delay between the two controller
    cities.  An endpoint whose shard is headless (``ready`` returns
    False) behaves like a timed-out RPC: the channel retries with
    exponential backoff (``base_backoff_s * 2^n``) until the signal is
    delivered, the per-delivery ``timeout_s`` elapses, or
    ``max_attempts`` is spent — whichever first.  Exhausted deliveries
    land on ``expired`` with a status, never in the void.
    """

    def __init__(
        self,
        scheduler: EventScheduler,
        latency_ms: Mapping[str, Mapping[str, float]],
        *,
        base_backoff_s: float = 0.1,
        max_attempts: int = 6,
        timeout_s: float = 10.0,
    ) -> None:
        if base_backoff_s <= 0 or timeout_s <= 0:
            raise ValueError("backoff and timeout must be positive")
        if max_attempts < 1:
            raise ValueError("at least one delivery attempt is required")
        self.scheduler = scheduler
        self.latency_ms = latency_ms
        self.base_backoff_s = base_backoff_s
        self.max_attempts = max_attempts
        self.timeout_s = timeout_s
        self._endpoints: dict[str, Callable[[Signal], None]] = {}
        self._ready: dict[str, Callable[[], bool]] = {}
        self.log: list[CrossShardDelivery] = []
        self.expired: list[CrossShardDelivery] = []
        self.retries = 0

    def connect(
        self,
        name: str,
        handler: Callable[[Signal], None],
        ready: Callable[[], bool] | None = None,
    ) -> None:
        """Attach a shard endpoint; ``ready`` gates per-delivery liveness."""
        if name in self._endpoints:
            raise ValueError(f"endpoint {name!r} already connected")
        self._endpoints[name] = handler
        self._ready[name] = ready if ready is not None else (lambda: True)

    def disconnect(self, name: str) -> None:
        self._endpoints.pop(name, None)
        self._ready.pop(name, None)

    def send(self, src: str, dst: str, signal: Signal) -> CrossShardDelivery:
        """Dispatch a signal; first attempt after the WAN latency."""
        delivery = CrossShardDelivery(src=src, dst=dst, signal=signal, sent_at=self.scheduler.now)
        self.log.append(delivery)
        wan_s = self.latency_ms[src][dst] / 1000.0
        self.scheduler.schedule(wan_s, self._deliver, delivery)
        return delivery

    def _deliver(self, delivery: CrossShardDelivery) -> None:
        delivery.attempts += 1
        handler = self._endpoints.get(delivery.dst)
        ready = self._ready.get(delivery.dst)
        if handler is not None and ready is not None and ready():
            delivery.delivered_at = self.scheduler.now
            delivery.status = DELIVERED
            handler(delivery.signal)
            return
        elapsed = self.scheduler.now - delivery.sent_at
        if delivery.attempts >= self.max_attempts or elapsed >= self.timeout_s:
            delivery.status = EXPIRED
            self.expired.append(delivery)
            return
        self.retries += 1
        backoff = self.base_backoff_s * (2 ** (delivery.attempts - 1))
        self.scheduler.schedule(backoff, self._deliver, delivery)


@dataclass
class _PendingOp:
    """One control-plane operation riding the retry/backoff loop."""

    kind: str  # "join" | "leave" | "replan"
    session_id: int
    spec: SessionSpec | None = None
    attempts: int = 0


@dataclass
class StrandedOp:
    """An operation whose retry budget ran out (leave/replan only).

    Joins degrade to a typed ``REJECTED_UNAVAILABLE`` verdict instead;
    a stranded leave is a soak-contract violation the tests fail on.
    """

    kind: str
    session_id: int
    at_s: float
    attempts: int


@dataclass
class PlaneStats:
    """Aggregate retry telemetry for benchmarks and fingerprints."""

    submitted: int = 0
    departs: int = 0
    replans: int = 0
    retries: int = 0
    unavailable_rejections: int = 0
    stranded: list[StrandedOp] = field(default_factory=list)


class ShardedControlPlane:
    """k regional shards + homing + retry/backoff + lease gossip."""

    def __init__(
        self,
        k: int,
        datacenters: Sequence[FleetDataCenter],
        scheduler: EventScheduler,
        *,
        latency_ms: Mapping[str, Mapping[str, float]] | None = None,
        heartbeat_interval_s: float | None = None,
        miss_threshold: int | None = None,
        base_backoff_s: float = 0.05,
        max_attempts: int = 8,
        manager_kwargs: Mapping[str, object] | None = None,
    ) -> None:
        if not datacenters:
            raise ValueError("at least one data center is required")
        self.scheduler = scheduler
        self.latency_ms = latency_ms if latency_ms is not None else os3e_latency_ms()
        if base_backoff_s <= 0:
            raise ValueError("backoff base must be positive")
        if max_attempts < 1:
            raise ValueError("at least one attempt is required")
        self.base_backoff_s = base_backoff_s
        self.max_attempts = max_attempts
        dc_cities = sorted(dc.name for dc in datacenters)
        self.shard_map = ShardMap.build(k, latency=self.latency_ms, candidates=dc_cities)
        shard_kwargs: dict[str, object] = {}
        if heartbeat_interval_s is not None:
            shard_kwargs["heartbeat_interval_s"] = heartbeat_interval_s
        if miss_threshold is not None:
            shard_kwargs["miss_threshold"] = miss_threshold
        by_city = {dc.name: dc for dc in datacenters}
        self.shards: dict[str, ShardController] = {}
        for controller in self.shard_map.controllers:
            owned = [
                by_city[city]
                for city in self.shard_map.cities_of(controller)
                if city in by_city
            ]
            self.shards[controller] = ShardController(
                controller,
                owned,
                scheduler,
                manager_kwargs=manager_kwargs,
                **shard_kwargs,  # type: ignore[arg-type]
            )
        self.channel = CrossShardChannel(scheduler, self.latency_ms)
        #: dst controller city -> {shard_id: highest fence learned}.
        self.peer_views: dict[str, dict[str, int]] = {c: {} for c in self.shards}
        self.verdicts: list[AdmissionVerdict] = []
        self.departed: list[int] = []
        self.stats = PlaneStats()
        self._sessions_by_id: dict[int, SessionSpec] = {}
        # Join ops still riding the retry loop, and sessions whose leave
        # arrived while their join was in flight (an outage can delay a
        # join past its own departure; the join must then undo itself).
        self._pending_joins: dict[int, _PendingOp] = {}
        self._cancelled: set[int] = set()
        self._wire_gossip()

    # -- gossip ----------------------------------------------------------

    def _wire_gossip(self) -> None:
        for city, shard in self.shards.items():
            self.channel.connect(
                city,
                self._peer_handler(city),
                ready=self._readiness_of(shard),
            )
            shard.announce = self._announcer(city)

    @staticmethod
    def _readiness_of(shard: ShardController) -> Callable[[], bool]:
        def ready() -> bool:
            return shard.has_primary

        return ready

    def _announcer(self, src: str) -> Callable[[NcShardLease], None]:
        def announce(signal: NcShardLease) -> None:
            for dst in self.shards:
                if dst != src:
                    self.channel.send(src, dst, signal)

        return announce

    def _peer_handler(self, city: str) -> Callable[[Signal], None]:
        def handle(signal: Signal) -> None:
            if isinstance(signal, NcShardLease):
                view = self.peer_views[city]
                if signal.fence > view.get(signal.shard_id, 0):
                    # Stale announcements (an older fence arriving after
                    # a newer one, reordered by retries) are discarded.
                    view[signal.shard_id] = signal.fence

        return handle

    # -- homing ----------------------------------------------------------

    def home_of(self, spec: SessionSpec) -> str:
        """The controller city owning a session (by its source city)."""
        return self.shard_map.region_of(spec.source_city)

    def _home_shard(self, spec: SessionSpec) -> ShardController:
        return self.shards[self.home_of(spec)]

    # -- operations (synchronous first attempt, scheduled retries) -------

    def submit(self, spec: SessionSpec) -> None:
        """Join request: ends in a typed verdict, whatever the shard does."""
        self.stats.submitted += 1
        self._sessions_by_id[spec.session_id] = spec
        op = _PendingOp(kind="join", session_id=spec.session_id, spec=spec)
        self._pending_joins[spec.session_id] = op
        self._attempt(op)

    def depart(self, session_id: int) -> None:
        """Leave request: retried across outages until it lands."""
        self.stats.departs += 1
        if session_id in self._pending_joins:
            # The leave overtook its own join (delayed by an outage):
            # remember it so the join, once admitted, undoes itself.
            self._cancelled.add(session_id)
            return
        self._attempt(_PendingOp(kind="leave", session_id=session_id))

    def replan(self, session_id: int) -> None:
        """Replan request for one admitted session."""
        self.stats.replans += 1
        self._attempt(_PendingOp(kind="replan", session_id=session_id))

    def _attempt(self, op: _PendingOp) -> None:
        spec = op.spec if op.spec is not None else self._sessions_by_id.get(op.session_id)
        if spec is None:
            raise KeyError(f"session {op.session_id} was never submitted")
        shard = self._home_shard(spec)
        if op.kind == "join":
            assert op.spec is not None
            verdict = shard.try_admit(op.spec)
            if verdict is not None:
                self.verdicts.append(verdict)
                self._pending_joins.pop(op.session_id, None)
                if verdict.admitted and op.session_id in self._cancelled:
                    self._cancelled.discard(op.session_id)
                    self._attempt(_PendingOp(kind="leave", session_id=op.session_id))
                return
        elif op.kind == "leave":
            if shard.try_depart(op.session_id) is not None:
                self.departed.append(op.session_id)
                return
        else:  # replan
            if op.session_id not in shard.manager.sessions:
                return  # rejected join or already departed: nothing to move
            verdict = shard.try_replan(op.session_id)
            if verdict is not None:
                self.verdicts.append(verdict)
                return
        op.attempts += 1
        if op.attempts >= self.max_attempts:
            self._exhausted(op, spec)
            return
        self.stats.retries += 1
        backoff = self.base_backoff_s * (2 ** (op.attempts - 1))
        self.scheduler.schedule(backoff, self._attempt, op)

    def _exhausted(self, op: _PendingOp, spec: SessionSpec) -> None:
        if op.kind == "join":
            self._pending_joins.pop(op.session_id, None)
            self._cancelled.discard(op.session_id)
            self.stats.unavailable_rejections += 1
            self.verdicts.append(
                AdmissionVerdict(
                    session_id=op.session_id,
                    status=AdmissionStatus.REJECTED_UNAVAILABLE,
                    lambda_mbps=0.0,
                    requested_mbps=spec.rate_mbps,
                    lp_solves=0,
                    warm_started=False,
                    vnfs_launched=0,
                    epoch=0,
                    reason=f"no live primary for {self.home_of(spec)} after {op.attempts} attempts",
                )
            )
        else:
            self.stats.stranded.append(
                StrandedOp(
                    kind=op.kind,
                    session_id=op.session_id,
                    at_s=self.scheduler.now,
                    attempts=op.attempts,
                )
            )

    # -- views -----------------------------------------------------------

    @property
    def active_sessions(self) -> int:
        return sum(shard.manager.active_sessions for shard in self.shards.values())

    @property
    def total_vnfs(self) -> int:
        return sum(shard.manager.index.total_vnfs for shard in self.shards.values())

    def replicas(self) -> tuple[str, ...]:
        """Every replica handle, sorted — the fault plan's target pool."""
        return tuple(
            sorted(r.name for shard in self.shards.values() for r in shard.replicas)
        )

    def takeovers(self) -> int:
        return sum(len(shard.takeovers) for shard in self.shards.values())

    def stop(self) -> None:
        for shard in self.shards.values():
            shard.stop()

    def canonical(self) -> tuple[object, ...]:
        """Deterministic plane state tuple for soak fingerprints."""
        return (
            tuple(self.shards[c].canonical() for c in sorted(self.shards)),
            tuple(sorted((c, tuple(sorted(v.items()))) for c, v in self.peer_views.items())),
            self.stats.retries,
            self.stats.unavailable_rejections,
            tuple((s.kind, s.session_id, repr(s.at_s)) for s in self.stats.stranded),
            len(self.channel.expired),
        )
