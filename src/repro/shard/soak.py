"""Controller-crash chaos soak with SHA-256 replay fingerprints.

The sharded complement of :mod:`repro.fleet.soak`: a seeded Poisson
churn trace drives joins/leaves through the
:class:`~repro.shard.plane.ShardedControlPlane` on the shared event
scheduler while a seeded :class:`~repro.faults.FaultPlan` crashes and
restores controller replicas mid-flight.  The contract is the same
complete-or-typed one, hardened for failover:

- every join ends in a typed verdict — admitted, rejected-infeasible,
  rejected-capacity, or rejected-unavailable when a shard stayed
  headless through the whole retry budget; nothing hangs;
- every leave lands (retried across outages) and the fleet drains to
  zero sessions and zero VNFs at the horizon;
- the same seed replays bit-identically: verdict stream, takeover
  records, fenced gate states and retry counts all fold into one
  SHA-256 fingerprint.

CLI (the CI ``shard`` job)::

    python -m repro.shard.soak --seeds 20 --replay --json shard_soak.json
"""

from __future__ import annotations

import argparse
import hashlib
import json
from dataclasses import asdict, dataclass

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan
from repro.fleet.churn import JOIN, ChurnTrace
from repro.fleet.manager import fleet_of
from repro.fleet.soak import SOAK_DC_CITIES
from repro.fleet.verdict import AdmissionStatus
from repro.net.events import EventScheduler
from repro.shard.plane import ShardedControlPlane

COMPLETE = "complete"
TYPED_REJECTIONS = "complete-with-rejections"
INCOMPLETE = "incomplete-untyped"

#: Drain margin after the last churn event: generous enough for the
#: longest outage + detection + the full retry/backoff tail.  The
#: horizon is anchored at the trace's *actual* last event, not a
#: duration formula — exponential holding times have a tail, and a
#: leave scheduled past a formula-derived horizon would silently never
#: fire, stranding an admitted session through no fault of the plane.
DRAIN_MARGIN_S = 30.0


@dataclass(frozen=True)
class ShardSoakOutcome:
    """One seed's sharded soak, summarized for aggregation and JSON."""

    seed: int
    shards: int
    events: int
    admitted: int
    rejected_capacity: int
    rejected_infeasible: int
    rejected_unavailable: int
    departed: int
    controller_crashes: int
    takeovers: int
    max_fence: int
    stale_rejected: int
    retries: int
    stranded: int
    final_sessions: int
    final_vnfs: int
    outcome: str
    fingerprint: str


def run_shard_soak(
    seed: int,
    *,
    k: int = 3,
    n_datacenters: int = 8,
    duration_s: float = 40.0,
    arrival_rate_per_s: float = 1.0,
    mean_holding_s: float = 12.0,
    max_faults: int = 3,
    controller_faults: bool = True,
) -> ShardSoakOutcome:
    """Drive one seeded churn trace through a crashing sharded plane.

    Both the churn and the crash schedule derive from ``seed``; crashes
    target every replica of every shard (primaries *and* standbys, so
    dual-failure windows occur), and each crash is paired with a
    restore by construction — the soak proves the plane degrades and
    converges, not that outages never happen.
    """
    scheduler = EventScheduler()
    cities = SOAK_DC_CITIES[: max(k, min(n_datacenters, len(SOAK_DC_CITIES)))]
    datacenters = fleet_of(
        cities, inbound_mbps=120.0, outbound_mbps=120.0, coding_mbps=108.0, max_vnfs=2
    )
    plane = ShardedControlPlane(k, datacenters, scheduler)
    trace = ChurnTrace.generate(
        seed,
        duration_s=duration_s,
        arrival_rate_per_s=arrival_rate_per_s,
        mean_holding_s=mean_holding_s,
        delay_choices_ms=(16.0, 80.0),
    )
    for event in trace.events:
        if event.kind == JOIN:
            assert event.spec is not None
            scheduler.schedule_at(event.time_s, plane.submit, event.spec)
        else:
            scheduler.schedule_at(event.time_s, plane.depart, event.session_id)
    crashes = 0
    if controller_faults:
        plan = FaultPlan.random(
            seed,
            duration_s=duration_s * 0.75,
            controllers=plane.replicas(),
            max_faults=max_faults,
        )
        injector = FaultInjector(scheduler, plan)
        for shard in plane.shards.values():
            for replica in shard.replicas:
                injector.add_controller(replica.name, replica)
        injector.arm()
        crashes = len(plan.of_kind(FaultKind.CONTROLLER_CRASH))
    last_event_s = max(event.time_s for event in trace.events)
    horizon = max(last_event_s, duration_s) + DRAIN_MARGIN_S
    try:
        scheduler.run(until=horizon)
    except Exception as exc:  # noqa: BLE001 — a crash IS the finding
        plane.stop()
        return ShardSoakOutcome(
            seed=seed,
            shards=k,
            events=len(trace.events),
            admitted=0,
            rejected_capacity=0,
            rejected_infeasible=0,
            rejected_unavailable=0,
            departed=0,
            controller_crashes=crashes,
            takeovers=0,
            max_fence=0,
            stale_rejected=0,
            retries=0,
            stranded=0,
            final_sessions=-1,
            final_vnfs=-1,
            outcome=f"{INCOMPLETE}: {type(exc).__name__}: {exc}",
            fingerprint="",
        )
    plane.stop()
    admitted = sum(1 for v in plane.verdicts if v.status is AdmissionStatus.ADMITTED)
    rejected_cap = sum(
        1 for v in plane.verdicts if v.status is AdmissionStatus.REJECTED_CAPACITY
    )
    rejected_inf = sum(
        1 for v in plane.verdicts if v.status is AdmissionStatus.REJECTED_INFEASIBLE
    )
    rejected_unavail = sum(
        1 for v in plane.verdicts if v.status is AdmissionStatus.REJECTED_UNAVAILABLE
    )
    digest = hashlib.sha256()
    for verdict in plane.verdicts:
        digest.update(repr(verdict.canonical()).encode())
    digest.update(repr(tuple(plane.departed)).encode())
    digest.update(repr(plane.canonical()).encode())
    fingerprint = digest.hexdigest()
    joins = sum(1 for ev in trace.events if ev.kind == JOIN)
    # Replans verdicts would also land in plane.verdicts; the soak only
    # issues joins, so every join has exactly one verdict when typed.
    typed = admitted + rejected_cap + rejected_inf + rejected_unavail == joins
    drained = (
        plane.active_sessions == 0 and plane.total_vnfs == 0 and not plane.stats.stranded
    )
    if drained and typed and (rejected_cap or rejected_inf or rejected_unavail):
        outcome = TYPED_REJECTIONS
    elif drained and typed:
        outcome = COMPLETE
    else:
        outcome = INCOMPLETE
    return ShardSoakOutcome(
        seed=seed,
        shards=k,
        events=len(trace.events),
        admitted=admitted,
        rejected_capacity=rejected_cap,
        rejected_infeasible=rejected_inf,
        rejected_unavailable=rejected_unavail,
        departed=len(plane.departed),
        controller_crashes=crashes,
        takeovers=plane.takeovers(),
        max_fence=max(shard.lease.fence for shard in plane.shards.values()),
        stale_rejected=sum(
            shard.store.stale_rejected
            for shard in plane.shards.values()
            if shard.store is not None
        ),
        retries=plane.stats.retries,
        stranded=len(plane.stats.stranded),
        final_sessions=plane.active_sessions,
        final_vnfs=plane.total_vnfs,
        outcome=outcome,
        fingerprint=fingerprint,
    )


def run_shard_chaos_soak(
    seeds: int = 20,
    *,
    replay: bool = False,
    k: int = 3,
    n_datacenters: int = 8,
) -> list[ShardSoakOutcome]:
    """Soak ``seeds`` traces; with ``replay``, verify bit-identical reruns."""
    outcomes: list[ShardSoakOutcome] = []
    for seed in range(seeds):
        outcome = run_shard_soak(seed, k=k, n_datacenters=n_datacenters)
        if replay:
            again = run_shard_soak(seed, k=k, n_datacenters=n_datacenters)
            if again.fingerprint != outcome.fingerprint:
                raise AssertionError(
                    f"seed {seed}: replay fingerprint diverged "
                    f"({outcome.fingerprint[:12]}… vs {again.fingerprint[:12]}…)"
                )
        outcomes.append(outcome)
    return outcomes


def soak_summary(outcomes: list[ShardSoakOutcome]) -> dict[str, object]:
    """Aggregate counts for reporting and the CI JSON artifact."""
    return {
        "seeds": len(outcomes),
        "complete": sum(1 for o in outcomes if o.outcome == COMPLETE),
        "complete_with_rejections": sum(1 for o in outcomes if o.outcome == TYPED_REJECTIONS),
        "incomplete_untyped": sum(1 for o in outcomes if o.outcome.startswith(INCOMPLETE)),
        "admitted": sum(o.admitted for o in outcomes),
        "rejected_capacity": sum(o.rejected_capacity for o in outcomes),
        "rejected_infeasible": sum(o.rejected_infeasible for o in outcomes),
        "rejected_unavailable": sum(o.rejected_unavailable for o in outcomes),
        "controller_crashes": sum(o.controller_crashes for o in outcomes),
        "takeovers": sum(o.takeovers for o in outcomes),
        "stale_rejected": sum(o.stale_rejected for o in outcomes),
        "retries": sum(o.retries for o in outcomes),
        "stranded": sum(o.stranded for o in outcomes),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="sharded controller-crash chaos soak")
    parser.add_argument("--seeds", type=int, default=20)
    parser.add_argument("--replay", action="store_true", help="verify bit-identical replay")
    parser.add_argument("--shards", type=int, default=3)
    parser.add_argument("--datacenters", type=int, default=8)
    parser.add_argument("--json", type=str, default=None, help="write outcomes to this path")
    args = parser.parse_args(argv)
    outcomes = run_shard_chaos_soak(
        args.seeds, replay=args.replay, k=args.shards, n_datacenters=args.datacenters
    )
    summary = soak_summary(outcomes)
    for key, value in summary.items():
        print(f"{key}: {value}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(
                {"summary": summary, "outcomes": [asdict(o) for o in outcomes]}, fh, indent=2
            )
    violations = sum(1 for o in outcomes if o.outcome.startswith(INCOMPLETE))
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
