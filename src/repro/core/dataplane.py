"""From plan to packets: instantiate a solved deployment as a live data plane.

The optimizer (problem (2)) produces a :class:`DeploymentPlan` — VNF
counts and conceptual flows.  This module builds the matching
packet-level simulation, the step the butterfly harness wires by hand:

- a :class:`~repro.net.topology.Topology` with the used links (plus
  reverse control links for ACK/NACK traffic),
- coding VNFs at each data center the plan populates, with
  :class:`~repro.core.vnf.VnfDispatcher` front-ends where a data center
  runs several instances (generation-keyed dispatch, §IV-A),
- per-session roles: RECODER where flows of the session merge, plain
  FORWARDER elsewhere ("in the case where only one flow of a session
  arrives at a data center, direct forwarding is sufficient"),
- output shaping at merge points derived from the flow rates (skip the
  fraction of each generation the out-link is not allocated),
- forwarding tables derived from the actual link rates f_m(e),
- an :class:`~repro.apps.file_transfer.NcSourceApp` per session paced
  by the source's conceptual-flow shares, and a decoding receiver app
  per destination.

This is what lets an end-to-end test assert that the rate the LP
promised is the rate the packet level delivers.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

import networkx as nx
import numpy as np

from repro.apps.file_transfer import NcReceiverApp, NcSourceApp
from repro.core.deployment import DeploymentPlan
from repro.core.session import MulticastSession
from repro.core.vnf import CodingVnf, VnfDispatcher, VnfRole
from repro.net.events import EventScheduler
from repro.net.topology import LinkSpec, Topology

CONTROL_LINK_MBPS = 5.0


#: Per-session configuration intent for one data center: role, next
#: hops, and {hop: skip} output shapes.
IntendedConfig = tuple[VnfRole, list[str], dict[str, int]]


@dataclass
class LiveDeployment:
    """A running packet-level instantiation of a deployment plan."""

    topology: Topology
    sources: dict[int, NcSourceApp] = dataclass_field(default_factory=dict)
    receivers: dict[tuple[int, str], NcReceiverApp] = dataclass_field(default_factory=dict)
    vnfs: dict[str, list[CodingVnf]] = dataclass_field(default_factory=dict)
    dispatchers: dict[str, VnfDispatcher] = dataclass_field(default_factory=dict)
    # dc name -> {session id: (role, [next hops], {hop: skip})}; what the
    # control plane must configure when configure=False was used.
    intended: dict[str, dict[int, IntendedConfig]] = dataclass_field(default_factory=dict)

    def start(self) -> None:
        for source in self.sources.values():
            source.start()

    def run(self, duration_s: float) -> None:
        self.topology.run(until=duration_s)

    def session_throughput_mbps(self, session_id: int, start_s: float = 0.0) -> float:
        """Min over the session's receivers of measured goodput."""
        rates = [
            app.goodput_mbps(start_s=start_s)
            for (sid, _), app in self.receivers.items()
            if sid == session_id
        ]
        if not rates:
            raise KeyError(f"no receivers for session {session_id}")
        return min(rates)

    def corrupt_dropped(self) -> int:
        """Corrupt packets dropped across every VNF and receiver.

        The pollution-containment invariant (DESIGN.md §11): on a dirty
        wire this is positive while decoded generations stay
        bit-identical — corruption died at a verification gate instead
        of reaching Gaussian elimination.
        """
        total = sum(vnf.corrupt_dropped for vnfs in self.vnfs.values() for vnf in vnfs)
        total += sum(app.corrupt_dropped for app in self.receivers.values())
        return total


def build_data_plane(
    plan: DeploymentPlan,
    graph: nx.DiGraph,
    sessions: list[MulticastSession],
    payload_mode: str = "coefficients-only",
    rate_fraction: float = 1.0,
    queue_bytes: int = 48 * 1024,
    jitter_s: float = 0.003,
    vnf_coding_mbps: float = 900.0,
    seed: int = 1,
    scheduler: EventScheduler | None = None,
    configure: bool = True,
) -> LiveDeployment:
    """Instantiate ``plan`` over ``graph`` for the given sessions.

    ``rate_fraction`` scales every session's offered rate below its λ
    (head-room for the pipeline's startup transient); link capacities
    come from the graph's ``capacity_mbps``/``delay_ms`` attributes.
    ``configure=False`` builds the plumbing but leaves the VNFs blank
    (their intended configuration is recorded in ``.intended``) — an
    orchestrator then configures them over the signal bus, the way the
    real control plane would.
    """
    if not 0 < rate_fraction <= 1.0:
        raise ValueError("rate_fraction must be in (0, 1]")
    sessions_by_id = {s.session_id: s for s in sessions}
    rng = np.random.default_rng(seed)
    topo = Topology(rng=rng) if scheduler is None else Topology(scheduler=scheduler, rng=rng)

    # -- which links the plan actually uses --------------------------------
    used_edges: set[tuple[str, str]] = set()
    for sid, decomposition in plan.decompositions.items():
        if sid not in sessions_by_id:
            continue
        for edge, rate in decomposition.link_rates().items():
            if rate > 1e-9:
                used_edges.add(edge)
    used_nodes = {n for e in used_edges for n in e}

    # -- nodes: dispatched VNF clusters at data centers, hosts elsewhere ----
    deployment = LiveDeployment(topology=topo)
    for name in sorted(used_nodes):
        count = plan.vnf_counts.get(name, 0)
        if count <= 0:
            topo.add_node(name)
            continue
        # Every instance carries the data center's name: the dispatcher
        # owns the topology slot, instances sit behind it and send on the
        # shared outgoing links (their datagrams carry the DC as source).
        instances = [
            CodingVnf(
                name,
                topo.scheduler,
                coding_capacity_mbps=vnf_coding_mbps,
                rng=rng,
                payload_mode=payload_mode,
            )
            for _ in range(count)
        ]
        deployment.vnfs[name] = instances
        if count == 1:
            topo.add_node(instances[0])
        else:
            dispatcher = VnfDispatcher(name, topo.scheduler)
            for vnf in instances:
                dispatcher.add_instance(vnf)
            deployment.dispatchers[name] = dispatcher
            topo.add_node(dispatcher)

    # -- links: used data links + reverse control links ---------------------
    for (u, v) in sorted(used_edges):
        data = graph.edges[u, v]
        topo.add_link(
            LinkSpec(u, v, data["capacity_mbps"], data["delay_ms"], queue_bytes=queue_bytes, jitter_s=jitter_s)
        )
        if (v, u) not in used_edges:
            topo.add_link(LinkSpec(v, u, CONTROL_LINK_MBPS, data["delay_ms"], queue_bytes=queue_bytes))
    # Multi-instance clusters need each instance wired to the out-links.
    for name, vnfs in deployment.vnfs.items():
        if len(vnfs) <= 1:
            continue
        for (u, v), link in topo.links.items():
            if u == name:
                for vnf in vnfs:
                    vnf.attach_out(link)

    # -- per-session configuration ------------------------------------------
    for sid, decomposition in plan.decompositions.items():
        session = sessions_by_id.get(sid)
        if session is None:
            continue
        link_rates = {e: r for e, r in decomposition.link_rates().items() if r > 1e-9}
        if not link_rates:
            continue
        inflow: dict[str, float] = {}
        next_hops: dict[str, list[str]] = {}
        for (u, v), rate in link_rates.items():
            inflow[v] = inflow.get(v, 0.0) + rate
            next_hops.setdefault(u, []).append(v)

        k = session.coding.blocks_per_generation
        for name, vnfs in deployment.vnfs.items():
            hops = sorted(next_hops.get(name, []))
            if not hops:
                continue
            incoming = [e for e in link_rates if e[1] == name]
            role = VnfRole.RECODER if len(incoming) > 1 else VnfRole.FORWARDER
            node_in = inflow.get(name, 0.0)
            shapes: dict[str, int] = {}
            if role is VnfRole.RECODER and node_in > 0:
                for hop in hops:
                    out_rate = link_rates[(name, hop)]
                    if out_rate < node_in - 1e-9:
                        # Skip the head of each generation so every
                        # emitted recode mixes the merged branches.
                        skip = int(round(k * (node_in - out_rate) / node_in))
                        shapes[hop] = max(1, min(k - 1, skip))
            deployment.intended.setdefault(name, {})[sid] = (role, hops, shapes)
            if configure:
                for vnf in vnfs:
                    vnf.configure_session(sid, role, session.coding)
                    vnf.forwarding_table = vnf.forwarding_table.copy()
                    vnf.forwarding_table.set_next_hops(sid, hops)
                    for hop, skip in shapes.items():
                        vnf.set_hop_shape(sid, hop, skip)

        # Receivers decode; the source paces per its conceptual shares.
        for receiver in session.receivers:
            if any(e[1] == receiver for e in link_rates):
                deployment.receivers[(sid, receiver)] = NcReceiverApp(
                    topo.get(receiver), session, payload_mode=payload_mode
                )
        source_shares = {
            v: rate * rate_fraction for (u, v), rate in link_rates.items() if u == session.source
        }
        if source_shares:
            deployment.sources[sid] = NcSourceApp(
                topo.get(session.source),
                session,
                link_shares=source_shares,
                data_rate_mbps=max(plan.lambdas.get(sid, 0.0) * rate_fraction, 1e-3),
                payload_mode=payload_mode,
                rng=rng,
            )
    return deployment
