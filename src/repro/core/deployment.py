"""Problem (2): joint coding-function deployment and multicast routing.

Decision variables (paper §IV-A):

- ``f^k_m(p)`` — conceptual-flow rate of session m's receiver k on
  feasible path p ∈ P^k_m,
- ``f_m(e)`` — actual coded rate of session m on link e (Eqn. 1),
- ``λ_m`` — end-to-end throughput of session m,
- ``x_v`` — integer number of VNFs deployed in data center v.

Objective: maximize Σ_m λ_m − α Σ_v x_v, subject to (2a)–(2g).

The LP relaxation is solved (HiGHS by default), x rounded up
(:mod:`repro.lp.rounding`), and the result packaged as a
:class:`DeploymentPlan` holding per-session
:class:`~repro.routing.conceptual.FlowDecomposition` objects.

Incremental re-optimization — the workhorse of the scaling algorithms —
is expressed with two knobs, following §IV-B's "based on the current
deployment and flows except affected data centers and flows":

- ``frozen`` — already-routed sessions whose flows must not move; their
  link usage and VNF load enter the constraints as constants.
- ``baseline_vnfs`` — VNFs already deployed (and paid for); only VNFs
  *above* the baseline are charged α in the objective, so re-solves
  prefer reusing live capacity (and the τ grace window makes reuse
  cheap at the VM layer too).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field as dataclass_field
from typing import Sequence

import networkx as nx

from repro.core.session import MulticastSession
from repro.lp import LinearProgram, LinExpr, SolveError, Variable, round_up_integers
from repro.routing.conceptual import ConceptualFlow, FlowDecomposition
from repro.routing.paths import Path, feasible_path_sets

#: A directed link, and what an LP expression may still be mid-fold.
Edge = tuple[str, str]
Expr = Variable | LinExpr


@dataclass
class SessionDemand:
    """One session as the optimizer sees it: its feasible path sets."""

    session: MulticastSession
    path_sets: dict[str, list[Path]]  # receiver -> list[Path]

    @property
    def session_id(self) -> int:
        return self.session.session_id

    def all_edges(self) -> set[Edge]:
        edges: set[Edge] = set()
        for paths in self.path_sets.values():
            for path in paths:
                edges.update(path.edges)
        return edges

    def has_feasible_paths(self) -> bool:
        return all(self.path_sets.get(r) for r in self.session.receivers)


@dataclass
class DataCenterSpec:
    """Optimizer view of one candidate data center."""

    name: str
    inbound_mbps: float   # B_in(v): per-VNF inbound cap
    outbound_mbps: float  # B_out(v): per-VNF outbound cap
    coding_mbps: float    # C(v): per-VNF coding capacity

    def __post_init__(self) -> None:
        if min(self.inbound_mbps, self.outbound_mbps, self.coding_mbps) <= 0:
            raise ValueError(f"{self.name}: caps and capacity must be positive")


@dataclass
class DeploymentPlan:
    """Solved deployment: VNF counts, session rates, and routed flows."""

    vnf_counts: dict[str, int] = dataclass_field(default_factory=dict)
    lambdas: dict[int, float] = dataclass_field(default_factory=dict)  # session id -> Mbps
    decompositions: dict[int, FlowDecomposition] = dataclass_field(default_factory=dict)
    objective: float = 0.0
    lp_objective: float = 0.0
    alpha: float = 0.0

    @property
    def total_throughput_mbps(self) -> float:
        return sum(self.lambdas.values())

    @property
    def total_vnfs(self) -> int:
        return sum(self.vnf_counts.values())

    def vnfs_at(self, datacenter: str) -> int:
        return self.vnf_counts.get(datacenter, 0)

    def used_datacenters(self) -> list[str]:
        return sorted(dc for dc, count in self.vnf_counts.items() if count > 0)

    def merged_with(self, other: "DeploymentPlan") -> "DeploymentPlan":
        """Union of two plans (e.g., frozen sessions + newly routed ones)."""
        counts = dict(self.vnf_counts)
        for dc, n in other.vnf_counts.items():
            counts[dc] = max(counts.get(dc, 0), n)
        return DeploymentPlan(
            vnf_counts=counts,
            lambdas={**self.lambdas, **other.lambdas},
            decompositions={**self.decompositions, **other.decompositions},
            objective=self.objective + other.objective,
            lp_objective=self.lp_objective + other.lp_objective,
            alpha=self.alpha,
        )


class DeploymentProblem:
    """Builder/solver for problem (2) over a network snapshot.

    Parameters
    ----------
    graph:
        Directed graph with ``capacity_mbps`` and ``delay_ms`` edge
        attributes covering sources, receivers and data centers.
    datacenters:
        Candidate deployment locations (the set V).
    alpha:
        The throughput-vs-cost conversion factor (Mbps per VNF).
    source_outbound_mbps / receiver_inbound_mbps:
        Caps for constraint (2d') and (2c'); per-node overrides win over
        the defaults.
    max_vnfs_per_dc:
        Upper bound on each x_v (a quota; generous by default).
    """

    def __init__(
        self,
        graph: nx.DiGraph,
        datacenters: list[DataCenterSpec],
        alpha: float = 20.0,
        source_outbound_mbps: float = 1000.0,
        receiver_inbound_mbps: float = 1000.0,
        endpoint_caps: dict[str, float] | None = None,
        max_vnfs_per_dc: int = 64,
    ) -> None:
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.graph = graph
        self.datacenters = {dc.name: dc for dc in datacenters}
        if not self.datacenters:
            raise ValueError("at least one candidate data center is required")
        if len(self.datacenters) != len(datacenters):
            raise ValueError("duplicate data-center names")
        missing = [name for name in self.datacenters if name not in graph]
        if missing:
            raise ValueError(f"data centers absent from graph: {missing}")
        self.alpha = alpha
        self.source_outbound_mbps = source_outbound_mbps
        self.receiver_inbound_mbps = receiver_inbound_mbps
        self.endpoint_caps = dict(endpoint_caps or {})
        self.max_vnfs_per_dc = max_vnfs_per_dc

    # -- demand construction ------------------------------------------------

    def build_demand(self, session: MulticastSession, max_hops: int | None = 6) -> SessionDemand:
        """Enumerate session m's feasible path sets P^k_m (§IV-A DFS)."""
        path_sets = feasible_path_sets(
            self.graph,
            session.source,
            session.receivers,
            session.max_delay_ms,
            relay_nodes=set(self.datacenters),
            max_hops=max_hops,
        )
        return SessionDemand(session=session, path_sets=path_sets)

    # -- the LP -----------------------------------------------------------------

    def solve(
        self,
        demands: list[SessionDemand],
        frozen: list[DeploymentPlan] | None = None,
        baseline_vnfs: dict[str, int] | None = None,
        fixed_vnfs: dict[str, int] | None = None,
        backend: str = "highs",
    ) -> DeploymentPlan:
        """Solve (2) for ``demands``; ``frozen`` plans stay untouched.

        ``frozen`` is a list of :class:`DeploymentPlan` whose flows keep
        consuming link/VNF capacity; ``baseline_vnfs`` maps data center →
        VNFs already deployed (cost-free to reuse).  ``fixed_vnfs`` pins
        x_v exactly (the "based on existing VNF deployment" re-solves of
        Alg. 3: no scaling, only rerouting).  Returns the plan for the
        *optimized* demands only — merge with the frozen plans via
        :meth:`DeploymentPlan.merged_with` if a global view is needed.
        """
        frozen = frozen or []
        baseline = dict(baseline_vnfs or {})
        for plan in frozen:
            for dc, n in plan.vnf_counts.items():
                baseline[dc] = max(baseline.get(dc, 0), n)
        frozen_link_load = self._frozen_link_load(frozen)

        lp = LinearProgram()
        lam_vars: dict[int, Variable] = {}
        x_vars: dict[str, Variable] = {}
        path_vars: dict[tuple[int, str, Path], Variable] = {}
        link_vars: dict[tuple[int, Edge], Variable] = {}

        for dc in self.datacenters.values():
            if fixed_vnfs is not None:
                pinned = fixed_vnfs.get(dc.name, 0)
                x_vars[dc.name] = lp.add_variable(f"x[{dc.name}]", lower=pinned, upper=pinned, integer=True)
            else:
                x_vars[dc.name] = lp.add_variable(
                    f"x[{dc.name}]", lower=0, upper=self.max_vnfs_per_dc, integer=True
                )

        for demand in demands:
            session = demand.session
            sid = session.session_id
            if not demand.has_feasible_paths():
                continue  # no route within Lmax; session gets rate 0
            if session.fixed_rate_mbps is None:
                lam_vars[sid] = lp.add_variable(f"lambda[{sid}]")
            for receiver, paths in demand.path_sets.items():
                for path in paths:
                    path_vars[(sid, receiver, path)] = lp.add_variable(f"f[{sid},{receiver},{'>'.join(path.nodes)}]")
            for edge in demand.all_edges():
                link_vars[(sid, edge)] = lp.add_variable(f"fm[{sid},{edge[0]}->{edge[1]}]")

        # (2a) λ_m ≤ Σ_p f^k_m(p) for every receiver k.
        for demand in demands:
            session = demand.session
            sid = session.session_id
            if not demand.has_feasible_paths():
                continue
            target = lam_vars.get(sid)
            for receiver, paths in demand.path_sets.items():
                total = self._sum([path_vars[(sid, receiver, p)] for p in paths])
                if target is not None:
                    lp.add_constraint(target - total <= 0.0, name=f"2a[{sid},{receiver}]")
                else:
                    assert session.fixed_rate_mbps is not None  # else λ would be a variable
                    lp.add_constraint(total >= session.fixed_rate_mbps, name=f"2a-fixed[{sid},{receiver}]")

        # (2b) Σ_{p ∋ e} f^k_m(p) ≤ f_m(e).
        for demand in demands:
            sid = demand.session_id
            if not demand.has_feasible_paths():
                continue
            for receiver, paths in demand.path_sets.items():
                on_edge: dict[Edge, list[Variable]] = {}
                for path in paths:
                    for edge in path.edges:
                        on_edge.setdefault(edge, []).append(path_vars[(sid, receiver, path)])
                for edge, pvars in on_edge.items():
                    expr = self._sum(pvars)
                    lp.add_constraint(expr - link_vars[(sid, edge)] <= 0.0, name=f"2b[{sid},{receiver},{edge}]")

        # Link capacity: Σ_m f_m(e) ≤ capacity(e) (implied by the paper's
        # bandwidth-bounded links; required for a meaningful flow model).
        per_edge_vars: dict[Edge, list[Variable]] = {}
        for (sid, edge), var in link_vars.items():
            per_edge_vars.setdefault(edge, []).append(var)
        for edge, evars in per_edge_vars.items():
            cap = float(self.graph.edges[edge]["capacity_mbps"]) - frozen_link_load.get(edge, 0.0)
            lp.add_constraint(self._sum(evars) <= max(0.0, cap), name=f"cap[{edge}]")

        # (2c)/(2d)/(2e): per-data-center aggregate in/out/coding bounded by
        # x_v VNFs (baseline VNFs already count — they are real capacity).
        for dc in self.datacenters.values():
            in_vars = [var for (sid, edge), var in link_vars.items() if edge[1] == dc.name]
            out_vars = [var for (sid, edge), var in link_vars.items() if edge[0] == dc.name]
            frozen_in = sum(load for edge, load in frozen_link_load.items() if edge[1] == dc.name)
            frozen_out = sum(load for edge, load in frozen_link_load.items() if edge[0] == dc.name)
            x = x_vars[dc.name]
            # Frozen load on a DC the new demands never touch still needs
            # its x_v floor — sum over an empty var list is 0·x, not a crash.
            if in_vars or frozen_in:
                expr = self._sum(in_vars or [0.0 * x])
                lp.add_constraint(expr - dc.inbound_mbps * x <= -frozen_in, name=f"2c[{dc.name}]")
                lp.add_constraint(expr - dc.coding_mbps * x <= -frozen_in, name=f"2e[{dc.name}]")
            if out_vars or frozen_out:
                expr = self._sum(out_vars or [0.0 * x])
                lp.add_constraint(expr - dc.outbound_mbps * x <= -frozen_out, name=f"2d[{dc.name}]")

        # (2c') receiver inbound caps and (2d') source outbound caps.
        for demand in demands:
            session = demand.session
            sid = session.session_id
            if not demand.has_feasible_paths():
                continue
            for receiver in session.receivers:
                rvars = [var for (s, edge), var in link_vars.items() if s == sid and edge[1] == receiver]
                if rvars:
                    cap = self.endpoint_caps.get(receiver, self.receiver_inbound_mbps)
                    lp.add_constraint(self._sum(rvars) <= cap, name=f"2c'[{sid},{receiver}]")
            svars = [var for (s, edge), var in link_vars.items() if s == sid and edge[0] == session.source]
            if svars:
                cap = self.endpoint_caps.get(session.source, self.source_outbound_mbps)
                lp.add_constraint(self._sum(svars) <= cap, name=f"2d'[{sid}]")

        # Objective: Σ λ_m − α Σ extra_v, where extra_v = max(0, x_v − baseline_v)
        # is modelled by charging only the part of x above the baseline.
        # A tiny per-Mbps-per-link penalty breaks ties toward bandwidth-
        # efficient routings (and keeps fixed-rate sessions from routing
        # surplus flow, since their λ carries no objective weight).
        objective: Expr = 0.0 * x_vars[next(iter(x_vars))]
        for lam in lam_vars.values():
            objective = objective + lam
        extra_vars: dict[str, Variable] = {}
        for name, x in x_vars.items():
            base = baseline.get(name, 0)
            extra = lp.add_variable(f"extra[{name}]")
            extra_vars[name] = extra
            lp.add_constraint(x - extra <= base, name=f"extra[{name}]")
            objective = objective - self.alpha * extra
        for var in link_vars.values():
            objective = objective - 1e-6 * var
        lp.maximize(objective)

        solution = lp.solve(backend=backend)
        rounded = round_up_integers(solution)

        plan = DeploymentPlan(alpha=self.alpha, lp_objective=solution.objective)
        for name, x in x_vars.items():
            plan.vnf_counts[name] = rounded[x]
        for demand in demands:
            session = demand.session
            sid = session.session_id
            decomposition = FlowDecomposition(session_id=sid, source=session.source)
            if not demand.has_feasible_paths():
                plan.lambdas[sid] = 0.0
                plan.decompositions[sid] = decomposition
                continue
            for receiver, paths in demand.path_sets.items():
                flow = ConceptualFlow(session_id=sid, receiver=receiver)
                for path in paths:
                    rate = solution[path_vars[(sid, receiver, path)]]
                    if rate > 1e-9:
                        flow.add(path, rate)
                decomposition.flows[receiver] = flow
            plan.decompositions[sid] = decomposition
            if session.fixed_rate_mbps is not None:
                plan.lambdas[sid] = session.fixed_rate_mbps
            else:
                plan.lambdas[sid] = max(0.0, solution[lam_vars[sid]])
        if fixed_vnfs is None:
            self._set_minimal_vnf_counts(plan, frozen_link_load)
        else:
            plan.vnf_counts = {name: fixed_vnfs.get(name, 0) for name in self.datacenters}
        plan.objective = plan.total_throughput_mbps - self.alpha * sum(
            max(0, plan.vnf_counts[name] - baseline.get(name, 0)) for name in plan.vnf_counts
        )
        return plan

    # -- helpers ------------------------------------------------------------

    @staticmethod
    def _sum(variables: Sequence[Expr]) -> Expr:
        expr: Expr = variables[0]
        for var in variables[1:]:
            expr = expr + var
        return expr

    @staticmethod
    def _frozen_link_load(frozen: list[DeploymentPlan]) -> dict[Edge, float]:
        load: dict[Edge, float] = {}
        for plan in frozen:
            for decomposition in plan.decompositions.values():
                for edge, rate in decomposition.link_rates().items():
                    load[edge] = load.get(edge, 0.0) + rate
        return load

    def _set_minimal_vnf_counts(self, plan: DeploymentPlan, frozen_link_load: dict[Edge, float]) -> None:
        """Replace rounded x_v by the exact minimum each data center needs.

        LP rounding can leave x_v = 1 at a data center the LP touched at
        rate ε.  The true requirement is determined by the routed rates:
        a data center handling aggregate inflow I and outflow O (own plan
        + frozen sessions) needs ``max(ceil(I / min(B_in, C)),
        ceil(O / B_out))`` VNFs.  Plans carrying the frozen load's share
        makes :meth:`DeploymentPlan.merged_with` (which takes per-DC
        maxima) produce the correct global count.
        """
        load: dict[Edge, float] = dict(frozen_link_load)
        for decomposition in plan.decompositions.values():
            for edge, rate in decomposition.link_rates().items():
                load[edge] = load.get(edge, 0.0) + rate
        for name, dc in self.datacenters.items():
            inflow = sum(rate for edge, rate in load.items() if edge[1] == name)
            outflow = sum(rate for edge, rate in load.items() if edge[0] == name)
            required = max(
                math.ceil(inflow / min(dc.inbound_mbps, dc.coding_mbps) - 1e-9),
                math.ceil(outflow / dc.outbound_mbps - 1e-9),
            )
            plan.vnf_counts[name] = max(required, 0)
