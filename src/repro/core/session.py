"""Multicast sessions: the unit of service the system manages.

A session has one source and K ≥ 1 receivers (K = 1 is plain unicast,
"subsuming unicast as a special case").  Each session carries a maximum
tolerable end-to-end delay L^max_m — small for live streaming and
conferencing, large for file download — which bounds the feasible relay
paths, and a coding configuration (generation/block sizes, field,
redundancy) distributed to VNFs via NC_SETTINGS at initialization.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.gf import GF256, GaloisField
from repro.rlnc.generation import DEFAULT_BLOCK_BYTES, DEFAULT_BLOCKS_PER_GENERATION
from repro.rlnc.redundancy import RedundancyPolicy

_session_ids = itertools.count(1)


@dataclass(frozen=True)
class CodingConfig:
    """Per-session coding parameters (uniform across the system, §III-B)."""

    block_bytes: int = DEFAULT_BLOCK_BYTES
    blocks_per_generation: int = DEFAULT_BLOCKS_PER_GENERATION
    buffer_generations: int = 1024
    redundancy: RedundancyPolicy = field(default_factory=RedundancyPolicy)
    field_order: int = 256

    def __post_init__(self) -> None:
        if self.block_bytes <= 0:
            raise ValueError("block_bytes must be positive")
        if not 1 <= self.blocks_per_generation <= 255:
            raise ValueError("blocks_per_generation must be in [1, 255] (one header byte per coefficient)")
        if self.buffer_generations <= 0:
            raise ValueError("buffer_generations must be positive")

    @property
    def galois_field(self) -> GaloisField:
        if self.field_order == 256:
            return GF256
        return GaloisField(self.field_order.bit_length() - 1)

    @property
    def generation_bytes(self) -> int:
        """Generation size in the paper's sense (bytes per generation)."""
        return self.block_bytes * self.blocks_per_generation

    def packets_per_generation(self) -> int:
        """Packets a coding node emits per generation (k + redundancy)."""
        return self.redundancy.packets_per_generation(self.blocks_per_generation)


@dataclass
class MulticastSession:
    """One multicast session owned by the service provider."""

    source: str
    receivers: list[str]
    max_delay_ms: float = 150.0
    fixed_rate_mbps: float | None = None
    coding: CodingConfig = field(default_factory=CodingConfig)
    session_id: int = field(default_factory=lambda: next(_session_ids))

    def __post_init__(self) -> None:
        self.receivers = list(self.receivers)
        if not self.receivers:
            raise ValueError("a session needs at least one receiver")
        if self.source in self.receivers:
            raise ValueError("the source cannot also be a receiver")
        if len(set(self.receivers)) != len(self.receivers):
            raise ValueError("duplicate receivers")
        if self.max_delay_ms <= 0:
            raise ValueError("max tolerable delay must be positive")
        if self.fixed_rate_mbps is not None and self.fixed_rate_mbps <= 0:
            raise ValueError("fixed rate must be positive when given")

    @property
    def is_unicast(self) -> bool:
        return len(self.receivers) == 1

    def add_receiver(self, receiver: str) -> None:
        """Receiver join (Alg. 3 RECEIVER JOIN trigger)."""
        if receiver in self.receivers:
            raise ValueError(f"{receiver} is already in session {self.session_id}")
        if receiver == self.source:
            raise ValueError("the source cannot join as a receiver")
        self.receivers.append(receiver)

    def remove_receiver(self, receiver: str) -> None:
        """Receiver departure (Alg. 3 RECEIVER QUIT trigger)."""
        if receiver not in self.receivers:
            raise ValueError(f"{receiver} is not in session {self.session_id}")
        if len(self.receivers) == 1:
            raise ValueError("removing the last receiver would empty the session; terminate it instead")
        self.receivers.remove(receiver)

    def __repr__(self) -> str:
        return (
            f"MulticastSession(#{self.session_id}, {self.source} -> {self.receivers}, "
            f"Lmax={self.max_delay_ms} ms)"
        )
