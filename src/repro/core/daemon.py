"""The per-node daemon (paper §III-A).

"A daemon program runs on each network coding node."  The daemon is the
control-plane agent: it registers with the :class:`SignalBus`, brings
the coding function up when NC_SETTINGS arrives (starting a coding
function on a launched VM costs ~376 ms, §V-C5), applies forwarding
tables (the SIGUSR1 cycle), and tears the VNF down on NC_VNF_END after
the τ grace.

Fault model: the daemon is a process, and processes die.  ``kill()``
models a crash — the daemon unregisters from the bus (in-flight signals
addressed to it go through the bus's retry-then-undeliverable path),
stops its heartbeat, and forgets any queued-but-unapplied forwarding
table.  ``restart()`` brings a fresh daemon process up on the same
node: it re-registers and resumes heartbeats, but the coding function
is *not* running until the controller re-sends NC_SETTINGS — exactly
the amnesia a real supervisor restart has.

When ``heartbeat_interval_s`` is set, the daemon emits periodic
``NC_HEARTBEAT`` signals to the controller; the controller's failure
detector declares the VNF dead after a configurable number of misses.

Staleness defense (DESIGN.md §11, §14): the bus delivers at-least-once
and possibly out of order (retries, fault-hook delays), so the daemon
keeps the highest ``(fence, epoch)`` config stamp it has applied — the
shard-lease fence orders configs across controller takeovers, the
epoch within one primary's reign — and rejects older
``NC_FORWARD_TAB``/``NC_SETTINGS`` (``stale_rejected``), and it
remembers recently seen ``signal_id``s so a re-delivered signal is
acted on exactly once (``duplicate_dropped``).  Both defenses die with
the process — a restarted daemon accepts whatever epoch the controller
sends next, matching real supervisor-restart amnesia.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.core.forwarding import ForwardingTable
from repro.core.session import CodingConfig
from repro.core.signals import (
    ConfigEpochGate,
    NcForwardTab,
    NcHeartbeat,
    NcSettings,
    NcStart,
    NcVnfEnd,
    Signal,
    SignalPort,
)
from repro.core.vnf import CodingVnf, VnfRole
from repro.net.events import PeriodicEvent
from repro.rlnc.redundancy import RedundancyPolicy

VNF_START_LATENCY_S = 0.37621  # measured average in §V-C5

CONTROLLER_NAME = "controller"  # the bus address failure reports go to

#: Upper bound on remembered signal_ids for delivery dedup.  Re-delivery
#: windows are short (bus retries span ~a second), so a small bounded
#: set is plenty; the cap only exists to keep long soaks memory-flat.
SEEN_SIGNALS_LIMIT = 512


class VnfDaemon:
    """Control-plane agent colocated with one coding VNF."""

    def __init__(
        self,
        vnf: CodingVnf,
        bus: SignalPort,
        session_configs: dict[int, CodingConfig] | None = None,
        on_shutdown: Callable[["VnfDaemon"], None] | None = None,
        vnf_start_latency_s: float = VNF_START_LATENCY_S,
        heartbeat_interval_s: float | None = None,
        controller_name: str = CONTROLLER_NAME,
    ) -> None:
        self.vnf = vnf
        self.bus = bus
        self.session_configs = dict(session_configs or {})
        self.on_shutdown = on_shutdown
        self.vnf_start_latency_s = vnf_start_latency_s
        self.heartbeat_interval_s = heartbeat_interval_s
        self.controller_name = controller_name
        self.alive = True
        self.function_running = False
        self.started_at: float | None = None
        self.killed_at: float | None = None
        self.restarts = 0
        self.pending_table: ForwardingTable | None = None
        self.applied_tables = 0
        self.retunes_staged = 0
        self.total_pause_s = 0.0
        self.heartbeats_sent = 0
        # Staleness / duplicate defense (per daemon process lifetime).
        self._config_gate = ConfigEpochGate()
        self.duplicate_dropped = 0
        self._seen_signal_ids: dict[int, None] = {}  # insertion-ordered bounded set
        self._heartbeat: PeriodicEvent | None = None
        bus.register(vnf.name, self.handle_signal)
        self._start_heartbeat()

    # -- liveness --------------------------------------------------------

    def _start_heartbeat(self) -> None:
        if self.heartbeat_interval_s is None:
            return
        # First beat after one interval: a daemon that just came up has
        # nothing to report yet, and the offset keeps beats of daemons
        # created at the same instant from colliding in the event order.
        self._heartbeat = self.vnf.scheduler.schedule_every(self.heartbeat_interval_s, self._beat)

    def _beat(self) -> None:
        if not self.alive:
            return
        self.heartbeats_sent += 1
        self.bus.send(
            NcHeartbeat(target=self.controller_name, vnf_name=self.vnf.name, beat=self.heartbeats_sent)
        )

    def kill(self) -> None:
        """Crash the daemon process (fault injection / VM failure).

        Queued state dies with the process: the pending forwarding table
        is lost and the bus forgets the registration, so signals headed
        here hit the retry-then-undeliverable path instead of a void.
        """
        if not self.alive:
            return
        self.alive = False
        self.function_running = False
        self.killed_at = self.vnf.scheduler.now
        self.pending_table = None
        if self._heartbeat is not None:
            self._heartbeat.cancel()
            self._heartbeat = None
        self.bus.unregister(self.vnf.name)

    def restart(self) -> None:
        """Bring a fresh daemon process up on the same node.

        Re-registers and resumes heartbeats; the coding function stays
        down until the controller re-sends NC_SETTINGS.
        """
        if self.alive:
            return
        self.alive = True
        self.restarts += 1
        # Process amnesia: a fresh daemon has no epoch/fence memory and
        # no dedup window — it accepts whatever the controller sends
        # next (the stale_rejected tally survives; it is telemetry, not
        # process state).
        rejected = self._config_gate.stale_rejected
        self._config_gate = ConfigEpochGate()
        self._config_gate.stale_rejected = rejected
        self._seen_signal_ids.clear()
        self.bus.register(self.vnf.name, self.handle_signal)
        self._start_heartbeat()

    # -- signal dispatch ------------------------------------------------

    def handle_signal(self, signal: Signal) -> None:
        if not self.alive:
            return  # a racing delivery to a corpse
        if self._already_seen(signal):
            # At-least-once delivery re-sent a signal this process
            # already acted on: applying a forwarding table (and paying
            # its pause) twice is not idempotent, so drop the re-run.
            self.duplicate_dropped += 1
            return
        if isinstance(signal, NcSettings):
            self._on_settings(signal)
        elif isinstance(signal, NcForwardTab):
            self._on_forward_tab(signal)
        elif isinstance(signal, NcVnfEnd):
            self._on_vnf_end(signal)
        elif isinstance(signal, NcStart):
            pass  # meaningful to source applications; a relay VNF is driven by traffic
        # NC_VNF_START and NC_HEARTBEAT are consumed by the controller.

    def _already_seen(self, signal: Signal) -> bool:
        if signal.signal_id in self._seen_signal_ids:
            return True
        self._seen_signal_ids[signal.signal_id] = None
        while len(self._seen_signal_ids) > SEEN_SIGNALS_LIMIT:
            self._seen_signal_ids.pop(next(iter(self._seen_signal_ids)))
        return False

    @property
    def config_epoch(self) -> int:
        """Highest config epoch applied by this daemon process."""
        return self._config_gate.epoch

    @property
    def config_fence(self) -> int:
        """Shard-lease fence of the newest config applied (0 pre-shard)."""
        return self._config_gate.fence

    @property
    def stale_rejected(self) -> int:
        """Config signals refused for carrying an older (fence, epoch)."""
        return self._config_gate.stale_rejected

    def _accepts_config(self, fence: int, epoch: int) -> bool:
        """True when a config signal is current; counts stale rejections.

        Configs are ordered by ``(fence, epoch)``: the shard-lease fence
        dominates, so a deposed primary's table loses to the successor's
        first push no matter how far its private epoch counter ran.
        Equal stamps are accepted — distinct signals of one controller
        push (table + settings) share one — and fence/epoch-0 senders
        that predate the protocols keep working.
        """
        return self._config_gate.accepts(fence, epoch)

    def _on_settings(self, signal: NcSettings) -> None:
        if not self._accepts_config(signal.fence, signal.epoch):
            return
        for session_id, role_name in signal.roles:
            config = self.session_configs.get(session_id, CodingConfig())
            self.vnf.configure_session(session_id, VnfRole(role_name), config)
        self._stage_retunes(signal)
        for session_id, next_hop, skip in signal.shapes:
            self.vnf.set_hop_shape(session_id, next_hop, skip)
        if not self.function_running:
            # Starting the coding function takes ~376 ms; model it as an
            # initial pause of the packet path.
            self.vnf.scheduler.schedule(self.vnf_start_latency_s, self._function_started)

    def _stage_retunes(self, signal: NcSettings) -> None:
        """Stage a mid-session coding retune carried on NC_SETTINGS.

        Targets the sessions named in ``session_ids`` (every configured
        session when the list is empty), skipping any the same signal
        just (re)configured through ``roles`` — those already start on
        the new parameters.  The staged config goes through
        :meth:`CodingVnf.retune_session`, so the data plane swaps it in
        at the next generation boundary, never mid-block.
        """
        if signal.blocks_per_generation <= 0 and signal.redundancy_extra < 0:
            return
        fresh = {session_id for session_id, _ in signal.roles}
        targets = signal.session_ids if signal.session_ids else tuple(self.vnf.configs)
        for session_id in targets:
            if session_id in fresh or session_id not in self.vnf.configs:
                continue
            config = self.vnf.configs[session_id]
            if signal.blocks_per_generation > 0:
                config = dataclasses.replace(config, blocks_per_generation=signal.blocks_per_generation)
            if signal.redundancy_extra >= 0:
                config = dataclasses.replace(config, redundancy=RedundancyPolicy(signal.redundancy_extra))
            self.session_configs[session_id] = config
            self.vnf.retune_session(session_id, config)
            self.retunes_staged += 1

    def _function_started(self) -> None:
        if not self.alive:
            return  # killed while the function was starting
        self.function_running = True
        self.started_at = self.vnf.scheduler.now
        if self.pending_table is not None:
            table, self.pending_table = self.pending_table, None
            self._apply_table(table)

    def _on_forward_tab(self, signal: NcForwardTab) -> None:
        if not self._accepts_config(signal.fence, signal.epoch):
            return  # pre-replan or deposed-primary table: discard
        table = ForwardingTable.parse(signal.table_text)
        if not self.function_running:
            self.pending_table = table  # applied as soon as the function is up
            return
        self._apply_table(table)

    def _apply_table(self, table: ForwardingTable) -> None:
        pause = self.vnf.apply_forwarding_table(table)
        self.applied_tables += 1
        self.total_pause_s += pause

    def _on_vnf_end(self, signal: NcVnfEnd) -> None:
        self.function_running = False
        if self._heartbeat is not None:
            self._heartbeat.cancel()
            self._heartbeat = None
        self.bus.unregister(self.vnf.name)
        if self.on_shutdown is not None:
            self.on_shutdown(self)
