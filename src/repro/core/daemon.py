"""The per-node daemon (paper §III-A).

"A daemon program runs on each network coding node."  The daemon is the
control-plane agent: it registers with the :class:`SignalBus`, brings
the coding function up when NC_SETTINGS arrives (starting a coding
function on a launched VM costs ~376 ms, §V-C5), applies forwarding
tables (the SIGUSR1 cycle), and tears the VNF down on NC_VNF_END after
the τ grace.
"""

from __future__ import annotations

from typing import Callable

from repro.core.forwarding import ForwardingTable
from repro.core.session import CodingConfig
from repro.core.signals import NcForwardTab, NcSettings, NcStart, NcVnfEnd, Signal, SignalBus
from repro.core.vnf import CodingVnf, VnfRole

VNF_START_LATENCY_S = 0.37621  # measured average in §V-C5


class VnfDaemon:
    """Control-plane agent colocated with one coding VNF."""

    def __init__(
        self,
        vnf: CodingVnf,
        bus: SignalBus,
        session_configs: dict | None = None,
        on_shutdown: Callable[["VnfDaemon"], None] | None = None,
        vnf_start_latency_s: float = VNF_START_LATENCY_S,
    ):
        self.vnf = vnf
        self.bus = bus
        self.session_configs = dict(session_configs or {})  # session_id -> CodingConfig
        self.on_shutdown = on_shutdown
        self.vnf_start_latency_s = vnf_start_latency_s
        self.function_running = False
        self.started_at: float | None = None
        self.pending_table: ForwardingTable | None = None
        self.applied_tables = 0
        self.total_pause_s = 0.0
        bus.register(vnf.name, self.handle_signal)

    # -- signal dispatch ------------------------------------------------

    def handle_signal(self, signal: Signal) -> None:
        if isinstance(signal, NcSettings):
            self._on_settings(signal)
        elif isinstance(signal, NcForwardTab):
            self._on_forward_tab(signal)
        elif isinstance(signal, NcVnfEnd):
            self._on_vnf_end(signal)
        elif isinstance(signal, NcStart):
            pass  # meaningful to source applications; a relay VNF is driven by traffic
        # NC_VNF_START is consumed by the controller itself.

    def _on_settings(self, signal: NcSettings) -> None:
        for session_id, role_name in signal.roles:
            config = self.session_configs.get(session_id, CodingConfig())
            self.vnf.configure_session(session_id, VnfRole(role_name), config)
        for session_id, next_hop, skip in signal.shapes:
            self.vnf.set_hop_shape(session_id, next_hop, skip)
        if not self.function_running:
            # Starting the coding function takes ~376 ms; model it as an
            # initial pause of the packet path.
            self.vnf.scheduler.schedule(self.vnf_start_latency_s, self._function_started)

    def _function_started(self) -> None:
        self.function_running = True
        self.started_at = self.vnf.scheduler.now
        if self.pending_table is not None:
            table, self.pending_table = self.pending_table, None
            self._apply_table(table)

    def _on_forward_tab(self, signal: NcForwardTab) -> None:
        table = ForwardingTable.parse(signal.table_text)
        if not self.function_running:
            self.pending_table = table  # applied as soon as the function is up
            return
        self._apply_table(table)

    def _apply_table(self, table: ForwardingTable) -> None:
        pause = self.vnf.apply_forwarding_table(table)
        self.applied_tables += 1
        self.total_pause_s += pause

    def _on_vnf_end(self, signal: NcVnfEnd) -> None:
        self.function_running = False
        self.bus.unregister(self.vnf.name)
        if self.on_shutdown is not None:
            self.on_shutdown(self)
