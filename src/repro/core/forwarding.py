"""Forwarding tables and the daemon's reload cycle.

The paper keeps each VNF's forwarding table in a text file "recording
the next hops' IP addresses for each relevant multicast session".  On an
update the daemon sends SIGUSR1 to its coding function, which pauses,
loads the new table, and resumes; Tab. III measures that cycle at
78–311 ms depending on the fraction of entries changed.

:class:`ForwardingTable` is the parsed form plus (de)serialization to
the text format; :class:`ForwardingUpdateModel` converts an update's
size into the pause duration applied in the simulator, calibrated to
reproduce Tab. III.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable


class ForwardingTableError(ValueError):
    """Malformed table text or inconsistent update."""


@dataclass
class ForwardingTable:
    """Per-session next hops: session id → ordered list of next-hop names."""

    entries: dict[int, list[str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        normalized: dict[int, list[str]] = {}
        for session_id, hops in self.entries.items():
            hops = list(hops)
            if len(set(hops)) != len(hops):
                raise ForwardingTableError(f"duplicate next hop for session {session_id}: {hops}")
            if hops:  # a session with no next hops has no row
                normalized[int(session_id)] = hops
        self.entries = normalized

    # -- queries ---------------------------------------------------------

    def next_hops(self, session_id: int) -> list[str]:
        """Next-hop node names for a session (empty = sink/no route)."""
        return list(self.entries.get(session_id, []))

    def sessions(self) -> list[int]:
        return sorted(self.entries)

    def __len__(self) -> int:
        """Total number of (session, next hop) entries."""
        return sum(len(hops) for hops in self.entries.values())

    # -- mutation -----------------------------------------------------------

    def set_next_hops(self, session_id: int, hops: Iterable[str]) -> None:
        hops = list(hops)
        if len(set(hops)) != len(hops):
            raise ForwardingTableError(f"duplicate next hop for session {session_id}: {hops}")
        if hops:
            self.entries[int(session_id)] = hops
        else:
            self.entries.pop(int(session_id), None)

    def copy(self) -> "ForwardingTable":
        return ForwardingTable({sid: list(hops) for sid, hops in self.entries.items()})

    # -- text format (the paper's on-disk representation) ---------------------

    def serialize(self) -> str:
        """One line per session: ``<session_id> <hop1> <hop2> ...``."""
        lines = [f"{sid} {' '.join(self.entries[sid])}" for sid in sorted(self.entries)]
        return "\n".join(lines) + ("\n" if lines else "")

    @classmethod
    def parse(cls, text: str) -> "ForwardingTable":
        entries: dict[int, list[str]] = {}
        for lineno, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            try:
                session_id = int(parts[0])
            except ValueError:
                raise ForwardingTableError(f"line {lineno}: bad session id {parts[0]!r}") from None
            if session_id in entries:
                raise ForwardingTableError(f"line {lineno}: duplicate session {session_id}")
            if parts[1:]:
                entries[session_id] = parts[1:]
        return cls(entries)

    # -- diffing (drives the update-cost model) ---------------------------------

    def diff_entries(self, new: "ForwardingTable") -> int:
        """Number of (session, hop-list) rows that change between tables."""
        changed = 0
        for sid in set(self.entries) | set(new.entries):
            if self.entries.get(sid) != new.entries.get(sid):
                changed += 1
        return changed

    def update_fraction(self, new: "ForwardingTable") -> float:
        """Fraction of rows changed, relative to the larger table."""
        total = max(len(self.entries), len(new.entries))
        if total == 0:
            return 0.0
        return self.diff_entries(new) / total


@dataclass(frozen=True)
class ForwardingUpdateModel:
    """Pause duration of the SIGUSR1 → reload → resume cycle.

    Tab. III (10-entry table): 20 % updated → 78.44 ms, 100 % → 310.61 ms.
    The series is close to linear in the number of rewritten entries with
    a fixed signalling overhead; least squares on the five published
    points gives ≈ 20 ms base + ≈ 29 ms per updated entry, which is what
    we default to.
    """

    base_ms: float = 20.0
    per_entry_ms: float = 29.0

    def pause_seconds(self, updated_entries: int) -> float:
        """Simulated pause applied to the coding function."""
        if updated_entries < 0:
            raise ValueError("updated_entries cannot be negative")
        if updated_entries == 0:
            return 0.0
        return (self.base_ms + self.per_entry_ms * updated_entries) / 1e3

    def pause_for_update(self, old: ForwardingTable, new: ForwardingTable) -> float:
        return self.pause_seconds(old.diff_entries(new))
