"""The data-plane coding VNF (paper §III-B2).

A :class:`CodingVnf` is a simulated node running the network coding
function.  Per session it acts in one of four roles:

- ``FORWARDER`` — pass packets through unchanged (the controller assigns
  this when only one flow of the session reaches the data center, where
  coding would be pointless).
- ``RECODER`` — the pipelined relay: buffer, emit a fresh random
  combination per arrival, forward to the next hops in the forwarding
  table (an *independent* recode per next hop, so downstream nodes get
  diverse combinations).
- ``DECODER`` — progressive Gaussian elimination; on completing a
  generation, deliver it to the local receiver application.
- ``ENCODER`` — reserved for source-side use (source apps typically use
  :class:`repro.rlnc.Encoder` directly; a VNF encoder re-codes
  systematic input into dense combinations).

Packet processing is modelled as a single-server queue whose per-packet
service time is derived from the VNF's coding capacity C(v) and its NIC
model, so a VNF saturates realistically instead of having infinite
throughput.  Forwarding-table reloads pause the function (SIGUSR1
cycle, §III-A); packets arriving during the pause are queued and
processed on resume.
"""

from __future__ import annotations

import enum
from typing import Callable

import numpy as np

from repro.core.forwarding import ForwardingTable, ForwardingUpdateModel
from repro.core.session import CodingConfig
from repro.net.buffer import GenerationBuffer
from repro.net.events import EventScheduler
from repro.net.nic import NicModel, PollModeNic
from repro.net.node import Node
from repro.net.packet import Datagram
from repro.rlnc.decoder import Decoder
from repro.rlnc.generation import Generation
from repro.rlnc.packet import CodedPacket
from repro.rlnc.recoder import Recoder
from repro.util.rng import derive_rng

NC_PORT = 52017  # the designated UDP port coding VNFs listen on


class VnfRole(enum.Enum):
    ENCODER = "encoder"
    RECODER = "recoder"
    DECODER = "decoder"
    FORWARDER = "forwarder"


class CodingVnf(Node):
    """One coding function instance on one VM."""

    def __init__(
        self,
        name: str,
        scheduler: EventScheduler,
        coding_capacity_mbps: float = 900.0,
        nic: NicModel | None = None,
        update_model: ForwardingUpdateModel | None = None,
        rng: np.random.Generator | None = None,
        payload_mode: str = "full",
        coding_overhead_s: float = 90e-6,
    ) -> None:
        super().__init__(name, scheduler)
        if coding_capacity_mbps <= 0:
            raise ValueError("coding capacity must be positive")
        if payload_mode not in ("full", "coefficients-only"):
            raise ValueError("payload_mode must be 'full' or 'coefficients-only'")
        if coding_overhead_s < 0:
            raise ValueError("coding overhead cannot be negative")
        self.coding_capacity_mbps = coding_capacity_mbps
        self.coding_overhead_s = coding_overhead_s
        self.nic = nic if nic is not None else PollModeNic()
        self.update_model = update_model if update_model is not None else ForwardingUpdateModel()
        self.payload_mode = payload_mode
        self._rng = rng if rng is not None else derive_rng("core.vnf", name)

        self.roles: dict[int, VnfRole] = {}
        self.configs: dict[int, CodingConfig] = {}
        # Per-hop output shaping.  By default a recoder emits one packet
        # per arrival per next hop (the paper's pipelining).  At a merge
        # point whose out-link is allocated less than its inflow, the
        # controller installs a shape (skip S arrivals, then emit up to E
        # packets per generation): skipping the first arrivals guarantees
        # the first recode already mixes both incoming branches, and the
        # emission cap matches the conceptual-flow allocation instead of
        # flooding the link.
        # (session, hop) -> (skip, emit-cap)
        self._hop_shapes: dict[tuple[int, str], tuple[int, int | None]] = {}
        # (session, hop, generation) -> [arrivals, emitted]
        self._hop_progress: dict[tuple[int, str, int], list[int]] = {}
        self._payload_bytes: dict[int, int] = {}    # session -> last seen wire payload size
        self.forwarding_table = ForwardingTable()
        self.buffers: dict[int, GenerationBuffer] = {}
        self._recoders: dict[tuple[int, int], Recoder] = {}
        self._decoders: dict[tuple[int, int], Decoder] = {}
        self._delivery: dict[int, Callable[[int, Generation], None]] = {}

        # Staged mid-session coding retunes (DESIGN.md §15): applied at
        # the next generation boundary, never to in-flight generations.
        self._pending_retunes: dict[int, CodingConfig] = {}

        self._busy_until = 0.0
        self._paused_until = 0.0
        self._pause_queue: list[Datagram] = []
        self.processed_packets = 0
        self.emitted_packets = 0
        self.decoded_generations = 0
        self.retunes_applied = 0
        # Dirty-wire containment counters (DESIGN.md §11).
        self.corrupt_dropped = 0
        self.duplicate_dropped = 0
        self.stale_dropped = 0

        self.listen(NC_PORT, self._on_data)

    # -- configuration (driven by the daemon via NC_SETTINGS etc.) -------

    def configure_session(
        self,
        session_id: int,
        role: VnfRole,
        config: CodingConfig,
        deliver: Callable[[int, Generation], None] | None = None,
    ) -> None:
        """Install a session's role and coding parameters."""
        self.roles[session_id] = role
        self.configs[session_id] = config
        self.buffers[session_id] = GenerationBuffer(config.buffer_generations)
        self._pending_retunes.pop(session_id, None)
        if deliver is not None:
            self._delivery[session_id] = deliver

    def retune_session(self, session_id: int, config: CodingConfig) -> None:
        """Stage a mid-session coding retune (adaptive redundancy, §15).

        Per-generation recoder/decoder state is immutable once created
        — its dimensions come from the packet headers of the generation
        it serves — so the new config is *not* applied to in-flight
        generations.  It takes effect the next time per-generation
        state is built for a generation this node has not seen, which
        is the generation-boundary guarantee the adaptive controller
        and the mid-block retune tests rely on.  Staging twice before a
        boundary keeps only the newest config.
        """
        if session_id not in self.configs:
            raise KeyError(f"session {session_id} is not configured on {self.name}")
        self._pending_retunes[session_id] = config

    def _config_at_boundary(self, session_id: int) -> CodingConfig:
        """Consume any staged retune; only call at a generation boundary."""
        pending = self._pending_retunes.pop(session_id, None)
        if pending is not None:
            self.configs[session_id] = pending
            self.retunes_applied += 1
        return self.configs[session_id]

    def set_hop_shape(
        self, session_id: int, next_hop: str, skip_arrivals: int, emit_per_generation: int | None = None
    ) -> None:
        """Shape a recoder's output toward one next hop.

        Per generation: ignore the first ``skip_arrivals`` packets, then
        emit one fresh recode per arrival (up to ``emit_per_generation``
        when given; unlimited otherwise).  A merge point whose inflow is
        n packets per generation but whose out-link is allocated n − s of
        them uses ``skip_arrivals = s``: the skipped head guarantees
        every emitted recode mixes both incoming branches, and the
        steady-state emission count follows from the arrivals.  Leaving
        the cap off lets late extra arrivals — end-to-end repair packets
        — flow through instead of being silently absorbed.

        ``skip_arrivals=0`` with no cap *clears* the shape: the hop
        returns to default verbatim-first pipelining.  Re-optimization
        after a failure relies on this — a stale merge shape left on a
        hop whose merge is gone would silently starve the surviving
        branch of degrees of freedom.
        """
        if skip_arrivals < 0 or (emit_per_generation is not None and emit_per_generation < 0):
            raise ValueError("shape parameters cannot be negative")
        if skip_arrivals == 0 and emit_per_generation is None:
            self._hop_shapes.pop((session_id, next_hop), None)
            for progress_key in [k for k in self._hop_progress if k[0] == session_id and k[1] == next_hop]:
                del self._hop_progress[progress_key]
            return
        self._hop_shapes[(session_id, next_hop)] = (skip_arrivals, emit_per_generation)

    def emit_repair(self, session_id: int, generation_id: int, count: int) -> int:
        """Emit up to ``count`` fresh recodes of a buffered generation.

        The relay-side half of generation-level feedback: a recoding VNF
        already holds coded state for recent generations, so it can
        answer a downstream NACK locally instead of waiting a full
        round-trip to the source.  Packets go to every configured next
        hop (duplicate degrees of freedom are harmless under RLNC).
        Returns the number of packets sent; 0 when the generation is no
        longer buffered — the caller then relies on the source repair.
        """
        if count <= 0:
            return 0
        recoder = self._recoders.get((session_id, generation_id))
        payload_bytes = self._payload_bytes.get(session_id)
        if recoder is None or recoder.buffered == 0 or payload_bytes is None:
            return 0
        hops = self.forwarding_table.next_hops(session_id)
        if not hops:
            return 0
        # One batch matmul covers every (round, hop) emission; packets go
        # out in the same (round-major) order the per-call loop produced.
        packets = recoder.recode_batch(count * len(hops))
        sent = 0
        for packet in packets:
            hop = hops[sent % len(hops)]
            self.emitted_packets += 1
            self.send(hop, packet, payload_bytes, dst_port=NC_PORT)
            sent += 1
        return sent

    def drop_session(self, session_id: int) -> None:
        """Remove all state for a finished session."""
        self.roles.pop(session_id, None)
        self.configs.pop(session_id, None)
        self.buffers.pop(session_id, None)
        self._pending_retunes.pop(session_id, None)
        self._delivery.pop(session_id, None)
        self._payload_bytes.pop(session_id, None)
        for shape_key in [k for k in self._hop_shapes if k[0] == session_id]:
            del self._hop_shapes[shape_key]
        for progress_key in [k for k in self._hop_progress if k[0] == session_id]:
            del self._hop_progress[progress_key]
        for recoder_key in [k for k in self._recoders if k[0] == session_id]:
            del self._recoders[recoder_key]
        for decoder_key in [k for k in self._decoders if k[0] == session_id]:
            del self._decoders[decoder_key]

    def apply_forwarding_table(self, new_table: ForwardingTable) -> float:
        """Replace the forwarding table; returns the pause duration.

        Models the SIGUSR1 pause/reload/resume cycle: the function stops
        processing for the Tab. III-calibrated duration, then drains
        packets that queued up meanwhile.
        """
        pause = self.update_model.pause_for_update(self.forwarding_table, new_table)
        self.forwarding_table = new_table.copy()
        if pause > 0:
            resume_at = max(self.scheduler.now, self._paused_until) + pause
            self._paused_until = resume_at
            self.scheduler.schedule_at(resume_at, self._drain_pause_queue)
        return pause

    # -- the packet path ----------------------------------------------------

    def inject(self, dgram: Datagram) -> None:
        """Hand a datagram to the coding function (used by dispatchers)."""
        self._on_data(dgram)

    def _on_data(self, dgram: Datagram) -> None:
        if self.scheduler.now < self._paused_until:
            self._pause_queue.append(dgram)
            return
        self._process(dgram)

    def _drain_pause_queue(self) -> None:
        if self.scheduler.now < self._paused_until:
            return  # a later reload extended the pause
        queued, self._pause_queue = self._pause_queue, []
        for dgram in queued:
            self._process(dgram)

    def _service_time(self, dgram: Datagram, role: VnfRole) -> float:
        """Per-packet processing time: NIC I/O, plus coding cost for coding roles.

        The coding term has a throughput component (wire bits over C(v))
        and a fixed per-packet overhead (coefficient generation, GF setup
        — the part of the Kodo pipeline that does not amortize), which is
        what produces the paper's 0.9–1.5 % relayed-path delay increment.
        """
        service = self.nic.cpu_seconds_per_packet()
        if role is not VnfRole.FORWARDER:
            service += dgram.wire_bits / (self.coding_capacity_mbps * 1e6) + self.coding_overhead_s
        return service

    def _process(self, dgram: Datagram) -> None:
        packet = dgram.payload
        if not isinstance(packet, CodedPacket):
            return  # not for the coding layer
        role = self.roles.get(packet.session_id)
        if role is None:
            return  # unknown session: drop (no NC_SETTINGS received)
        start = max(self.scheduler.now, self._busy_until)
        finish = start + self._service_time(dgram, role)
        self._busy_until = finish
        self.scheduler.schedule_at(finish, self._handle_packet, packet, dgram.payload_bytes)

    def _handle_packet(self, packet: CodedPacket, payload_bytes: int) -> None:
        if not packet.verify():
            # Bit-flipped in flight: drop before it can reach a recoder
            # or decoder.  One polluted packet mixed into a recode would
            # contaminate every downstream derivative (classic RLNC
            # pollution); dropped here it degrades into plain loss,
            # which the NACK-repair path already heals.
            self.corrupt_dropped += 1
            return
        self.processed_packets += 1
        role = self.roles[packet.session_id]
        if role is VnfRole.FORWARDER:
            self._forward(packet, payload_bytes)
        elif role is VnfRole.RECODER or role is VnfRole.ENCODER:
            self._recode_and_forward(packet, payload_bytes)
        elif role is VnfRole.DECODER:
            self._decode(packet)

    def _forward(self, packet: CodedPacket, payload_bytes: int) -> None:
        for hop in self.forwarding_table.next_hops(packet.session_id):
            self.emitted_packets += 1
            self.send(hop, packet, payload_bytes, dst_port=NC_PORT)

    def _recode_and_forward(self, original: CodedPacket, payload_bytes: int) -> None:
        buffer = self.buffers[original.session_id]
        self._payload_bytes[original.session_id] = payload_bytes
        key = (original.session_id, original.generation_id)
        recoder = self._recoders.get(key)
        if recoder is None or original.generation_id not in buffer:
            # New generation (or evicted): the buffer arbitrates first —
            # a straggler for an already-evicted generation is refused
            # rather than allowed to evict live state for a dead one.
            before = set(buffer.generations())
            if not buffer.add(original.generation_id, original):
                self.stale_dropped += 1
                return
            config = self._config_at_boundary(original.session_id)
            recoder = Recoder(
                original.session_id,
                original.generation_id,
                original.header.block_count,
                field=config.galois_field,
                rng=self._rng,
            )
            self._recoders[key] = recoder
            evicted = before - set(buffer.generations())
            for gen_id in evicted:
                self._recoders.pop((original.session_id, gen_id), None)
                for stale in [k for k in self._hop_progress if k[0] == original.session_id and k[2] == gen_id]:
                    del self._hop_progress[stale]
        elif not buffer.add(original.generation_id, original):
            # A wire-duplicated copy adds no degree of freedom: emitting
            # a recode for it would just burn downstream bandwidth.
            self.duplicate_dropped += 1
            return
        first = recoder.buffered == 0
        recoder.add(original)
        for hop in self.forwarding_table.next_hops(original.session_id):
            shape = self._hop_shapes.get((original.session_id, hop))
            if shape is None:
                # Default pipelining: one packet out per packet in; the
                # very first packet of a generation is forwarded verbatim.
                out = original if first else recoder.recode()
                self.emitted_packets += 1
                self.send(hop, out, payload_bytes, dst_port=NC_PORT)
                continue
            skip, emit_cap = shape
            hop_key = (original.session_id, hop, original.generation_id)
            progress = self._hop_progress.setdefault(hop_key, [0, 0])
            progress[0] += 1
            if progress[0] > skip and (emit_cap is None or progress[1] < emit_cap):
                progress[1] += 1
                self.emitted_packets += 1
                self.send(hop, recoder.recode(), payload_bytes, dst_port=NC_PORT)

    def _decode(self, packet: CodedPacket) -> None:
        key = (packet.session_id, packet.generation_id)
        decoder = self._decoders.get(key)
        if decoder is None:
            config = self._config_at_boundary(packet.session_id)
            block_bytes = (
                packet.payload.shape[0] if self.payload_mode == "coefficients-only" else config.block_bytes
            )
            decoder = Decoder(
                packet.session_id,
                packet.generation_id,
                packet.header.block_count,
                block_bytes,
                field=config.galois_field,
            )
            self._decoders[key] = decoder
        if decoder.complete:
            return  # late redundant packet
        decoder.add(packet)
        if decoder.complete:
            self.decoded_generations += 1
            generation = decoder.decode()
            deliver = self._delivery.get(packet.session_id)
            if deliver is not None:
                deliver(packet.session_id, generation)
            # Also forward decoded payloads to any configured next hops
            # (decoder VNFs "forward the recovered payload to the
            # destinations", §III-A).
            for hop in self.forwarding_table.next_hops(packet.session_id):
                self.emitted_packets += 1
                self.send(hop, generation, generation.size_bytes, dst_port=NC_PORT)

    # -- introspection --------------------------------------------------------

    @property
    def is_paused(self) -> bool:
        return self.scheduler.now < self._paused_until

    def decoder_state(self, session_id: int, generation_id: int) -> Decoder | None:
        return self._decoders.get((session_id, generation_id))


class VnfDispatcher(Node):
    """Entry point of a data center running several VNF instances.

    When multiple VNFs are launched in one data center, incoming packets
    are spread across them "based on session id and generation id.
    Packets belonging to the same generation are dispatched to the same
    VNF instance" (§IV-A) — necessary because recoding state is
    per-generation.  The dispatcher hashes (session, generation) onto
    the instance list; it represents intra-DC switching and adds no
    delay of its own.
    """

    def __init__(self, name: str, scheduler: EventScheduler) -> None:
        super().__init__(name, scheduler)
        self.instances: list[CodingVnf] = []
        self.listen(NC_PORT, self._dispatch)
        self.dispatched = 0

    def add_instance(self, vnf: CodingVnf) -> None:
        self.instances.append(vnf)

    def remove_instance(self, vnf: CodingVnf) -> None:
        self.instances.remove(vnf)

    def _dispatch(self, dgram: Datagram) -> None:
        if not self.instances:
            return
        packet = dgram.payload
        if isinstance(packet, CodedPacket):
            index = hash((packet.session_id, packet.generation_id)) % len(self.instances)
        else:
            index = self.dispatched % len(self.instances)
        self.dispatched += 1
        self.instances[index].inject(dgram)
