"""End-to-end orchestration: controller signals configure a live data plane.

Everything else in :mod:`repro.core` wires VNFs directly for convenience;
this module exercises the *actual* control path of the paper's Fig. 2:

1. the controller solves problem (2) over the network view;
2. the packet-level plumbing is built **blank** (``configure=False``):
   nodes, links, dispatchers exist, but no VNF knows any session;
3. a :class:`~repro.core.daemon.VnfDaemon` runs on every coding node,
   registered on the controller's :class:`~repro.core.signals.SignalBus`;
4. the orchestrator sends ``NC_SETTINGS`` (roles, coding parameters,
   output shapes) and ``NC_FORWARD_TAB`` (the text tables) to each
   daemon, which starts the coding function (~376 ms) and applies the
   table (the SIGUSR1 pause);
5. ``NC_START`` to the source node kicks the transfer off.

The integration test asserts the promise survives the whole signalling
chain: the rate measured at the receivers matches the LP's λ.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Callable, Protocol

import networkx as nx

from repro.core.dataplane import LiveDeployment, build_data_plane
from repro.core.daemon import VnfDaemon
from repro.core.deployment import DataCenterSpec, DeploymentPlan, DeploymentProblem
from repro.core.forwarding import ForwardingTable
from repro.core.session import CodingConfig, MulticastSession
from repro.core.signals import (
    NcForwardTab,
    NcSettings,
    NcStart,
    Signal,
    SignalBus,
    SignalPort,
    SignalRecord,
)
from repro.core.vnf import CodingVnf
from repro.net.events import EventScheduler


class _Startable(Protocol):
    """The slice of a source application NC_START needs: ``start()``."""

    def start(self) -> None: ...


@dataclass
class Orchestration:
    """A deployed system: plan + live data plane + daemons + bus."""

    plan: DeploymentPlan
    deployment: LiveDeployment
    bus: SignalBus
    daemons: dict[str, _ClusterDaemon] = dataclass_field(default_factory=dict)
    scheduler: EventScheduler | None = None
    # Monotonic config epoch for this orchestration's pushes.  The
    # initial deploy stamps epoch 1; anything re-pushing configuration
    # later (a replan, a manual table update) must bump it first so
    # daemons can reject deliveries delayed from before the newer push
    # (DESIGN.md §11).
    config_epoch: int = 1

    def run(self, duration_s: float) -> None:
        if self.scheduler is None:
            raise RuntimeError("orchestration has no scheduler to run")
        self.scheduler.run(until=self.scheduler.now + duration_s)

    def session_throughput_mbps(self, session_id: int, start_s: float = 0.0) -> float:
        return self.deployment.session_throughput_mbps(session_id, start_s=start_s)


class Orchestrator:
    """Deploys sessions the way the paper's controller does: by signal."""

    def __init__(
        self,
        graph: nx.DiGraph,
        datacenters: list[DataCenterSpec],
        alpha: float = 1.0,
        payload_mode: str = "coefficients-only",
        control_latency_s: float = 0.02,
        seed: int = 1,
    ) -> None:
        self.graph = graph
        self.datacenters = list(datacenters)
        self.alpha = alpha
        self.payload_mode = payload_mode
        self.control_latency_s = control_latency_s
        self.seed = seed

    def deploy(self, sessions: list[MulticastSession], rate_fraction: float = 0.95) -> Orchestration:
        """Solve, build, configure-by-signal, and start the sessions."""
        scheduler = EventScheduler()
        bus = SignalBus(scheduler, latency_s=self.control_latency_s)

        problem = DeploymentProblem(self.graph, self.datacenters, alpha=self.alpha)
        demands = [problem.build_demand(s) for s in sessions]
        plan = problem.solve(demands)

        deployment = build_data_plane(
            plan,
            self.graph,
            sessions,
            payload_mode=self.payload_mode,
            rate_fraction=rate_fraction,
            seed=self.seed,
            scheduler=scheduler,
            configure=False,
        )
        orchestration = Orchestration(plan=plan, deployment=deployment, bus=bus, scheduler=scheduler)
        epoch = orchestration.config_epoch

        # One daemon per coding node (multi-instance clusters share a
        # name; the daemon fans configuration out to every instance).
        session_configs = {s.session_id: s.coding for s in sessions}
        for name, vnfs in deployment.vnfs.items():
            daemon = _ClusterDaemon(vnfs, bus, name, session_configs)
            orchestration.daemons[name] = daemon

        # NC_SETTINGS + NC_FORWARD_TAB per node, from the plan's intent.
        sessions_by_id = {s.session_id: s for s in sessions}
        for name, per_session in deployment.intended.items():
            roles = tuple((sid, role.value) for sid, (role, _, _) in per_session.items())
            shapes = tuple(
                (sid, hop, skip)
                for sid, (_, _, shape) in per_session.items()
                for hop, skip in shape.items()
            )
            any_session = sessions_by_id[next(iter(per_session))]
            bus.send(
                NcSettings(
                    target=name,
                    session_ids=tuple(per_session),
                    roles=roles,
                    udp_port=52017,
                    generation_bytes=any_session.coding.generation_bytes,
                    block_bytes=any_session.coding.block_bytes,
                    shapes=shapes,
                    epoch=epoch,
                )
            )
            table = ForwardingTable({sid: hops for sid, (_, hops, _) in per_session.items()})
            bus.send(NcForwardTab(target=name, table_text=table.serialize(), epoch=epoch))

        # Sources wait for NC_START.
        for sid, source in deployment.sources.items():
            session = sessions_by_id[sid]
            bus.register(f"{session.source}/session{sid}", _StartHandler(source))
            bus.send(NcStart(target=f"{session.source}/session{sid}", session_id=sid))
        return orchestration


class _StartHandler:
    """Starts a source application when its NC_START arrives."""

    def __init__(self, source: _Startable) -> None:
        self.source = source

    def __call__(self, signal: Signal) -> None:
        if isinstance(signal, NcStart):
            self.source.start()


class _ClusterDaemon:
    """A daemon covering every VNF instance of one data center.

    The paper runs one daemon per coding node; a multi-instance data
    center behind a dispatcher gets the same configuration applied to
    each instance (they are interchangeable for dispatching purposes).
    """

    def __init__(
        self,
        vnfs: list[CodingVnf],
        bus: SignalBus,
        name: str,
        session_configs: dict[int, CodingConfig],
    ) -> None:
        self.vnfs = vnfs
        self.members = [
            VnfDaemon(vnf, _FanBus(bus), session_configs=session_configs) for vnf in vnfs
        ]
        bus.register(name, self.handle_signal)

    def handle_signal(self, signal: Signal) -> None:
        for member in self.members:
            member.handle_signal(signal)

    @property
    def function_running(self) -> bool:
        return all(m.function_running for m in self.members)


class _FanBus:
    """Bus facade for cluster members: registration handled by the cluster."""

    def __init__(self, bus: SignalPort) -> None:
        self._bus = bus

    def register(self, name: str, handler: Callable[[Signal], None]) -> None:
        pass  # cluster-level registration only

    def unregister(self, name: str) -> None:
        pass

    def send(self, signal: Signal) -> SignalRecord:
        return self._bus.send(signal)
