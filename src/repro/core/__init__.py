"""The paper's primary contribution: network coding as a virtual network function.

Subpackages and modules:

- :mod:`repro.core.session` — multicast sessions (source, receivers,
  delay tolerance L^max, coding configuration).
- :mod:`repro.core.signals` — the control-plane signal protocol
  (NC_START, NC_VNF_START, NC_VNF_END, NC_FORWARD_TAB, NC_SETTINGS).
- :mod:`repro.core.forwarding` — text-file forwarding tables and the
  daemon's SIGUSR1 pause/reload/resume update cycle (Tab. III costs).
- :mod:`repro.core.deployment` — problem (2): joint VNF deployment and
  conceptual-flow multicast routing as an LP + rounding.
- :mod:`repro.core.vnf` — the data-plane coding function (per-session
  roles, pipelined recoding, generation-keyed dispatch).
- :mod:`repro.core.daemon` — the per-node daemon managing a VNF's
  lifecycle and signal handling.
- :mod:`repro.core.controller` — the central controller tying the cloud
  APIs, the optimizer, and the daemons together.
- :mod:`repro.core.scaling` — the dynamic scaling algorithms (Alg. 1–3)
  with their ρ/τ threshold state machines.
"""

from repro.core.controller import Controller
from repro.core.dataplane import LiveDeployment, build_data_plane
from repro.core.orchestrator import Orchestration, Orchestrator
from repro.core.deployment import DeploymentPlan, DeploymentProblem, SessionDemand
from repro.core.forwarding import ForwardingTable, ForwardingUpdateModel
from repro.core.scaling import ScalingConfig, ScalingEngine
from repro.core.session import CodingConfig, MulticastSession
from repro.core.signals import (
    NcForwardTab,
    NcHeartbeat,
    NcSettings,
    NcStart,
    NcVnfEnd,
    NcVnfStart,
    Signal,
    SignalBus,
)
from repro.core.vnf import CodingVnf, VnfRole

__all__ = [
    "MulticastSession",
    "CodingConfig",
    "Signal",
    "SignalBus",
    "NcStart",
    "NcHeartbeat",
    "NcVnfStart",
    "NcVnfEnd",
    "NcForwardTab",
    "NcSettings",
    "ForwardingTable",
    "ForwardingUpdateModel",
    "DeploymentProblem",
    "DeploymentPlan",
    "SessionDemand",
    "CodingVnf",
    "VnfRole",
    "Controller",
    "ScalingEngine",
    "ScalingConfig",
    "build_data_plane",
    "LiveDeployment",
    "Orchestrator",
    "Orchestration",
]
