"""Failure-triggered re-optimization: the self-healing control plane.

PR 2 left recovery shallow: on a ``vnf_failure`` verdict the butterfly
harness pruned the dead hop out of the *existing* forwarding tables and
re-keyed the source's shares over its *existing* next hops.  That works
when the corpse is downstream of every source branch (T, V2) and fails
exactly when the corpse **is** a source next-hop (O1): the source keeps
pumping half its degrees of freedom into a black hole and both
receivers stall at half rank — the ROADMAP's tested-but-unfixed typed
outcome.

This module closes the loop properly.  :func:`plan_recovery` re-runs
the paper's own machinery — the delay-pruned feasible-path DFS
(:mod:`repro.routing.paths`) and the problem-(2) LP deployment
(:class:`~repro.core.deployment.DeploymentProblem` over
:mod:`repro.lp`) — on a topology view with the dead nodes and every
link touching them excised.  The solved
:class:`~repro.routing.conceptual.FlowDecomposition` is then lowered to
exactly the artifacts the data plane consumes:

- fresh per-relay forwarding tables (``NC_FORWARD_TAB`` payloads),
- new source link shares and a goodput rate λ with the k+1-per-branch
  repair margin applied (see ``SIDE_BRANCH_RATE_MBPS`` in
  :mod:`repro.experiments.failures` for why the margin exists),
- per-hop output shapes — including **zero** entries that clear stale
  merge-point shapes (a T still skipping k/2 arrivals after the merge
  is gone would silently halve the surviving branch),
- reverse control paths for ACK/NACK traffic, so a receiver whose
  feedback channel ran through the corpse is re-pointed too.

Everything here is pure planning over graph data: no scheduler, no I/O,
bit-deterministic for a given topology and dead set.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Iterable, Mapping

import networkx as nx

from repro.core.deployment import DataCenterSpec, DeploymentProblem
from repro.core.forwarding import ForwardingTable
from repro.core.session import MulticastSession
from repro.lp import SolveError

#: Default post-failure margins (fractions of the excised-topology LP
#: optimum).  The wire share backs off below link capacity so headers
#: and repair traffic fit; the goodput λ drops further so a generation
#: carries ~k+1 packets per surviving branch — without the margin a
#: receiver sees exactly k random recodes per generation and the
#: GF(256) singular-matrix rate (~0.4 %) stalls the window for a NACK
#: round-trip every few hundred generations.
DEFAULT_WIRE_FRACTION = 34.0 / 35.0
DEFAULT_GOODPUT_FRACTION = 27.0 / 35.0

_RATE_EPS = 1e-9


@dataclass(frozen=True)
class RecoveryPlan:
    """A solved post-failure deployment, lowered to data-plane artifacts."""

    dead_nodes: tuple[str, ...]
    feasible: bool
    #: Post-recovery goodput rate λ for the source (Mbps).
    lambda_mbps: float = 0.0
    #: LP optimum on the excised topology, before margins (Mbps).
    lp_lambda_mbps: float = 0.0
    #: Source next hop -> wire share (Mbps).
    source_shares: dict[str, float] = dataclass_field(default_factory=dict)
    #: Surviving relay -> its fresh forwarding table.
    tables: dict[str, ForwardingTable] = dataclass_field(default_factory=dict)
    #: (relay, next hop) -> skip count.  Zero entries are meaningful:
    #: they *clear* a stale merge-point shape on that hop.
    hop_shapes: dict[tuple[str, str], int] = dataclass_field(default_factory=dict)
    #: Receiver -> reverse control path (receiver first, source last).
    control_paths: dict[str, tuple[str, ...]] = dataclass_field(default_factory=dict)


def excised_view(graph: nx.DiGraph, dead: Iterable[str]) -> nx.DiGraph:
    """A read-only view of ``graph`` with ``dead`` nodes and their links gone."""
    return nx.restricted_view(graph, tuple(dead), ())


def plan_recovery(
    graph: nx.DiGraph,
    session: MulticastSession,
    dead: Iterable[str],
    relay_nodes: Iterable[str],
    relay_capacity_mbps: float = 900.0,
    alpha: float = 1.0,
    wire_fraction: float = DEFAULT_WIRE_FRACTION,
    goodput_fraction: float = DEFAULT_GOODPUT_FRACTION,
) -> RecoveryPlan:
    """Re-solve deployment and routing with the dead nodes excised.

    ``graph`` is the *full* (pre-failure) network view; ``dead`` names
    the nodes declared dead by the failure detector.  Returns an
    infeasible plan (``feasible=False``) rather than raising when no
    route survives — the caller then reports a typed failure instead of
    pretending to recover.
    """
    dead_set = frozenset(dead)
    if session.source in dead_set or any(r in dead_set for r in session.receivers):
        return RecoveryPlan(dead_nodes=tuple(sorted(dead_set)), feasible=False)
    survivors = [r for r in relay_nodes if r not in dead_set]
    if not survivors:
        return RecoveryPlan(dead_nodes=tuple(sorted(dead_set)), feasible=False)
    view = excised_view(graph, dead_set)
    specs = [
        DataCenterSpec(name, relay_capacity_mbps, relay_capacity_mbps, relay_capacity_mbps)
        for name in survivors
    ]
    problem = DeploymentProblem(view, specs, alpha=alpha)
    demand = problem.build_demand(session)
    if not demand.has_feasible_paths():
        return RecoveryPlan(dead_nodes=tuple(sorted(dead_set)), feasible=False)
    try:
        lp_plan = problem.solve([demand])
    except SolveError:
        return RecoveryPlan(dead_nodes=tuple(sorted(dead_set)), feasible=False)
    sid = session.session_id
    lp_lambda = lp_plan.lambdas.get(sid, 0.0)
    if lp_lambda <= 1e-6:
        return RecoveryPlan(dead_nodes=tuple(sorted(dead_set)), feasible=False)
    link_rates = lp_plan.decompositions[sid].link_rates()

    tables = _relay_tables(sid, link_rates, survivors)
    shares = {
        v: rate * wire_fraction
        for (u, v), rate in sorted(link_rates.items())
        if u == session.source and rate > _RATE_EPS
    }
    shapes = _merge_shapes(link_rates, tables, sid, session.coding.blocks_per_generation)
    control = _control_paths(view, session)
    return RecoveryPlan(
        dead_nodes=tuple(sorted(dead_set)),
        feasible=True,
        lambda_mbps=lp_lambda * goodput_fraction,
        lp_lambda_mbps=lp_lambda,
        source_shares=shares,
        tables=tables,
        hop_shapes=shapes,
        control_paths=control,
    )


def _relay_tables(
    sid: int, link_rates: Mapping[tuple[str, str], float], survivors: Iterable[str]
) -> dict[str, ForwardingTable]:
    """Per-relay forwarding tables from the routed link rates."""
    tables: dict[str, ForwardingTable] = {}
    for relay in survivors:
        hops = sorted(
            v for (u, v), rate in link_rates.items() if u == relay and rate > _RATE_EPS
        )
        if hops:
            tables[relay] = ForwardingTable({sid: hops})
    return tables


def _merge_shapes(
    link_rates: Mapping[tuple[str, str], float],
    tables: Mapping[str, ForwardingTable],
    sid: int,
    blocks_per_generation: int,
) -> dict[tuple[str, str], int]:
    """Output-shaping directives for every (relay, hop) in the new tables.

    A relay fed by b ≥ 2 branches whose out-link carries only a
    fraction of its inflow skips the complementary head of each
    generation (the skip guarantees every emitted recode already mixes
    the branches — the original butterfly's T merge).  Every other pair
    gets an explicit 0: the directive that *clears* any stale shape.
    """
    shapes: dict[tuple[str, str], int] = {}
    if blocks_per_generation < 2:
        # Single-block generations cannot be split across branches; the
        # drop-tail queue enforces the allocation (DESIGN.md §2).
        return {(relay, hop): 0 for relay, table in tables.items() for hop in table.next_hops(sid)}
    for relay, table in tables.items():
        in_edges = [
            rate for (u, v), rate in link_rates.items() if v == relay and rate > _RATE_EPS
        ]
        inflow = sum(in_edges)
        for hop in table.next_hops(sid):
            skip = 0
            if len(in_edges) >= 2 and inflow > _RATE_EPS:
                out = link_rates.get((relay, hop), 0.0)
                fraction = max(0.0, 1.0 - out / inflow)
                skip = int(round(blocks_per_generation * fraction))
            shapes[(relay, hop)] = skip
    return shapes


def _control_paths(view: nx.DiGraph, session: MulticastSession) -> dict[str, tuple[str, ...]]:
    """Reverse ACK/NACK paths: receiver first, source last.

    Control traffic rides the reverse of the data links (every data
    link has a low-rate reverse control link in the live topology), so
    the delay-shortest surviving *data* path, reversed, is the control
    route.
    """
    paths: dict[str, tuple[str, ...]] = {}
    for receiver in session.receivers:
        try:
            forward = nx.shortest_path(view, session.source, receiver, weight="delay_ms")
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            continue
        paths[receiver] = tuple(reversed(forward))
    return paths
