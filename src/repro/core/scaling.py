"""Dynamic scaling algorithms (paper §IV-B, Alg. 1–3).

The controller reacts to three classes of events:

1. **Bandwidth variation** (Alg. 1) — iperf-style samples of each data
   center's per-VNF in/out caps.  A change larger than ρ1 % that lasts
   for τ1 triggers a re-solve of problem (2) scoped to the affected
   sessions; a capacity *increase* is adopted only when the objective
   improves (throughput gain worth the extra VNFs), a *decrease* is
   always applied (the old routing no longer fits).
2. **Delay changes** (Alg. 2) — ping samples per link.  A sustained
   change beyond ρ2 %/τ2 re-runs feasible-path enumeration (paths drop
   out past L^max or reappear) and re-solves the affected sessions.
3. **Session/receiver arrivals and departures** (Alg. 3) — applied
   immediately (no threshold), delegated to the controller, which on
   departures compares *grow-the-flows* (g1) against
   *shrink-the-fleet* (g2).

Thresholding is a per-key state machine: a deviation from the reference
value must persist for the hold time before it fires, and brief spikes
reset cleanly, "to avoid unnecessary scaling in cases of brief spikes"
(§IV-B Discussions).  The same mechanism powers idle-VNF consolidation.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

from repro.core.controller import Controller
from repro.core.session import MulticastSession


@dataclass(frozen=True)
class ScalingConfig:
    """Thresholds: ρ (percent change) and τ (hold seconds) per trigger."""

    rho1_percent: float = 5.0      # bandwidth change threshold
    tau1_s: float = 600.0          # bandwidth hold time
    rho2_percent: float = 5.0      # delay change threshold
    tau2_s: float = 600.0          # delay hold time
    idle_hold_s: float = 600.0     # under-utilization consolidation hold


@dataclass
class _ThresholdState:
    """Deviation-persistence tracker for one monitored quantity."""

    reference: float
    deviating_since: float | None = None
    last_value: float = 0.0

    def update(self, value: float, now: float, rho_percent: float, tau_s: float) -> bool:
        """Feed a sample; True when the deviation has persisted for τ."""
        self.last_value = value
        if self.reference == 0:
            changed = value != 0
        else:
            changed = abs(value - self.reference) / abs(self.reference) * 100.0 > rho_percent
        if not changed:
            self.deviating_since = None
            return False
        if self.deviating_since is None:
            self.deviating_since = now
            return False
        return now - self.deviating_since >= tau_s

    def accept(self, value: float) -> None:
        """Adopt the new value as the reference after a trigger fired."""
        self.reference = value
        self.deviating_since = None


@dataclass
class ScalingEvent:
    """Record of one scaling decision, for experiment inspection."""

    time: float
    kind: str
    detail: dict = dataclass_field(default_factory=dict)


class ScalingEngine:
    """Runs Alg. 1–3 on top of a :class:`Controller`."""

    def __init__(self, controller: Controller, config: ScalingConfig | None = None):
        self.controller = controller
        self.config = config if config is not None else ScalingConfig()
        self._bandwidth_state: dict[tuple, _ThresholdState] = {}
        self._delay_state: dict[tuple, _ThresholdState] = {}
        self._idle_since: dict[str, float] = {}
        self.events: list[ScalingEvent] = []
        # VNF failures (heartbeat misses) are a scaling trigger like any
        # other: the controller runs the recovery, we keep the ledger.
        controller.on_vnf_failure.append(self._on_vnf_failure)

    # -- helpers -----------------------------------------------------------

    def _now(self) -> float:
        return self.controller.scheduler.now

    def _current_objective(self) -> float:
        c = self.controller
        return c.total_throughput_mbps() - c.alpha * sum(c.required_vnf_counts().values())

    def _affected_sessions(self, datacenter: str | None = None, edge: tuple | None = None) -> list:
        """Session ids whose routed flows touch a data center or link."""
        affected = []
        for sid, decomposition in self.controller.decompositions.items():
            for (u, v), rate in decomposition.link_rates().items():
                if rate <= 1e-9:
                    continue
                if datacenter is not None and datacenter in (u, v):
                    affected.append(sid)
                    break
                if edge is not None and (u, v) == edge:
                    affected.append(sid)
                    break
        return affected

    def _log(self, kind: str, **detail) -> ScalingEvent:
        event = ScalingEvent(time=self._now(), kind=kind, detail=detail)
        self.events.append(event)
        return event

    # -- Alg. 1: bandwidth variation ------------------------------------------

    def on_bandwidth_sample(self, datacenter: str, inbound_mbps: float, outbound_mbps: float) -> bool:
        """Feed one (B_in, B_out) sample; returns True if a re-solve fired."""
        now = self._now()
        fired = False
        for direction, value in (("in", inbound_mbps), ("out", outbound_mbps)):
            key = (datacenter, direction)
            state = self._bandwidth_state.get(key)
            if state is None:
                dc = self.controller.datacenters[datacenter]
                reference = dc.inbound_mbps if direction == "in" else dc.outbound_mbps
                state = self._bandwidth_state[key] = _ThresholdState(reference=reference)
            if state.update(value, now, self.config.rho1_percent, self.config.tau1_s):
                fired = True
        if not fired:
            return False
        return self._apply_bandwidth_change(datacenter, inbound_mbps, outbound_mbps)

    def _apply_bandwidth_change(self, datacenter: str, inbound_mbps: float, outbound_mbps: float) -> bool:
        c = self.controller
        dc = c.datacenters[datacenter]
        old_caps = (dc.inbound_mbps, dc.outbound_mbps)
        decrease = inbound_mbps < old_caps[0] or outbound_mbps < old_caps[1]
        old_objective = self._current_objective()
        old_state = self._snapshot()

        c.observe_datacenter_caps(datacenter, inbound_mbps, outbound_mbps)
        affected = self._affected_sessions(datacenter=datacenter)
        if not affected:
            self._accept_bandwidth(datacenter, inbound_mbps, outbound_mbps)
            self._log("bandwidth", datacenter=datacenter, action="no-affected-sessions")
            return False
        c._resolve_sessions(affected, reconcile=False)
        new_objective = self._current_objective()
        if decrease or new_objective > old_objective + 1e-9:
            c.reconcile_fleet()
            c.push_forwarding_tables()
            self._accept_bandwidth(datacenter, inbound_mbps, outbound_mbps)
            self._log(
                "bandwidth",
                datacenter=datacenter,
                action="rescaled",
                old_objective=old_objective,
                new_objective=new_objective,
            )
            return True
        # Scale-out would not pay off: revert to the previous routing.
        self._restore(old_state)
        c.observe_datacenter_caps(datacenter, *old_caps)
        self._accept_bandwidth(datacenter, inbound_mbps, outbound_mbps)
        self._log(
            "bandwidth",
            datacenter=datacenter,
            action="kept",
            old_objective=old_objective,
            new_objective=new_objective,
        )
        return False

    def _accept_bandwidth(self, datacenter: str, inbound_mbps: float, outbound_mbps: float) -> None:
        for direction, value in (("in", inbound_mbps), ("out", outbound_mbps)):
            state = self._bandwidth_state.get((datacenter, direction))
            if state is not None:
                state.accept(value)

    # -- Alg. 2: delay changes ----------------------------------------------------

    def on_delay_sample(self, edge: tuple, delay_ms: float) -> bool:
        """Feed one ping sample for a link; returns True if a re-solve fired."""
        now = self._now()
        state = self._delay_state.get(edge)
        if state is None:
            reference = float(self.controller.graph.edges[edge]["delay_ms"])
            state = self._delay_state[edge] = _ThresholdState(reference=reference)
        if not state.update(delay_ms, now, self.config.rho2_percent, self.config.tau2_s):
            return False
        return self._apply_delay_change(edge, delay_ms)

    def _apply_delay_change(self, edge: tuple, delay_ms: float) -> bool:
        c = self.controller
        increase = delay_ms > float(c.graph.edges[edge]["delay_ms"])
        c.observe_link(edge, delay_ms=delay_ms)
        state = self._delay_state.get(edge)
        if state is not None:
            state.accept(delay_ms)
        # A delay increase can invalidate in-use paths; a decrease can open
        # new ones.  Either way the affected sessions' path sets P^k_m are
        # rebuilt inside the re-solve (build_demand reads the live graph).
        affected = self._affected_sessions(edge=edge)
        if not increase:
            # New feasible paths may help *any* session between these
            # regions; re-solve sessions that could use the improved link.
            affected = sorted(set(affected) | set(self._sessions_near(edge)))
        if not affected:
            self._log("delay", edge=edge, action="no-affected-sessions")
            return False
        c._resolve_sessions(affected, reconcile=False)
        c.reconcile_fleet()
        c.push_forwarding_tables()
        self._log("delay", edge=edge, action="rescaled", delay_ms=delay_ms)
        return True

    def _sessions_near(self, edge: tuple) -> list:
        """Sessions whose endpoints could route through the given link."""
        u, v = edge
        out = []
        for sid, session in self.controller.sessions.items():
            nodes = {session.source, *session.receivers}
            if u in self.controller.datacenters and v in self.controller.datacenters:
                out.append(sid)
            elif nodes & {u, v}:
                out.append(sid)
        return out

    # -- Alg. 3: session / receiver churn -------------------------------------------

    def on_session_join(self, session: MulticastSession):
        plan = self.controller.add_session(session)
        self.controller.push_forwarding_tables()
        self._log("session-join", session=session.session_id, rate=plan.lambdas.get(session.session_id, 0.0))
        return plan

    def on_session_quit(self, session_id: int) -> dict:
        result = self.controller.remove_session(session_id)
        self.controller.push_forwarding_tables()
        self._log("session-quit", session=session_id, **result)
        return result

    def on_receiver_join(self, session_id: int, receiver: str):
        plan = self.controller.add_receiver(session_id, receiver)
        self.controller.push_forwarding_tables()
        self._log("receiver-join", session=session_id, receiver=receiver)
        return plan

    def on_receiver_quit(self, session_id: int, receiver: str) -> dict:
        result = self.controller.remove_receiver(session_id, receiver)
        self.controller.push_forwarding_tables()
        self._log("receiver-quit", session=session_id, receiver=receiver, **result)
        return result

    # -- failures (heartbeat-detected, controller-driven recovery) -----------------------

    def _on_vnf_failure(self, vnf_name: str, datacenter: str) -> None:
        self._log("vnf_failure", vnf=vnf_name, datacenter=datacenter)

    # -- idle consolidation (§IV-B Discussions) ------------------------------------------

    def check_utilization(self) -> list:
        """Retire VNFs at data centers over-provisioned for idle_hold_s.

        Returns the list of data centers consolidated this call.
        """
        now = self._now()
        required = self.controller.required_vnf_counts()
        consolidated = []
        for name, state in self.controller.fleet.items():
            active = len(state.running_or_pending())
            if active > required.get(name, 0):
                since = self._idle_since.setdefault(name, now)
                if now - since >= self.config.idle_hold_s:
                    consolidated.append(name)
                    self._idle_since.pop(name, None)
            else:
                self._idle_since.pop(name, None)
        if consolidated:
            self.controller.reconcile_fleet()
            self._log("consolidation", datacenters=consolidated)
        return consolidated

    # -- snapshot/rollback -----------------------------------------------------------------

    def _snapshot(self) -> dict:
        c = self.controller
        return {"lambdas": dict(c.lambdas), "decompositions": dict(c.decompositions)}

    def _restore(self, snapshot: dict) -> None:
        c = self.controller
        c.lambdas = dict(snapshot["lambdas"])
        c.decompositions = dict(snapshot["decompositions"])
