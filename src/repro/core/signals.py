"""Control-plane signal protocol (paper §III-A).

Five signal types travel from the controller to daemons (one,
NC_VNF_START, the controller sends to itself to trigger cloud API
calls):

========================  ====================================================
``NC_START``              begin network-coded transmission for a session
``NC_VNF_START``          launch N new VNFs (VMs) in a data center
``NC_VNF_END``            VNF no longer needed; shut down after τ
``NC_FORWARD_TAB``        replace a VNF's forwarding table
``NC_SETTINGS``           VNF roles, session ids, UDP ports, generation/block
                          sizes — the initialization bundle
========================  ====================================================

:class:`SignalBus` delivers signals with a configurable control-plane
latency (controller → daemon RTTs are real in the paper's testbed) and
keeps a full log for experiments to assert on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.net.events import EventScheduler

_signal_seq = itertools.count(1)


@dataclass(frozen=True)
class Signal:
    """Base class: every signal is addressed to a daemon by node name."""

    target: str

    @property
    def kind(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class NcStart(Signal):
    """Start network-coding-enabled transmission of a session."""

    session_id: int = 0


@dataclass(frozen=True)
class NcVnfStart(Signal):
    """Launch ``count`` new VNFs (VMs) in data center ``datacenter``."""

    datacenter: str = ""
    count: int = 1


@dataclass(frozen=True)
class NcVnfEnd(Signal):
    """The VNF is no longer used; shut down in τ seconds."""

    vnf_name: str = ""
    tau_s: float = 600.0


@dataclass(frozen=True)
class NcForwardTab(Signal):
    """Push a new forwarding table (serialized text, §III-A)."""

    table_text: str = ""


@dataclass(frozen=True)
class NcSettings(Signal):
    """Initial settings: roles, session ids, ports, generation/block sizes.

    ``shapes`` carries the controller's output-shaping directives for
    merge points: ((session_id, next_hop, skip_arrivals), ...).
    """

    session_ids: tuple = ()
    roles: tuple = ()  # (session_id, role) pairs
    udp_port: int = 0
    generation_bytes: int = 0
    block_bytes: int = 0
    shapes: tuple = ()


@dataclass
class SignalRecord:
    """One delivered (or pending) signal, for experiment assertions."""

    seq: int
    sent_at: float
    signal: Signal
    delivered_at: float | None = None


class SignalBus:
    """Delivers control signals to registered daemons with latency."""

    def __init__(self, scheduler: EventScheduler, latency_s: float = 0.05):
        if latency_s < 0:
            raise ValueError("latency cannot be negative")
        self.scheduler = scheduler
        self.latency_s = latency_s
        self._handlers: dict[str, Callable[[Signal], None]] = {}
        self.log: list[SignalRecord] = []

    def register(self, name: str, handler: Callable[[Signal], None]) -> None:
        """Attach a daemon's signal handler under its node name."""
        if name in self._handlers:
            raise ValueError(f"daemon {name!r} already registered")
        self._handlers[name] = handler

    def unregister(self, name: str) -> None:
        self._handlers.pop(name, None)

    def send(self, signal: Signal) -> SignalRecord:
        """Dispatch a signal; delivery happens after the bus latency."""
        record = SignalRecord(seq=next(_signal_seq), sent_at=self.scheduler.now, signal=signal)
        self.log.append(record)
        self.scheduler.schedule(self.latency_s, self._deliver, record)
        return record

    def _deliver(self, record: SignalRecord) -> None:
        handler = self._handlers.get(record.signal.target)
        record.delivered_at = self.scheduler.now
        if handler is not None:
            handler(record.signal)

    def sent_of_kind(self, kind: str) -> list[SignalRecord]:
        """All log records whose signal class name matches ``kind``."""
        return [r for r in self.log if r.signal.kind == kind]
