"""Control-plane signal protocol (paper §III-A).

Six signal types; five travel from the controller to daemons (one,
NC_VNF_START, the controller sends to itself to trigger cloud API
calls) and one, NC_HEARTBEAT, travels the other way:

========================  ====================================================
``NC_START``              begin network-coded transmission for a session
``NC_VNF_START``          launch N new VNFs (VMs) in a data center
``NC_VNF_END``            VNF no longer needed; shut down after τ
``NC_FORWARD_TAB``        replace a VNF's forwarding table
``NC_SETTINGS``           VNF roles, session ids, UDP ports, generation/block
                          sizes — the initialization bundle
``NC_HEARTBEAT``          daemon liveness beacon, daemon → controller; the
                          controller's failure detector counts misses
========================  ====================================================

Beyond the paper's six, two grown signals ride the same bus:
``NC_SHARD_LEASE`` (controller ↔ controller lease gossip, DESIGN.md
§14) and ``NC_LINK_REPORT`` (receiver/VNF → adaptive controller link
condition feedback, DESIGN.md §15).

:class:`SignalBus` delivers signals with a configurable control-plane
latency (controller → daemon RTTs are real in the paper's testbed) and
keeps a full log for experiments to assert on.

Delivery is no longer fire-and-forget: a signal addressed to a node
with no registered daemon is retried (``max_retries`` attempts spaced
``retry_interval_s`` apart — a dead daemon may be restarting) and, if
every attempt fails, recorded on ``SignalBus.undeliverable`` with
``status="undeliverable"`` instead of vanishing without trace.  The
fault injector can interpose on deliveries through ``fault_hook`` to
drop or delay individual signals deterministically.

Staleness defense (DESIGN.md §11): retries and fault-hook delays mean
delivery is at-least-once and out-of-order.  Two fields make that safe:

- every signal carries a process-unique ``signal_id`` so daemons can
  drop re-deliveries of a signal they already acted on (idempotent
  at-least-once), and
- configuration signals (``NC_FORWARD_TAB``/``NC_SETTINGS``) carry the
  controller's monotonically increasing ``epoch``; a daemon rejects any
  config older than the newest it has applied, so a pre-failure table
  delayed across a healing replan cannot clobber the recovery state.

Fencing (DESIGN.md §14): with sharded controllers a *deposed* primary
is a third staleness source — its epochs kept counting while it was
partitioned, so an epoch comparison alone cannot tell its configs from
the live primary's.  Config signals therefore also carry a ``fence``:
the shard lease generation, bumped on every takeover.  Receivers order
configs by ``(fence, epoch)`` lexicographically
(:class:`ConfigEpochGate`), so anything a zombie primary pushes under
an old lease loses to the first config of the new one, regardless of
how far its private epoch counter ran ahead.

``signal_id`` is excluded from equality/repr so signal values compare
by content and experiment fingerprints stay stable; ``epoch`` and
``fence`` default to 0, which pre-epoch senders (tests, ad-hoc pushes)
can keep using — an epoch-0 signal is never *older* than an applied
epoch-0 config, it ties, and ties are accepted.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.net.events import EventScheduler

_signal_seq = itertools.count(1)
_signal_ids = itertools.count(1)


@dataclass(frozen=True)
class Signal:
    """Base class: every signal is addressed to a daemon by node name.

    ``signal_id`` is a process-unique delivery-dedup token: at-least-once
    retry machinery may deliver the same signal twice, and daemons use
    the id to act on it exactly once.  It is excluded from ``==`` and
    ``repr`` so signals still compare by content.
    """

    target: str
    signal_id: int = field(default_factory=lambda: next(_signal_ids), compare=False, repr=False)

    @property
    def kind(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class NcStart(Signal):
    """Start network-coding-enabled transmission of a session."""

    session_id: int = 0


@dataclass(frozen=True)
class NcVnfStart(Signal):
    """Launch ``count`` new VNFs (VMs) in data center ``datacenter``."""

    datacenter: str = ""
    count: int = 1


@dataclass(frozen=True)
class NcVnfEnd(Signal):
    """The VNF is no longer used; shut down in τ seconds."""

    vnf_name: str = ""
    tau_s: float = 600.0


@dataclass(frozen=True)
class NcForwardTab(Signal):
    """Push a new forwarding table (serialized text, §III-A).

    ``epoch`` is the controller's config epoch at send time; daemons
    reject tables older than the newest config they have applied.
    ``fence`` is the sender's shard-lease generation — a table from a
    deposed primary carries a stale fence and loses to any config of
    the successor, whatever its epoch says.
    """

    table_text: str = ""
    epoch: int = 0
    fence: int = 0


@dataclass(frozen=True)
class NcSettings(Signal):
    """Initial settings: roles, session ids, ports, generation/block sizes.

    ``shapes`` carries the controller's output-shaping directives for
    merge points: ((session_id, next_hop, skip_arrivals), ...).

    Mid-session retunes (DESIGN.md §15): the adaptive-redundancy
    controller re-uses NC_SETTINGS as the carrier for per-session coding
    retunes.  ``blocks_per_generation`` (0 = unchanged) and
    ``redundancy_extra`` (−1 = unchanged) apply to sessions the daemon
    has *already* configured, at the next generation boundary — a
    retune never reshapes a generation that is mid-block on the wire.
    """

    session_ids: tuple[int, ...] = ()
    roles: tuple[tuple[int, str], ...] = ()  # (session_id, role) pairs
    udp_port: int = 0
    generation_bytes: int = 0
    block_bytes: int = 0
    shapes: tuple[tuple[int, str, int], ...] = ()
    epoch: int = 0  # controller config epoch; stale settings are rejected
    fence: int = 0  # shard-lease generation; deposed-primary settings are rejected
    blocks_per_generation: int = 0  # retune: new generation size (0 = keep)
    redundancy_extra: int = -1      # retune: new extra coded packets (-1 = keep)


@dataclass(frozen=True)
class NcHeartbeat(Signal):
    """Daemon → controller liveness beacon (basis of failure detection)."""

    vnf_name: str = ""
    beat: int = 0


@dataclass(frozen=True)
class NcLinkReport(Signal):  # repro-lint: disable=RL004 — dispatched in repro.adapt.controller, not by daemons
    """Reporter → adaptive controller: measured link conditions.

    The feedback half of the adaptive-redundancy loop (DESIGN.md §15):
    receivers and VNFs fold their per-generation loss / NACK /
    corruption counters into one periodic, EWMA-smoothed report.  Like
    every other config-plane signal it is safe under at-least-once
    out-of-order delivery: ``report_epoch`` increases monotonically per
    reporter, and the controller drops any report not newer than the
    last one it accepted from that reporter, so a bus retry or a
    delayed duplicate can never drag the smoothed estimate backwards.

    ``loss_ewma`` is the reporter's smoothed loss estimate in [0, 1];
    the window counters (``packets``/``generations``/``nacks``/
    ``corrupt``) are the raw deltas behind it, reported so the
    controller can weigh confidence (a report spanning two generations
    says less than one spanning forty).
    """

    reporter: str = ""
    session_id: int = 0
    report_epoch: int = 0
    loss_ewma: float = 0.0
    packets: int = 0
    generations: int = 0
    nacks: int = 0
    corrupt: int = 0


@dataclass(frozen=True)
class NcShardLease(Signal):  # repro-lint: disable=RL004 — dispatched in repro.shard.plane, not by daemons
    """Controller ↔ controller: a shard lease changed hands.

    Emitted by the replica that wins a takeover, addressed to every
    peer shard's controller endpoint (over the cross-shard channel) so
    the rest of the control plane learns which replica now speaks for
    ``shard_id`` — and at which fence, letting peers discard anything
    the deposed primary still says under an older one.
    """

    shard_id: str = ""
    holder: str = ""
    fence: int = 0


class ConfigEpochGate:
    """Tracks the newest ``(fence, epoch)`` applied; rejects older configs.

    The shared staleness defense of every config consumer (VNF daemons,
    shard config stores): configuration is ordered lexicographically by
    ``(fence, epoch)`` — the lease generation first, the sender's own
    monotonic epoch second.  Equal pairs are accepted (one push fans a
    table and its settings out under one epoch), strictly older pairs
    are counted in ``stale_rejected`` and refused.
    """

    __slots__ = ("fence", "epoch", "stale_rejected")

    def __init__(self) -> None:
        self.fence = 0
        self.epoch = 0
        self.stale_rejected = 0

    def accepts(self, fence: int, epoch: int) -> bool:
        """Apply-or-reject one config signal's ``(fence, epoch)`` stamp."""
        if (fence, epoch) < (self.fence, self.epoch):
            self.stale_rejected += 1
            return False
        self.fence = fence
        self.epoch = epoch
        return True


#: SignalRecord.status values.
PENDING = "pending"
DELIVERED = "delivered"
DROPPED = "dropped"            # a fault hook ate the delivery
UNDELIVERABLE = "undeliverable"  # no handler after every retry


@dataclass
class SignalRecord:
    """One delivered (or pending) signal, for experiment assertions."""

    seq: int
    sent_at: float
    signal: Signal
    delivered_at: float | None = None
    status: str = PENDING
    attempts: int = 0


#: A fault hook inspects a record at delivery time and returns ``None``
#: (deliver normally), the string ``"drop"`` (swallow this delivery), or
#: a positive float (postpone delivery by that many seconds).
FaultHook = Callable[[SignalRecord], "str | float | None"]


class SignalPort(Protocol):
    """The bus surface a daemon needs: register, unregister, send.

    Structurally satisfied by :class:`SignalBus` and by facades such as
    the orchestrator's cluster fan-out bus, which intercepts member
    registrations while forwarding sends.
    """

    def register(self, name: str, handler: Callable[[Signal], None]) -> None: ...

    def unregister(self, name: str) -> None: ...

    def send(self, signal: Signal) -> SignalRecord: ...


class SignalBus:
    """Delivers control signals to registered daemons with latency."""

    def __init__(
        self,
        scheduler: EventScheduler,
        latency_s: float = 0.05,
        max_retries: int = 3,
        retry_interval_s: float = 0.25,
    ) -> None:
        if latency_s < 0:
            raise ValueError("latency cannot be negative")
        if max_retries < 0:
            raise ValueError("retry count cannot be negative")
        if retry_interval_s <= 0:
            raise ValueError("retry interval must be positive")
        self.scheduler = scheduler
        self.latency_s = latency_s
        self.max_retries = max_retries
        self.retry_interval_s = retry_interval_s
        self._handlers: dict[str, Callable[[Signal], None]] = {}
        self.log: list[SignalRecord] = []
        self.undeliverable: list[SignalRecord] = []
        self.dropped: list[SignalRecord] = []
        self.fault_hook: FaultHook | None = None
        self.on_undeliverable: Callable[[SignalRecord], None] | None = None

    def register(self, name: str, handler: Callable[[Signal], None]) -> None:
        """Attach a daemon's signal handler under its node name."""
        if name in self._handlers:
            raise ValueError(f"daemon {name!r} already registered")
        self._handlers[name] = handler

    def unregister(self, name: str) -> None:
        self._handlers.pop(name, None)

    def is_registered(self, name: str) -> bool:
        return name in self._handlers

    def send(self, signal: Signal) -> SignalRecord:
        """Dispatch a signal; delivery happens after the bus latency."""
        record = SignalRecord(seq=next(_signal_seq), sent_at=self.scheduler.now, signal=signal)
        self.log.append(record)
        self.scheduler.schedule(self.latency_s, self._deliver, record)
        return record

    def _deliver(self, record: SignalRecord) -> None:
        if self.fault_hook is not None:
            action = self.fault_hook(record)
            if action == "drop":
                record.status = DROPPED
                self.dropped.append(record)
                return
            if isinstance(action, (int, float)) and action > 0:
                self.scheduler.schedule(float(action), self._deliver, record)
                return
        handler = self._handlers.get(record.signal.target)
        if handler is None:
            # The daemon may be mid-restart: retry before giving up, and
            # leave a trace either way — a lost control signal that
            # "succeeded" silently is exactly the bug class the fault
            # injector exists to expose.
            record.attempts += 1
            if record.attempts <= self.max_retries:
                self.scheduler.schedule(self.retry_interval_s, self._deliver, record)
                return
            record.status = UNDELIVERABLE
            self.undeliverable.append(record)
            if self.on_undeliverable is not None:
                self.on_undeliverable(record)
            return
        record.delivered_at = self.scheduler.now
        record.status = DELIVERED
        record.attempts += 1
        handler(record.signal)

    def sent_of_kind(self, kind: str) -> list[SignalRecord]:
        """All log records whose signal class name matches ``kind``."""
        return [r for r in self.log if r.signal.kind == kind]

    def undeliverable_of_kind(self, kind: str) -> list[SignalRecord]:
        """Undeliverable records of one signal class (regression surface)."""
        return [r for r in self.undeliverable if r.signal.kind == kind]
