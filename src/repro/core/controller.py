"""The central controller (paper §III-A, §IV).

The controller is the brain of the system: it keeps the network view
(the graph of sources, receivers and data centers with measured
bandwidth/delay), computes coding-function deployment and multicast
routing by solving problem (2), launches and retires VMs through the
cloud provider APIs, and configures daemons over the signal bus
(NC_SETTINGS for roles/ports/coding parameters, NC_FORWARD_TAB for
routing, NC_VNF_END with the τ grace for retirement).

State per session: the achieved rate λ_m and the routed
:class:`~repro.routing.conceptual.FlowDecomposition`.  The global VNF
requirement per data center is recomputed from the union of all routed
flows (the exact aggregate form of constraints (2c)–(2e)), and
:meth:`reconcile_fleet` drives the VM fleet toward it — reusing VMs in
their τ grace window before launching new ones, which is what makes
scale-out cheap in Fig. 11.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field as dataclass_field

import networkx as nx

from repro.cloud.provider import CloudProvider
from repro.core.deployment import DataCenterSpec, DeploymentPlan, DeploymentProblem
from repro.core.forwarding import ForwardingTable
from repro.core.session import MulticastSession
from repro.core.signals import (
    NcForwardTab,
    NcHeartbeat,
    NcSettings,
    NcStart,
    NcVnfEnd,
    NcVnfStart,
    Signal,
    SignalBus,
)
from repro.net.events import EventScheduler, PeriodicEvent
from repro.routing.conceptual import FlowDecomposition


@dataclass
class FleetState:
    """VM bookkeeping for one data center."""

    target: int = 0
    vms: list = dataclass_field(default_factory=list)

    def usable(self) -> list:
        return [vm for vm in self.vms if vm.is_usable]

    def stopping(self) -> list:
        return [vm for vm in self.vms if vm.state.value == "stopping"]

    def running_or_pending(self) -> list:
        return [vm for vm in self.vms if vm.state.value in ("running", "pending")]

    def failed(self) -> list:
        return [vm for vm in self.vms if vm.state.value == "failed"]


class HeartbeatMonitor:
    """Failure detector: a watched name missing ``miss_threshold``
    consecutive heartbeat intervals is declared dead.

    The monitor only *counts*; feeding it (``beat``) and reacting to
    deaths (``on_dead``) are the controller's job.  Checks run on the
    shared event scheduler so detection latency is deterministic.
    """

    def __init__(
        self,
        scheduler: EventScheduler,
        interval_s: float = 1.0,
        miss_threshold: int = 3,
        on_dead=None,
    ):
        if interval_s <= 0:
            raise ValueError("heartbeat interval must be positive")
        if miss_threshold < 1:
            raise ValueError("miss threshold must be at least 1")
        self.scheduler = scheduler
        self.interval_s = interval_s
        self.miss_threshold = miss_threshold
        self.on_dead = on_dead
        self.last_heard: dict[str, float] = {}
        self.dead: dict[str, float] = {}  # name -> declared-dead time
        self._ticker: PeriodicEvent | None = scheduler.schedule_every(interval_s, self._check)

    def watch(self, name: str) -> None:
        """Start (or restart) expecting heartbeats from ``name``.

        The grace period starts *now* even if the name was watched
        before: re-adopting a restarted daemon must not inherit the
        stale last-heard time that got it declared dead.
        """
        self.last_heard[name] = self.scheduler.now
        self.dead.pop(name, None)

    def unwatch(self, name: str) -> None:
        """Stop expecting heartbeats (planned shutdown, not a failure)."""
        self.last_heard.pop(name, None)
        self.dead.pop(name, None)

    def beat(self, name: str) -> None:
        if name in self.last_heard:
            self.last_heard[name] = self.scheduler.now

    def stop(self) -> None:
        if self._ticker is not None:
            self._ticker.cancel()
            self._ticker = None

    def _check(self) -> None:
        now = self.scheduler.now
        deadline = self.miss_threshold * self.interval_s
        for name, heard in list(self.last_heard.items()):
            if name in self.dead:
                continue
            if now - heard > deadline + 1e-9:
                self.dead[name] = now
                if self.on_dead is not None:
                    self.on_dead(name)


class Controller:
    """Global controller for coding-function deployment and routing."""

    def __init__(
        self,
        graph: nx.DiGraph,
        datacenters: list,
        scheduler: EventScheduler,
        alpha: float = 20.0,
        bus: SignalBus | None = None,
        providers: dict | None = None,
        grace_tau_s: float = 600.0,
        source_outbound_mbps: float = 1000.0,
        receiver_inbound_mbps: float = 1000.0,
        endpoint_caps: dict | None = None,
    ):
        self.graph = graph
        self.datacenters: dict[str, DataCenterSpec] = {dc.name: dc for dc in datacenters}
        self.scheduler = scheduler
        self.alpha = alpha
        self.bus = bus if bus is not None else SignalBus(scheduler)
        self.providers = dict(providers or {})  # dc name -> CloudProvider
        self.grace_tau_s = grace_tau_s
        self.source_outbound_mbps = source_outbound_mbps
        self.receiver_inbound_mbps = receiver_inbound_mbps
        self.endpoint_caps = dict(endpoint_caps or {})

        self.sessions: dict[int, MulticastSession] = {}
        self.lambdas: dict[int, float] = {}
        self.decompositions: dict[int, FlowDecomposition] = {}
        # Demand footprint per session: every node and edge any of its
        # candidate paths could touch.  A departure whose freed capacity
        # is disjoint from all remaining footprints cannot change any
        # remaining session's optimum, so the g1/g2 rebalance is skipped
        # outright (0 LP solves instead of 2 whole-fleet ones).
        self._demand_footprints: dict[int, frozenset] = {}
        self.fleet: dict[str, FleetState] = {name: FleetState() for name in self.datacenters}
        self.solves = 0
        # Monotonic config epoch, bumped on every stored plan and
        # stamped onto NC_FORWARD_TAB/NC_SETTINGS so daemons can reject
        # deliveries delayed from before a later replan (DESIGN.md §11).
        self.config_epoch = 0

        # Failure handling (opt-in via enable_failure_detection).
        self.monitor: HeartbeatMonitor | None = None
        self.disabled_datacenters: set[str] = set()
        self.on_vnf_failure: list = []  # callbacks fn(vnf_name, datacenter)
        self.failures: list[dict] = []  # audit log of handled failures
        self._watched_vnfs: dict[str, tuple] = {}  # name -> (datacenter, vm | None)

    # -- problem construction ------------------------------------------------

    def problem(self, alpha: float | None = None) -> DeploymentProblem:
        """A fresh :class:`DeploymentProblem` over the current graph.

        Data centers quarantined by the failure handler are *excised*
        from the topology view — node and touching links, not merely
        dropped from the candidate list — so the feasible-path DFS
        cannot route data plane flows through a dead site as a plain
        relay hop.
        """
        graph = self.graph
        if self.disabled_datacenters:
            graph = nx.restricted_view(self.graph, tuple(self.disabled_datacenters), ())
        usable_dcs = [
            dc for name, dc in self.datacenters.items() if name not in self.disabled_datacenters
        ]
        return DeploymentProblem(
            graph,
            usable_dcs,
            alpha=self.alpha if alpha is None else alpha,
            source_outbound_mbps=self.source_outbound_mbps,
            receiver_inbound_mbps=self.receiver_inbound_mbps,
            endpoint_caps=self.endpoint_caps,
        )

    def _plan_of(self, session_ids) -> list:
        """Existing per-session plans (for freezing) for the given ids."""
        plans = []
        for sid in session_ids:
            decomposition = self.decompositions.get(sid)
            if decomposition is None:
                continue
            plans.append(
                DeploymentPlan(
                    lambdas={sid: self.lambdas.get(sid, 0.0)},
                    decompositions={sid: decomposition},
                    alpha=self.alpha,
                )
            )
        return plans

    def _store(self, plan: DeploymentPlan) -> None:
        self.lambdas.update(plan.lambdas)
        self.decompositions.update(plan.decompositions)
        self.solves += 1
        self.config_epoch += 1

    @staticmethod
    def _footprint_of(demand) -> frozenset:
        """Nodes ∪ edges any candidate path of a demand could occupy."""
        items: set = set()
        for paths in demand.path_sets.values():
            for path in paths:
                items.update(path.nodes)
                items.update(path.edges)
        return frozenset(items)

    def _routed_footprint(self, session_id: int) -> frozenset:
        """Nodes ∪ edges a session's *current* routing actually loads."""
        decomposition = self.decompositions.get(session_id)
        if decomposition is None:
            return frozenset()
        items: set = set()
        for edge, rate in decomposition.link_rates().items():
            if rate > 1e-9:
                items.add(edge)
                items.update(edge)
        return frozenset(items)

    # -- session lifecycle (entry points used by the scaling engine) -----------

    def add_session(self, session: MulticastSession, reconcile: bool = True) -> DeploymentPlan:
        """SESSION JOIN: route the new session over surplus + new capacity."""
        if session.session_id in self.sessions:
            raise ValueError(f"session {session.session_id} already registered")
        self.sessions[session.session_id] = session
        problem = self.problem()
        demand = problem.build_demand(session)
        self._demand_footprints[session.session_id] = self._footprint_of(demand)
        frozen = self._plan_of(sid for sid in self.sessions if sid != session.session_id)
        plan = problem.solve([demand], frozen=frozen, baseline_vnfs=self.current_vnf_counts())
        self._store(plan)
        if reconcile:
            self.reconcile_fleet()
        self.bus.send(NcStart(target=session.source, session_id=session.session_id))
        return plan

    def remove_session(self, session_id: int, reconcile: bool = True) -> dict:
        """SESSION QUIT: compare growing flows (g1) vs shrinking fleet (g2).

        When the departing session's routed footprint is disjoint from
        every remaining session's demand footprint, the freed capacity
        is unreachable by anyone else: g1 would reproduce the current
        flows and g2 the current fleet, so both solves are skipped and
        the fleet is reconciled directly (``rebalanced: False``).
        """
        if session_id not in self.sessions:
            raise ValueError(f"unknown session {session_id}")
        freed = self._routed_footprint(session_id)
        del self.sessions[session_id]
        self.lambdas.pop(session_id, None)
        self.decompositions.pop(session_id, None)
        self._demand_footprints.pop(session_id, None)
        return self._rebalance_after_departure(reconcile, freed=freed)

    def add_receiver(self, session_id: int, receiver: str, reconcile: bool = True) -> DeploymentPlan:
        """RECEIVER JOIN: re-route the affected session only."""
        session = self._session(session_id)
        session.add_receiver(receiver)
        return self._resolve_sessions([session_id], reconcile)

    def remove_receiver(self, session_id: int, receiver: str, reconcile: bool = True) -> dict:
        """RECEIVER QUIT: like session quit, scoped to one session.

        The departure rebalance (Alg. 3) already re-solves every
        remaining session under both the g1 and g2 policies, so there is
        no separate per-session re-solve first — doing one would burn an
        extra LP and reconcile the fleet against a plan that is
        immediately replaced.
        """
        session = self._session(session_id)
        session.remove_receiver(receiver)
        return self._rebalance_after_departure(reconcile)

    def _session(self, session_id: int) -> MulticastSession:
        try:
            return self.sessions[session_id]
        except KeyError:
            raise KeyError(f"unknown session {session_id}") from None

    # -- re-solve primitives ------------------------------------------------------

    def _resolve_sessions(self, session_ids: list, reconcile: bool = True) -> DeploymentPlan:
        """Re-route the given sessions; everything else stays frozen."""
        problem = self.problem()
        demands = [problem.build_demand(self.sessions[sid]) for sid in session_ids]
        for sid, demand in zip(session_ids, demands):
            self._demand_footprints[sid] = self._footprint_of(demand)
        frozen = self._plan_of(sid for sid in self.sessions if sid not in set(session_ids))
        plan = problem.solve(demands, frozen=frozen, baseline_vnfs=self.current_vnf_counts())
        self._store(plan)
        if reconcile:
            self.reconcile_fleet()
        return plan

    def resolve_all(self, reconcile: bool = True) -> DeploymentPlan:
        """Full re-optimization of every session (initial deployment)."""
        problem = self.problem()
        demands = [problem.build_demand(s) for s in self.sessions.values()]
        for sid, demand in zip(self.sessions, demands):
            self._demand_footprints[sid] = self._footprint_of(demand)
        plan = problem.solve(demands, baseline_vnfs=self.current_vnf_counts())
        self._store(plan)
        if reconcile:
            self.reconcile_fleet()
        return plan

    def _rebalance_after_departure(self, reconcile: bool = True, freed: frozenset | None = None) -> dict:
        """Alg. 3 SESSION/RECEIVER QUIT: pick max(g1 grow-flows, g2 shrink-fleet).

        With ``freed`` given (a session quit's routed footprint), the
        O(1) fast path fires when no remaining session's demand
        footprint intersects it — nobody can grow into the freed
        capacity, so neither g1 nor g2 can beat the incumbent plans.
        """
        remaining = list(self.sessions)
        if freed is not None and not any(
            freed & self._demand_footprints.get(sid, frozenset()) for sid in remaining
        ):
            if reconcile:
                self.reconcile_fleet()
            return {"g1": 0.0, "g2": 0.0, "chosen": "g1", "rebalanced": False}
        current_counts = self.current_vnf_counts()
        g1_plan = g2_plan = None
        if remaining:
            problem = self.problem()
            demands = [problem.build_demand(self.sessions[sid]) for sid in remaining]
            # g1: keep the VNF deployment, let the flows grow into freed capacity.
            g1_plan = problem.solve(demands, fixed_vnfs=current_counts)
            # g2: keep current flow rates, retire VNFs no longer needed.
            fixed_sessions = []
            for sid in remaining:
                session = self.sessions[sid]
                rate = self.lambdas.get(sid, 0.0)
                fixed_sessions.append(
                    MulticastSession(
                        source=session.source,
                        receivers=list(session.receivers),
                        max_delay_ms=session.max_delay_ms,
                        fixed_rate_mbps=max(rate, 1e-3),
                        coding=session.coding,
                        session_id=session.session_id,
                    )
                )
            g2_demands = [problem.build_demand(s) for s in fixed_sessions]
            g2_plan = problem.solve(g2_demands)
        g1 = self._objective_of(g1_plan)
        g2 = self._objective_of(g2_plan)
        chosen = g1_plan if g1 >= g2 else g2_plan
        if chosen is not None:
            self._store(chosen)
        if reconcile:
            self.reconcile_fleet()
        return {"g1": g1, "g2": g2, "chosen": "g1" if g1 >= g2 else "g2", "rebalanced": True}

    def _objective_of(self, plan: DeploymentPlan | None) -> float:
        if plan is None:
            return 0.0
        return plan.total_throughput_mbps - self.alpha * sum(self._required_counts(plan).values())

    # -- VNF requirement & fleet reconciliation -------------------------------------

    def _required_counts(self, plan: DeploymentPlan | None = None) -> dict:
        """Minimum VNFs per data center for the given (default: live) flows."""
        decompositions = (
            plan.decompositions.values() if plan is not None else self.decompositions.values()
        )
        load: dict = {}
        for decomposition in decompositions:
            for edge, rate in decomposition.link_rates().items():
                load[edge] = load.get(edge, 0.0) + rate
        counts = {}
        for name, dc in self.datacenters.items():
            inflow = sum(rate for edge, rate in load.items() if edge[1] == name)
            outflow = sum(rate for edge, rate in load.items() if edge[0] == name)
            counts[name] = max(
                math.ceil(inflow / min(dc.inbound_mbps, dc.coding_mbps) - 1e-9),
                math.ceil(outflow / dc.outbound_mbps - 1e-9),
                0,
            )
        return counts

    def required_vnf_counts(self) -> dict:
        """Per-DC VNF requirement implied by all currently routed flows."""
        return self._required_counts()

    def current_vnf_counts(self) -> dict:
        """Per-DC usable VMs (running, pending, or inside the τ grace)."""
        return {
            name: len(state.usable()) + len([vm for vm in state.vms if vm.state.value == "pending"])
            for name, state in self.fleet.items()
        }

    def total_vnfs(self) -> int:
        return sum(self.current_vnf_counts().values())

    def total_throughput_mbps(self) -> float:
        """Planned throughput: Σ_m λ_m of the current routing solution."""
        return sum(self.lambdas.values())

    def running_vnf_counts(self) -> dict:
        """VMs actually able to carry traffic (RUNNING, not booting)."""
        out = {}
        for name, state in self.fleet.items():
            if state.vms:
                out[name] = len([vm for vm in state.vms if vm.state.value in ("running", "stopping")])
            else:
                # No provider-backed fleet (pure planning mode): assume
                # the requirement is met instantly.
                out[name] = self.required_vnf_counts().get(name, 0)
        return out

    def achieved_throughputs(self, actual_caps: dict | None = None) -> dict:
        """Ground-truth per-session rates under the *real* capacities.

        Between an environment change (a bandwidth cut, a VM still
        booting) and the controller's reaction, the routed flows exceed
        what the data plane can carry; the delivered rate of a session
        scales by the worst over-subscription among the data centers it
        traverses.  ``actual_caps`` maps dc name -> (B_in, B_out) ground
        truth; defaults to the controller's current belief.
        """
        load: dict = {}
        for decomposition in self.decompositions.values():
            for edge, rate in decomposition.link_rates().items():
                load[edge] = load.get(edge, 0.0) + rate
        running = self.running_vnf_counts()
        factor: dict = {}
        for name, dc in self.datacenters.items():
            caps = (actual_caps or {}).get(name, (dc.inbound_mbps, dc.outbound_mbps))
            vnfs = running.get(name, 0)
            inflow = sum(rate for edge, rate in load.items() if edge[1] == name)
            outflow = sum(rate for edge, rate in load.items() if edge[0] == name)
            in_capacity = min(caps[0], dc.coding_mbps) * vnfs
            out_capacity = caps[1] * vnfs
            factor[(name, "in")] = 1.0 if inflow <= 1e-9 else min(1.0, in_capacity / inflow)
            factor[(name, "out")] = 1.0 if outflow <= 1e-9 else min(1.0, out_capacity / outflow)
        achieved = {}
        for sid, decomposition in self.decompositions.items():
            worst = 1.0
            for (u, v), rate in decomposition.link_rates().items():
                if rate <= 1e-9:
                    continue
                if v in self.datacenters:
                    worst = min(worst, factor[(v, "in")])
                if u in self.datacenters:
                    worst = min(worst, factor[(u, "out")])
            achieved[sid] = self.lambdas.get(sid, 0.0) * worst
        return achieved

    def achieved_total_throughput_mbps(self, actual_caps: dict | None = None) -> float:
        return sum(self.achieved_throughputs(actual_caps).values())

    def reconcile_fleet(self) -> dict:
        """Drive the VM fleet toward the current requirement.

        Scale-out prefers reusing VMs inside their τ grace window (free
        and instant) before calling the provider API; scale-in sends
        NC_VNF_END, which opens the τ window rather than killing the VM.
        Returns a summary of actions taken.
        """
        required = self.required_vnf_counts()
        actions = {"launched": 0, "reused": 0, "retired": 0}
        for name, state in self.fleet.items():
            state.target = required.get(name, 0)
            active = [vm for vm in state.vms if vm.state.value in ("running", "pending")]
            deficit = state.target - len(active)
            if deficit > 0:
                # Reuse τ-grace VMs first.
                for vm in state.stopping():
                    if deficit == 0:
                        break
                    vm.reuse()
                    actions["reused"] += 1
                    deficit -= 1
                if deficit > 0:
                    self.bus.send(NcVnfStart(target="controller", datacenter=name, count=deficit))
                    provider = self.providers.get(name)
                    for _ in range(deficit):
                        if provider is not None:
                            vm = provider.launch_vm(name, grace_tau_s=self.grace_tau_s)
                            state.vms.append(vm)
                        actions["launched"] += 1
            elif deficit < 0:
                for vm in active[deficit:]:  # retire the newest surplus VMs
                    self.bus.send(NcVnfEnd(target=f"{name}/{vm.vm_id}", vnf_name=vm.vm_id, tau_s=self.grace_tau_s))
                    vm.request_shutdown()
                    actions["retired"] += 1
        return actions

    # -- forwarding tables --------------------------------------------------------------

    def forwarding_tables(self) -> dict:
        """Per-node forwarding tables derived from all routed flows.

        Node u forwards session m to every v with f_m((u, v)) > 0.
        """
        tables: dict[str, ForwardingTable] = {}
        for sid, decomposition in self.decompositions.items():
            for (u, v), rate in decomposition.link_rates().items():
                if rate <= 1e-9:
                    continue
                table = tables.setdefault(u, ForwardingTable())
                hops = table.next_hops(sid)
                if v not in hops:
                    hops.append(v)
                    table.set_next_hops(sid, hops)
        return tables

    def push_forwarding_tables(self) -> int:
        """Send NC_FORWARD_TAB to every node with a table; returns count."""
        tables = self.forwarding_tables()
        for node, table in tables.items():
            self.bus.send(
                NcForwardTab(target=node, table_text=table.serialize(), epoch=self.config_epoch)
            )
        return len(tables)

    def push_settings(self, session: MulticastSession, node_roles: dict, udp_port: int = 52017) -> None:
        """Send NC_SETTINGS describing one session to the given nodes."""
        for node, role in node_roles.items():
            self.bus.send(
                NcSettings(
                    target=node,
                    session_ids=(session.session_id,),
                    roles=((session.session_id, role.value),),
                    udp_port=udp_port,
                    generation_bytes=session.coding.generation_bytes,
                    block_bytes=session.coding.block_bytes,
                    epoch=self.config_epoch,
                )
            )

    # -- measurement ingestion (graph updates) ------------------------------------------

    def observe_link(self, edge: tuple, bandwidth_mbps: float | None = None, delay_ms: float | None = None) -> None:
        """Apply a measurement sample to the network view."""
        if edge not in self.graph.edges:
            raise KeyError(f"unknown link {edge}")
        if bandwidth_mbps is not None:
            self.graph.edges[edge]["capacity_mbps"] = bandwidth_mbps
        if delay_ms is not None:
            self.graph.edges[edge]["delay_ms"] = delay_ms

    def observe_datacenter_caps(self, name: str, inbound_mbps: float | None = None, outbound_mbps: float | None = None) -> None:
        """Apply measured per-VNF bandwidth caps (B_in, B_out)."""
        dc = self.datacenters.get(name)
        if dc is None:
            raise KeyError(f"unknown data center {name}")
        if inbound_mbps is not None:
            dc.inbound_mbps = inbound_mbps
        if outbound_mbps is not None:
            dc.outbound_mbps = outbound_mbps

    # -- failure detection & recovery (heartbeat loop) -----------------------------------

    def enable_failure_detection(
        self, heartbeat_interval_s: float = 1.0, miss_threshold: int = 3
    ) -> HeartbeatMonitor:
        """Start the heartbeat-based failure detector.

        Registers the controller itself on the signal bus (address
        ``"controller"``) so daemons' NC_HEARTBEAT beacons reach it, and
        starts a :class:`HeartbeatMonitor` that declares any watched VNF
        dead after ``miss_threshold`` silent intervals.  Opt-in: plain
        planning-mode controllers never touch the bus registry.
        """
        if self.monitor is not None:
            return self.monitor
        self.monitor = HeartbeatMonitor(
            self.scheduler,
            interval_s=heartbeat_interval_s,
            miss_threshold=miss_threshold,
            on_dead=self._handle_vnf_failure,
        )
        if not self.bus.is_registered("controller"):
            self.bus.register("controller", self._handle_signal)
        return self.monitor

    def watch_vnf(self, name: str, datacenter: str, vm=None) -> None:
        """Expect heartbeats from VNF ``name`` hosted in ``datacenter``."""
        if self.monitor is None:
            raise RuntimeError("call enable_failure_detection() first")
        self._watched_vnfs[name] = (datacenter, vm)
        self.monitor.watch(name)

    def unwatch_vnf(self, name: str) -> None:
        """Planned retirement: stop expecting heartbeats, no failure."""
        self._watched_vnfs.pop(name, None)
        if self.monitor is not None:
            self.monitor.unwatch(name)

    def _handle_signal(self, signal: Signal) -> None:
        """Controller-addressed signals: heartbeats and its own VNF-start notes."""
        if isinstance(signal, NcHeartbeat):
            if self.monitor is not None:
                self.monitor.beat(signal.vnf_name)
        elif isinstance(signal, NcVnfStart):
            pass  # the controller's own launch notification; already acted on

    def _handle_vnf_failure(self, name: str) -> None:
        """Declared-dead VNF: mark, quarantine if needed, route around.

        Runs the full recovery pipeline: fail the backing VM, quarantine
        the data center when it has no usable VM left (and another DC
        can take the load), re-solve the affected sessions,
        reconcile the fleet, and push fresh forwarding tables.
        """
        datacenter, vm = self._watched_vnfs.pop(name, ("", None))
        if self.monitor is not None:
            self.monitor.unwatch(name)
        if vm is not None and vm.state.value not in ("failed", "terminated"):
            vm.fail()
        state = self.fleet.get(datacenter)
        quarantined = False
        if state is not None and not state.usable() and not state.running_or_pending():
            alternatives = set(self.datacenters) - self.disabled_datacenters - {datacenter}
            if alternatives:
                self.disabled_datacenters.add(datacenter)
                quarantined = True
        record = {
            "time": self.scheduler.now,
            "vnf": name,
            "datacenter": datacenter,
            "quarantined": quarantined,
        }
        self.failures.append(record)
        for callback in list(self.on_vnf_failure):
            callback(name, datacenter)
        affected = [
            sid
            for sid, decomposition in self.decompositions.items()
            if any(
                datacenter in edge and rate > 1e-9
                for edge, rate in decomposition.link_rates().items()
            )
        ]
        if affected:
            self._resolve_sessions(affected, reconcile=False)
        self.reconcile_fleet()
        self.push_forwarding_tables()

    def restore_datacenter(self, name: str) -> None:
        """Lift a failure quarantine (the DC is healthy again)."""
        self.disabled_datacenters.discard(name)
