"""Progressive Gaussian-elimination RLNC decoder.

The decoder keeps the coefficient matrix of everything it has usefully
heard in row-echelon form, folding each new packet in as it arrives
(O(k^2) per packet instead of O(k^3) once at the end).  A packet that is
linearly dependent on what is already known is recognized — its row
reduces to zero — and discarded; :attr:`Decoder.redundant` counts these,
which is the statistic the paper's generation-size study (Fig. 4) trades
against coding delay.

Decoding completes when rank reaches k; back-substitution then recovers
the original generation.
"""

from __future__ import annotations

import numpy as np

from repro.gf import GF256, GaloisField
from repro.rlnc.generation import Generation
from repro.rlnc.packet import CodedPacket


class Decoder:
    """Decoder state for one (session, generation)."""

    def __init__(
        self,
        session_id: int,
        generation_id: int,
        block_count: int,
        block_bytes: int,
        field: GaloisField = GF256,
    ) -> None:
        self.session_id = session_id
        self.generation_id = generation_id
        self.block_count = block_count
        self.block_bytes = block_bytes
        self.field = field
        # Row-echelon state: _coeffs[r] has its pivot at column _pivots[r].
        self._coeffs = np.zeros((block_count, block_count), dtype=field.dtype)
        self._payloads = np.zeros((block_count, block_bytes), dtype=field.dtype)
        self._pivot_rows: dict[int, int] = {}  # pivot column -> row index
        # Reusable work/reduction buffers: every incoming packet is
        # reduced in place here, so folding a packet allocates nothing.
        self._work_coeffs = np.empty(block_count, dtype=field.dtype)
        self._work_payload = np.empty(block_bytes, dtype=field.dtype)
        self._scratch_coeffs = np.empty(block_count, dtype=field.dtype)
        self._scratch_payload = np.empty(block_bytes, dtype=field.dtype)
        self.received = 0
        self.redundant = 0

    @property
    def rank(self) -> int:
        """Degrees of freedom collected so far."""
        return len(self._pivot_rows)

    @property
    def complete(self) -> bool:
        """True once the generation can be fully decoded."""
        return self.rank == self.block_count

    def missing_pivots(self) -> tuple[int, ...]:
        """Pivot columns not yet covered — the blocks a NACK asks for.

        For a systematic (uncoded) stream these are exactly the missing
        block indices; for a coded stream they indicate how many more
        degrees of freedom are needed (any fresh combinations do).
        """
        return tuple(col for col in range(self.block_count) if col not in self._pivot_rows)

    def add(self, packet: CodedPacket) -> bool:
        """Fold a packet in; returns True if it was innovative."""
        if packet.session_id != self.session_id or packet.generation_id != self.generation_id:
            raise ValueError(
                f"packet for ({packet.session_id}, {packet.generation_id}) fed to decoder "
                f"for ({self.session_id}, {self.generation_id})"
            )
        if packet.header.block_count != self.block_count:
            raise ValueError("coefficient vector length does not match the decoder's block count")
        if packet.payload.shape[0] != self.block_bytes:
            raise ValueError(
                f"payload is {packet.payload.shape[0]} bytes, decoder expects {self.block_bytes}"
            )
        self.received += 1
        # Fold into the reusable work buffers (no .astype().copy()
        # double-copy; the cast happens during the buffer fill).
        coeffs = self._work_coeffs
        payload = self._work_payload
        np.copyto(coeffs, packet.coefficients)
        np.copyto(payload, packet.payload)

        # Reduce against existing pivots, in place.
        for col in range(self.block_count):
            factor = int(coeffs[col])
            if not factor:
                continue
            row = self._pivot_rows.get(col)
            if row is None:
                # New pivot: normalize straight into the stored row.
                inv = int(self.field.inv(factor))
                slot = self.rank
                self.field.scale_into(inv, coeffs, self._coeffs[slot])
                self.field.scale_into(inv, payload, self._payloads[slot])
                self._pivot_rows[col] = slot
                return True
            self.field.addmul_into(coeffs, factor, self._coeffs[row], scratch=self._scratch_coeffs)
            self.field.addmul_into(payload, factor, self._payloads[row], scratch=self._scratch_payload)
        # Reduced to zero: linearly dependent.
        self.redundant += 1
        return False

    def decode(self) -> Generation:
        """Recover the original blocks; requires :attr:`complete`."""
        if not self.complete:
            raise RuntimeError(f"decoder has rank {self.rank} < {self.block_count}; cannot decode yet")
        # Back-substitution: eliminate above-pivot entries so the
        # coefficient matrix becomes the identity (rows indexed by pivot).
        coeffs = self._coeffs.copy()
        payloads = self._payloads.copy()
        order = sorted(self._pivot_rows.items())  # (pivot column, row), ascending column
        for i in range(len(order) - 1, -1, -1):
            col, row = order[i]
            for col_j, row_j in order[:i]:
                factor = coeffs[row_j, col]
                if factor:
                    coeffs[row_j] = self.field.add(coeffs[row_j], self.field.scale(factor, coeffs[row]))
                    payloads[row_j] = self.field.add(payloads[row_j], self.field.scale(factor, payloads[row]))
        blocks = np.zeros((self.block_count, self.block_bytes), dtype=np.uint8)
        for col, row in self._pivot_rows.items():
            blocks[col] = payloads[row]
        return Generation(generation_id=self.generation_id, blocks=blocks)
