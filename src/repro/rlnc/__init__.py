"""Randomized linear network coding (RLNC) codec.

This package reimplements the coding layer the paper builds on Kodo:

- :mod:`repro.rlnc.header` — the NC wire header carried between UDP and
  the application layer (session id, generation id, coefficient vector;
  8 bytes + one byte per block for GF(2^8), i.e. 12 bytes at the paper's
  default of 4 blocks per generation).
- :mod:`repro.rlnc.generation` — segmentation of application data into
  generations of fixed-size blocks and reassembly on decode.
- :mod:`repro.rlnc.encoder` — source encoder: systematic and dense coded
  packets with configurable per-generation redundancy (the paper's
  NC0/NC1/NC2 settings).
- :mod:`repro.rlnc.recoder` — in-network recoder used by relay VNFs:
  pipelined, it can emit a fresh combination after every received packet
  without decoding first.
- :mod:`repro.rlnc.decoder` — progressive Gaussian-elimination decoder.

Coding is per-generation: an encoded block is a linear combination of
the blocks of one generation only, with coefficients drawn uniformly at
random from GF(2^8) (Ho et al.'s randomized network coding).
"""

from repro.rlnc.decoder import Decoder
from repro.rlnc.encoder import Encoder
from repro.rlnc.generation import Generation, reassemble, segment
from repro.rlnc.header import NCHeader
from repro.rlnc.packet import CodedPacket
from repro.rlnc.recoder import Recoder
from repro.rlnc.redundancy import RedundancyPolicy

__all__ = [
    "NCHeader",
    "CodedPacket",
    "Generation",
    "segment",
    "reassemble",
    "Encoder",
    "Recoder",
    "Decoder",
    "RedundancyPolicy",
]
