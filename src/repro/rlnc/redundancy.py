"""Per-generation redundancy policy (the paper's NC0 / NC1 / NC2).

Section V-B3 studies how many *extra* coded packets each coding node
should emit per generation: NC0 adds none (k packets for k blocks), NC1
adds one, NC2 adds two.  Extra packets buy loss robustness — a receiver
decodes from any k linearly independent packets — at the price of
bandwidth when the links are clean.  The paper's finding: no redundancy
on reliable links, a small amount under heavy loss.

:func:`recommend_redundancy` captures that guidance as a simple rule the
controller can apply per-link from measured loss rates.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RedundancyPolicy:
    """How many packets a coding node emits per generation.

    ``extra`` is the number of redundant coded packets on top of the k
    needed in the loss-free case; the paper's configurations are
    ``RedundancyPolicy(0)`` (NC0), ``RedundancyPolicy(1)`` (NC1) and
    ``RedundancyPolicy(2)`` (NC2).
    """

    extra: int = 0

    def __post_init__(self) -> None:
        if self.extra < 0:
            raise ValueError("redundancy cannot be negative")

    def packets_per_generation(self, block_count: int) -> int:
        """Total packets emitted per generation of ``block_count`` blocks."""
        if block_count <= 0:
            raise ValueError("block_count must be positive")
        return block_count + self.extra

    def overhead_fraction(self, block_count: int) -> float:
        """Bandwidth overhead relative to the uncoded generation."""
        return self.extra / block_count

    @property
    def name(self) -> str:
        """Paper-style label: NC0, NC1, NC2, ..."""
        return f"NC{self.extra}"


NC0 = RedundancyPolicy(0)
NC1 = RedundancyPolicy(1)
NC2 = RedundancyPolicy(2)


def expected_delivery_probability(loss_rate: float, block_count: int, extra: int) -> float:
    """Probability that a receiver gets >= k of the k+extra packets sent.

    Assumes i.i.d. loss with rate ``loss_rate`` and ignores the (field-
    size-controlled) chance of linear dependency, which at GF(2^8) is
    below 0.4% per packet.  Used by tests and by the redundancy
    recommendation rule.
    """
    if not 0.0 <= loss_rate <= 1.0:
        raise ValueError("loss_rate must be in [0, 1]")
    if block_count <= 0 or extra < 0:
        raise ValueError("block_count must be positive and extra non-negative")
    n = block_count + extra
    p = 1.0 - loss_rate
    # P[Binomial(n, p) >= k]
    from math import comb

    return sum(comb(n, i) * p**i * (1 - p) ** (n - i) for i in range(block_count, n + 1))


def recommend_redundancy(
    loss_rate: float,
    block_count: int,
    target_delivery: float = 0.9,
    max_extra: int = 8,
) -> RedundancyPolicy:
    """Pick the smallest redundancy meeting a delivery target.

    Implements the paper's qualitative rule ("a small number of extra
    coded packets ... in cases of high packet loss rate, and no extra
    coded packets if the links are reliable") as the least ``extra`` with
    per-generation delivery probability >= ``target_delivery``, capped at
    ``max_extra``.
    """
    for extra in range(max_extra + 1):
        if expected_delivery_probability(loss_rate, block_count, extra) >= target_delivery:
            return RedundancyPolicy(extra)
    return RedundancyPolicy(max_extra)
