"""Source-side RLNC encoder.

For each generation the encoder can emit:

- *systematic* packets — the original blocks verbatim, with unit
  coefficient vectors.  Sending the originals first means a receiver on
  a loss-free path decodes with zero linear-algebra work; only losses
  cost coded repair packets.
- *coded* packets — random linear combinations with coefficients drawn
  uniformly from the field.

The paper's redundancy settings map directly: NC0 emits exactly k
packets per generation (systematic or coded), NC1 emits k+1, NC2 emits
k+2; see :class:`repro.rlnc.redundancy.RedundancyPolicy`.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.gf import GF256, GaloisField
from repro.rlnc.generation import Generation
from repro.rlnc.header import NCHeader
from repro.rlnc.packet import CodedPacket
from repro.util.rng import derive_rng


class Encoder:
    """RLNC encoder for a single generation of one session.

    Parameters
    ----------
    session_id:
        Session the generation belongs to.
    generation:
        The original blocks to code over.
    field:
        Coefficient field; GF(2^8) by default, per the paper.
    systematic:
        Emit the k original blocks (as unit-coefficient packets) before
        any dense coded packet.
    rng:
        Randomness source for coefficients; pass a seeded generator for
        reproducible traces.
    """

    def __init__(
        self,
        session_id: int,
        generation: Generation,
        field: GaloisField = GF256,
        systematic: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        if field.order > 256:
            # Header stores one byte per coefficient; larger fields would
            # need a wider wire format.  GF(2^16) encoders are used only
            # in ablations via coefficient packing at a higher layer.
            raise ValueError("the NC header carries one byte per coefficient; use GF(2^8) or smaller")
        self.session_id = session_id
        self.generation = generation
        self.field = field
        self.systematic = systematic
        self._rng = rng if rng is not None else derive_rng(
            "rlnc.encoder", session_id, generation.generation_id
        )
        self._emitted = 0

    @property
    def block_count(self) -> int:
        return self.generation.block_count

    def next_packet(self) -> CodedPacket:
        """Produce the next packet for this generation.

        The first k packets are systematic when enabled; every packet
        after that is a fresh random combination.
        """
        k = self.block_count
        if self.systematic and self._emitted < k:
            index = self._emitted
            coeffs = np.zeros(k, dtype=self.field.dtype)
            coeffs[index] = 1
            packet = CodedPacket(
                header=NCHeader(
                    session_id=self.session_id,
                    generation_id=self.generation.generation_id,
                    coefficients=coeffs,
                    systematic=True,
                ),
                payload=self.generation.blocks[index].copy(),
            )
        else:
            packet = self._coded_packet()
        self._emitted += 1
        return packet

    def _coded_packet(self) -> CodedPacket:
        k = self.block_count
        coeffs = self.field.random_elements(self._rng, k)
        if not coeffs.any():
            # An all-zero vector carries no information; resample the
            # first coefficient to be nonzero (probability 256^-k event).
            coeffs[0] = self.field.random_nonzero(self._rng, 1)[0]
        payload = self.field.linear_combination(coeffs, self.generation.blocks)
        return CodedPacket(
            header=NCHeader(
                session_id=self.session_id,
                generation_id=self.generation.generation_id,
                coefficients=coeffs,
                systematic=False,
            ),
            payload=payload,
        )

    def coded_packets(self, count: int) -> list[CodedPacket]:
        """Produce ``count`` dense coded packets through one batch matmul.

        All coefficient vectors for the burst are drawn in a single RNG
        call and the payloads come from one :meth:`GaloisField.matmul` —
        this is the data-plane fast path for redundancy bursts and
        repair emission.  It is bit-identical to ``count`` sequential
        :meth:`next_packet` calls: numpy fills bounded-integer batches
        element-by-element from the same bit stream, and when a batch
        contains an all-zero coefficient row (whose inline resample
        would shift the stream) the generator is rewound and the burst
        replayed draw-for-draw.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return []
        k = self.block_count
        state = self._rng.bit_generator.state
        coeffs = self.field.random_elements(self._rng, (count, k))
        if not coeffs.any(axis=1).all():
            # An all-zero row carries no information; the per-packet path
            # resamples its first coefficient *inline*, consuming one
            # extra draw mid-stream.  Rewind and replay sequentially so
            # the burst stays stream-identical even in this rare case.
            self._rng.bit_generator.state = state
            for i in range(count):
                row = self.field.random_elements(self._rng, k)
                if not row.any():
                    row[0] = self.field.random_nonzero(self._rng, 1)[0]
                coeffs[i] = row
        payloads = self.field.matmul(coeffs, self.generation.blocks)
        packets = [
            CodedPacket(
                header=NCHeader(
                    session_id=self.session_id,
                    generation_id=self.generation.generation_id,
                    coefficients=coeffs[i],
                    systematic=False,
                ),
                payload=payloads[i],
            )
            for i in range(count)
        ]
        self._emitted += count
        return packets

    def next_packets(self, count: int) -> list[CodedPacket]:
        """Produce the next ``count`` packets, batching the coded tail.

        Systematic packets (when enabled and not yet exhausted) are
        emitted one by one as before; everything after flows through
        :meth:`coded_packets` in a single burst.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        out: list[CodedPacket] = []
        k = self.block_count
        while count > 0 and self.systematic and self._emitted < k:
            out.append(self.next_packet())
            count -= 1
        if count > 0:
            out.extend(self.coded_packets(count))
        return out

    def packets(self, count: int) -> Iterator[CodedPacket]:
        """Yield ``count`` packets (systematic first, then coded)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        for _ in range(count):
            yield self.next_packet()


def encode_message(
    session_id: int,
    generations: list[Generation],
    packets_per_generation: int,
    field: GaloisField = GF256,
    systematic: bool = True,
    rng: np.random.Generator | None = None,
) -> list[CodedPacket]:
    """Encode a whole segmented message, generation by generation.

    ``packets_per_generation`` is k + redundancy; the paper's NC0/NC1/NC2
    correspond to k, k+1 and k+2.
    """
    rng = rng if rng is not None else derive_rng("rlnc.encode_message", session_id)
    out: list[CodedPacket] = []
    for gen in generations:
        enc = Encoder(session_id, gen, field=field, systematic=systematic, rng=rng)
        out.extend(enc.next_packets(packets_per_generation))
    return out
