"""Source-side RLNC encoder.

For each generation the encoder can emit:

- *systematic* packets — the original blocks verbatim, with unit
  coefficient vectors.  Sending the originals first means a receiver on
  a loss-free path decodes with zero linear-algebra work; only losses
  cost coded repair packets.
- *coded* packets — random linear combinations with coefficients drawn
  uniformly from the field.

The paper's redundancy settings map directly: NC0 emits exactly k
packets per generation (systematic or coded), NC1 emits k+1, NC2 emits
k+2; see :class:`repro.rlnc.redundancy.RedundancyPolicy`.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.gf import GF256, GaloisField
from repro.rlnc.generation import Generation
from repro.rlnc.header import NCHeader
from repro.rlnc.packet import CodedPacket
from repro.util.rng import derive_rng


class Encoder:
    """RLNC encoder for a single generation of one session.

    Parameters
    ----------
    session_id:
        Session the generation belongs to.
    generation:
        The original blocks to code over.
    field:
        Coefficient field; GF(2^8) by default, per the paper.
    systematic:
        Emit the k original blocks (as unit-coefficient packets) before
        any dense coded packet.
    rng:
        Randomness source for coefficients; pass a seeded generator for
        reproducible traces.
    """

    def __init__(
        self,
        session_id: int,
        generation: Generation,
        field: GaloisField = GF256,
        systematic: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        if field.order > 256:
            # Header stores one byte per coefficient; larger fields would
            # need a wider wire format.  GF(2^16) encoders are used only
            # in ablations via coefficient packing at a higher layer.
            raise ValueError("the NC header carries one byte per coefficient; use GF(2^8) or smaller")
        self.session_id = session_id
        self.generation = generation
        self.field = field
        self.systematic = systematic
        self._rng = rng if rng is not None else derive_rng(
            "rlnc.encoder", session_id, generation.generation_id
        )
        self._emitted = 0

    @property
    def block_count(self) -> int:
        return self.generation.block_count

    def next_packet(self) -> CodedPacket:
        """Produce the next packet for this generation.

        The first k packets are systematic when enabled; every packet
        after that is a fresh random combination.
        """
        k = self.block_count
        if self.systematic and self._emitted < k:
            index = self._emitted
            coeffs = np.zeros(k, dtype=self.field.dtype)
            coeffs[index] = 1
            packet = CodedPacket(
                header=NCHeader(
                    session_id=self.session_id,
                    generation_id=self.generation.generation_id,
                    coefficients=coeffs,
                    systematic=True,
                ),
                payload=self.generation.blocks[index].copy(),
            )
        else:
            packet = self._coded_packet()
        self._emitted += 1
        return packet

    def _coded_packet(self) -> CodedPacket:
        k = self.block_count
        coeffs = self.field.random_elements(self._rng, k)
        if not coeffs.any():
            # An all-zero vector carries no information; resample the
            # first coefficient to be nonzero (probability 256^-k event).
            coeffs[0] = self.field.random_nonzero(self._rng, 1)[0]
        payload = self.field.linear_combination(coeffs, self.generation.blocks)
        return CodedPacket(
            header=NCHeader(
                session_id=self.session_id,
                generation_id=self.generation.generation_id,
                coefficients=coeffs,
                systematic=False,
            ),
            payload=payload,
        )

    def packets(self, count: int) -> Iterator[CodedPacket]:
        """Yield ``count`` packets (systematic first, then coded)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        for _ in range(count):
            yield self.next_packet()


def encode_message(
    session_id: int,
    generations: list[Generation],
    packets_per_generation: int,
    field: GaloisField = GF256,
    systematic: bool = True,
    rng: np.random.Generator | None = None,
) -> list[CodedPacket]:
    """Encode a whole segmented message, generation by generation.

    ``packets_per_generation`` is k + redundancy; the paper's NC0/NC1/NC2
    correspond to k, k+1 and k+2.
    """
    rng = rng if rng is not None else derive_rng("rlnc.encode_message", session_id)
    out: list[CodedPacket] = []
    for gen in generations:
        enc = Encoder(session_id, gen, field=field, systematic=systematic, rng=rng)
        out.extend(enc.packets(packets_per_generation))
    return out
