"""Coded packet: NC header + one coded block of payload."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.rlnc.header import (
    ChecksumError,
    FLAG_SYSTEMATIC,
    NCHeader,
    packet_struct,
    verify_wire,
)


@dataclass(eq=False)
class CodedPacket:
    """One RLNC packet as it travels the data plane.

    ``payload`` is the coded block as GF(2^8) symbols (uint8).  The wire
    representation is the fixed header (incl. CRC32), coefficients, and
    ``payload.tobytes()``; for a 1460-byte block and 4 blocks per
    generation it occupies 1476 bytes of UDP payload (DESIGN.md §11 has
    the MTU arithmetic).

    Integrity is two-layered.  On the byte codec, :meth:`encode` embeds
    a CRC32 covering the whole image and :meth:`decode` verifies it,
    raising :class:`~repro.rlnc.header.ChecksumError` on corruption.
    In the object-level simulator — where packets travel as Python
    objects, not bytes — ``checksum`` is a lazy seal: ``None`` means
    "never serialized, trusted" (:meth:`verify` is then trivially true,
    so clean runs pay nothing), while an impairment that mutates a copy
    of the packet carries the *pristine* seal along, which is exactly
    what lets a VNF or receiver detect the tampering.
    """

    header: NCHeader
    payload: npt.NDArray[np.uint8]
    #: CRC32 seal over header prefix + coefficients + payload, or
    #: ``None`` when the packet has never been sealed (trusted).
    checksum: int | None = None

    def __post_init__(self) -> None:
        self.payload = np.asarray(self.payload, dtype=np.uint8)
        if self.payload.ndim != 1:
            raise ValueError("payload must be a 1-D byte array")

    @property
    def session_id(self) -> int:
        return self.header.session_id

    @property
    def generation_id(self) -> int:
        return self.header.generation_id

    @property
    def coefficients(self) -> npt.NDArray[np.uint8]:
        return self.header.coefficients

    @property
    def size_bytes(self) -> int:
        """Total NC-layer size (header + block) in bytes."""
        return self.header.size_bytes + int(self.payload.shape[0])

    # -- integrity ---------------------------------------------------------

    def content_checksum(self) -> int:
        """CRC32 over the packet's content (what the wire image embeds)."""
        return self.header.content_checksum(self.payload.tobytes())

    def seal(self) -> "CodedPacket":
        """Stamp the current content's checksum onto the packet."""
        self.checksum = self.content_checksum()
        return self

    def verify(self) -> bool:
        """True unless a carried seal disagrees with the content.

        Unsealed packets (``checksum is None``) verify trivially — the
        clean-path cost of integrity is zero; only packets that crossed
        an impairing link (or the byte codec) carry a seal to check.
        """
        return self.checksum is None or self.checksum == self.content_checksum()

    # -- wire codec --------------------------------------------------------

    def encode(self) -> bytes:
        """Serialize header and payload to bytes.

        One pack call through a cached :class:`struct.Struct` covering
        the whole wire image — no header-bytes + payload-bytes
        concatenation on the hot path.  The embedded CRC32 covers every
        byte of the image except itself.
        """
        header = self.header
        flags = FLAG_SYSTEMATIC if header.systematic else 0
        coeff_bytes = header.coefficients.tobytes()
        payload_bytes = self.payload.tobytes()
        crc = header.content_checksum(payload_bytes)
        return packet_struct(header.block_count, self.payload.nbytes).pack(
            header.session_id,
            header.generation_id,
            header.block_count,
            flags,
            crc,
            coeff_bytes,
            payload_bytes,
        )

    @classmethod
    def decode(cls, data: bytes, verify: bool = True) -> "CodedPacket":
        """Parse a serialized coded packet (no intermediate payload slice).

        Raises :class:`~repro.rlnc.header.ChecksumError` when the CRC32
        word does not match the image (``verify=False`` skips the check
        for diagnostic tooling that wants the corrupt contents).
        """
        if verify and not verify_wire(data):
            raise ChecksumError("coded packet failed CRC32 verification")
        header, offset = NCHeader.decode_from(data)
        payload = np.frombuffer(data, dtype=np.uint8, offset=offset).copy()
        return cls(header=header, payload=payload)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, CodedPacket)
            and self.header == other.header
            and np.array_equal(self.payload, other.payload)
        )

    def __repr__(self) -> str:
        return (
            f"CodedPacket(session={self.session_id}, gen={self.generation_id}, "
            f"k={self.header.block_count}, systematic={self.header.systematic}, "
            f"block={self.payload.shape[0]}B)"
        )
