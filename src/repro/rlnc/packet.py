"""Coded packet: NC header + one coded block of payload."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.rlnc.header import FLAG_SYSTEMATIC, NCHeader, packet_struct


@dataclass(eq=False)
class CodedPacket:
    """One RLNC packet as it travels the data plane.

    ``payload`` is the coded block as GF(2^8) symbols (uint8).  The wire
    representation is ``header.encode() + payload.tobytes()``; for a
    1460-byte block and 4 blocks per generation it occupies exactly
    1472 bytes of UDP payload, filling a 1500-byte Ethernet MTU once UDP
    and IP headers are added (the paper's fragmentation-free sizing).
    """

    header: NCHeader
    payload: npt.NDArray[np.uint8]

    def __post_init__(self) -> None:
        self.payload = np.asarray(self.payload, dtype=np.uint8)
        if self.payload.ndim != 1:
            raise ValueError("payload must be a 1-D byte array")

    @property
    def session_id(self) -> int:
        return self.header.session_id

    @property
    def generation_id(self) -> int:
        return self.header.generation_id

    @property
    def coefficients(self) -> npt.NDArray[np.uint8]:
        return self.header.coefficients

    @property
    def size_bytes(self) -> int:
        """Total NC-layer size (header + block) in bytes."""
        return self.header.size_bytes + int(self.payload.shape[0])

    def encode(self) -> bytes:
        """Serialize header and payload to bytes.

        One pack call through a cached :class:`struct.Struct` covering
        the whole wire image — no header-bytes + payload-bytes
        concatenation on the hot path.
        """
        header = self.header
        flags = FLAG_SYSTEMATIC if header.systematic else 0
        return packet_struct(header.block_count, self.payload.nbytes).pack(
            header.session_id,
            header.generation_id,
            header.block_count,
            flags,
            header.coefficients.tobytes(),
            self.payload.tobytes(),
        )

    @classmethod
    def decode(cls, data: bytes) -> "CodedPacket":
        """Parse a serialized coded packet (no intermediate payload slice)."""
        header, offset = NCHeader.decode_from(data)
        payload = np.frombuffer(data, dtype=np.uint8, offset=offset).copy()
        return cls(header=header, payload=payload)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, CodedPacket)
            and self.header == other.header
            and np.array_equal(self.payload, other.payload)
        )

    def __repr__(self) -> str:
        return (
            f"CodedPacket(session={self.session_id}, gen={self.generation_id}, "
            f"k={self.header.block_count}, systematic={self.header.systematic}, "
            f"block={self.payload.shape[0]}B)"
        )
