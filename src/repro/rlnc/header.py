"""NC wire header.

The paper inserts a network-coding layer between UDP and the application
layer.  Its header carries everything a relay or receiver needs to place
a coded block: the multicast session id, the generation number, and the
encoding coefficient vector.  The fixed part is 12 bytes — the paper's
8 bytes plus a CRC32 integrity word (DESIGN.md §11) — and the
coefficient vector adds one byte per block for GF(2^8) (so 16 bytes
total at the default 4 blocks per generation; with a 1460-byte block,
the 8-byte UDP header and the 20-byte IP header the packet occupies
1504 bytes, four over the classic 1500-byte MTU — exact MTU fill needs
1456-byte blocks, see DESIGN.md §11).

Layout (big-endian):

====== ======= ================================================
offset size    field
====== ======= ================================================
0      2       session id
2      4       generation id
6      1       block count k (coefficient vector length)
7      1       flags (bit 0: systematic; bits 1-7 reserved)
8      4       CRC32 over bytes 0..8 and every byte after 12
               (coefficients, and the payload when one follows)
12     k       coefficients, one GF(2^8) element per block
====== ======= ================================================

The checksum covers everything in the wire image *except itself*: the
8-byte fixed prefix, the coefficient vector, and — when the header
fronts a coded packet — the payload block.  A header serialized on its
own (:meth:`NCHeader.encode`) covers prefix + coefficients only;
:meth:`repro.rlnc.packet.CodedPacket.encode` covers the full packet.
Verification therefore lives where the covered extent is known:
:meth:`CodedPacket.decode <repro.rlnc.packet.CodedPacket.decode>`
raises :class:`ChecksumError` on a mismatch.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

#: Checksum-covered fixed prefix (everything before the CRC word).
_HEAD = struct.Struct("!HIBB")
#: Full fixed header including the CRC32 word.
_FIXED = struct.Struct("!HIBBI")
_CRC = struct.Struct("!I")

FLAG_SYSTEMATIC = 0x01

FIXED_HEADER_BYTES = _FIXED.size  # 12: the paper's 8 + the CRC32 word
CHECKSUM_OFFSET = _HEAD.size      # the CRC32 word sits at bytes 8..12


class ChecksumError(ValueError):
    """A wire image failed CRC32 verification (corrupt on the wire)."""


def wire_checksum(*parts: bytes) -> int:
    """CRC32 over the concatenation of ``parts``, computed incrementally."""
    crc = 0
    for part in parts:
        crc = zlib.crc32(part, crc)
    return crc


def verify_wire(data: bytes, end: int | None = None) -> bool:
    """Check the CRC word at bytes 8..12 against the rest of ``data[:end]``.

    The covered extent is bytes ``0..8`` plus ``12..end`` — i.e. the
    whole image except the checksum itself.  Callers pass ``end`` when
    the buffer extends past the packet.
    """
    if len(data) < FIXED_HEADER_BYTES:
        return False
    stored = _CRC.unpack_from(data, CHECKSUM_OFFSET)[0]
    limit = len(data) if end is None else end
    return stored == wire_checksum(data[:CHECKSUM_OFFSET], data[FIXED_HEADER_BYTES:limit])


# Cached per-block-count wire structs: one pack call serializes the
# fixed fields *and* the coefficient vector (k is tiny and stable per
# session, so the cache stays a handful of entries).
_WIRE_STRUCTS: dict[int, struct.Struct] = {}


def _wire_struct(block_count: int) -> struct.Struct:
    cached = _WIRE_STRUCTS.get(block_count)
    if cached is None:
        cached = struct.Struct(f"!HIBBI{block_count}s")
        _WIRE_STRUCTS[block_count] = cached
    return cached


# Whole-packet structs (header + payload), keyed by (k, payload bytes);
# both are per-session constants, so the cache stays small.
_PACKET_STRUCTS: dict[tuple[int, int], struct.Struct] = {}


def packet_struct(block_count: int, payload_bytes: int) -> struct.Struct:
    """Cached struct covering a full coded packet's wire image."""
    key = (block_count, payload_bytes)
    cached = _PACKET_STRUCTS.get(key)
    if cached is None:
        cached = struct.Struct(f"!HIBBI{block_count}s{payload_bytes}s")
        _PACKET_STRUCTS[key] = cached
    return cached


@dataclass(frozen=True, eq=False)
class NCHeader:
    """Parsed NC header.

    Attributes
    ----------
    session_id:
        Controller-assigned unique id of the multicast session.
    generation_id:
        Sequence number of the generation this block codes over.
    coefficients:
        GF(2^8) coefficient vector, length = blocks per generation.
    systematic:
        True when the packet carries an original (uncoded) block; the
        coefficient vector is then a unit vector.
    """

    session_id: int
    generation_id: int
    coefficients: npt.NDArray[np.uint8]
    systematic: bool = False

    def __post_init__(self) -> None:
        coeffs = np.asarray(self.coefficients, dtype=np.uint8)
        object.__setattr__(self, "coefficients", coeffs)
        if not 0 <= self.session_id < 1 << 16:
            raise ValueError(f"session_id {self.session_id} out of range for 16 bits")
        if not 0 <= self.generation_id < 1 << 32:
            raise ValueError(f"generation_id {self.generation_id} out of range for 32 bits")
        if coeffs.ndim != 1 or not 1 <= coeffs.shape[0] <= 255:
            raise ValueError("coefficient vector must be 1-D with 1..255 entries")

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, NCHeader)
            and self.session_id == other.session_id
            and self.generation_id == other.generation_id
            and self.systematic == other.systematic
            and np.array_equal(self.coefficients, other.coefficients)
        )

    @property
    def block_count(self) -> int:
        return int(self.coefficients.shape[0])

    @property
    def size_bytes(self) -> int:
        """Serialized header length: 12 fixed bytes + one per coefficient."""
        return FIXED_HEADER_BYTES + self.block_count

    def _head_bytes(self) -> bytes:
        """The checksum-covered fixed prefix (bytes 0..8 of the wire image)."""
        flags = FLAG_SYSTEMATIC if self.systematic else 0
        return _HEAD.pack(self.session_id, self.generation_id, self.block_count, flags)

    def content_checksum(self, payload: bytes = b"") -> int:
        """CRC32 over prefix + coefficients (+ ``payload`` when given)."""
        return wire_checksum(self._head_bytes(), self.coefficients.tobytes(), payload)

    def encode(self) -> bytes:
        """Serialize to the wire format — one cached-struct pack call.

        The embedded checksum covers prefix + coefficients (no payload
        follows in a header-only image).
        """
        k = self.block_count
        flags = FLAG_SYSTEMATIC if self.systematic else 0
        coeff_bytes = self.coefficients.tobytes()
        crc = wire_checksum(_HEAD.pack(self.session_id, self.generation_id, k, flags), coeff_bytes)
        return _wire_struct(k).pack(self.session_id, self.generation_id, k, flags, crc, coeff_bytes)

    @classmethod
    def decode_from(cls, data: bytes) -> tuple["NCHeader", int]:
        """Parse a header at the front of ``data``; returns (header, payload offset).

        The fast-path variant of :meth:`decode`: no payload slice is
        materialized, so callers that hand the payload bytes straight to
        numpy (``CodedPacket.decode``) skip one full-payload copy.  The
        CRC word is *not* checked here — its covered extent depends on
        whether a payload follows, which only the caller knows; use
        :func:`verify_wire` (or ``CodedPacket.decode``) to verify.
        """
        if len(data) < FIXED_HEADER_BYTES:
            raise ValueError(f"short NC header: {len(data)} bytes")
        session_id, generation_id, k, flags, _crc = _FIXED.unpack_from(data)
        end = FIXED_HEADER_BYTES + k
        if len(data) < end:
            raise ValueError(f"truncated coefficient vector: want {k}, have {len(data) - FIXED_HEADER_BYTES}")
        coeffs = np.frombuffer(data, dtype=np.uint8, count=k, offset=FIXED_HEADER_BYTES).copy()
        header = cls(
            session_id=session_id,
            generation_id=generation_id,
            coefficients=coeffs,
            systematic=bool(flags & FLAG_SYSTEMATIC),
        )
        return header, end

    @classmethod
    def decode(cls, data: bytes) -> tuple["NCHeader", bytes]:
        """Parse a header off the front of ``data``; returns (header, payload)."""
        header, end = cls.decode_from(data)
        return header, data[end:]
