"""NC wire header.

The paper inserts a network-coding layer between UDP and the application
layer.  Its header carries everything a relay or receiver needs to place
a coded block: the multicast session id, the generation number, and the
encoding coefficient vector.  The fixed part is 8 bytes; the coefficient
vector adds one byte per block for GF(2^8) (so 12 bytes total at the
default 4 blocks per generation, which together with a 1460-byte block,
the 8-byte UDP header and the 20-byte IP header exactly fills a 1500-byte
MTU).

Layout (big-endian):

====== ======= ================================================
offset size    field
====== ======= ================================================
0      2       session id
2      4       generation id
6      1       block count k (coefficient vector length)
7      1       flags (bit 0: systematic; bits 1-7 reserved)
8      k       coefficients, one GF(2^8) element per block
====== ======= ================================================
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

_FIXED = struct.Struct("!HIBB")

FLAG_SYSTEMATIC = 0x01

FIXED_HEADER_BYTES = _FIXED.size  # 8, as stated in the paper

# Cached per-block-count wire structs: one pack call serializes the
# fixed fields *and* the coefficient vector (k is tiny and stable per
# session, so the cache stays a handful of entries).
_WIRE_STRUCTS: dict[int, struct.Struct] = {}


def _wire_struct(block_count: int) -> struct.Struct:
    cached = _WIRE_STRUCTS.get(block_count)
    if cached is None:
        cached = struct.Struct(f"!HIBB{block_count}s")
        _WIRE_STRUCTS[block_count] = cached
    return cached


# Whole-packet structs (header + payload), keyed by (k, payload bytes);
# both are per-session constants, so the cache stays small.
_PACKET_STRUCTS: dict[tuple[int, int], struct.Struct] = {}


def packet_struct(block_count: int, payload_bytes: int) -> struct.Struct:
    """Cached struct covering a full coded packet's wire image."""
    key = (block_count, payload_bytes)
    cached = _PACKET_STRUCTS.get(key)
    if cached is None:
        cached = struct.Struct(f"!HIBB{block_count}s{payload_bytes}s")
        _PACKET_STRUCTS[key] = cached
    return cached


@dataclass(frozen=True, eq=False)
class NCHeader:
    """Parsed NC header.

    Attributes
    ----------
    session_id:
        Controller-assigned unique id of the multicast session.
    generation_id:
        Sequence number of the generation this block codes over.
    coefficients:
        GF(2^8) coefficient vector, length = blocks per generation.
    systematic:
        True when the packet carries an original (uncoded) block; the
        coefficient vector is then a unit vector.
    """

    session_id: int
    generation_id: int
    coefficients: npt.NDArray[np.uint8]
    systematic: bool = False

    def __post_init__(self) -> None:
        coeffs = np.asarray(self.coefficients, dtype=np.uint8)
        object.__setattr__(self, "coefficients", coeffs)
        if not 0 <= self.session_id < 1 << 16:
            raise ValueError(f"session_id {self.session_id} out of range for 16 bits")
        if not 0 <= self.generation_id < 1 << 32:
            raise ValueError(f"generation_id {self.generation_id} out of range for 32 bits")
        if coeffs.ndim != 1 or not 1 <= coeffs.shape[0] <= 255:
            raise ValueError("coefficient vector must be 1-D with 1..255 entries")

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, NCHeader)
            and self.session_id == other.session_id
            and self.generation_id == other.generation_id
            and self.systematic == other.systematic
            and np.array_equal(self.coefficients, other.coefficients)
        )

    @property
    def block_count(self) -> int:
        return int(self.coefficients.shape[0])

    @property
    def size_bytes(self) -> int:
        """Serialized header length: 8 fixed bytes + one per coefficient."""
        return FIXED_HEADER_BYTES + self.block_count

    def encode(self) -> bytes:
        """Serialize to the wire format — one cached-struct pack call."""
        k = self.block_count
        flags = FLAG_SYSTEMATIC if self.systematic else 0
        return _wire_struct(k).pack(self.session_id, self.generation_id, k, flags, self.coefficients.tobytes())

    @classmethod
    def decode_from(cls, data: bytes) -> tuple["NCHeader", int]:
        """Parse a header at the front of ``data``; returns (header, payload offset).

        The fast-path variant of :meth:`decode`: no payload slice is
        materialized, so callers that hand the payload bytes straight to
        numpy (``CodedPacket.decode``) skip one full-payload copy.
        """
        if len(data) < FIXED_HEADER_BYTES:
            raise ValueError(f"short NC header: {len(data)} bytes")
        session_id, generation_id, k, flags = _FIXED.unpack_from(data)
        end = FIXED_HEADER_BYTES + k
        if len(data) < end:
            raise ValueError(f"truncated coefficient vector: want {k}, have {len(data) - FIXED_HEADER_BYTES}")
        coeffs = np.frombuffer(data, dtype=np.uint8, count=k, offset=FIXED_HEADER_BYTES).copy()
        header = cls(
            session_id=session_id,
            generation_id=generation_id,
            coefficients=coeffs,
            systematic=bool(flags & FLAG_SYSTEMATIC),
        )
        return header, end

    @classmethod
    def decode(cls, data: bytes) -> tuple["NCHeader", bytes]:
        """Parse a header off the front of ``data``; returns (header, payload)."""
        header, end = cls.decode_from(data)
        return header, data[end:]
