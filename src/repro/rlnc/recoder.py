"""In-network recoder: the data plane of a relay coding VNF.

A relay never needs to decode.  It buffers the coded packets it has
heard for a generation and emits *re-coded* packets: random linear
combinations of the buffered combinations, whose effective coefficient
vectors (w.r.t. the original blocks) it can compute by combining the
buffered headers with the same random weights.

The paper's VNF is *pipelined*: an intermediate node produces and
forwards a fresh coded packet immediately after each arrival from the
same (session, generation), and simply forwards the very first packet of
a generation verbatim (there is nothing yet to mix it with).
:meth:`Recoder.on_packet` implements exactly that policy.
"""

from __future__ import annotations

import numpy as np

from repro.gf import GF256, FieldArray, GaloisField
from repro.rlnc.header import NCHeader
from repro.rlnc.packet import CodedPacket
from repro.util.rng import derive_rng


class Recoder:
    """Recoding state for one (session, generation) at a relay VNF."""

    def __init__(
        self,
        session_id: int,
        generation_id: int,
        block_count: int,
        field: GaloisField = GF256,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.session_id = session_id
        self.generation_id = generation_id
        self.block_count = block_count
        self.field = field
        self._rng = rng if rng is not None else derive_rng(
            "rlnc.recoder", session_id, generation_id
        )
        # Buffered state lives in one pre-grown matrix whose rows are
        # [coefficients | payload], so a recode is a single batch matmul
        # over a contiguous slab — no per-emit stacking of Python lists.
        self._rows: FieldArray | None = None
        self._payload_len = 0
        self._count = 0

    @property
    def buffered(self) -> int:
        """Number of packets buffered for this generation."""
        return self._count

    def add(self, packet: CodedPacket) -> None:
        """Buffer a received coded packet."""
        if packet.session_id != self.session_id or packet.generation_id != self.generation_id:
            raise ValueError(
                f"packet for ({packet.session_id}, {packet.generation_id}) fed to recoder "
                f"for ({self.session_id}, {self.generation_id})"
            )
        if packet.header.block_count != self.block_count:
            raise ValueError(
                f"block count mismatch: packet has {packet.header.block_count}, recoder expects {self.block_count}"
            )
        k = self.block_count
        if self._rows is None:
            self._payload_len = int(packet.payload.shape[0])
            self._rows = np.empty((8, k + self._payload_len), dtype=self.field.dtype)
        if packet.payload.shape[0] != self._payload_len:
            raise ValueError(
                f"payload is {packet.payload.shape[0]} bytes, earlier packets had {self._payload_len}"
            )
        if self._count == self._rows.shape[0]:
            grown = np.empty((2 * self._rows.shape[0], self._rows.shape[1]), dtype=self.field.dtype)
            grown[: self._count] = self._rows[: self._count]
            self._rows = grown
        row = self._rows[self._count]
        row[:k] = packet.coefficients
        row[k:] = packet.payload
        self._count += 1

    def _combine(self, weights: FieldArray) -> list[CodedPacket]:
        """Turn weight rows into packets via one batch matmul."""
        assert self._rows is not None
        k = self.block_count
        mixed = self.field.matmul(weights, self._rows[: self._count])
        return [
            CodedPacket(
                header=NCHeader(
                    session_id=self.session_id,
                    generation_id=self.generation_id,
                    coefficients=mixed[i, :k],
                    systematic=False,
                ),
                payload=mixed[i, k:],
            )
            for i in range(weights.shape[0])
        ]

    def recode(self) -> CodedPacket:
        """Emit one fresh combination of everything buffered so far."""
        if not self._count:
            raise RuntimeError("cannot recode before any packet has been buffered")
        weights = self.field.random_elements(self._rng, self._count)
        if not weights.any():
            weights[-1] = self.field.random_nonzero(self._rng, 1)[0]
        return self._combine(weights[None, :])[0]

    def recode_batch(self, count: int) -> list[CodedPacket]:
        """Emit ``count`` fresh combinations through one batch matmul.

        Draws every weight vector in a single RNG call; bit-identical to
        ``count`` sequential :meth:`recode` calls.  When the batch holds
        an all-zero weight row (whose inline resample would shift the
        stream) the generator is rewound and the draws replayed
        sequentially, so even that rare case matches draw-for-draw.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if not self._count:
            raise RuntimeError("cannot recode before any packet has been buffered")
        if count == 0:
            return []
        state = self._rng.bit_generator.state
        weights = self.field.random_elements(self._rng, (count, self._count))
        if not weights.any(axis=1).all():
            self._rng.bit_generator.state = state
            for i in range(count):
                row = self.field.random_elements(self._rng, self._count)
                if not row.any():
                    row[-1] = self.field.random_nonzero(self._rng, 1)[0]
                weights[i] = row
        return self._combine(weights)

    def on_packet(self, packet: CodedPacket) -> CodedPacket:
        """Pipelined relay policy: buffer, then emit.

        The first packet of a generation is forwarded verbatim (the paper:
        "in case the packet is the first one in its generation received by
        the VNF, the VNF simply forwards it"); every later arrival triggers
        a fresh recoded combination over the whole buffer.
        """
        first = self.buffered == 0
        self.add(packet)
        if first:
            return packet
        return self.recode()
