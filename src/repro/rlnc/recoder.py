"""In-network recoder: the data plane of a relay coding VNF.

A relay never needs to decode.  It buffers the coded packets it has
heard for a generation and emits *re-coded* packets: random linear
combinations of the buffered combinations, whose effective coefficient
vectors (w.r.t. the original blocks) it can compute by combining the
buffered headers with the same random weights.

The paper's VNF is *pipelined*: an intermediate node produces and
forwards a fresh coded packet immediately after each arrival from the
same (session, generation), and simply forwards the very first packet of
a generation verbatim (there is nothing yet to mix it with).
:meth:`Recoder.on_packet` implements exactly that policy.
"""

from __future__ import annotations

import numpy as np

from repro.gf import GF256, FieldArray, GaloisField
from repro.rlnc.header import NCHeader
from repro.rlnc.packet import CodedPacket
from repro.util.rng import derive_rng


class Recoder:
    """Recoding state for one (session, generation) at a relay VNF."""

    def __init__(
        self,
        session_id: int,
        generation_id: int,
        block_count: int,
        field: GaloisField = GF256,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.session_id = session_id
        self.generation_id = generation_id
        self.block_count = block_count
        self.field = field
        self._rng = rng if rng is not None else derive_rng(
            "rlnc.recoder", session_id, generation_id
        )
        self._coeffs: list[FieldArray] = []
        self._payloads: list[FieldArray] = []

    @property
    def buffered(self) -> int:
        """Number of packets buffered for this generation."""
        return len(self._coeffs)

    def add(self, packet: CodedPacket) -> None:
        """Buffer a received coded packet."""
        if packet.session_id != self.session_id or packet.generation_id != self.generation_id:
            raise ValueError(
                f"packet for ({packet.session_id}, {packet.generation_id}) fed to recoder "
                f"for ({self.session_id}, {self.generation_id})"
            )
        if packet.header.block_count != self.block_count:
            raise ValueError(
                f"block count mismatch: packet has {packet.header.block_count}, recoder expects {self.block_count}"
            )
        self._coeffs.append(packet.coefficients.astype(self.field.dtype))
        self._payloads.append(packet.payload)

    def recode(self) -> CodedPacket:
        """Emit one fresh combination of everything buffered so far."""
        if not self._coeffs:
            raise RuntimeError("cannot recode before any packet has been buffered")
        weights = self.field.random_elements(self._rng, len(self._coeffs))
        if not weights.any():
            weights[-1] = self.field.random_nonzero(self._rng, 1)[0]
        coeff_matrix = np.stack(self._coeffs)
        payload_matrix = np.stack(self._payloads)
        effective = self.field.linear_combination(weights, coeff_matrix)
        payload = self.field.linear_combination(weights, payload_matrix)
        return CodedPacket(
            header=NCHeader(
                session_id=self.session_id,
                generation_id=self.generation_id,
                coefficients=effective,
                systematic=False,
            ),
            payload=payload,
        )

    def on_packet(self, packet: CodedPacket) -> CodedPacket:
        """Pipelined relay policy: buffer, then emit.

        The first packet of a generation is forwarded verbatim (the paper:
        "in case the packet is the first one in its generation received by
        the VNF, the VNF simply forwards it"); every later arrival triggers
        a fresh recoded combination over the whole buffer.
        """
        first = self.buffered == 0
        self.add(packet)
        if first:
            return packet
        return self.recode()
