"""Generation/block segmentation of application data.

Source data is divided into *generations*, each carrying a session-wide
unique generation number; within a generation the data is further split
into fixed-size *blocks* (the paper's Fig. 3).  Coding only ever mixes
blocks of the same generation, which bounds decoding complexity and the
buffering a receiver needs.

The paper's defaults, exposed here as module constants:

- ``DEFAULT_BLOCK_BYTES = 1460`` so an NC packet exactly fills the MTU,
- ``DEFAULT_BLOCKS_PER_GENERATION = 4`` — the sweet spot of Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

DEFAULT_BLOCK_BYTES = 1460
DEFAULT_BLOCKS_PER_GENERATION = 4


@dataclass(eq=False)
class Generation:
    """One generation: a (k, block_bytes) matrix of original blocks.

    The final generation of a message may logically be shorter than
    ``k * block_bytes``; it is zero-padded to full size and the true
    length is restored by :func:`reassemble` from the recorded total.
    """

    generation_id: int
    blocks: npt.NDArray[np.uint8]

    def __post_init__(self) -> None:
        self.blocks = np.asarray(self.blocks, dtype=np.uint8)
        if self.blocks.ndim != 2:
            raise ValueError("blocks must be a (k, block_bytes) matrix")

    @property
    def block_count(self) -> int:
        return int(self.blocks.shape[0])

    @property
    def block_bytes(self) -> int:
        return int(self.blocks.shape[1])

    @property
    def size_bytes(self) -> int:
        """Generation size in the paper's sense: bytes per generation."""
        return self.block_count * self.block_bytes

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Generation)
            and self.generation_id == other.generation_id
            and np.array_equal(self.blocks, other.blocks)
        )

    def __repr__(self) -> str:
        return f"Generation(id={self.generation_id}, k={self.block_count}, block={self.block_bytes}B)"


def segment(
    data: bytes,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
    blocks_per_generation: int = DEFAULT_BLOCKS_PER_GENERATION,
    first_generation_id: int = 0,
) -> list[Generation]:
    """Split ``data`` into generations of ``blocks_per_generation`` blocks.

    The last generation is zero-padded to full size.  Returns at least
    one generation even for empty input (an all-zero generation), so a
    zero-length transfer still has a well-defined wire representation.
    """
    if block_bytes <= 0 or blocks_per_generation <= 0:
        raise ValueError("block_bytes and blocks_per_generation must be positive")
    gen_bytes = block_bytes * blocks_per_generation
    raw = np.frombuffer(data, dtype=np.uint8)
    n_generations = max(1, -(-raw.shape[0] // gen_bytes))
    padded = np.zeros(n_generations * gen_bytes, dtype=np.uint8)
    padded[: raw.shape[0]] = raw
    matrix = padded.reshape(n_generations, blocks_per_generation, block_bytes)
    return [
        Generation(generation_id=first_generation_id + i, blocks=matrix[i])
        for i in range(n_generations)
    ]


def reassemble(generations: list[Generation], total_bytes: int) -> bytes:
    """Concatenate decoded generations and strip padding to ``total_bytes``.

    Generations are sorted by id first, so out-of-order decode completion
    (common with per-generation pipelining) is handled.
    """
    if total_bytes < 0:
        raise ValueError("total_bytes must be non-negative")
    ordered = sorted(generations, key=lambda g: g.generation_id)
    ids = [g.generation_id for g in ordered]
    if ids and ids != list(range(ids[0], ids[0] + len(ids))):
        raise ValueError(f"generation ids are not contiguous: {ids}")
    payload = b"".join(g.blocks.tobytes() for g in ordered)
    if len(payload) < total_bytes:
        raise ValueError(f"decoded {len(payload)} bytes, but message claims {total_bytes}")
    return payload[:total_bytes]
