"""Discrete-event scheduler: the simulated clock everything runs on.

A single :class:`EventScheduler` instance is shared by links, nodes,
VNFs and the controller.  Time is a float in seconds.  Events fire in
timestamp order; ties break in scheduling order (a monotone sequence
number), which keeps runs deterministic for a fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable


class Event:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple[Any, ...]) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, fn={getattr(self.fn, '__name__', self.fn)!r}, {state})"


class EventScheduler:
    """Priority-queue event loop with a simulated clock."""

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self.now = 0.0
        self.processed = 0

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        event = Event(self.now + delay, next(self._seq), fn, args)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Run ``fn(*args)`` at absolute simulated time ``time``."""
        return self.schedule(time - self.now, fn, *args)

    @property
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events."""
        return sum(1 for e in self._queue if not e.cancelled)

    def step(self) -> bool:
        """Fire the next event; returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = event.time
            self.processed += 1
            event.fn(*event.args)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Drain the queue, optionally stopping at time ``until``.

        When ``until`` is given, the clock is advanced exactly to it even
        if the last event fired earlier, so periodic samplers see a full
        final interval.
        """
        fired = 0
        while self._queue:
            nxt = self._queue[0]
            if nxt.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and nxt.time > until:
                break
            if max_events is not None and fired >= max_events:
                return
            self.step()
            fired += 1
        if until is not None and self.now < until:
            self.now = until
