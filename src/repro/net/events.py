"""Discrete-event scheduler: the simulated clock everything runs on.

A single :class:`EventScheduler` instance is shared by links, nodes,
VNFs and the controller.  Time is a float in seconds.  Events fire in
timestamp order; ties break in scheduling order (a monotone sequence
number), which keeps runs deterministic for a fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable


class Event:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_scheduler")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple[Any, ...]) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        # Back-reference while the event sits in the queue, so cancel()
        # can keep the scheduler's live/cancelled counters exact.  The
        # scheduler nulls it when the event leaves the heap; a cancel()
        # after firing is then a pure flag set.
        self._scheduler: "EventScheduler | None" = None

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        if self.cancelled:
            return
        self.cancelled = True
        scheduler = self._scheduler
        if scheduler is not None:
            scheduler._on_cancel()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, fn={getattr(self.fn, '__name__', self.fn)!r}, {state})"


class PeriodicEvent:
    """Handle for a repeating callback; ``cancel()`` stops the cycle.

    The callback may call ``cancel()`` on its own handle (a heartbeat
    loop stopping itself when its daemon dies); the next tick is only
    scheduled after the callback returns un-cancelled.
    """

    __slots__ = ("scheduler", "interval", "fn", "args", "cancelled", "_event", "fired")

    def __init__(
        self, scheduler: "EventScheduler", interval: float, fn: Callable[..., Any], args: tuple[Any, ...]
    ) -> None:
        self.scheduler = scheduler
        self.interval = interval
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.fired = 0
        self._event: Event | None = None

    def cancel(self) -> None:
        self.cancelled = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _tick(self) -> None:
        if self.cancelled:
            return
        self.fired += 1
        self.fn(*self.args)
        if not self.cancelled:
            self._event = self.scheduler.schedule(self.interval, self._tick)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "running"
        return f"PeriodicEvent(every={self.interval:.6f}, fn={getattr(self.fn, '__name__', self.fn)!r}, {state})"


class EventScheduler:
    """Priority-queue event loop with a simulated clock."""

    # Compaction threshold: rebuild the heap when cancelled entries both
    # exceed this floor and outnumber the live ones, so a long-running
    # simulation that cancels heavily (retry timers, heartbeat guards)
    # keeps its heap proportional to the *live* event count.
    _COMPACT_MIN_CANCELLED = 64

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._live = 0
        self._cancelled = 0
        self.now = 0.0
        self.processed = 0

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        event = Event(self.now + delay, next(self._seq), fn, args)
        event._scheduler = self
        heapq.heappush(self._queue, event)
        self._live += 1
        return event

    def _on_cancel(self) -> None:
        """Counter upkeep for an in-queue cancellation (called by Event)."""
        self._live -= 1
        self._cancelled += 1
        if self._cancelled > self._COMPACT_MIN_CANCELLED and self._cancelled > self._live:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify the queue."""
        queue = [e for e in self._queue if not e.cancelled]
        heapq.heapify(queue)
        self._queue = queue
        self._cancelled = 0

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Run ``fn(*args)`` at absolute simulated time ``time``."""
        return self.schedule(time - self.now, fn, *args)

    def schedule_every(
        self, interval: float, fn: Callable[..., Any], *args: Any, first_delay: float | None = None
    ) -> PeriodicEvent:
        """Run ``fn(*args)`` every ``interval`` seconds until cancelled.

        The first firing happens after ``first_delay`` (default: one full
        interval).  Used by heartbeat emitters and liveness monitors.
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        periodic = PeriodicEvent(self, interval, fn, args)
        delay = interval if first_delay is None else first_delay
        periodic._event = self.schedule(delay, periodic._tick)
        return periodic

    @property
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events (O(1))."""
        return self._live

    def step(self) -> bool:
        """Fire the next event; returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                self._cancelled -= 1
                event._scheduler = None
                continue
            self._live -= 1
            event._scheduler = None
            self.now = event.time
            self.processed += 1
            event.fn(*event.args)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Drain the queue, optionally stopping at time ``until``.

        When ``until`` is given, the clock is advanced exactly to it even
        if the last event fired earlier, so periodic samplers see a full
        final interval.
        """
        fired = 0
        while self._queue:
            nxt = self._queue[0]
            if nxt.cancelled:
                heapq.heappop(self._queue)
                self._cancelled -= 1
                nxt._scheduler = None
                continue
            if until is not None and nxt.time > until:
                break
            if max_events is not None and fired >= max_events:
                return
            self.step()
            fired += 1
        if until is not None and self.now < until:
            self.now = until
