"""Simulated hosts and the node interface.

A :class:`Node` owns its outgoing links and receives datagrams from its
incoming ones.  Delivery is port-based: handlers register for a UDP
port, mirroring the paper's VNFs that "create a UDP socket listening at
a designated port".  Subclasses (coding VNF, source app, receiver app)
override or register handlers; :class:`Host` is the plain concrete node.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.net.events import EventScheduler
from repro.net.link import Link
from repro.net.packet import Datagram

Handler = Callable[[Datagram], None]


class Node:
    """A named network endpoint with port-demultiplexed delivery."""

    def __init__(self, name: str, scheduler: EventScheduler) -> None:
        self.name = name
        self.scheduler = scheduler
        self._out: dict[str, Link] = {}
        self._handlers: dict[int, Handler] = {}
        self._default_handler: Handler | None = None
        self.received_packets = 0
        self.received_bytes = 0

    # -- wiring --------------------------------------------------------

    def attach_out(self, link: Link) -> None:
        """Register an outgoing link (one per destination node)."""
        if link.src != self.name:
            raise ValueError(f"link source {link.src} is not {self.name}")
        if link.dst in self._out:
            raise ValueError(f"{self.name} already has a link to {link.dst}")
        self._out[link.dst] = link

    def attach_in(self, link: Link) -> None:
        """Register as the receiver of an incoming link."""
        if link.dst != self.name:
            raise ValueError(f"link destination {link.dst} is not {self.name}")
        link.connect(self._on_receive)

    def neighbors(self) -> list[str]:
        """Destinations reachable over a direct outgoing link."""
        return list(self._out)

    def link_to(self, dst: str) -> Link:
        try:
            return self._out[dst]
        except KeyError:
            raise KeyError(f"{self.name} has no link to {dst}") from None

    # -- sockets ---------------------------------------------------------

    def listen(self, port: int, handler: Handler) -> None:
        """Register ``handler`` for datagrams addressed to ``port``."""
        if port in self._handlers:
            raise ValueError(f"{self.name} port {port} already bound")
        self._handlers[port] = handler

    def unlisten(self, port: int) -> None:
        self._handlers.pop(port, None)

    def listen_default(self, handler: Handler) -> None:
        """Catch-all handler for ports with no specific binding."""
        self._default_handler = handler

    # -- data path ---------------------------------------------------------

    def send(self, dst: str, payload: Any, payload_bytes: int, dst_port: int = 0) -> bool:
        """Send one datagram to a directly connected neighbour."""
        dgram = Datagram(
            src=self.name,
            dst=dst,
            payload=payload,
            payload_bytes=payload_bytes,
            dst_port=dst_port,
            created_at=self.scheduler.now,
        )
        return self.link_to(dst).send(dgram)

    def _on_receive(self, dgram: Datagram) -> None:
        self.received_packets += 1
        self.received_bytes += dgram.wire_bytes
        handler = self._handlers.get(dgram.dst_port, self._default_handler)
        if handler is not None:
            handler(dgram)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, out={sorted(self._out)})"


class Host(Node):
    """A plain endpoint (source or destination machine)."""
