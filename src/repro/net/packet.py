"""Datagrams: what actually occupies link capacity in the simulator.

A :class:`Datagram` models a UDP/IP packet.  ``payload`` is any Python
object (usually a :class:`repro.rlnc.packet.CodedPacket` or a probe
marker); ``payload_bytes`` is its *logical* wire size, which is what
capacity and queue accounting use.  Keeping logical size separate from
the in-memory representation lets experiments run in coefficients-only
mode (tiny arrays, real linear algebra) while still charging full
1472-byte packets against link bandwidth — see DESIGN.md §2.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

IP_HEADER_BYTES = 20
UDP_HEADER_BYTES = 8

_dgram_ids = itertools.count()


@dataclass
class Datagram:
    """One UDP/IP packet in flight.

    Attributes
    ----------
    src, dst:
        Node names (the simulator's analogue of IP addresses).
    payload:
        Application object carried by the packet.
    payload_bytes:
        Logical UDP payload size in bytes (NC header + coded block for
        data packets).
    dst_port:
        UDP destination port; coding VNFs listen on a designated port
        (paper §III-A).
    """

    src: str
    dst: str
    payload: Any
    payload_bytes: int
    dst_port: int = 0
    src_port: int = 0
    dgram_id: int = field(default_factory=lambda: next(_dgram_ids))
    created_at: float = 0.0

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")

    @property
    def wire_bytes(self) -> int:
        """Total on-the-wire size: payload + UDP + IP headers."""
        return self.payload_bytes + UDP_HEADER_BYTES + IP_HEADER_BYTES

    @property
    def wire_bits(self) -> int:
        return 8 * self.wire_bytes

    def __repr__(self) -> str:
        return (
            f"Datagram(#{self.dgram_id} {self.src}->{self.dst}:{self.dst_port}, "
            f"{self.payload_bytes}B payload)"
        )
