"""Measurement plane: the simulator's iperf3 and ping.

The paper installs iperf3 and ping on every coding VNF and periodically
ships (bandwidth, delay) samples to the controller, which drives the
dynamic scaling algorithms (§IV-B).  This module provides:

- :func:`path_rtt` / :func:`path_one_way_delay` — analytic delay of a
  path through a topology (propagation + per-hop serialization), the
  ground truth a ping would measure on an unloaded network.
- :class:`Pinger` — event-driven echo probe measuring live RTT samples
  including queueing.
- :class:`BandwidthProbe` — iperf3-style UDP burst measuring delivered
  rate over one link.
- :class:`MeasurementService` — the periodic sampler VNF daemons run;
  it reads link state (with optional observation noise) and invokes a
  controller callback, exactly the feed Alg. 1/2 consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.net.events import EventScheduler
from repro.net.node import Node
from repro.net.packet import Datagram
from repro.net.topology import Topology
from repro.util.rng import derive_rng

PING_PORT = 7  # echo, naturally


def path_one_way_delay(topology: Topology, path: Sequence[str], payload_bytes: int = 1472) -> float:
    """Unloaded one-way delay along ``path`` (seconds).

    Sums propagation delay plus per-hop serialization of one packet of
    ``payload_bytes`` UDP payload.
    """
    if len(path) < 2:
        raise ValueError("a path needs at least two nodes")
    wire_bits = 8 * (payload_bytes + 28)  # UDP + IP headers
    total = 0.0
    for src, dst in zip(path, path[1:]):
        link = topology.link(src, dst)
        total += link.delay_s + wire_bits / link.capacity_bps
    return total


def path_rtt(topology: Topology, path: Sequence[str], payload_bytes: int = 1472) -> float:
    """Unloaded round-trip time out along ``path`` and back (seconds)."""
    back = list(reversed(path))
    return path_one_way_delay(topology, path, payload_bytes) + path_one_way_delay(topology, back, payload_bytes)


@dataclass
class RttSample:
    sent_at: float
    rtt_s: float


class Pinger:
    """Event-driven RTT probe between two directly reachable nodes.

    The responder side is installed with :meth:`install_responder`; it
    echoes probes back over its link to the prober.  Multi-hop paths are
    probed by installing forwarders (the experiment harness does this) or
    by using :func:`path_rtt` for unloaded figures.
    """

    def __init__(self, node: Node, peer: str, payload_bytes: int = 1472) -> None:
        self.node = node
        self.peer = peer
        self.payload_bytes = payload_bytes
        self.samples: list[RttSample] = []
        self._inflight: dict[int, float] = {}
        self._seq = 0
        node.listen(PING_PORT, self._on_reply)

    @staticmethod
    def install_responder(node: Node) -> None:
        """Make ``node`` echo ping probes back to their source."""

        def _echo(dgram: Datagram) -> None:
            seq, kind = dgram.payload
            if kind == "request":
                node.send(dgram.src, (seq, "reply"), dgram.payload_bytes, dst_port=PING_PORT)

        node.listen(PING_PORT, _echo)

    def probe(self) -> None:
        """Send one echo request."""
        self._seq += 1
        self._inflight[self._seq] = self.node.scheduler.now
        self.node.send(self.peer, (self._seq, "request"), self.payload_bytes, dst_port=PING_PORT)

    def _on_reply(self, dgram: Datagram) -> None:
        seq, kind = dgram.payload
        if kind != "reply":
            return
        sent = self._inflight.pop(seq, None)
        if sent is not None:
            self.samples.append(RttSample(sent_at=sent, rtt_s=self.node.scheduler.now - sent))

    def stats_ms(self) -> dict[str, float]:
        """min/max/average RTT in milliseconds over collected samples."""
        if not self.samples:
            raise RuntimeError("no RTT samples collected yet")
        rtts = np.array([s.rtt_s for s in self.samples]) * 1e3
        return {"min": float(rtts.min()), "max": float(rtts.max()), "average": float(rtts.mean())}


class BandwidthProbe:
    """iperf3-style UDP burst: measure delivered rate over one link."""

    IPERF_PORT = 5201

    def __init__(self, sender: Node, receiver: Node, payload_bytes: int = 1460) -> None:
        self.sender = sender
        self.receiver = receiver
        self.payload_bytes = payload_bytes
        self.received_bytes = 0
        self._started_at: float | None = None
        self._finished_at: float | None = None
        receiver.listen(self.IPERF_PORT, self._on_data)

    def run(self, duration_s: float, offered_rate_bps: float) -> None:
        """Schedule a constant-rate burst for ``duration_s``."""
        if duration_s <= 0 or offered_rate_bps <= 0:
            raise ValueError("duration and rate must be positive")
        interval = 8 * (self.payload_bytes + 28) / offered_rate_bps
        count = int(duration_s / interval)
        self._started_at = self.sender.scheduler.now
        self._finished_at = self._started_at + duration_s
        for i in range(count):
            self.sender.scheduler.schedule(i * interval, self._send_one)

    def _send_one(self) -> None:
        self.sender.send(self.receiver.name, "iperf", self.payload_bytes, dst_port=self.IPERF_PORT)

    def _on_data(self, dgram: Datagram) -> None:
        self.received_bytes += dgram.payload_bytes

    def measured_bps(self) -> float:
        """Goodput observed at the receiver over the probe window."""
        if self._started_at is None:
            raise RuntimeError("probe has not been run")
        assert self._finished_at is not None
        elapsed = max(self.receiver.scheduler.now, self._finished_at) - self._started_at
        return 8 * self.received_bytes / elapsed


class MeasurementService:
    """Periodic (bandwidth, delay) sampler feeding the controller.

    Every ``interval_s`` the service reads each link's current capacity
    and delay, perturbs them with multiplicative observation noise, and
    calls ``report(now, link_key, bandwidth_mbps, delay_ms)``.  The
    paper's interval is 10 minutes.
    """

    def __init__(
        self,
        topology: Topology,
        report: Callable[[float, tuple[str, str], float, float], None],
        interval_s: float = 600.0,
        noise_std: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        self.topology = topology
        self.report = report
        self.interval_s = interval_s
        self.noise_std = noise_std
        self._rng = rng if rng is not None else derive_rng("net.measurement")
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.topology.scheduler.schedule(self.interval_s, self._tick)

    def stop(self) -> None:
        self._running = False

    def sample_once(self) -> None:
        """Take one sample of every link right now."""
        now = self.topology.scheduler.now
        for key, link in self.topology.links.items():
            bw = link.capacity_bps / 1e6
            delay = link.delay_s * 1e3
            if self.noise_std > 0:
                bw *= max(0.0, 1.0 + self._rng.normal(0.0, self.noise_std))
                delay *= max(0.0, 1.0 + self._rng.normal(0.0, self.noise_std))
            self.report(now, key, bw, delay)

    def _tick(self) -> None:
        if not self._running:
            return
        self.sample_once()
        self.topology.scheduler.schedule(self.interval_s, self._tick)
