"""Topology container: named nodes plus directed, attributed links.

The controller's optimization consumes a *graph view* of the world —
data centers, sources, destinations and the measured (bandwidth, delay)
of the links between them — while the data plane needs live
:class:`~repro.net.link.Link` objects.  :class:`Topology` provides both:
it builds the simulator objects and exports a ``networkx.DiGraph`` for
the routing and optimization layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Any

import networkx as nx
import numpy as np

from repro.net.events import EventScheduler
from repro.net.link import Link
from repro.net.loss import LossModel
from repro.net.node import Host, Node
from repro.util.rng import derive_rng


@dataclass
class LinkSpec:
    """Declarative description of one directed link."""

    src: str
    dst: str
    capacity_mbps: float
    delay_ms: float
    loss: LossModel | None = None
    queue_bytes: int = 256 * 1024
    jitter_s: float = 0.0

    @property
    def capacity_bps(self) -> float:
        return self.capacity_mbps * 1e6

    @property
    def delay_s(self) -> float:
        return self.delay_ms / 1e3


@dataclass
class Topology:
    """A set of nodes and the directed links between them."""

    scheduler: EventScheduler = dataclass_field(default_factory=EventScheduler)
    rng: np.random.Generator = dataclass_field(default_factory=lambda: derive_rng("net.topology"))

    def __post_init__(self) -> None:
        self.nodes: dict[str, Node] = {}
        self.links: dict[tuple[str, str], Link] = {}

    # -- construction -----------------------------------------------------

    def add_node(self, node_or_name: Node | str) -> Node:
        """Add a node (a :class:`Node` instance or a name for a Host)."""
        node = node_or_name if isinstance(node_or_name, Node) else Host(node_or_name, self.scheduler)
        if node.name in self.nodes:
            raise ValueError(f"duplicate node {node.name}")
        self.nodes[node.name] = node
        return node

    def get(self, name: str) -> Node:
        try:
            return self.nodes[name]
        except KeyError:
            raise KeyError(f"unknown node {name!r}") from None

    def add_link(self, spec: LinkSpec) -> Link:
        """Instantiate one directed link from a spec and wire it up."""
        key = (spec.src, spec.dst)
        if key in self.links:
            raise ValueError(f"duplicate link {spec.src}->{spec.dst}")
        src = self.get(spec.src)
        dst = self.get(spec.dst)
        link = Link(
            scheduler=self.scheduler,
            src=spec.src,
            dst=spec.dst,
            capacity_bps=spec.capacity_bps,
            delay_s=spec.delay_s,
            loss=spec.loss,
            queue_bytes=spec.queue_bytes,
            rng=self.rng,
            jitter_s=spec.jitter_s,
        )
        src.attach_out(link)
        dst.attach_in(link)
        self.links[key] = link
        return link

    def add_duplex(self, a: str, b: str, capacity_mbps: float, delay_ms: float, **kwargs: Any) -> tuple[Link, Link]:
        """Add symmetric links in both directions."""
        fwd = self.add_link(LinkSpec(a, b, capacity_mbps, delay_ms, **kwargs))
        rev = self.add_link(LinkSpec(b, a, capacity_mbps, delay_ms, **kwargs))
        return fwd, rev

    def link(self, src: str, dst: str) -> Link:
        try:
            return self.links[(src, dst)]
        except KeyError:
            raise KeyError(f"no link {src}->{dst}") from None

    # -- views ---------------------------------------------------------------

    def graph(self) -> nx.DiGraph:
        """Export a networkx view with capacity/delay edge attributes.

        Capacities are in Mbps and delays in ms, the units used by the
        optimization layer throughout.
        """
        g = nx.DiGraph()
        g.add_nodes_from(self.nodes)
        for (src, dst), link in self.links.items():
            g.add_edge(src, dst, capacity_mbps=link.capacity_bps / 1e6, delay_ms=link.delay_s * 1e3)
        return g

    def run(self, until: float | None = None) -> None:
        """Convenience passthrough to the scheduler."""
        self.scheduler.run(until=until)

    def __repr__(self) -> str:
        return f"Topology({len(self.nodes)} nodes, {len(self.links)} links)"
