"""Topology container: named nodes plus directed, attributed links.

The controller's optimization consumes a *graph view* of the world —
data centers, sources, destinations and the measured (bandwidth, delay)
of the links between them — while the data plane needs live
:class:`~repro.net.link.Link` objects.  :class:`Topology` provides both:
it builds the simulator objects and exports a ``networkx.DiGraph`` for
the routing and optimization layers.

The module also ships the **OS3E wide-area graph** — the Internet2 Open
Science, Scholarship and Services Exchange backbone (34 PoP cities, 42
WAN spans) that the controller-placement literature standardized on.
Link weights are propagation latencies derived from great-circle
distances at fiber speed, so the fleet-scale experiments
(:mod:`repro.fleet`) run over realistic continental delays instead of
the hand-drawn butterfly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field as dataclass_field
from typing import Any

import networkx as nx
import numpy as np

from repro.net.events import EventScheduler
from repro.net.link import Link
from repro.net.loss import LossModel
from repro.net.node import Host, Node
from repro.util.rng import derive_rng


@dataclass
class LinkSpec:
    """Declarative description of one directed link."""

    src: str
    dst: str
    capacity_mbps: float
    delay_ms: float
    loss: LossModel | None = None
    queue_bytes: int = 256 * 1024
    jitter_s: float = 0.0

    @property
    def capacity_bps(self) -> float:
        return self.capacity_mbps * 1e6

    @property
    def delay_s(self) -> float:
        return self.delay_ms / 1e3


@dataclass
class Topology:
    """A set of nodes and the directed links between them."""

    scheduler: EventScheduler = dataclass_field(default_factory=EventScheduler)
    rng: np.random.Generator = dataclass_field(default_factory=lambda: derive_rng("net.topology"))

    def __post_init__(self) -> None:
        self.nodes: dict[str, Node] = {}
        self.links: dict[tuple[str, str], Link] = {}

    # -- construction -----------------------------------------------------

    def add_node(self, node_or_name: Node | str) -> Node:
        """Add a node (a :class:`Node` instance or a name for a Host)."""
        node = node_or_name if isinstance(node_or_name, Node) else Host(node_or_name, self.scheduler)
        if node.name in self.nodes:
            raise ValueError(f"duplicate node {node.name}")
        self.nodes[node.name] = node
        return node

    def get(self, name: str) -> Node:
        try:
            return self.nodes[name]
        except KeyError:
            raise KeyError(f"unknown node {name!r}") from None

    def add_link(self, spec: LinkSpec) -> Link:
        """Instantiate one directed link from a spec and wire it up."""
        key = (spec.src, spec.dst)
        if key in self.links:
            raise ValueError(f"duplicate link {spec.src}->{spec.dst}")
        src = self.get(spec.src)
        dst = self.get(spec.dst)
        link = Link(
            scheduler=self.scheduler,
            src=spec.src,
            dst=spec.dst,
            capacity_bps=spec.capacity_bps,
            delay_s=spec.delay_s,
            loss=spec.loss,
            queue_bytes=spec.queue_bytes,
            rng=self.rng,
            jitter_s=spec.jitter_s,
        )
        src.attach_out(link)
        dst.attach_in(link)
        self.links[key] = link
        return link

    def add_duplex(self, a: str, b: str, capacity_mbps: float, delay_ms: float, **kwargs: Any) -> tuple[Link, Link]:
        """Add symmetric links in both directions."""
        fwd = self.add_link(LinkSpec(a, b, capacity_mbps, delay_ms, **kwargs))
        rev = self.add_link(LinkSpec(b, a, capacity_mbps, delay_ms, **kwargs))
        return fwd, rev

    def link(self, src: str, dst: str) -> Link:
        try:
            return self.links[(src, dst)]
        except KeyError:
            raise KeyError(f"no link {src}->{dst}") from None

    # -- views ---------------------------------------------------------------

    def graph(self) -> nx.DiGraph:
        """Export a networkx view with capacity/delay edge attributes.

        Capacities are in Mbps and delays in ms, the units used by the
        optimization layer throughout.
        """
        g = nx.DiGraph()
        g.add_nodes_from(self.nodes)
        for (src, dst), link in self.links.items():
            g.add_edge(src, dst, capacity_mbps=link.capacity_bps / 1e6, delay_ms=link.delay_s * 1e3)
        return g

    def run(self, until: float | None = None) -> None:
        """Convenience passthrough to the scheduler."""
        self.scheduler.run(until=until)

    def __repr__(self) -> str:
        return f"Topology({len(self.nodes)} nodes, {len(self.links)} links)"


# ---------------------------------------------------------------------------
# OS3E: the Internet2 Open Science, Scholarship and Services Exchange WAN.
# ---------------------------------------------------------------------------

#: PoP city -> (latitude, longitude).  34 sites, the node set the
#: controller-placement studies use.
OS3E_SITES: dict[str, tuple[float, float]] = {
    "Albuquerque": (35.08, -106.65),
    "Ashburn": (39.04, -77.49),
    "Atlanta": (33.75, -84.39),
    "Baton Rouge": (30.45, -91.19),
    "Boston": (42.36, -71.06),
    "Buffalo": (42.89, -78.88),
    "Chicago": (41.88, -87.63),
    "Cleveland": (41.50, -81.69),
    "Dallas": (32.78, -96.80),
    "Denver": (39.74, -104.98),
    "El Paso": (31.76, -106.49),
    "Houston": (29.76, -95.37),
    "Indianapolis": (39.77, -86.16),
    "Jackson": (32.30, -90.18),
    "Jacksonville": (30.33, -81.66),
    "Kansas City": (39.10, -94.58),
    "Los Angeles": (34.05, -118.24),
    "Louisville": (38.25, -85.76),
    "Memphis": (35.15, -90.05),
    "Miami": (25.76, -80.19),
    "Minneapolis": (44.98, -93.27),
    "Missoula": (46.87, -113.99),
    "Nashville": (36.16, -86.78),
    "New York": (40.71, -74.01),
    "Philadelphia": (39.95, -75.17),
    "Pittsburgh": (40.44, -79.99),
    "Portland": (45.52, -122.68),
    "Raleigh": (35.78, -78.64),
    "Salt Lake City": (40.76, -111.89),
    "Seattle": (47.61, -122.33),
    "Sunnyvale": (37.37, -122.04),
    "Tucson": (32.22, -110.97),
    "Vancouver": (49.26, -123.11),
    "Washington": (38.91, -77.04),
}

#: Undirected WAN spans (each becomes a duplex link pair in the graph).
OS3E_SPANS: tuple[tuple[str, str], ...] = (
    ("Vancouver", "Seattle"),
    ("Seattle", "Missoula"),
    ("Missoula", "Minneapolis"),
    ("Minneapolis", "Chicago"),
    ("Seattle", "Salt Lake City"),
    ("Seattle", "Portland"),
    ("Portland", "Sunnyvale"),
    ("Sunnyvale", "Salt Lake City"),
    ("Sunnyvale", "Los Angeles"),
    ("Los Angeles", "Salt Lake City"),
    ("Los Angeles", "Tucson"),
    ("Tucson", "El Paso"),
    ("Salt Lake City", "Denver"),
    ("Denver", "Albuquerque"),
    ("Albuquerque", "El Paso"),
    ("Denver", "Kansas City"),
    ("Kansas City", "Chicago"),
    ("Kansas City", "Dallas"),
    ("El Paso", "Houston"),
    ("Dallas", "Houston"),
    ("Houston", "Jackson"),
    ("Jackson", "Memphis"),
    ("Memphis", "Nashville"),
    ("Houston", "Baton Rouge"),
    ("Baton Rouge", "Jacksonville"),
    ("Nashville", "Atlanta"),
    ("Atlanta", "Jacksonville"),
    ("Jacksonville", "Miami"),
    ("Chicago", "Indianapolis"),
    ("Indianapolis", "Louisville"),
    ("Louisville", "Nashville"),
    ("Chicago", "Cleveland"),
    ("Cleveland", "Buffalo"),
    ("Buffalo", "Boston"),
    ("Boston", "New York"),
    ("New York", "Philadelphia"),
    ("Philadelphia", "Washington"),
    ("Cleveland", "Pittsburgh"),
    ("Pittsburgh", "Ashburn"),
    ("Ashburn", "Washington"),
    ("Washington", "Raleigh"),
    ("Raleigh", "Atlanta"),
)

#: Propagation speed in fiber, km per millisecond (~2/3 c).
FIBER_KM_PER_MS = 200.0

_EARTH_RADIUS_KM = 6371.0


def great_circle_km(a: tuple[float, float], b: tuple[float, float]) -> float:
    """Haversine distance between two (lat, lon) pairs in kilometres."""
    lat1, lon1 = math.radians(a[0]), math.radians(a[1])
    lat2, lon2 = math.radians(b[0]), math.radians(b[1])
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2) ** 2
    return 2 * _EARTH_RADIUS_KM * math.asin(math.sqrt(h))


def os3e_span_delay_ms(a: str, b: str) -> float:
    """One-way propagation latency of the direct WAN span a—b."""
    return great_circle_km(OS3E_SITES[a], OS3E_SITES[b]) / FIBER_KM_PER_MS


def os3e_graph(capacity_mbps: float = 10_000.0) -> nx.DiGraph:
    """The weighted OS3E WAN as an optimization-layer ``DiGraph``.

    Every span appears in both directions with ``capacity_mbps`` and a
    ``delay_ms`` computed from the great-circle distance at fiber speed
    — the same units the deployment LP consumes everywhere else.
    """
    if capacity_mbps <= 0:
        raise ValueError("capacity must be positive")
    g = nx.DiGraph()
    g.add_nodes_from(OS3E_SITES)
    for a, b in OS3E_SPANS:
        delay = os3e_span_delay_ms(a, b)
        g.add_edge(a, b, capacity_mbps=capacity_mbps, delay_ms=delay)
        g.add_edge(b, a, capacity_mbps=capacity_mbps, delay_ms=delay)
    return g


def os3e_latency_ms(graph: nx.DiGraph | None = None) -> dict[str, dict[str, float]]:
    """All-pairs shortest propagation latency over the OS3E WAN.

    Returns ``{city: {city: delay_ms}}``; the diagonal is 0.  This is
    the latency matrix the fleet layer uses to weight its overlay edges
    (an overlay hop between two PoPs rides the shortest WAN route).
    """
    g = os3e_graph() if graph is None else graph
    lengths = dict(nx.all_pairs_dijkstra_path_length(g, weight="delay_ms"))
    return {src: dict(dsts) for src, dsts in lengths.items()}


def os3e_topology(
    scheduler: EventScheduler | None = None,
    capacity_mbps: float = 10_000.0,
    queue_bytes: int = 256 * 1024,
) -> Topology:
    """A live simulator :class:`Topology` of the OS3E WAN (duplex links)."""
    topo = Topology(scheduler=scheduler if scheduler is not None else EventScheduler())
    for city in OS3E_SITES:
        topo.add_node(city)
    for a, b in OS3E_SPANS:
        topo.add_duplex(a, b, capacity_mbps, os3e_span_delay_ms(a, b), queue_bytes=queue_bytes)
    return topo
