"""Network substrate: a discrete-event simulator of the paper's testbed.

The paper evaluates on real EC2/Linode VMs connected over the Internet,
shaping links with ``netem`` and measuring with ``iperf3``/``ping``.
We have no testbed, so this package provides the closest synthetic
equivalent (DESIGN.md §2):

- :mod:`repro.net.events` — the event scheduler (simulated clock).
- :mod:`repro.net.packet` — datagrams as they appear on the wire.
- :mod:`repro.net.link` — unidirectional links with capacity,
  propagation delay, a drop-tail queue and a pluggable loss model.
- :mod:`repro.net.loss` — i.i.d. and burst (netem-correlation-style)
  loss models used for Fig. 8 / Fig. 9.
- :mod:`repro.net.impairments` — dirty-wire models (bit-flip
  corruption, duplication, blackholes) composable with the loss models
  (DESIGN.md §11).
- :mod:`repro.net.node` — simulated hosts and the node interface the
  coding VNFs plug into.
- :mod:`repro.net.buffer` — the per-session FIFO generation buffer
  (1024 generations by default, per Fig. 5).
- :mod:`repro.net.nic` — poll-mode (DPDK-like) vs interrupt-mode NIC
  processing-cost models.
- :mod:`repro.net.measurement` — iperf3-like bandwidth probes and
  ping-like RTT probes feeding the controller.
- :mod:`repro.net.topology` — named-node topology container with
  per-link attributes.
"""

from repro.net.buffer import GenerationBuffer
from repro.net.events import Event, EventScheduler
from repro.net.impairments import (
    BitFlipCorruption,
    Blackhole,
    Duplication,
    Impairment,
    corrupt_coded_packet,
)
from repro.net.link import Link
from repro.net.loss import BurstLoss, CompositeLoss, LossModel, NoLoss, UniformLoss
from repro.net.measurement import (
    BandwidthProbe,
    MeasurementService,
    Pinger,
    path_one_way_delay,
    path_rtt,
)
from repro.net.nic import InterruptNic, NicModel, PollModeNic
from repro.net.node import Host, Node
from repro.net.packet import Datagram, IP_HEADER_BYTES, UDP_HEADER_BYTES
from repro.net.topology import LinkSpec, Topology

__all__ = [
    "Event",
    "EventScheduler",
    "Datagram",
    "IP_HEADER_BYTES",
    "UDP_HEADER_BYTES",
    "Link",
    "LossModel",
    "NoLoss",
    "UniformLoss",
    "BurstLoss",
    "CompositeLoss",
    "Impairment",
    "BitFlipCorruption",
    "Duplication",
    "Blackhole",
    "corrupt_coded_packet",
    "Node",
    "Host",
    "GenerationBuffer",
    "NicModel",
    "PollModeNic",
    "InterruptNic",
    "Topology",
    "LinkSpec",
    "Pinger",
    "BandwidthProbe",
    "MeasurementService",
    "path_rtt",
    "path_one_way_delay",
]
