"""Unidirectional links: capacity, propagation delay, queueing, loss.

A link serializes packets at ``capacity_bps``, holds at most
``queue_bytes`` of backlog (drop-tail beyond that), applies its loss
model per packet, then delivers after ``delay_s`` of propagation.  The
model is the standard store-and-forward pipe: a packet that starts
transmitting at t arrives at ``t + wire_bits/capacity + delay``.

Capacity and delay can be changed mid-run (``set_capacity`` /
``set_delay``) — that is how experiments emulate the paper's netem
bandwidth cuts (Fig. 11) and delay shifts (Alg. 2 triggers).
Per-packet counters feed the measurement layer.

Links can also fail outright: ``down()`` takes the link out of service
and deterministically drops every in-flight packet (serializing or
propagating), ``up()`` restores it.  Packets sent across a down/up
cycle never survive — each ``down()`` advances an epoch counter and a
packet is delivered only if the link's epoch is unchanged since it was
sent, which is what keeps fault-injection runs bit-reproducible.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.net.events import EventScheduler
from repro.net.impairments import Impairment
from repro.net.loss import LossModel, NoLoss
from repro.net.packet import Datagram
from repro.util.rng import derive_rng

DeliverFn = Callable[[Datagram], None]


class LinkStats:
    """Cumulative per-link counters."""

    __slots__ = (
        "sent_packets",
        "sent_bytes",
        "delivered_packets",
        "delivered_bytes",
        "dropped_loss",
        "dropped_queue",
        "dropped_down",
        "corrupted_packets",
        "dropped_corrupt",
        "duplicated_packets",
        "dropped_blackhole",
    )

    def __init__(self) -> None:
        self.sent_packets = 0
        self.sent_bytes = 0
        self.delivered_packets = 0
        self.delivered_bytes = 0
        self.dropped_loss = 0
        self.dropped_queue = 0
        self.dropped_down = 0
        self.corrupted_packets = 0
        self.dropped_corrupt = 0
        self.duplicated_packets = 0
        self.dropped_blackhole = 0

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class Link:
    """One direction of a network path between two named nodes."""

    def __init__(
        self,
        scheduler: EventScheduler,
        src: str,
        dst: str,
        capacity_bps: float,
        delay_s: float,
        loss: LossModel | None = None,
        queue_bytes: int = 256 * 1024,
        rng: np.random.Generator | None = None,
        jitter_s: float = 0.0,
    ) -> None:
        if capacity_bps <= 0:
            raise ValueError("capacity must be positive")
        if delay_s < 0:
            raise ValueError("delay cannot be negative")
        if jitter_s < 0:
            raise ValueError("jitter cannot be negative")
        self.scheduler = scheduler
        self.src = src
        self.dst = dst
        self.capacity_bps = float(capacity_bps)
        self.delay_s = float(delay_s)
        self.loss = loss if loss is not None else NoLoss()
        self.queue_bytes = queue_bytes
        self.jitter_s = float(jitter_s)
        self._rng = rng if rng is not None else derive_rng("net.link", src, dst)
        # Dirty-wire impairments (corruption, duplication, blackhole),
        # applied after the loss model in attachment order.  An empty
        # list consumes zero extra RNG draws, so clean runs replay
        # bit-identically to builds that predate impairments.
        self.impairments: list[Impairment] = []
        self._deliver: DeliverFn | None = None
        self._backlog_bytes = 0
        self.is_up = True
        # Incremented on every down(); packets remember the epoch they
        # were sent in and are dropped if it changed before delivery.
        self._epoch = 0
        # Time at which the transmitter becomes free; packets serialize
        # one after another without modelling each queue slot separately.
        self._tx_free_at = 0.0
        self.stats = LinkStats()

    # -- wiring --------------------------------------------------------

    def connect(self, deliver: DeliverFn) -> None:
        """Register the receiver-side callback (done by the dst node)."""
        self._deliver = deliver

    # -- dynamics -------------------------------------------------------

    def set_capacity(self, capacity_bps: float) -> None:
        """Change link capacity (affects packets sent from now on)."""
        if capacity_bps <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bps = float(capacity_bps)

    def set_delay(self, delay_s: float) -> None:
        if delay_s < 0:
            raise ValueError("delay cannot be negative")
        self.delay_s = float(delay_s)

    def set_loss(self, loss: LossModel) -> None:
        self.loss = loss

    def add_impairment(self, impairment: Impairment) -> None:
        """Attach a dirty-wire impairment (applied after the loss model)."""
        self.impairments.append(impairment)

    def clear_impairments(self) -> None:
        """Detach every impairment, restoring a clean wire."""
        self.impairments.clear()

    def down(self) -> None:
        """Fail the link: refuse new packets, drop everything in flight.

        The drop is deterministic: in-flight packets are tagged with the
        epoch they were sent in, and delivery checks the epoch — no RNG
        draw is consumed, so a fault-injection run stays bit-identical
        for a fixed seed.  Backlog counters drain as the stale
        transmission events fire.
        """
        if not self.is_up:
            return
        self.is_up = False
        self._epoch += 1
        # The transmitter is gone with the link; whatever was serializing
        # no longer occupies it when the link comes back.
        self._tx_free_at = self.scheduler.now

    def up(self) -> None:
        """Restore a failed link (packets lost meanwhile stay lost).

        A reconnect is a fresh wire: correlated state in the loss model
        (e.g. ``BurstLoss``'s previous-packet memory) and in any
        impairment must not leak across the outage, so both are reset.
        """
        if self.is_up:
            return
        self.is_up = True
        self.loss.reset()
        for impairment in self.impairments:
            impairment.reset()

    # -- data path --------------------------------------------------------

    @property
    def backlog_bytes(self) -> int:
        return self._backlog_bytes

    def send(self, dgram: Datagram) -> bool:
        """Enqueue a packet; returns False if it was dropped at the tail."""
        if self._deliver is None:
            raise RuntimeError(f"link {self.src}->{self.dst} has no receiver connected")
        self.stats.sent_packets += 1
        self.stats.sent_bytes += dgram.wire_bytes
        if not self.is_up:
            self.stats.dropped_down += 1
            return False
        if self._backlog_bytes + dgram.wire_bytes > self.queue_bytes:
            self.stats.dropped_queue += 1
            return False
        now = self.scheduler.now
        start = max(now, self._tx_free_at)
        tx_time = dgram.wire_bits / self.capacity_bps
        finish = start + tx_time
        self._tx_free_at = finish
        self._backlog_bytes += dgram.wire_bytes
        self.scheduler.schedule_at(finish, self._transmitted, dgram, self._epoch)
        return True

    def _transmitted(self, dgram: Datagram, epoch: int) -> None:
        self._backlog_bytes -= dgram.wire_bytes
        if epoch != self._epoch:
            self.stats.dropped_down += 1
            return
        if self.loss.drop(self._rng):
            self.stats.dropped_loss += 1
            return
        if not self.impairments:
            self._propagate(dgram, epoch)
            return
        delivered = [dgram]
        for impairment in self.impairments:
            survivors: list[Datagram] = []
            for d in delivered:
                survivors.extend(impairment.apply(d, self._rng, self.stats))
            delivered = survivors
            if not delivered:
                return
        for d in delivered:
            self._propagate(d, epoch)

    def _propagate(self, dgram: Datagram, epoch: int) -> None:
        delay = self.delay_s
        if self.jitter_s > 0:
            # Uniform one-sided jitter, drawn per delivered copy so
            # duplicates reorder against their originals; reordering
            # across packets is the point (the Fig. 5 buffer study
            # depends on it).
            delay += float(self._rng.uniform(0.0, self.jitter_s))
        self.scheduler.schedule(delay, self._arrive, dgram, epoch)

    def _arrive(self, dgram: Datagram, epoch: int) -> None:
        if epoch != self._epoch:
            self.stats.dropped_down += 1
            return
        self.stats.delivered_packets += 1
        self.stats.delivered_bytes += dgram.wire_bytes
        assert self._deliver is not None  # send() refuses unconnected links
        self._deliver(dgram)

    # -- introspection ---------------------------------------------------

    @property
    def utilization_window(self) -> float:
        """Current queueing delay (seconds of backlog at link rate)."""
        return 8 * self._backlog_bytes / self.capacity_bps

    def __repr__(self) -> str:
        return (
            f"Link({self.src}->{self.dst}, {self.capacity_bps / 1e6:.1f} Mbps, "
            f"{self.delay_s * 1e3:.1f} ms, {self.loss!r})"
        )
