"""Dirty-wire impairment models: corruption, duplication, blackholes.

The loss models in :mod:`repro.net.loss` answer one question — "did the
wire eat this packet?".  Real Internet paths misbehave in richer ways:
they *flip bits* (which, for RLNC, is far worse than loss — one corrupt
coefficient byte recoded downstream pollutes every derived packet), they
*duplicate* (retransmitting middleboxes, route flaps), and they
*blackhole* one direction of a path while the reverse keeps working
(asymmetric partitions).  This module models those as composable
:class:`Impairment` hooks that a :class:`~repro.net.link.Link` applies
after its loss model, each returning the list of datagrams that actually
continue toward the receiver.

Corruption semantics (DESIGN.md §11): simulated packets travel as Python
objects, so corruption cannot literally flip wire bytes.  Instead
:func:`corrupt_coded_packet` builds a *deep copy* of the coded packet
with flipped coefficient/payload bytes while carrying the **pristine**
packet's CRC32 seal — exactly what a real receiver would see after the
NC-layer checksum was computed at the sender and the bytes damaged in
flight.  Endpoint ``verify()`` then fails and the packet is dropped
before it can reach a recoder or Gaussian elimination.  A corrupted
datagram whose payload is *not* a coded packet (ACKs, probe payloads)
is dropped outright, modelling the kernel discarding a UDP datagram
with a bad checksum.

Determinism: a link with no impairments attached consumes exactly the
same RNG draw sequence as before this module existed, so all committed
chaos fingerprints and seeded experiments replay bit-identically.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.net.packet import Datagram
from repro.rlnc.header import NCHeader
from repro.rlnc.packet import CodedPacket

if TYPE_CHECKING:  # LinkStats is typing-only; link.py imports this module at runtime
    from repro.net.link import LinkStats


def corrupt_coded_packet(
    packet: CodedPacket, rng: np.random.Generator, byte_rate: float | None = None
) -> CodedPacket:
    """Return a bit-flipped deep copy carrying the pristine packet's seal.

    With ``byte_rate=None`` exactly one uniformly chosen byte (across
    coefficients + payload) gets one flipped bit; otherwise each byte is
    flipped independently with probability ``byte_rate`` (at least one,
    so a packet selected for corruption is always actually corrupt).
    """
    seal = packet.checksum if packet.checksum is not None else packet.content_checksum()
    coeffs = packet.header.coefficients.copy()
    payload = packet.payload.copy()
    k = int(coeffs.shape[0])
    total = k + int(payload.shape[0])
    if byte_rate is None:
        positions = np.asarray([rng.integers(0, total)])
    else:
        positions = np.flatnonzero(rng.random(total) < byte_rate)
        if positions.size == 0:
            positions = np.asarray([rng.integers(0, total)])
    bits = rng.integers(0, 8, size=positions.size)
    for pos, bit in zip(positions.tolist(), bits.tolist()):
        if pos < k:
            coeffs[pos] ^= np.uint8(1 << bit)
        else:
            payload[pos - k] ^= np.uint8(1 << bit)
    header = NCHeader(
        session_id=packet.session_id,
        generation_id=packet.generation_id,
        coefficients=coeffs,
        systematic=packet.header.systematic,
    )
    return CodedPacket(header=header, payload=payload, checksum=seal)


def _copy_with_payload(dgram: Datagram, payload: object) -> Datagram:
    """A fresh datagram (new dgram_id) carrying ``payload`` on the same flow."""
    return Datagram(
        src=dgram.src,
        dst=dgram.dst,
        payload=payload,
        payload_bytes=dgram.payload_bytes,
        dst_port=dgram.dst_port,
        src_port=dgram.src_port,
        created_at=dgram.created_at,
    )


class Impairment:
    """Base class: maps one in-flight datagram to the datagrams delivered.

    ``apply`` returns ``[]`` to swallow the packet, ``[dgram]`` to pass
    it through (possibly replaced by a damaged copy), or several entries
    to duplicate it.  Implementations increment the link's stats
    counters themselves so each mode stays separately observable.
    """

    def apply(self, dgram: Datagram, rng: np.random.Generator, stats: "LinkStats") -> list[Datagram]:
        raise NotImplementedError

    def reset(self) -> None:
        """Forget correlation state (called when a flapped link reconnects)."""


class BitFlipCorruption(Impairment):
    """Flip bits in coded packets at ``packet_rate`` (per-packet probability).

    ``byte_rate`` optionally makes each byte of a selected packet flip
    independently (burstier damage); ``None`` flips exactly one byte.
    Non-coded payloads selected for corruption are dropped, modelling
    the kernel's UDP checksum discarding the datagram.
    """

    def __init__(self, packet_rate: float, byte_rate: float | None = None) -> None:
        if not 0.0 <= packet_rate <= 1.0:
            raise ValueError(f"packet_rate must be in [0, 1], got {packet_rate}")
        if byte_rate is not None and not 0.0 < byte_rate <= 1.0:
            raise ValueError(f"byte_rate must be in (0, 1], got {byte_rate}")
        self.packet_rate = float(packet_rate)
        self.byte_rate = byte_rate

    def apply(self, dgram: Datagram, rng: np.random.Generator, stats: "LinkStats") -> list[Datagram]:
        if rng.random() >= self.packet_rate:
            return [dgram]
        if isinstance(dgram.payload, CodedPacket):
            stats.corrupted_packets += 1
            damaged = corrupt_coded_packet(dgram.payload, rng, self.byte_rate)
            return [_copy_with_payload(dgram, damaged)]
        stats.dropped_corrupt += 1
        return []

    def __repr__(self) -> str:
        return f"BitFlipCorruption({self.packet_rate}, byte_rate={self.byte_rate})"


class Duplication(Impairment):
    """Deliver an extra copy of a packet with probability ``rate``.

    The copy is a fresh datagram (own dgram_id, own jitter draw on
    delivery) sharing the original payload — receivers must tolerate the
    same coded packet arriving twice.
    """

    def __init__(self, rate: float) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        self.rate = float(rate)

    def apply(self, dgram: Datagram, rng: np.random.Generator, stats: "LinkStats") -> list[Datagram]:
        if rng.random() >= self.rate:
            return [dgram]
        stats.duplicated_packets += 1
        return [dgram, _copy_with_payload(dgram, dgram.payload)]

    def __repr__(self) -> str:
        return f"Duplication({self.rate})"


class Blackhole(Impairment):
    """Silently swallow every packet on this (unidirectional) link.

    Links are unidirectional, so attaching a blackhole to one direction
    of a path while the reverse keeps flowing *is* the asymmetric
    partition: data keeps leaving, feedback never returns (or vice
    versa).  Unlike ``Link.down()`` the sender sees nothing — packets
    serialize, charge the queue, and vanish.
    """

    def apply(self, dgram: Datagram, rng: np.random.Generator, stats: "LinkStats") -> list[Datagram]:
        stats.dropped_blackhole += 1
        return []

    def __repr__(self) -> str:
        return "Blackhole()"
