"""NIC processing-cost models: DPDK poll mode vs kernel interrupts.

The paper's data plane uses DPDK poll-mode drivers (plus KNI for kernel
addressing) instead of interrupt-driven netfilter processing, because
interrupts cost "thousands of CPU cycles" of context switching per
packet and degrade as the interrupt rate grows (§III-B2).

We cannot run DPDK in a simulator, but the *consequence* the paper
relies on — per-packet CPU cost bounding the VNF's coding rate — is
easy to model.  A :class:`NicModel` converts a packet rate into CPU
time; the VNF's sustainable throughput is then
``min(link rate, coding rate, NIC packet rate)``.  The ablation bench
compares the two models' packet ceilings.

Default constants are drawn from published DPDK/netfilter measurements:
poll mode ~80 cycles/packet of I/O overhead, interrupt path ~2400
cycles/packet plus a context-switch penalty that grows with interrupt
rate (modelled as a soft saturation).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NicModel:
    """Base NIC cost model: fixed CPU cycles per packet."""

    cycles_per_packet: float
    cpu_hz: float = 2.8e9  # Xeon E5-2680 v2 nominal clock

    def cpu_seconds_per_packet(self, packet_rate_pps: float = 0.0) -> float:
        """CPU time charged per packet at the given arrival rate."""
        if packet_rate_pps < 0:
            raise ValueError("packet rate cannot be negative")
        return self.cycles_per_packet / self.cpu_hz

    def max_packet_rate(self, cpu_share: float = 1.0) -> float:
        """Packets/s one core (or ``cpu_share`` of it) can sustain."""
        if not 0 < cpu_share <= 1.0:
            raise ValueError("cpu_share must be in (0, 1]")
        return cpu_share / self.cpu_seconds_per_packet()

    def max_throughput_bps(self, packet_bytes: int, cpu_share: float = 1.0) -> float:
        """Bits/s ceiling for packets of the given size."""
        if packet_bytes <= 0:
            raise ValueError("packet size must be positive")
        return self.max_packet_rate(cpu_share) * packet_bytes * 8


@dataclass(frozen=True)
class PollModeNic(NicModel):
    """DPDK-style poll-mode driver: cheap, constant per-packet cost."""

    cycles_per_packet: float = 80.0


@dataclass(frozen=True)
class InterruptNic(NicModel):
    """Interrupt-driven kernel path (netfilter-style).

    Beyond the base cost, efficiency deteriorates as the interrupt rate
    grows: each interrupt carries a context-switch penalty, and at high
    rates cache/TLB pollution adds a superlinear term.  We model the
    per-packet cost as ``base + switch·(1 + rate/saturation_pps)``.
    """

    cycles_per_packet: float = 2400.0
    context_switch_cycles: float = 1200.0
    saturation_pps: float = 250_000.0

    def cpu_seconds_per_packet(self, packet_rate_pps: float = 0.0) -> float:
        if packet_rate_pps < 0:
            raise ValueError("packet rate cannot be negative")
        penalty = self.context_switch_cycles * (1.0 + packet_rate_pps / self.saturation_pps)
        return (self.cycles_per_packet + penalty) / self.cpu_hz

    def max_packet_rate(self, cpu_share: float = 1.0) -> float:
        """Solve rate = share / cost(rate) for the self-limiting rate."""
        if not 0 < cpu_share <= 1.0:
            raise ValueError("cpu_share must be in (0, 1]")
        # rate * (base + cs * (1 + rate/sat)) = share * hz
        # -> (cs/sat) rate^2 + (base + cs) rate - share*hz = 0
        a = self.context_switch_cycles / self.saturation_pps
        b = self.cycles_per_packet + self.context_switch_cycles
        c = -cpu_share * self.cpu_hz
        disc = b * b - 4 * a * c
        return (-b + disc**0.5) / (2 * a)
