"""Per-session FIFO generation buffer.

A coding VNF stores the packets it has received, keyed by
(session id, generation id), so a new arrival can immediately be mixed
with earlier packets of the same generation (paper §III-B2).  Capacity
is counted in *generations per session*; when a session's buffer is
full, the oldest generation's packets are discarded (FIFO) to make
room.  Fig. 5 finds 1024 generations per session sufficient — larger
buffers gain little — so that is the default.

Dirty-wire hardening (DESIGN.md §11): the wire may *duplicate* packets
and deliver arbitrarily late stragglers.  Duplicates must not inflate
``stored_packets`` (each copy of the same packet adds no degree of
freedom, and double-counting would make eviction accounting lie), and a
straggler for a generation that was already evicted must not re-open a
bucket — that would evict a *live* generation to store a dead one.
Both are rejected by :meth:`add` returning ``False``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Iterable

DEFAULT_BUFFER_GENERATIONS = 1024


class GenerationBuffer:
    """FIFO buffer of per-generation packet lists for one session."""

    def __init__(self, capacity_generations: int = DEFAULT_BUFFER_GENERATIONS) -> None:
        if capacity_generations <= 0:
            raise ValueError("buffer capacity must be at least one generation")
        self.capacity_generations = capacity_generations
        self._generations: OrderedDict[int, list[Any]] = OrderedDict()
        self.evicted_generations = 0
        self.stored_packets = 0
        self.duplicate_packets = 0
        self.rejected_stale = 0
        # Highest generation id ever evicted: stragglers at or below it
        # are dead and must not displace live generations.
        self._highest_evicted = -1

    def __len__(self) -> int:
        """Number of generations currently buffered."""
        return len(self._generations)

    def __contains__(self, generation_id: int) -> bool:
        return generation_id in self._generations

    def generations(self) -> Iterable[int]:
        """Buffered generation ids, oldest first."""
        return iter(self._generations)

    def packets(self, generation_id: int) -> list[Any]:
        """Packets stored for a generation (empty list if none)."""
        return self._generations.get(generation_id, [])

    def add(self, generation_id: int, packet: Any) -> bool:
        """Store a packet; returns False if it was rejected.

        Inserting a *new* generation when the buffer is full evicts the
        oldest buffered generation first (FIFO, per the paper).  Packets
        for an already-buffered generation always fit, but an exact
        duplicate of a stored packet is dropped (``duplicate_packets``),
        and a straggler for an already-evicted generation id is refused
        rather than allowed to evict a live generation
        (``rejected_stale``).
        """
        bucket = self._generations.get(generation_id)
        if bucket is None:
            if generation_id <= self._highest_evicted:
                self.rejected_stale += 1
                return False
            if len(self._generations) >= self.capacity_generations:
                self._evict_oldest()
            bucket = []
            self._generations[generation_id] = bucket
        elif packet in bucket:
            # Buckets hold at most a few packets per generation, so the
            # linear duplicate scan is cheaper than hashing packets.
            self.duplicate_packets += 1
            return False
        bucket.append(packet)
        self.stored_packets += 1
        return True

    def _evict_oldest(self) -> None:
        oldest_id, packets = self._generations.popitem(last=False)
        self.evicted_generations += 1
        self.stored_packets -= len(packets)
        if oldest_id > self._highest_evicted:
            self._highest_evicted = oldest_id

    def release(self, generation_id: int) -> list[Any]:
        """Remove and return a generation's packets (after decode/forward)."""
        packets = self._generations.pop(generation_id, [])
        self.stored_packets -= len(packets)
        return packets

    def clear(self) -> None:
        self._generations.clear()
        self.stored_packets = 0

    def __repr__(self) -> str:
        return (
            f"GenerationBuffer({len(self)}/{self.capacity_generations} generations, "
            f"{self.stored_packets} packets, {self.evicted_generations} evicted)"
        )
