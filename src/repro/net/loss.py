"""Packet-loss models, standing in for the paper's ``netem`` shaping.

Two models drive the robustness experiments:

- :class:`UniformLoss` — i.i.d. Bernoulli drops (Fig. 8, 0–50 %).
- :class:`BurstLoss` — correlated drops in the style of netem's loss
  correlation.  The paper describes the burst model as
  ``P_n = 25% × P_{n-1} + P`` with ``P_0 = 0``; we implement the
  Gilbert-style reading used by netem, where the drop probability of
  packet *n* depends on whether packet *n−1* was dropped:

  ``P(drop_n | drop_{n-1}) = c + (1−c)·P`` and
  ``P(drop_n | ok_{n-1}) = (1−c)·P`` with correlation ``c = 0.25``.

  The stationary loss rate stays close to ``P`` while drops cluster
  into bursts, which is the behaviour Fig. 9 probes.  The literal
  deterministic recursion (which converges to ``4P/3`` and produces no
  bursts) is available as :class:`LiteralRecursionLoss` for comparison.
"""

from __future__ import annotations

import numpy as np


class LossModel:
    """Interface: decide the fate of each packet in arrival order."""

    def drop(self, rng: np.random.Generator) -> bool:
        """Return True if the next packet should be dropped."""
        raise NotImplementedError

    def reset(self) -> None:
        """Forget correlation state (new connection / link reset)."""


class NoLoss(LossModel):
    """Lossless link."""

    def drop(self, rng: np.random.Generator) -> bool:
        return False

    def __repr__(self) -> str:
        return "NoLoss()"


class UniformLoss(LossModel):
    """Independent drops with fixed probability ``rate``."""

    def __init__(self, rate: float) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate {rate} outside [0, 1]")
        self.rate = rate

    def drop(self, rng: np.random.Generator) -> bool:
        return bool(rng.random() < self.rate)

    def __repr__(self) -> str:
        return f"UniformLoss({self.rate})"


class BurstLoss(LossModel):
    """Correlated (bursty) loss, netem-correlation style.

    ``p`` is the base loss probability, ``correlation`` the weight of
    the previous packet's fate (0.25 in the paper's experiments).
    """

    def __init__(self, p: float, correlation: float = 0.25) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"loss probability {p} outside [0, 1]")
        if not 0.0 <= correlation < 1.0:
            raise ValueError(f"correlation {correlation} outside [0, 1)")
        self.p = p
        self.correlation = correlation
        self._prev_dropped = False

    def drop(self, rng: np.random.Generator) -> bool:
        prob = self.correlation * (1.0 if self._prev_dropped else 0.0) + (1.0 - self.correlation) * self.p
        dropped = bool(rng.random() < prob)
        self._prev_dropped = dropped
        return dropped

    def reset(self) -> None:
        self._prev_dropped = False

    def stationary_rate(self) -> float:
        """Long-run drop fraction implied by the two-state chain."""
        q = (1.0 - self.correlation) * self.p  # drop prob after an ok packet
        r = self.correlation + q               # drop prob after a drop
        # Stationary probability of the "dropped" state of the chain.
        return q / (1.0 - r + q) if (1.0 - r + q) > 0 else 1.0

    def expected_loss(self) -> float:
        """Exact stationary loss rate of the correlated model.

        The two-state chain has ``P(drop|drop) = c + (1−c)·p`` and
        ``P(drop|ok) = (1−c)·p``; its stationary drop probability is
        ``q / (q + 1 − r)`` with ``q = (1−c)p`` and ``r = c + q``.
        Since ``1 − r = (1−c)(1−p)``, the denominator collapses to
        ``1 − c`` and the stationary rate is exactly ``p``: netem-style
        correlation clusters drops into bursts but preserves the
        marginal loss rate.  Scenario presets and the adaptive
        controller's tests assert empirical drop fractions against this
        closed form instead of a hand-tuned tolerance band.
        """
        return self.stationary_rate()

    def __repr__(self) -> str:
        return f"BurstLoss(p={self.p}, correlation={self.correlation})"


class LiteralRecursionLoss(LossModel):
    """The paper's burst formula taken literally: P_n = c·P_{n−1} + P.

    Deterministic in the probability (not the outcome); converges to
    ``P / (1 − c)``.  Kept for the ablation comparing the two readings.
    """

    def __init__(self, p: float, correlation: float = 0.25) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"loss probability {p} outside [0, 1]")
        if not 0.0 <= correlation < 1.0:
            raise ValueError(f"correlation {correlation} outside [0, 1)")
        self.p = p
        self.correlation = correlation
        self._prob = 0.0  # P_0 = 0 per the paper

    def drop(self, rng: np.random.Generator) -> bool:
        self._prob = min(1.0, self.correlation * self._prob + self.p)
        return bool(rng.random() < self._prob)

    def reset(self) -> None:
        self._prob = 0.0

    def limit_rate(self) -> float:
        """Fixed point of the recursion: P / (1 − c)."""
        return min(1.0, self.p / (1.0 - self.correlation))

    def __repr__(self) -> str:
        return f"LiteralRecursionLoss(p={self.p}, correlation={self.correlation})"


class CompositeLoss(LossModel):
    """Drop if *any* of the component models drops (independent causes)."""

    def __init__(self, *models: LossModel) -> None:
        if not models:
            raise ValueError("CompositeLoss needs at least one component")
        self.models = models

    def drop(self, rng: np.random.Generator) -> bool:
        # Evaluate every component so correlated models advance state.
        results = [m.drop(rng) for m in self.models]
        return any(results)

    def reset(self) -> None:
        for m in self.models:
            m.reset()

    def __repr__(self) -> str:
        return f"CompositeLoss({', '.join(map(repr, self.models))})"
