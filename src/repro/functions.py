"""Pluggable relay functions: the paper's modularization direction.

The conclusion sketches the future work this module implements:
"Modularizing the system design ... so that our system can directly
support a broad range of application scenarios beyond network coding,
once the network coding related modules are replaced by other
application-specific modules."

A :class:`RelayFunction` is the per-(session, generation) packet
processor a :class:`~repro.core.vnf.CodingVnf` runs.  Three
implementations ship:

- :class:`RlncRelayFunction` — the paper's network coding function
  (wraps :class:`repro.rlnc.Recoder`);
- :class:`ForwardRelayFunction` — plain store-and-forward (the Non-NC
  data plane as a module rather than a role);
- :class:`XorFecRelayFunction` — a parity-only FEC relay: forwards
  originals and appends one XOR parity per generation — the classic
  middle ground between forwarding and full RLNC (it repairs exactly
  one loss, and only when every other packet of the generation was
  seen).

``make_relay_function`` is the registry the control plane can hand out
by name (the NFV orchestration story: same deployment machinery, a
different function image).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.gf import GF256, GaloisField
from repro.rlnc.header import NCHeader
from repro.rlnc.packet import CodedPacket
from repro.rlnc.recoder import Recoder


class RelayFunction:
    """Per-(session, generation) packet processor run by a relay VNF.

    ``on_packet`` consumes one received packet and returns the list of
    packets to emit toward each next hop (the VNF fans them out).
    """

    def on_packet(self, packet: CodedPacket) -> list:
        raise NotImplementedError

    @property
    def name(self) -> str:
        return type(self).__name__


class ForwardRelayFunction(RelayFunction):
    """Store-and-forward: emit exactly what arrived."""

    def on_packet(self, packet: CodedPacket) -> list:
        return [packet]


class RlncRelayFunction(RelayFunction):
    """The paper's coding function: pipelined random recoding."""

    def __init__(self, session_id: int, generation_id: int, block_count: int,
                 field: GaloisField = GF256, rng: np.random.Generator | None = None):
        self._recoder = Recoder(session_id, generation_id, block_count, field=field, rng=rng)

    def on_packet(self, packet: CodedPacket) -> list:
        return [self._recoder.on_packet(packet)]


class XorFecRelayFunction(RelayFunction):
    """Forward originals; append one XOR parity when a generation completes.

    The parity is the GF(2) sum of every block seen for the generation —
    decodable by any receiver missing exactly one of them.  Cheaper than
    RLNC (no field multiplications) but strictly weaker: it adds at most
    one degree of freedom per generation.
    """

    def __init__(self, session_id: int, generation_id: int, block_count: int):
        self.session_id = session_id
        self.generation_id = generation_id
        self.block_count = block_count
        self._coeff_acc: np.ndarray | None = None
        self._payload_acc: np.ndarray | None = None
        self._seen = 0
        self._parity_sent = False

    def on_packet(self, packet: CodedPacket) -> list:
        if packet.session_id != self.session_id or packet.generation_id != self.generation_id:
            raise ValueError("packet fed to the wrong generation's function")
        coeffs = packet.coefficients.astype(np.uint8)
        payload = packet.payload
        if self._coeff_acc is None:
            self._coeff_acc = coeffs.copy()
            self._payload_acc = payload.copy()
        else:
            self._coeff_acc = np.bitwise_xor(self._coeff_acc, coeffs)
            self._payload_acc = np.bitwise_xor(self._payload_acc, payload)
        self._seen += 1
        out = [packet]
        if self._seen == self.block_count and not self._parity_sent:
            self._parity_sent = True
            out.append(
                CodedPacket(
                    header=NCHeader(
                        session_id=self.session_id,
                        generation_id=self.generation_id,
                        coefficients=self._coeff_acc.copy(),
                        systematic=False,
                    ),
                    payload=self._payload_acc.copy(),
                )
            )
        return out


FunctionFactory = Callable[[int, int, int], RelayFunction]

_REGISTRY: dict[str, FunctionFactory] = {
    "forward": lambda sid, gid, k: ForwardRelayFunction(),
    "rlnc": lambda sid, gid, k: RlncRelayFunction(sid, gid, k),
    "xor-fec": lambda sid, gid, k: XorFecRelayFunction(sid, gid, k),
}


def register_relay_function(name: str, factory: FunctionFactory) -> None:
    """Add a custom function type to the registry (application modules)."""
    if name in _REGISTRY:
        raise ValueError(f"relay function {name!r} already registered")
    _REGISTRY[name] = factory


def make_relay_function(name: str, session_id: int, generation_id: int, block_count: int) -> RelayFunction:
    """Instantiate a registered function for one (session, generation)."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown relay function {name!r}; registered: {sorted(_REGISTRY)}") from None
    return factory(session_id, generation_id, block_count)


def available_functions() -> list:
    return sorted(_REGISTRY)
