"""Fault schedules: what breaks, when, and (optionally) how badly.

A :class:`FaultPlan` is data, not behavior — it can be printed, diffed,
stored next to an experiment's results, and replayed exactly.  The
:class:`~repro.faults.injector.FaultInjector` is what binds a plan to
live objects.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.util.rng import derive_rng


class FaultKind(enum.Enum):
    """The fault vocabulary (see the package docstring for semantics)."""

    VM_CRASH = "vm-crash"
    LINK_DOWN = "link-down"
    LINK_UP = "link-up"
    LINK_DEGRADE = "link-degrade"
    LINK_CORRUPT = "link-corrupt"      # bit-flip corruption at a packet rate
    LINK_DUPLICATE = "link-duplicate"  # wire duplication at a packet rate
    LINK_BLACKHOLE = "link-blackhole"  # silent one-direction swallow
    LINK_CLEAR = "link-clear"          # detach every impairment
    DAEMON_KILL = "daemon-kill"
    DAEMON_RESTART = "daemon-restart"
    SIGNAL_DROP = "signal-drop"
    SIGNAL_DELAY = "signal-delay"
    NODE_CRASH = "node-crash"
    CONTROLLER_CRASH = "controller-crash"      # kill a controller replica
    CONTROLLER_RESTORE = "controller-restore"  # rejoin it (as warm standby)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``target`` is interpreted per kind: a VM id, a ``"src->dst"`` link
    key, a daemon's node name, a signal kind name (``"NcSettings"``) or
    a node name for NODE_CRASH.  ``param`` carries the kind-specific
    knob (delay seconds, loss probability).
    """

    time_s: float
    kind: FaultKind
    target: str
    param: float | None = None

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError(f"fault time must be non-negative, got {self.time_s}")
        if not self.target:
            raise ValueError("fault target cannot be empty")
        if self.kind is FaultKind.SIGNAL_DELAY:
            if self.param is None or self.param <= 0:
                raise ValueError("SIGNAL_DELAY needs a positive delay param")
        if self.kind is FaultKind.LINK_DEGRADE:
            if self.param is None or not (0.0 <= self.param <= 1.0):
                raise ValueError("LINK_DEGRADE needs a loss probability in [0, 1]")
        if self.kind in (FaultKind.LINK_CORRUPT, FaultKind.LINK_DUPLICATE):
            if self.param is None or not (0.0 <= self.param <= 1.0):
                raise ValueError(f"{self.kind.value} needs a packet rate in [0, 1]")


class FaultPlan:
    """An immutable, time-sorted schedule of :class:`FaultEvent`.

    Sorting is stable: events at the same instant keep their authored
    order, so a plan is a total order and replays deterministically.
    """

    def __init__(self, events: Iterable[FaultEvent] = ()):
        ordered = sorted(enumerate(events), key=lambda pair: (pair[1].time_s, pair[0]))
        self.events: tuple[FaultEvent, ...] = tuple(event for _, event in ordered)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return f"FaultPlan({len(self.events)} events)"

    def of_kind(self, kind: FaultKind) -> list[FaultEvent]:
        return [e for e in self.events if e.kind is kind]

    def describe(self) -> str:
        """Human-readable schedule, one fault per line."""
        lines = []
        for event in self.events:
            line = f"t={event.time_s:9.4f}s  {event.kind.value:<14}  {event.target}"
            if event.param is not None:
                line += f"  param={event.param}"
            lines.append(line)
        return "\n".join(lines)

    @classmethod
    def random(
        cls,
        seed: int,
        duration_s: float,
        vms: Sequence[str] = (),
        links: Sequence[str] = (),
        daemons: Sequence[str] = (),
        signal_kinds: Sequence[str] = (),
        max_faults: int = 4,
        max_outage_s: float = 0.5,
        impairments: bool = False,
        controllers: Sequence[str] = (),
    ) -> "FaultPlan":
        """Draw a seeded random plan over the given target pools.

        Disruptive-but-survivable by construction: every LINK_DOWN is
        paired with a later LINK_UP, every DAEMON_KILL with a later
        DAEMON_RESTART, every dirty-wire impairment with a later
        LINK_CLEAR, and every CONTROLLER_CRASH with a later
        CONTROLLER_RESTORE, so a random plan never leaves the topology
        permanently partitioned, permanently dirty, or a shard
        permanently replica-less.  Same seed, same pools → same plan.

        ``impairments`` is opt-in: enabling it extends the fault menu
        with LINK_CORRUPT / LINK_DUPLICATE / LINK_BLACKHOLE, which
        changes the draw sequence — plans generated with it off are
        bit-identical to plans from before impairments existed.
        ``controllers`` (replica handles registered with
        ``FaultInjector.add_controller``) is opt-in the same way:
        leaving it empty keeps the draw sequence of pre-shard plans.
        Controller outages draw from a wider window than link flaps —
        failover detection takes several heartbeat intervals, and a
        restore racing the takeover is exactly the zombie scenario the
        fence defense exists for.
        """
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        if max_faults < 1:
            raise ValueError("max_faults must be at least 1")
        rng = derive_rng("faults.plan", seed)
        menu: list[FaultKind] = []
        if vms:
            menu.append(FaultKind.VM_CRASH)
        if links:
            menu += [FaultKind.LINK_DOWN, FaultKind.LINK_DEGRADE]
            if impairments:
                menu += [FaultKind.LINK_CORRUPT, FaultKind.LINK_DUPLICATE, FaultKind.LINK_BLACKHOLE]
        if daemons:
            menu.append(FaultKind.DAEMON_KILL)
        if signal_kinds:
            menu += [FaultKind.SIGNAL_DROP, FaultKind.SIGNAL_DELAY]
        if controllers:
            menu.append(FaultKind.CONTROLLER_CRASH)
        if not menu:
            raise ValueError("no target pools given; nothing to break")
        events: list[FaultEvent] = []
        count = int(rng.integers(1, max_faults + 1))
        for _ in range(count):
            kind = menu[int(rng.integers(0, len(menu)))]
            at = float(rng.uniform(0.0, duration_s))
            if kind is FaultKind.VM_CRASH:
                events.append(FaultEvent(at, kind, vms[int(rng.integers(0, len(vms)))]))
            elif kind is FaultKind.LINK_DOWN:
                link = links[int(rng.integers(0, len(links)))]
                outage = float(rng.uniform(0.05, max_outage_s))
                events.append(FaultEvent(at, kind, link))
                events.append(FaultEvent(at + outage, FaultKind.LINK_UP, link))
            elif kind is FaultKind.LINK_DEGRADE:
                link = links[int(rng.integers(0, len(links)))]
                loss = float(rng.uniform(0.05, 0.3))
                events.append(FaultEvent(at, kind, link, param=loss))
            elif kind in (FaultKind.LINK_CORRUPT, FaultKind.LINK_DUPLICATE):
                link = links[int(rng.integers(0, len(links)))]
                rate = float(rng.uniform(0.01, 0.2))
                window = float(rng.uniform(0.05, max_outage_s))
                events.append(FaultEvent(at, kind, link, param=rate))
                events.append(FaultEvent(at + window, FaultKind.LINK_CLEAR, link))
            elif kind is FaultKind.LINK_BLACKHOLE:
                link = links[int(rng.integers(0, len(links)))]
                window = float(rng.uniform(0.05, max_outage_s))
                events.append(FaultEvent(at, kind, link))
                events.append(FaultEvent(at + window, FaultKind.LINK_CLEAR, link))
            elif kind is FaultKind.DAEMON_KILL:
                daemon = daemons[int(rng.integers(0, len(daemons)))]
                outage = float(rng.uniform(0.05, max_outage_s))
                events.append(FaultEvent(at, kind, daemon))
                events.append(FaultEvent(at + outage, FaultKind.DAEMON_RESTART, daemon))
            elif kind is FaultKind.SIGNAL_DROP:
                sk = signal_kinds[int(rng.integers(0, len(signal_kinds)))]
                events.append(FaultEvent(at, kind, sk))
            elif kind is FaultKind.SIGNAL_DELAY:
                sk = signal_kinds[int(rng.integers(0, len(signal_kinds)))]
                delay = float(rng.uniform(0.05, max_outage_s))
                events.append(FaultEvent(at, kind, sk, param=delay))
            elif kind is FaultKind.CONTROLLER_CRASH:
                replica = controllers[int(rng.integers(0, len(controllers)))]
                outage = float(rng.uniform(1.0, max(2.0, 4.0 * max_outage_s)))
                events.append(FaultEvent(at, kind, replica))
                events.append(FaultEvent(at + outage, FaultKind.CONTROLLER_RESTORE, replica))
        return cls(events)
