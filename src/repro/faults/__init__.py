"""Seeded, schedule-driven fault injection for the simulated system.

The paper's testbed runs on real clouds where VMs crash, WAN links flap
and control connections stall; the reproduction needs the same weather.
This package turns failures into *data*: a :class:`FaultPlan` is an
immutable, sorted schedule of :class:`FaultEvent` entries (built by hand
or drawn from a seeded RNG), and a :class:`FaultInjector` arms the plan
against live simulation objects — VMs, links, daemons, the signal bus —
on the shared event scheduler.  Same plan, same seed, same world: every
failure and every recovery is bit-reproducible.

Fault vocabulary (:class:`FaultKind`):

==================  ==================================================
``VM_CRASH``        drop a VirtualMachine to FAILED mid-session
``LINK_DOWN``       take a Link down; in-flight packets are lost
``LINK_UP``         bring a downed Link back
``LINK_DEGRADE``    multiply a Link's loss probability (param = new p)
``DAEMON_KILL``     crash a VnfDaemon process (queued state dies)
``DAEMON_RESTART``  bring a killed daemon back up (amnesiac)
``SIGNAL_DROP``     eat the next matching SignalBus delivery
``SIGNAL_DELAY``    postpone the next matching delivery by param secs
``NODE_CRASH``      LINK_DOWN on every incident link + DAEMON_KILL
==================  ==================================================
"""

from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.faults.injector import (
    FaultError,
    FaultInjector,
    FaultTargetError,
    RecoveryFailedError,
)

__all__ = [
    "FaultKind",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "FaultError",
    "FaultTargetError",
    "RecoveryFailedError",
]
