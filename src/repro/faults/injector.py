"""The fault injector: binds a :class:`FaultPlan` to live objects.

The injector is a registry plus a trigger: simulation objects are
registered under string handles (the same handles the plan's events
name), ``arm()`` validates every event against the registry *before*
anything is scheduled — a typo'd target is a :class:`FaultTargetError`
at arm time, not a silent no-op at t=37 — and then schedules each fault
on the shared :class:`~repro.net.events.EventScheduler`.

Signal-plane faults (SIGNAL_DROP / SIGNAL_DELAY) work through the
:class:`~repro.core.signals.SignalBus` fault hook: at the fault's
scheduled time a one-shot rule is added that eats (or postpones) the
*next* delivery of the named signal kind.

NODE_CRASH composes the primitives: every link touching the node goes
down and the node's daemon (if registered) is killed — the closest
thing the simulation has to pulling a machine's power cord.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.net.events import EventScheduler
from repro.net.impairments import BitFlipCorruption, Blackhole, Duplication
from repro.net.loss import UniformLoss

if TYPE_CHECKING:  # imports only for type checkers; no runtime cycle
    from repro.cloud.vm import VirtualMachine
    from repro.core.daemon import VnfDaemon
    from repro.core.signals import SignalBus, SignalRecord
    from repro.net.link import Link
    from repro.net.topology import Topology


class FaultError(RuntimeError):
    """Base class for fault-injection failures."""


class FaultTargetError(FaultError):
    """A plan names a target the injector has no registration for."""


class RecoveryFailedError(FaultError):
    """The system did not recover from an injected fault in time.

    Raised by experiments (not the injector itself) when a recovery
    deadline passes — e.g. receivers still undecoded long after a relay
    crash should have been routed around.
    """


def link_key(src: str, dst: str) -> str:
    """Canonical string handle for the directed link ``src → dst``."""
    return f"{src}->{dst}"


class ControllerTarget(Protocol):
    """What CONTROLLER_CRASH / CONTROLLER_RESTORE need from a replica.

    Satisfied by :class:`repro.shard.controller.ControllerReplica`; any
    object with the same crash/restore surface can be registered.
    """

    def crash(self) -> None: ...

    def restore(self) -> None: ...


class _SignalRule:
    """One-shot drop/delay rule applied to the next matching delivery."""

    __slots__ = ("kind", "action", "used")

    def __init__(self, kind: str, action: "str | float") -> None:
        self.kind = kind
        self.action = action
        self.used = False


class FaultInjector:
    """Schedules a :class:`FaultPlan` against registered live objects."""

    def __init__(self, scheduler: EventScheduler, plan: FaultPlan):
        self.scheduler = scheduler
        self.plan = plan
        self._vms: dict[str, "VirtualMachine"] = {}
        self._links: dict[str, "Link"] = {}
        self._daemons: dict[str, "VnfDaemon"] = {}
        self._controllers: dict[str, ControllerTarget] = {}
        self._node_links: dict[str, list[str]] = {}
        self._bus: "SignalBus | None" = None
        self._rules: list[_SignalRule] = []
        self.applied: list[tuple[float, FaultEvent]] = []
        self.armed = False

    # -- registry ------------------------------------------------------

    def add_vm(self, vm_id: str, vm: "VirtualMachine") -> None:
        self._vms[vm_id] = vm

    def add_link(self, src: str, dst: str, link: "Link") -> None:
        key = link_key(src, dst)
        self._links[key] = link
        self._node_links.setdefault(src, []).append(key)
        self._node_links.setdefault(dst, []).append(key)

    def add_daemon(self, name: str, daemon: "VnfDaemon") -> None:
        self._daemons[name] = daemon

    def add_controller(self, name: str, controller: ControllerTarget) -> None:
        """Register a controller replica under its replica handle."""
        self._controllers[name] = controller

    def add_topology(self, topology: "Topology") -> None:
        """Register every link of a topology under ``src->dst`` handles."""
        for (src, dst), link in topology.links.items():
            self.add_link(src, dst, link)

    def set_bus(self, bus: "SignalBus") -> None:
        """Attach the signal bus and interpose the injector's fault hook."""
        if bus.fault_hook is not None and bus.fault_hook is not self._hook:
            raise FaultError("bus already has a fault hook installed")
        self._bus = bus
        bus.fault_hook = self._hook

    # -- arming --------------------------------------------------------

    def arm(self) -> None:
        """Validate the whole plan, then schedule every fault.

        Idempotence guard: arming twice would double-fire every fault.
        """
        if self.armed:
            raise FaultError("injector already armed")
        for event in self.plan:
            self._validate(event)
        for event in self.plan:
            self.scheduler.schedule_at(event.time_s, self._fire, event)
        self.armed = True

    def _validate(self, event: FaultEvent) -> None:
        kind, target = event.kind, event.target
        if kind is FaultKind.VM_CRASH and target not in self._vms:
            raise FaultTargetError(f"no VM registered as {target!r}")
        if kind in (
            FaultKind.LINK_DOWN,
            FaultKind.LINK_UP,
            FaultKind.LINK_DEGRADE,
            FaultKind.LINK_CORRUPT,
            FaultKind.LINK_DUPLICATE,
            FaultKind.LINK_BLACKHOLE,
            FaultKind.LINK_CLEAR,
        ):
            if target not in self._links:
                raise FaultTargetError(f"no link registered as {target!r}")
        if kind in (FaultKind.DAEMON_KILL, FaultKind.DAEMON_RESTART):
            if target not in self._daemons:
                raise FaultTargetError(f"no daemon registered as {target!r}")
        if kind in (FaultKind.CONTROLLER_CRASH, FaultKind.CONTROLLER_RESTORE):
            if target not in self._controllers:
                raise FaultTargetError(f"no controller registered as {target!r}")
        if kind in (FaultKind.SIGNAL_DROP, FaultKind.SIGNAL_DELAY) and self._bus is None:
            raise FaultTargetError(f"signal fault on {target!r} but no bus attached (set_bus)")
        if kind is FaultKind.NODE_CRASH:
            if target not in self._node_links and target not in self._daemons:
                raise FaultTargetError(f"node {target!r} has no registered links or daemon")

    # -- firing --------------------------------------------------------

    def _fire(self, event: FaultEvent) -> None:
        kind, target = event.kind, event.target
        if kind is FaultKind.VM_CRASH:
            self._vms[target].fail()
        elif kind is FaultKind.LINK_DOWN:
            self._links[target].down()
        elif kind is FaultKind.LINK_UP:
            self._links[target].up()
        elif kind is FaultKind.LINK_DEGRADE:
            assert event.param is not None  # enforced by FaultEvent validation
            self._links[target].set_loss(UniformLoss(event.param))
        elif kind is FaultKind.LINK_CORRUPT:
            assert event.param is not None
            self._links[target].add_impairment(BitFlipCorruption(event.param))
        elif kind is FaultKind.LINK_DUPLICATE:
            assert event.param is not None
            self._links[target].add_impairment(Duplication(event.param))
        elif kind is FaultKind.LINK_BLACKHOLE:
            self._links[target].add_impairment(Blackhole())
        elif kind is FaultKind.LINK_CLEAR:
            self._links[target].clear_impairments()
        elif kind is FaultKind.DAEMON_KILL:
            self._daemons[target].kill()
        elif kind is FaultKind.DAEMON_RESTART:
            self._daemons[target].restart()
        elif kind is FaultKind.CONTROLLER_CRASH:
            self._controllers[target].crash()
        elif kind is FaultKind.CONTROLLER_RESTORE:
            self._controllers[target].restore()
        elif kind is FaultKind.SIGNAL_DROP:
            self._rules.append(_SignalRule(target, "drop"))
        elif kind is FaultKind.SIGNAL_DELAY:
            assert event.param is not None
            self._rules.append(_SignalRule(target, event.param))
        elif kind is FaultKind.NODE_CRASH:
            for key in self._node_links.get(target, ()):
                self._links[key].down()
            daemon = self._daemons.get(target)
            if daemon is not None:
                daemon.kill()
        self.applied.append((self.scheduler.now, event))

    def _hook(self, record: "SignalRecord") -> "str | float | None":
        for rule in self._rules:
            if not rule.used and record.signal.kind == rule.kind:
                rule.used = True
                return rule.action
        return None
