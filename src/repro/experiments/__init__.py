"""Experiment harnesses: reusable runners behind tests and benchmarks.

- :mod:`repro.experiments.butterfly` — the Fig. 6 butterfly testbed and
  the packet-level NC / Non-NC / Direct-TCP runs (Fig. 4, 5, 7, 8, 9,
  Tab. II).
- :mod:`repro.experiments.dynamic` — the six-data-center flow-level
  scenario with session/receiver churn, bandwidth cuts, L^max and α
  sweeps (Fig. 10–13), plus launch/update overhead (§V-C5, Tab. III).
"""

from repro.experiments.butterfly import (
    BUTTERFLY_DELAYS_MS,
    BUTTERFLY_LINKS_MBPS,
    ButterflyResult,
    build_butterfly,
    run_butterfly_nc,
    run_butterfly_non_nc,
    run_direct_tcp,
)
from repro.experiments.dynamic import (
    SIX_DATACENTERS,
    DynamicScenario,
    build_six_dc_graph,
    make_controller,
)

__all__ = [
    "BUTTERFLY_LINKS_MBPS",
    "BUTTERFLY_DELAYS_MS",
    "ButterflyResult",
    "build_butterfly",
    "run_butterfly_nc",
    "run_butterfly_non_nc",
    "run_direct_tcp",
    "SIX_DATACENTERS",
    "build_six_dc_graph",
    "make_controller",
    "DynamicScenario",
]
