"""Chaos soak: random survivable fault plans composed with live transfers.

The failure matrix in :mod:`tests.faults` pins down *named* scenarios;
this module is the complement — a seeded soak that composes random
:meth:`~repro.faults.FaultPlan.random` schedules (link flaps, daemon
kill/restart cycles, signal drops) with a complete windowed file
transfer over the failover butterfly, self-healing enabled, and holds
the whole stack to three contracts:

- **terminate**: every session either *completes* (all generations
  decoded at full rank at every receiver, inside the deadline) or ends
  in a *typed* outcome — named dead nodes, recorded fault applications,
  dropped/undeliverable signal records, and per-receiver decode states.
  There is no third state; a hang would show up as an incomplete run
  with no typed evidence, and :func:`classify` treats that as a
  violation.
- **replay bit-identically**: a seed fully determines the run.  Each
  outcome carries a SHA-256 fingerprint over every behaviourally
  meaningful observable; re-running the seed must reproduce it bit for
  bit.
- **degrade, don't deadlock**: NACK retries are capped with exponential
  backoff and recovery re-plans are LP-feasibility-checked, so even
  adversarial schedules (a forwarding-table push eaten by a signal
  drop, a false death verdict from dropped heartbeats) converge.

``python -m repro.experiments.chaos`` runs a seed sweep (optionally
with replay verification) and is what the CI ``chaos-soak`` step calls.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from dataclasses import dataclass, field as dataclass_field

from repro.experiments.butterfly import BUTTERFLY_LINKS, RELAYS
from repro.experiments.failures import FailoverResult, run_butterfly_failover
from repro.faults import FaultPlan
from repro.faults.injector import link_key

#: Fault-plan pools: every data link (flappable), every relay daemon
#: (killable), and the signal kinds whose loss stresses recovery most —
#: heartbeats (false death verdicts) and forwarding-table pushes
#: (recovery applied with stale routes).
DATA_LINKS = tuple(link_key(u, v) for u, v in BUTTERFLY_LINKS)
DAEMONS = tuple(RELAYS)
SIGNAL_KINDS = ("NcHeartbeat", "NcForwardTab")


@dataclass
class ChaosOutcome:
    """One soaked session, classified."""

    seed: int
    completed: bool
    #: "completed" or "degraded-typed" — never anything else for a
    #: contract-respecting run.
    outcome: str
    fingerprint: str
    total_generations: int
    #: receiver -> generations fully decoded.
    decoded: dict = dataclass_field(default_factory=dict)
    #: last generation-completion time across receivers (None if no
    #: generation completed at all).
    finished_at: float | None = None
    deadline_s: float = 0.0
    dead_nodes: list = dataclass_field(default_factory=list)
    applied_faults: int = 0
    dropped_signals: int = 0
    undeliverable_signals: int = 0
    nacks_sent: int = 0
    repair_packets: int = 0
    #: typed evidence present (faults applied / deaths / drops)?
    typed: bool = False


def _fingerprint(result: FailoverResult, total_generations: int) -> str:
    """SHA-256 over every behaviourally meaningful observable.

    Bus sequence numbers are process-global (itertools counter) and are
    deliberately excluded; everything hashed here is derived from the
    event scheduler and the seeded RNGs alone.
    """
    receivers = {}
    for name, app in sorted(result.receivers.items()):
        receivers[name] = (
            sorted((gen, repr(t)) for gen, t in app.completed.items()),
            app.received_packets,
            app.redundant_packets,
            app.nacks_sent,
        )
    canonical = repr(
        (
            receivers,
            result.source.sent_generations,
            result.source.sent_packets,
            result.source.repair_packets,
            repr(result.detected_at),
            tuple(result.dead_nodes),
            tuple((repr(t), e.kind.value, e.target) for t, e in result.applied_faults),
            result.undeliverable_signals,
            len(result.bus.dropped),
            total_generations,
        )
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


def classify(result: FailoverResult, total_generations: int, deadline_s: float) -> ChaosOutcome:
    """Fold a raw failover result into the soak's outcome contract."""
    decoded = {name: len(app.completed) for name, app in result.receivers.items()}
    completed = all(count == total_generations for count in decoded.values())
    finish_times = [
        max(app.completed.values()) for app in result.receivers.values() if app.completed
    ]
    finished_at = max(finish_times) if completed and finish_times else None
    typed = bool(
        result.applied_faults
        or result.dead_nodes
        or result.bus.dropped
        or result.undeliverable_signals
    )
    if completed:
        outcome = "completed"
    elif typed:
        outcome = "degraded-typed"
    else:
        outcome = "incomplete-untyped"  # contract violation: no evidence, no finish
    return ChaosOutcome(
        seed=-1,
        completed=completed,
        outcome=outcome,
        fingerprint=_fingerprint(result, total_generations),
        total_generations=total_generations,
        decoded=decoded,
        finished_at=finished_at,
        deadline_s=0.0,
        dead_nodes=list(result.dead_nodes),
        applied_faults=len(result.applied_faults),
        dropped_signals=len(result.bus.dropped),
        undeliverable_signals=result.undeliverable_signals,
        nacks_sent=sum(app.nacks_sent for app in result.receivers.values()),
        repair_packets=result.source.repair_packets,
        typed=typed,
    )


def run_chaos_session(
    seed: int,
    total_generations: int = 48,
    rate_mbps: float = 30.0,
    deadline_s: float = 6.0,
    fault_window_s: float = 2.0,
    max_faults: int = 4,
    max_outage_s: float = 0.5,
    blocks_per_generation: int = 4,
    relay_repair: bool = True,
    plan: FaultPlan | None = None,
    impairments: bool = False,
) -> ChaosOutcome:
    """One seeded chaos run: random survivable plan × live transfer.

    ``impairments`` extends the fault menu with dirty-wire faults
    (bit-flip corruption, duplication, blackholes) on top of the clean
    loss/crash/signal menu — the CI dirty-seed batch sets it.
    """
    if plan is None:
        plan = FaultPlan.random(
            seed,
            duration_s=fault_window_s,
            links=DATA_LINKS,
            daemons=DAEMONS,
            signal_kinds=SIGNAL_KINDS,
            max_faults=max_faults,
            max_outage_s=max_outage_s,
            impairments=impairments,
        )
    result = run_butterfly_failover(
        fail_at_s=fault_window_s / 2,  # metadata only; the plan drives injection
        duration_s=deadline_s,
        rate_mbps=rate_mbps,
        blocks_per_generation=blocks_per_generation,
        plan=plan,
        relay_repair=relay_repair,
        total_generations=total_generations,
        seed=seed,
    )
    outcome = classify(result, total_generations, deadline_s)
    outcome.seed = seed
    outcome.deadline_s = deadline_s
    return outcome


def run_chaos_soak(
    seeds,
    replay: bool = False,
    **session_kwargs,
) -> list:
    """Soak a seed sweep; with ``replay``, verify bit-identical reruns.

    Raises ``AssertionError`` on a replay divergence — that is the
    determinism contract failing, not a degraded-but-legal outcome.
    """
    outcomes = []
    for seed in seeds:
        outcome = run_chaos_session(seed, **session_kwargs)
        if replay:
            again = run_chaos_session(seed, **session_kwargs)
            if again.fingerprint != outcome.fingerprint:
                raise AssertionError(
                    f"seed {seed} replay diverged: {outcome.fingerprint[:16]} != "
                    f"{again.fingerprint[:16]}"
                )
        outcomes.append(outcome)
    return outcomes


def soak_summary(outcomes) -> dict:
    """Aggregate a sweep into the JSON shape the CI step archives."""
    violations = [o.seed for o in outcomes if o.outcome == "incomplete-untyped"]
    return {
        "runs": len(outcomes),
        "completed": sum(1 for o in outcomes if o.completed),
        "degraded_typed": sum(1 for o in outcomes if o.outcome == "degraded-typed"),
        "violations": violations,
        "total_faults_applied": sum(o.applied_faults for o in outcomes),
        "total_dead_nodes": sum(len(o.dead_nodes) for o in outcomes),
        "total_nacks": sum(o.nacks_sent for o in outcomes),
        "total_repair_packets": sum(o.repair_packets for o in outcomes),
        "outcomes": [
            {
                "seed": o.seed,
                "outcome": o.outcome,
                "decoded": o.decoded,
                "finished_at": o.finished_at,
                "dead_nodes": o.dead_nodes,
                "faults": o.applied_faults,
                "fingerprint": o.fingerprint,
            }
            for o in outcomes
        ],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="Seeded chaos soak over the failover butterfly")
    parser.add_argument("--seeds", type=int, default=50, help="number of seeds to sweep")
    parser.add_argument("--start", type=int, default=0, help="first seed")
    parser.add_argument("--replay", action="store_true", help="re-run each seed and compare fingerprints")
    parser.add_argument("--generations", type=int, default=48, help="generations per transfer")
    parser.add_argument("--deadline", type=float, default=6.0, help="per-run deadline (sim seconds)")
    parser.add_argument(
        "--impairments",
        action="store_true",
        help="add dirty-wire faults (corruption, duplication, blackholes) to the menu",
    )
    parser.add_argument("--json", type=str, default=None, help="write the summary JSON here")
    args = parser.parse_args(argv)

    outcomes = run_chaos_soak(
        range(args.start, args.start + args.seeds),
        replay=args.replay,
        total_generations=args.generations,
        deadline_s=args.deadline,
        impairments=args.impairments,
    )
    summary = soak_summary(outcomes)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(summary, fh, indent=2)
    print(
        f"chaos soak: {summary['runs']} runs, {summary['completed']} completed, "
        f"{summary['degraded_typed']} degraded-typed, "
        f"{summary['total_faults_applied']} faults applied, "
        f"{summary['total_dead_nodes']} death verdicts"
        + (", replay verified" if args.replay else "")
    )
    if summary["violations"]:
        print(f"CONTRACT VIOLATIONS (incomplete, untyped): seeds {summary['violations']}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
