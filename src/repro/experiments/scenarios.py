"""Hostile-link scenario presets: GEO satellite and IoT relay chain.

Two deployment profiles the adaptive-redundancy loop (DESIGN.md §15) is
aimed at, both chains of the paper's coding VNFs over links far worse
than the clean data-center paths of §V:

- **GEO satellite** — one recoding VNF on the satellite, ≈125 ms of
  propagation per space leg (≈250 ms one-way end to end, the classic
  geostationary budget), and highly correlated burst loss on both legs
  (rain fade and scintillation hit runs of packets, not single ones).
  The long feedback delay is exactly where per-generation NACK repair
  hurts most — a repair costs a full second round trip — so redundancy
  tuned to the measured loss pays for itself immediately.
- **IoT relay chain** — a comnetsemu-style multi-hop chain (sensor →
  three relays → gateway) of 2 Mbps links with small frames, burst
  loss on every hop, and netem-grade 0.25 correlation.  No single hop
  is terrible, but four of them compound.

Both presets run the same stack the butterfly experiments use — real
``CodingVnf`` relays, ``VnfDaemon`` control agents on a ``SignalBus``,
``NcSourceApp``/``NcReceiverApp`` with windowed ARQ — plus, in
``adaptive`` mode, a :class:`~repro.adapt.reporter.LinkReporter` at the
receiver feeding an
:class:`~repro.adapt.controller.AdaptiveRedundancyController`.

:func:`loss_sweep` is the Fig. 8/9-shaped experiment the issue asks
for: adaptive vs fixed redundancy vs the Direct-TCP baseline across
0–30 % burst loss, seeded and bit-identically replayable.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

import numpy as np

from repro.adapt.controller import AdaptiveRedundancyController, AdaptPolicy
from repro.adapt.reporter import LinkReporter, receiver_probe
from repro.apps.file_transfer import ControlRelay, NcReceiverApp, NcSourceApp
from repro.baselines.tcp import TcpAimdSimulator
from repro.core.daemon import VnfDaemon
from repro.core.forwarding import ForwardingTable
from repro.core.session import CodingConfig, MulticastSession
from repro.core.signals import SignalBus
from repro.core.vnf import CodingVnf, VnfRole
from repro.faults import FaultInjector, FaultPlan
from repro.net.loss import BurstLoss
from repro.net.topology import LinkSpec, Topology
from repro.rlnc.redundancy import RedundancyPolicy
from repro.util.rng import derive_rng

#: Registry handle the fault injector uses for the adaptive reporter.
REPORTER_HANDLE = "reporter"


@dataclass(frozen=True)
class ScenarioPreset:
    """One hostile-link deployment profile (a chain of coding VNFs)."""

    name: str
    #: Chain node names: source, relays..., receiver.
    nodes: tuple[str, ...]
    #: Per-hop one-way propagation delay, ms (len == len(nodes) - 1).
    hop_delay_ms: tuple[float, ...]
    #: Hop indices carrying the burst loss (others stay clean).
    lossy_hops: tuple[int, ...]
    #: netem-style correlation of the burst loss on those hops.
    loss_correlation: float
    capacity_mbps: float
    data_rate_mbps: float
    block_bytes: int
    blocks_per_generation: int
    #: AIMD policy for adaptive mode (generation sizes, clamps, clocks).
    policy: AdaptPolicy
    bus_latency_s: float = 0.05
    report_interval_s: float = 0.25
    window_generations: int = 64

    @property
    def relays(self) -> tuple[str, ...]:
        return self.nodes[1:-1]

    @property
    def source(self) -> str:
        return self.nodes[0]

    @property
    def receiver(self) -> str:
        return self.nodes[-1]

    @property
    def one_way_delay_s(self) -> float:
        return sum(self.hop_delay_ms) / 1e3

    def per_hop_loss(self, end_to_end_loss: float) -> float:
        """Per-lossy-hop rate composing to the given end-to-end loss."""
        if not 0.0 <= end_to_end_loss < 1.0:
            raise ValueError("end-to-end loss must be in [0, 1)")
        if not self.lossy_hops or end_to_end_loss == 0.0:
            return 0.0
        return 1.0 - (1.0 - end_to_end_loss) ** (1.0 / len(self.lossy_hops))


#: GEO satellite relay: ≈250 ms one-way, high-correlation burst fades
#: on both space legs.  The generous link capacity reflects a modern
#: HTS transponder share; the session rate is what the redundancy
#: headroom is budgeted against (ceiling 8 extra on 8 blocks = 2×).
GEO_SATELLITE = ScenarioPreset(
    name="geo-satellite",
    nodes=("ground-a", "geo-sat", "ground-b"),
    hop_delay_ms=(125.0, 125.0),
    lossy_hops=(0, 1),
    loss_correlation=0.6,
    capacity_mbps=20.0,
    data_rate_mbps=2.0,
    block_bytes=1024,
    blocks_per_generation=16,
    policy=AdaptPolicy(
        max_extra=8,
        blocks_hostile=8,
        blocks_clean=16,
        clean_windows=4,
        report_timeout_s=2.0,
    ),
    # Control signals ride the satellite too: reports and retunes pay
    # the one-way propagation delay, so the loop reacts at GEO speed.
    bus_latency_s=0.25,
    report_interval_s=0.25,
)

#: comnetsemu-style IoT relay chain: sensor → 3 relays → gateway over
#: 2 Mbps links with small frames; every hop carries (mildly) bursty
#: loss, and four hops compound.
IOT_RELAY_CHAIN = ScenarioPreset(
    name="iot-relay-chain",
    nodes=("sensor", "iot-relay-1", "iot-relay-2", "iot-relay-3", "cloud-gw"),
    hop_delay_ms=(25.0, 25.0, 25.0, 25.0),
    lossy_hops=(0, 1, 2, 3),
    loss_correlation=0.25,
    capacity_mbps=2.0,
    data_rate_mbps=0.4,
    block_bytes=256,
    blocks_per_generation=16,
    policy=AdaptPolicy(
        max_extra=8,
        blocks_hostile=8,
        blocks_clean=16,
        clean_windows=4,
        report_timeout_s=2.0,
    ),
    bus_latency_s=0.02,
    report_interval_s=0.25,
)

PRESETS: dict[str, ScenarioPreset] = {
    GEO_SATELLITE.name: GEO_SATELLITE,
    IOT_RELAY_CHAIN.name: IOT_RELAY_CHAIN,
}


@dataclass
class ScenarioResult:
    """Outcome of one scenario run (one mode, one loss point)."""

    preset: str = ""
    mode: str = ""
    loss: float = 0.0
    duration_s: float = 0.0
    goodput_mbps: float = 0.0
    decoded_generations: int = 0
    decoded_bytes: int = 0
    sent_generations: int = 0
    nacks_sent: int = 0
    nacks_suppressed: int = 0
    repair_packets: int = 0
    corrupt_dropped: int = 0
    #: adaptive mode only: retunes the controller pushed / the data
    #: plane applied, and the loop's state history.
    retunes_pushed: int = 0
    retunes_applied: int = 0
    stall_entries: int = 0
    final_extra: int = 0
    final_blocks: int = 0
    transitions: list = dataclass_field(default_factory=list)
    applied_faults: list = dataclass_field(default_factory=list)
    undeliverable_signals: int = 0
    dropped_signals: int = 0
    # Live objects for tests and the soak's fingerprint.
    source: object = None
    receiver: object = None
    controller: object = None
    reporter: object = None
    daemons: dict = dataclass_field(default_factory=dict)
    bus: object = None
    topology: object = None


def _wire_shares(preset: ScenarioPreset, config: CodingConfig) -> dict:
    """Source link share expressing λ·(k+extra)/k on the chain's first hop.

    Redundancy is carried through the conceptual-flow share: the source
    emits exactly ``k + extra`` packets per generation when its single
    outgoing share totals that multiple of the goodput rate λ.
    """
    wire = preset.data_rate_mbps * config.packets_per_generation() / config.blocks_per_generation
    return {preset.nodes[1]: wire}


def build_chain(preset: ScenarioPreset, loss: float, seed: int) -> Topology:
    """The preset's chain topology with per-hop burst loss installed."""
    topo = Topology(rng=derive_rng("experiments.scenarios", preset.name, seed))
    per_hop = preset.per_hop_loss(loss)
    topo.add_node(preset.source)
    rng = np.random.default_rng(seed)
    for name in preset.relays:
        topo.add_node(
            CodingVnf(name, topo.scheduler, payload_mode="coefficients-only", rng=rng)
        )
    topo.add_node(preset.receiver)
    for hop, (a, b) in enumerate(zip(preset.nodes, preset.nodes[1:])):
        loss_model = (
            BurstLoss(per_hop, correlation=preset.loss_correlation)
            if hop in preset.lossy_hops and per_hop > 0
            else None
        )
        topo.add_link(
            LinkSpec(a, b, preset.capacity_mbps, preset.hop_delay_ms[hop], loss=loss_model)
        )
        # The reverse direction carries ACK/NACK control traffic only;
        # it shares the forward hop's fate in spirit but control frames
        # are tiny, so it is modelled clean (the forward loss already
        # exercises every repair path).
        topo.add_link(LinkSpec(b, a, preset.capacity_mbps, preset.hop_delay_ms[hop]))
    return topo


def run_scenario(
    preset: ScenarioPreset,
    mode: str = "adaptive",
    loss: float = 0.0,
    duration_s: float = 12.0,
    seed: int = 1,
    fixed_extra: int = 1,
    plan: FaultPlan | None = None,
) -> ScenarioResult:
    """One chain transfer under the preset's loss profile.

    ``mode="adaptive"`` runs the full feedback loop (reporter at the
    receiver, AIMD controller retuning redundancy and generation size
    over the bus); ``mode="fixed"`` pins the paper-style static
    redundancy ``fixed_extra`` (NC1 by default).  ``plan`` lets the
    chaos soak inject faults — chain links, relay daemons and the
    adaptive reporter (handle ``"reporter"``) are all registered.
    """
    if mode not in ("adaptive", "fixed"):
        raise ValueError("mode must be 'adaptive' or 'fixed'")
    topo = build_chain(preset, loss, seed)
    scheduler = topo.scheduler
    bus = SignalBus(scheduler, latency_s=preset.bus_latency_s)

    extra0 = 0 if mode == "adaptive" else fixed_extra
    config = CodingConfig(
        block_bytes=preset.block_bytes,
        blocks_per_generation=preset.blocks_per_generation,
        redundancy=RedundancyPolicy(extra0),
    )
    session = MulticastSession(
        source=preset.source, receivers=[preset.receiver], coding=config
    )

    daemons: dict[str, VnfDaemon] = {}
    for index, name in enumerate(preset.relays):
        vnf = topo.get(name)
        assert isinstance(vnf, CodingVnf)
        vnf.configure_session(session.session_id, VnfRole.RECODER, config)
        table = ForwardingTable()
        table.set_next_hops(session.session_id, [preset.nodes[index + 2]])
        vnf.forwarding_table = table
        daemon = VnfDaemon(vnf, bus)
        daemon.function_running = True  # data plane configured directly
        daemons[name] = daemon

    # Reverse control path: each relay bounces ACK/NACK one hop back.
    control_relays = [
        ControlRelay(topo.get(name), preset.nodes[index - 1])
        for index, name in enumerate(preset.relays, start=1)
    ]

    receiver = NcReceiverApp(
        topo.get(preset.receiver),
        session,
        payload_mode="coefficients-only",
        ack_to=preset.relays[-1] if preset.relays else preset.source,
        ack_interval_s=0.05,
        stall_generations=4,
        stall_timeout_s=max(0.3, 2.5 * preset.one_way_delay_s),
    )
    source = NcSourceApp(
        topo.get(preset.source),
        session,
        link_shares=_wire_shares(preset, config),
        data_rate_mbps=preset.data_rate_mbps,
        payload_mode="coefficients-only",
        rng=np.random.default_rng(seed + 1),
        window_generations=preset.window_generations,
    )

    controller: AdaptiveRedundancyController | None = None
    reporter: LinkReporter | None = None
    if mode == "adaptive":

        def _apply_source(new_config: CodingConfig) -> None:
            source.retune_coding(new_config, link_shares=_wire_shares(preset, new_config))

        controller = AdaptiveRedundancyController(
            bus,
            scheduler,
            session.session_id,
            config,
            daemon_targets=tuple(preset.relays),
            apply_source=_apply_source,
            policy=preset.policy,
        )
        reporter = LinkReporter(
            preset.receiver,
            session.session_id,
            bus,
            scheduler,
            receiver_probe(receiver, lambda: source.session.coding.packets_per_generation()),
            interval_s=preset.report_interval_s,
        )

    injector: FaultInjector | None = None
    if plan is not None:
        injector = FaultInjector(scheduler, plan)
        injector.add_topology(topo)
        for name, daemon in daemons.items():
            injector.add_daemon(name, daemon)
        if reporter is not None:
            injector.add_daemon(REPORTER_HANDLE, reporter)
        injector.set_bus(bus)
        injector.arm()

    source.start()
    topo.run(until=duration_s)
    if controller is not None:
        controller.stop()
    if reporter is not None:
        reporter.stop()
    receiver.stop_acks()

    result = ScenarioResult(
        preset=preset.name,
        mode=mode,
        loss=loss,
        duration_s=duration_s,
        goodput_mbps=receiver.goodput_mbps(end_s=duration_s),
        decoded_generations=len(receiver.completed),
        decoded_bytes=sum(receiver.completed_bytes.values()),
        sent_generations=source.sent_generations,
        nacks_sent=receiver.nacks_sent,
        nacks_suppressed=receiver.nacks_suppressed,
        repair_packets=source.repair_packets,
        corrupt_dropped=receiver.corrupt_dropped,
        undeliverable_signals=len(bus.undeliverable),
        dropped_signals=len(bus.dropped),
        source=source,
        receiver=receiver,
        controller=controller,
        reporter=reporter,
        daemons=daemons,
        bus=bus,
        topology=topo,
    )
    final = source.session.coding
    result.final_extra = final.redundancy.extra
    result.final_blocks = final.blocks_per_generation
    if controller is not None:
        result.retunes_pushed = controller.retunes_pushed
        result.stall_entries = controller.stall_entries
        result.transitions = list(controller.transitions)
    result.retunes_applied = sum(
        topo.get(name).retunes_applied for name in preset.relays  # type: ignore[attr-defined]
    )
    if injector is not None:
        result.applied_faults = list(injector.applied)
    # Keep references alive for introspection (and to silence linters).
    del control_relays
    return result


def tcp_baseline_mbps(
    preset: ScenarioPreset, loss: float, duration_s: float = 12.0, seed: int = 1
) -> float:
    """The Direct-TCP goodput on the preset's path at the given loss.

    Uses :class:`repro.baselines.tcp.TcpAimdSimulator` with the chain's
    end-to-end RTT (twice the one-way propagation) and the stationary
    loss rate — which :meth:`BurstLoss.expected_loss` proves is the
    configured marginal rate — capped by the session's own data rate
    (TCP cannot out-deliver the application either).
    """
    rtt_s = max(1e-3, 2.0 * preset.one_way_delay_s)
    sim = TcpAimdSimulator(
        capacity_mbps=preset.capacity_mbps,
        rtt_s=rtt_s,
        loss_rate=BurstLoss(loss, preset.loss_correlation).expected_loss() if loss > 0 else 0.0,
    )
    rng = derive_rng("experiments.scenarios.tcp", preset.name, seed)
    mean = float(sim.run(duration_s, rng)["mean_mbps"])
    return min(mean, preset.data_rate_mbps)


def loss_sweep(
    preset: ScenarioPreset,
    losses: tuple[float, ...] = (0.0, 0.05, 0.15, 0.30),
    duration_s: float = 12.0,
    seed: int = 1,
    fixed_extra: int = 1,
) -> list:
    """Adaptive vs fixed vs TCP goodput across the burst-loss range."""
    rows = []
    for loss in losses:
        adaptive = run_scenario(preset, "adaptive", loss, duration_s, seed)
        fixed = run_scenario(preset, "fixed", loss, duration_s, seed, fixed_extra=fixed_extra)
        rows.append(
            {
                "loss": loss,
                "adaptive_mbps": adaptive.goodput_mbps,
                "fixed_mbps": fixed.goodput_mbps,
                "tcp_mbps": tcp_baseline_mbps(preset, loss, duration_s, seed),
                "adaptive_retunes": adaptive.retunes_pushed,
                "adaptive_final_extra": adaptive.final_extra,
                "adaptive_final_blocks": adaptive.final_blocks,
                "adaptive_nacks": adaptive.nacks_sent,
                "fixed_nacks": fixed.nacks_sent,
            }
        )
    return rows
